"""Batch-orchestration overhead benchmark → ``BENCH_zoo.json``.

Measures folder-scale throughput for the zoo batch path against a plain
serial loop *measured in the same run*:

* ``serial_best``   — per-file ``ZenesisPipeline.segment_volume`` with the
  preset config, no jobs layer (the pre-zoo behaviour; same-run reference).
* ``batch_best``    — ``run_batch`` BEST mode: durable jobs, input
  snapshots, journaling, manifest + report.
* ``batch_ensemble``— ``run_batch`` ENSEMBLE mode with K members per file.

Each stage runs over its own freshly synthesized volumes (distinct seeds)
so the content-addressed inference cache cannot leak wins across stages;
within the ensemble stage members *do* share the adaptation cache, which is
exactly the effect ``ensemble_member_efficiency`` reports.

Acceptance (asserted here, gated in CI against the committed
``BENCH_zoo.json`` by ``benchmarks/check_zoo_regression.py``):

* ``batch_vs_serial`` ≥ 0.2 — the durability tax (snapshot + journal +
  report) stays a bounded fraction of the segmentation work.
* ``ensemble_member_efficiency`` ≥ 0.5 — K fused members cost less than
  2·K independent BEST runs (shared adaptation, memoized pipelines).

``REPRO_BENCH_QUICK=1`` shrinks volumes and the member count; ratios are
same-run, so they stay comparable with the committed baseline.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.data import make_sample
from repro.io.volume_io import export_volume_tiff
from repro.jobs import JobService
from repro.zoo import load_registry, run_batch

from .conftest import ARTIFACT_DIR

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"
N_FILES = 2 if QUICK else 3
SIDE = 64 if QUICK else 96
N_SLICES = 2 if QUICK else 3
ENSEMBLE_K = 2 if QUICK else 3
PRESET = "crystalline_catalyst"
BENCH_PATH = ARTIFACT_DIR / "BENCH_zoo.json"


def _make_dir(root: Path, seed0: int) -> Path:
    root.mkdir(parents=True)
    for i in range(N_FILES):
        sample = make_sample(
            "crystalline", seed=seed0 + i, shape=(SIDE, SIDE), n_slices=N_SLICES
        )
        export_volume_tiff(root / f"vol{i}.tiff", sample.volume.voxels, voxel_size_nm=(5.0, 5.0))
    return root


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_zoo_bench(tmp_path):
    from repro.core.pipeline import ZenesisPipeline
    from repro.io.formats import load_image_file

    preset = load_registry().get(PRESET)
    serial_dir = _make_dir(tmp_path / "serial", seed0=0)
    best_dir = _make_dir(tmp_path / "best", seed0=100)
    ens_dir = _make_dir(tmp_path / "ensemble", seed0=200)

    def serial():
        pipeline = ZenesisPipeline(preset.build_config())
        for path in sorted(serial_dir.iterdir()):
            pipeline.segment_volume(load_image_file(path), preset.prompt)

    reports = {}

    def batch(root, mode, key, **kwargs):
        def run():
            svc = JobService(tmp_path / f"jobs-{key}")
            reports[key] = run_batch(svc, root, PRESET, mode=mode, timeout_s=1200.0, **kwargs)
        return run

    results = {
        "serial_best": _timed(serial),
        "batch_best": _timed(batch(best_dir, "best", "batch_best")),
        "batch_ensemble": _timed(
            batch(ens_dir, "ensemble", "batch_ensemble", ensemble={"size": ENSEMBLE_K})
        ),
    }
    assert reports["batch_best"]["ok"], reports["batch_best"]["by_state"]
    assert reports["batch_ensemble"]["ok"], reports["batch_ensemble"]["by_state"]

    files_per_s = {k: round(N_FILES / s, 3) for k, s in results.items()}
    ratios = {
        "batch_vs_serial": round(results["serial_best"] / results["batch_best"], 3),
        "ensemble_member_efficiency": round(
            results["batch_best"] * ENSEMBLE_K / results["batch_ensemble"], 3
        ),
    }
    report = {
        "schema": 1,
        "quick": QUICK,
        "config": {
            "n_files": N_FILES,
            "side": SIDE,
            "n_slices": N_SLICES,
            "ensemble_k": ENSEMBLE_K,
            "preset": PRESET,
        },
        "wall_s": {k: round(v, 3) for k, v in results.items()},
        "files_per_s": files_per_s,
        "ratios": ratios,
        "batch_percentiles": reports["batch_best"]["percentiles"],
    }
    BENCH_PATH.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(f"\nBENCH_zoo.json → {BENCH_PATH}")
    for name, wall in report["wall_s"].items():
        print(f"  {name:<16} {wall:>8.3f}s  ({files_per_s[name]:.3f} files/s)")
    for name, r in ratios.items():
        print(f"  {name:<28} {r:>6.3f}x")

    # The durability tax stays a bounded fraction of the segmentation work.
    assert ratios["batch_vs_serial"] >= 0.2, report["ratios"]
    # K fused members cost less than 2*K independent BEST runs.
    assert ratios["ensemble_member_efficiency"] >= 0.5, report["ratios"]
