"""Fig. 2: the interactive DINO-SAM workflow, traced stage by stage.

Regenerates the figure's content as a per-stage latency table for one
interactive segmentation, via the pipeline's built-in StageProfiler.
"""

from repro.core.pipeline import ZenesisPipeline
from repro.eval.experiments import DEFAULT_PROMPT


def test_fig2_workflow_stage_profile(setup, artifact_dir, benchmark):
    pipeline = ZenesisPipeline()
    sl = setup.dataset.slices[0]
    result = pipeline.segment_image(sl.image, DEFAULT_PROMPT)
    table = pipeline.profiler.format_table()
    print("\nFig. 2 — per-stage wall time of one interactive segmentation")
    print(table)
    (artifact_dir / "fig2_workflow.txt").write_text(table)

    stages = set(pipeline.profiler.records)
    # Every workflow stage from the figure must have executed.
    assert {
        "adapt.normalize",
        "adapt.denoise",
        "adapt.detector_branch",
        "adapt.segmenter_branch",
        "dino.ground",
        "sam.set_image",
        "sam.box_prompts",
        "gate.relevance",
    } <= stages
    assert result.detection.n_boxes > 0


def test_fig2_grounding_latency(benchmark, setup):
    """Wall time of the grounding stage alone (text -> boxes)."""
    pipeline = ZenesisPipeline()
    det_img, _ = pipeline.adapt(setup.dataset.slices[0].image)
    benchmark(pipeline.dino.ground, det_img, DEFAULT_PROMPT)
