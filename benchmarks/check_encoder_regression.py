"""Gate encoder throughput against the committed BENCH_encoder.json.

Usage::

    python benchmarks/check_encoder_regression.py BASELINE CURRENT [--max-drop 0.20]

Compares ``tokens_per_s`` per config present in *both* files and exits
non-zero when any config regresses by more than ``--max-drop`` (default
20%).  Configs only present on one side are reported but never fail the
check (the reduced CI matrix measures a subset of the committed full
matrix).

CI wires this into the ``bench`` job.  A *known and accepted* regression
(e.g. trading encoder throughput for accuracy) is merged by applying the
``perf-regression-ok`` label to the PR, which skips this check — then
refresh the committed baseline in the same PR::

    PYTHONPATH=src python -m pytest -q -s benchmarks/test_encoder_bench.py
    cp benchmarks/_artifacts/BENCH_encoder.json BENCH_encoder.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def compare(baseline: dict, current: dict, max_drop: float) -> list[str]:
    """Return failure lines; empty means the check passes."""
    failures = []
    base_results = baseline.get("results", {})
    cur_results = current.get("results", {})
    for name in sorted(base_results):
        if name not in cur_results:
            print(f"  {name:<22} not in current run (reduced matrix) — skipped")
            continue
        base = base_results[name]["tokens_per_s"]
        cur = cur_results[name]["tokens_per_s"]
        ratio = cur / base if base else float("inf")
        status = "ok" if ratio >= 1.0 - max_drop else "REGRESSED"
        print(f"  {name:<22} baseline {base:>9.1f}  current {cur:>9.1f}  ({ratio:.2f}x) {status}")
        if ratio < 1.0 - max_drop:
            failures.append(
                f"{name}: {cur:.1f} tok/s is {(1.0 - ratio) * 100:.1f}% below baseline "
                f"{base:.1f} (allowed drop {max_drop * 100:.0f}%)"
            )
    for name in sorted(set(cur_results) - set(base_results)):
        print(f"  {name:<22} new config (no baseline) — informational only")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_encoder.json")
    parser.add_argument("current", type=Path, help="freshly measured BENCH_encoder.json")
    parser.add_argument("--max-drop", type=float, default=0.20, help="allowed fractional drop")
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    print(f"encoder throughput vs {args.baseline} (max drop {args.max_drop * 100:.0f}%):")
    failures = compare(baseline, current, args.max_drop)
    if failures:
        print("\nFAIL: encoder throughput regression", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        print(
            "\nIf this trade-off is intentional, apply the 'perf-regression-ok' label "
            "and refresh the committed BENCH_encoder.json (see module docstring).",
            file=sys.stderr,
        )
        return 1
    print("encoder throughput OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
