"""Fig. 5: single-slice bundle — DINO boxes, overlay, extracted segment,
plus the Further Segment entry point.

Regenerates the figure's three panels as a PNG and exercises hierarchical
re-segmentation on the largest detected box.
"""

import numpy as np

from repro.core.hierarchy import further_segment
from repro.core.pipeline import ZenesisPipeline
from repro.eval.experiments import DEFAULT_PROMPT
from repro.platform.render import render_slice_bundle, save_figure


def test_fig5_slice_bundle(setup, artifact_dir, benchmark):
    pipeline = ZenesisPipeline()
    sl = setup.dataset.by_kind("amorphous")[2]
    _, seg_img = pipeline.adapt(sl.image)
    result = pipeline.segment_image(sl.image, DEFAULT_PROMPT)
    figure = render_slice_bundle(seg_img, result)
    out = artifact_dir / "fig5_single_slice.png"
    save_figure(out, figure)
    print(f"\nFig. 5 bundle written to {out}; boxes={result.detection.n_boxes}")
    assert result.detection.n_boxes >= 1
    assert out.stat().st_size > 5_000

    # Further Segment on the largest DINO box.
    areas = (result.detection.boxes[:, 2] - result.detection.boxes[:, 0]) * (
        result.detection.boxes[:, 3] - result.detection.boxes[:, 1]
    )
    biggest = result.detection.boxes[int(np.argmax(areas))]
    node = further_segment(pipeline, seg_img, biggest, DEFAULT_PROMPT)
    print(f"Further Segment: region {biggest.astype(int).tolist()} -> {int(node.mask.sum())} px")
    # The refined sub-mask stays inside the (padded) region box.
    ys, xs = np.nonzero(node.mask)
    if ys.size:
        assert xs.min() >= node.box[0] - 1 and xs.max() <= node.box[2] + 1


def test_fig5_further_segment_latency(benchmark, setup):
    pipeline = ZenesisPipeline()
    sl = setup.dataset.by_kind("amorphous")[2]
    _, seg_img = pipeline.adapt(sl.image)
    region = np.array([20.0, 140.0, 220.0, 250.0])
    benchmark.pedantic(
        further_segment, args=(pipeline, seg_img, region, DEFAULT_PROMPT), rounds=3, iterations=1
    )
