"""Serving soak: sustained mixed traffic + fault injection against the server.

16 concurrent clients hammer a live :class:`PlatformServer` for
``$REPRO_SOAK_SECONDS`` (default 30) with a mixed create / load / segment /
rectify / preview / drop workload while ``REPRO_FAULTS`` injects grounding
and SAM failures, then the server drains.  Pass criteria (the PR's
acceptance bar):

* no deadlock — every client thread exits within the join window;
* no unstructured failure — every response is JSON and never HTTP 500;
* bounded memory — live session count never exceeds the configured cap;
* clean drain — in-flight work hits zero after ``stop()``.

A JSON summary (status-code histogram, shed/degraded/eviction counts,
breaker transitions) is written to ``benchmarks/_artifacts/`` for
inspection.  The compressed tier-1 twin of this test lives in
``tests/test_platform_chaos.py``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request
from collections import Counter

import numpy as np
import pytest

from repro.platform.server import PlatformServer
from repro.resilience.events import events_snapshot
from repro.resilience.serving import serving_snapshot

SOAK_SECONDS = float(os.environ.get("REPRO_SOAK_SECONDS", "30"))
N_CLIENTS = int(os.environ.get("REPRO_SOAK_CLIENTS", "16"))
MAX_SESSIONS = 6
FAULT_SPEC = "grounding_error@p=0.2,sam_error@p=0.1"


def _post(url: str, payload: dict, timeout: float = 60.0) -> tuple[int, dict]:
    req = urllib.request.Request(
        url + "/api",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        resp = urllib.request.urlopen(req, timeout=timeout)
        return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


@pytest.fixture()
def faults(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", FAULT_SPEC)


def test_serving_soak(faults, artifact_dir):
    srv = PlatformServer(
        max_inflight=max(2, N_CLIENTS // 3),
        max_queue=N_CLIENTS,
        queue_timeout_s=0.25,
        max_sessions=MAX_SESSIONS,
        session_ttl_s=max(10.0, SOAK_SECONDS),
        request_deadline_s=45.0,
        drain_timeout_s=30.0,
    ).start()
    stop_at = time.monotonic() + SOAK_SECONDS
    codes: Counter[int] = Counter()
    actions: Counter[str] = Counter()
    failures: list[str] = []
    transport_blips: list[str] = []
    lock = threading.Lock()
    img = np.random.default_rng(0).random((48, 48)).tolist()

    def record(action: str, code: int, body: dict) -> None:
        with lock:
            codes[code] += 1
            actions[action] += 1
            if code == 500:
                failures.append(f"{action}: {json.dumps(body)[:300]}")

    def client(seed: int) -> None:
        rng = np.random.default_rng(seed)
        sid: str | None = None
        while time.monotonic() < stop_at:
            try:
                if sid is None:
                    code, body = _post(srv.url, {"action": "create_session"})
                    record("create_session", code, body)
                    if code == 200:
                        sid = body["session_id"]
                        code, body = _post(
                            srv.url, {"action": "load_array", "session_id": sid, "array": img}
                        )
                        record("load_array", code, body)
                    continue
                roll = float(rng.random())
                if roll < 0.45:
                    code, body = _post(
                        srv.url,
                        {"action": "segment", "session_id": sid, "prompt": "catalyst particles"},
                    )
                    record("segment", code, body)
                elif roll < 0.60:
                    code, body = _post(
                        srv.url, {"action": "rectify", "session_id": sid, "x": 24.0, "y": 24.0}
                    )
                    record("rectify", code, body)
                elif roll < 0.75:
                    code, body = _post(srv.url, {"action": "preview", "session_id": sid})
                    record("preview", code, body)
                elif roll < 0.85:
                    # Hostile upload: must be a structured error, never a 500.
                    code, body = _post(
                        srv.url,
                        {"action": "load_array", "session_id": sid, "data_base64": "%%junk%%"},
                    )
                    record("bad_upload", code, body)
                else:
                    code, body = _post(srv.url, {"action": "drop_session", "session_id": sid})
                    record("drop_session", code, body)
                    sid = None
                # An evicted session id is a contract, not a crash: start over.
                if code == 200 and not body.get("ok", True):
                    if body.get("error") == "unknown_session":
                        sid = None
            except (ConnectionError, TimeoutError, urllib.error.URLError) as exc:
                # A dropped/reset TCP connection under burst load is a client
                # retry, not a server-logic failure — tolerated in a small,
                # counted budget (asserted below); the session restarts.
                with lock:
                    transport_blips.append(repr(exc))
                sid = None
            except Exception as exc:  # noqa: BLE001 - recorded and asserted
                with lock:
                    failures.append(f"client: {exc!r}")

    threads = [threading.Thread(target=client, args=(i,), daemon=True) for i in range(N_CLIENTS)]
    t0 = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=SOAK_SECONDS + 120)
    alive = [t.name for t in threads if t.is_alive()]
    live_sessions = len(srv.api.store)
    srv.stop()
    wall_s = time.monotonic() - t0

    events = events_snapshot()
    summary = {
        "soak_seconds": SOAK_SECONDS,
        "clients": N_CLIENTS,
        "wall_s": round(wall_s, 2),
        "requests": sum(codes.values()),
        "status_codes": {str(k): v for k, v in sorted(codes.items())},
        "actions": dict(sorted(actions.items())),
        "live_sessions_at_drain": live_sessions,
        "session_cap": MAX_SESSIONS,
        "inflight_after_stop": srv.lifecycle.inflight,
        "serving": serving_snapshot(
            gate=srv.gate, breakers=srv.api.breakers, store=srv.api.store
        ),
        "degraded_responses": events.get("resilience.server.degraded", 0),
        "transport_blips": len(transport_blips),
        "failures": failures[:20],
    }
    out = artifact_dir / "serving_soak.json"
    out.write_text(json.dumps(summary, indent=2, default=str))
    print(f"\nserving soak: {summary['requests']} requests in {wall_s:.1f}s -> {out}")

    assert not alive, f"client threads deadlocked: {alive}"
    assert failures == [], f"unstructured failures: {failures[:5]}"
    assert sum(codes.values()) > 0, "no traffic completed"
    assert len(transport_blips) <= max(2, sum(codes.values()) // 50), (
        f"excessive transport errors ({len(transport_blips)}): {transport_blips[:5]}"
    )
    assert set(codes) <= {200, 429, 503, 504}, f"unexpected status codes: {dict(codes)}"
    assert codes[200] > 0, "nothing succeeded under load"
    assert live_sessions <= MAX_SESSIONS
    assert srv.lifecycle.inflight == 0, "drain left requests in flight"
    # The fault plan fired and the degraded path answered instead of erroring.
    assert events.get("resilience.server.degraded", 0) >= 1
