"""Gate temporal-propagation speedups against the committed BENCH_temporal.json.

Usage::

    python benchmarks/check_temporal_regression.py BASELINE CURRENT [--max-drop 0.20]

Compares the ``speedups`` section — per scene, propagate's wall-clock
speedup and grounding-call ratio over the meanbox run *measured in the
same process* — for every key present in *both* files, and exits non-zero
when any ratio drops by more than ``--max-drop`` (default 20%) relative
to the committed baseline.

Same-run ratios are the only numbers comparable across machines: the
committed baseline is measured on a dev box while CI runs on shared
runners of unpredictable speed (and a reduced ``REPRO_BENCH_QUICK`` scene
list), so absolute wall seconds would fail spuriously on any runner
slower than the baseline host.  Dividing by the same run's meanbox wall
clock cancels the hardware term; what is left is the propagation-engine
advantage this gate actually protects.  Absolute walls are still printed,
informationally only.

Speedup keys only present on one side are reported but never fail the
check (the reduced CI scene list measures a subset of the committed full
list).

CI wires this into the ``bench`` job.  A *known and accepted* regression
(e.g. trading propagation speed for tracking quality) is merged by
applying the ``perf-regression-ok`` label to the PR, which skips this
check — then refresh the committed baseline in the same PR::

    PYTHONPATH=src python -m pytest -q -s benchmarks/test_temporal_bench.py
    cp benchmarks/_artifacts/BENCH_temporal.json BENCH_temporal.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def compare(baseline: dict, current: dict, max_drop: float) -> list[str]:
    """Return failure lines; empty means the check passes."""
    failures = []
    base_speedups = baseline.get("speedups", {})
    cur_speedups = current.get("speedups", {})
    for name in sorted(base_speedups):
        if name not in cur_speedups:
            print(f"  {name:<36} not in current run (reduced scene list) — skipped")
            continue
        base = base_speedups[name]
        cur = cur_speedups[name]
        ratio = cur / base if base else float("inf")
        status = "ok" if ratio >= 1.0 - max_drop else "REGRESSED"
        print(f"  {name:<36} baseline {base:>6.2f}x  current {cur:>6.2f}x  ({ratio:.2f}) {status}")
        if ratio < 1.0 - max_drop:
            failures.append(
                f"{name}: ratio {cur:.2f}x is {(1.0 - ratio) * 100:.1f}% below baseline "
                f"{base:.2f}x (allowed drop {max_drop * 100:.0f}%)"
            )
    for name in sorted(set(cur_speedups) - set(base_speedups)):
        print(f"  {name:<36} new speedup key (no baseline) — informational only")
    # Absolute walls are machine-dependent; print for the log, never gate.
    for label, report in (("baseline", baseline), ("current", current)):
        for scene, modes in sorted(report.get("results", {}).items()):
            for mode, cfg in sorted(modes.items()):
                print(
                    f"    [{label}] {scene:<8} {mode:<10} wall p50 "
                    f"{cfg['wall_s_p50'] * 1e3:>8.1f} ms  groundings "
                    f"{cfg['groundings']:>3} (informational)"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_temporal.json")
    parser.add_argument("current", type=Path, help="freshly measured BENCH_temporal.json")
    parser.add_argument("--max-drop", type=float, default=0.20, help="allowed fractional drop")
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    print(f"temporal speedups vs {args.baseline} (max drop {args.max_drop * 100:.0f}%):")
    failures = compare(baseline, current, args.max_drop)
    if failures:
        print("\nFAIL: temporal speedup regression", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        print(
            "\nIf this trade-off is intentional, apply the 'perf-regression-ok' label "
            "and refresh the committed BENCH_temporal.json (see module docstring).",
            file=sys.stderr,
        )
        return 1
    print("temporal speedups OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
