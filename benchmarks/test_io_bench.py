"""Streaming ingestion throughput benchmark → ``BENCH_io.json``.

Measures tiles/s for the out-of-core ingestion path across front ends and
policies, against an eager full-materialization baseline *measured in the
same run*:

* ``eager_npy`` — ``np.load`` the whole volume, then walk slices (the
  pre-streaming behaviour; same-run reference for the ratios).
* ``stream_npy`` / ``stream_tiff`` — ``TileStream`` + ``Prefetcher`` under
  a budget a small fraction of the volume.
* ``stream_npy_checksum`` — the same with per-tile sha256 verification
  against a sidecar (the integrity tax, measured not guessed).

Also reports the structural residency ceiling (prefetcher high-water mark
÷ volume bytes) and the process peak-RSS delta, both informational except
for the hard assertion that the high-water mark respects the budget.

Acceptance (asserted here, gated in CI against the committed
``BENCH_io.json`` by ``benchmarks/check_io_regression.py``): streaming
throughput ≥ 0.25× eager on both front ends (the budget-bounded path may
pay decode + thread-hop overhead but must stay the same order of
magnitude), and resident tile bytes never exceed the budget.

``REPRO_BENCH_QUICK=1`` halves the slice count; ratios are same-run, so
they stay comparable with the committed baseline.
"""

from __future__ import annotations

import json
import os
import resource
import time

import numpy as np

from repro.io import IngestPolicy, Prefetcher, TileStream, open_lazy_volume, write_sidecar
from repro.io.tiff import write_tiff

from .conftest import ARTIFACT_DIR

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"
N_SLICES = 16 if QUICK else 32
SIDE = 512
REPEATS = 3
BENCH_PATH = ARTIFACT_DIR / "BENCH_io.json"


def _volume() -> np.ndarray:
    rng = np.random.default_rng(7)
    return (rng.random((N_SLICES, SIDE, SIDE)) * 255).astype(np.uint8)


def _timed(fn) -> float:
    """Median wall seconds over REPEATS runs."""
    laps = []
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn()
        laps.append(time.perf_counter() - t0)
    return float(np.median(laps))


def _consume(tile: np.ndarray) -> int:
    return int(tile[0, 0])  # touch the tile so the read isn't elided


def test_io_bench(tmp_path):
    vol = _volume()
    npy_path = tmp_path / "v.npy"
    np.save(npy_path, vol, allow_pickle=False)
    tiff_path = tmp_path / "v.tif"
    write_tiff(tiff_path, vol, compress=False)
    budget = 4 * vol[0].nbytes  # 4 tiles resident of N_SLICES

    def eager():
        arr = np.load(npy_path, allow_pickle=False)
        for z in range(arr.shape[0]):
            _consume(arr[z])

    residency: dict[str, float] = {}

    def stream(path, key, policy):
        def run():
            with open_lazy_volume(path) as lazy:
                fetcher = Prefetcher(TileStream(lazy, policy))
                for _z, tile, _reason in fetcher:
                    _consume(tile)
                residency[key] = fetcher.max_resident_bytes
        return run

    rss_before_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    results = {
        "eager_npy": _timed(eager),
        "stream_npy": _timed(stream(npy_path, "stream_npy", IngestPolicy(memory_budget_bytes=budget))),
        "stream_tiff": _timed(stream(tiff_path, "stream_tiff", IngestPolicy(memory_budget_bytes=budget))),
    }
    with open_lazy_volume(npy_path) as lazy:
        write_sidecar(lazy)
    results["stream_npy_checksum"] = _timed(
        stream(npy_path, "stream_npy_checksum", IngestPolicy(memory_budget_bytes=budget))
    )
    rss_after_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    tiles_per_s = {k: round(N_SLICES / s, 1) for k, s in results.items()}
    ratios = {
        f"{k}_vs_eager": round(tiles_per_s[k] / tiles_per_s["eager_npy"], 3)
        for k in tiles_per_s
        if k != "eager_npy"
    }
    report = {
        "schema": 1,
        "quick": QUICK,
        "config": {
            "n_slices": N_SLICES,
            "side": SIDE,
            "dtype": "uint8",
            "volume_mb": round(vol.nbytes / 2**20, 1),
            "budget_tiles": 4,
            "repeats": REPEATS,
        },
        "tiles_per_s": tiles_per_s,
        "ratios": ratios,
        "residency": {
            "budget_bytes": budget,
            "max_resident_bytes": {k: int(v) for k, v in residency.items()},
            "resident_fraction_of_volume": {
                k: round(v / vol.nbytes, 4) for k, v in residency.items()
            },
        },
        "peak_rss_delta_mb": round((rss_after_kb - rss_before_kb) / 1024, 1),
    }
    BENCH_PATH.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(f"\nBENCH_io.json → {BENCH_PATH}")
    for name, tps in tiles_per_s.items():
        print(f"  {name:<22} {tps:>8.1f} tiles/s")
    for name, r in ratios.items():
        print(f"  {name:<34} {r:>6.3f}x")
    print(f"  peak RSS delta {report['peak_rss_delta_mb']} MB over {report['config']['volume_mb']} MB volume")

    # Structural ceiling: resident decoded tile bytes never exceed the budget.
    for key, high_water in residency.items():
        assert 0 < high_water <= budget, (key, high_water, budget)
    # Streaming stays the same order of magnitude as eager on both front ends.
    assert ratios["stream_npy_vs_eager"] >= 0.25, report["ratios"]
    assert ratios["stream_tiff_vs_eager"] >= 0.25, report["ratios"]
