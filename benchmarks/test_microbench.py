"""Component micro-benchmarks (pytest-benchmark proper).

Hot-path costs the profiling guide says to measure before optimising:
codecs, adaptation kernels, feature extraction, attention, the analytic
head, and the synthetic generator itself.
"""

import numpy as np
import pytest

from repro.adapt.contrast import clahe
from repro.adapt.denoise import denoise_bilateral, denoise_nlm
from repro.data.synthesis.fibsem import synthesize_fibsem_volume
from repro.io.png import encode_png
from repro.io.tiff import write_tiff
from repro.models.features import PatchFeatureExtractor
from repro.models.nn import MultiHeadAttention, ParamFactory
from repro.models.registry import build_sam
from repro.models.sam.model import SamPredictor


@pytest.fixture(scope="module")
def image_256(setup):
    from repro.adapt.bitdepth import robust_normalize

    return robust_normalize(setup.dataset.slices[0].image.pixels)


class TestCodecs:
    def test_png_encode_256(self, benchmark, image_256):
        u16 = (image_256 * 65535).astype(np.uint16)
        benchmark(encode_png, u16)

    def test_tiff_write_volume(self, benchmark, setup, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("tiffbench")
        voxels = setup.dataset.crystalline.volume.voxels
        benchmark(write_tiff, tmp / "v.tif", voxels)


class TestAdaptKernels:
    def test_clahe_256(self, benchmark, image_256):
        benchmark(clahe, image_256)

    def test_bilateral_256(self, benchmark, image_256):
        benchmark(denoise_bilateral, image_256)

    def test_nlm_128(self, benchmark, image_256):
        benchmark.pedantic(denoise_nlm, args=(image_256[:128, :128],), rounds=2, iterations=1)


class TestModelKernels:
    def test_patch_features_256(self, benchmark, image_256):
        extractor = PatchFeatureExtractor(stride=4)
        benchmark(extractor, image_256)

    def test_attention_1024_tokens(self, benchmark):
        mha = MultiHeadAttention(ParamFactory(0), "bench", dim=64, n_heads=4)
        x = np.random.default_rng(0).normal(size=(1024, 64)).astype(np.float32)
        benchmark(mha, x)

    def test_sam_set_image_256(self, benchmark, image_256):
        predictor = SamPredictor(build_sam())
        benchmark.pedantic(predictor.set_image, args=(image_256,), rounds=3, iterations=1)

    def test_analytic_box_prompt(self, benchmark, image_256):
        predictor = SamPredictor(build_sam())
        predictor.set_image(image_256)
        ctx = predictor.analytic_context
        box = np.array([40.0, 140.0, 200.0, 240.0])
        benchmark(predictor.sam.analytic.masks_from_box, ctx, box)


class TestGenerator:
    def test_synthesize_volume_256x10(self, benchmark):
        benchmark.pedantic(
            synthesize_fibsem_volume,
            kwargs={"shape": (256, 256), "n_slices": 10, "seed": 3},
            rounds=2,
            iterations=1,
        )
