"""Acceptance benchmarks for the content-addressed inference cache.

Three claims, each asserted (not just reported):

(a) re-running ``segment_image`` on the same slice + prompt is >= 3x faster
    than the cold run — every heavy namespace (adaptation, grounding, SAM
    encoding, batched decode) hits;
(b) Mode C evaluation over the 20-slice benchmark is faster with the cache
    on (warmed, as across repeated CLI invocations) than with it off;
(c) batched box-prompt decoding produces masks identical to the serial
    per-box path, with the mask decoder running ONCE per image.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cache import CacheConfig, InferenceCache, configure_cache, reset_cache
from repro.core.pipeline import ZenesisConfig, ZenesisPipeline
from repro.data.datasets import make_benchmark_dataset
from repro.eval.evaluator import Evaluator
from repro.eval.experiments import DEFAULT_PROMPT, ExperimentSetup, build_methods

PROMPT = DEFAULT_PROMPT


def _fresh_cache(**kw) -> InferenceCache:
    """A roomy private memory tier so the bench never hits eviction noise."""
    return configure_cache(CacheConfig(enabled=True, memory_bytes=1 << 30, disk_enabled=False, **kw))


def test_repeat_segment_at_least_3x_faster(crystalline_sample=None):
    reset_cache()
    _fresh_cache()
    pipe = ZenesisPipeline()
    img = make_benchmark_dataset(shape=(192, 192), n_slices=1).slices[0].image.pixels

    t0 = time.perf_counter()
    cold = pipe.segment_image(img, PROMPT)
    t_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = pipe.segment_image(img, PROMPT)
    t_warm = time.perf_counter() - t0

    speedup = t_cold / max(t_warm, 1e-9)
    print(f"\ncold {t_cold * 1e3:.1f} ms, warm {t_warm * 1e3:.1f} ms -> {speedup:.1f}x")
    assert np.array_equal(cold.mask, warm.mask)
    assert speedup >= 3.0, f"cache speedup {speedup:.2f}x < 3x"
    reset_cache()


def test_mode_c_eval_faster_with_cache():
    """Warmed cache-on Mode C pass beats the cache-off pass on 20 slices."""
    dataset = make_benchmark_dataset(shape=(256, 256), n_slices=10)  # 2 kinds x 10

    def run(use_cache: bool) -> float:
        setup = ExperimentSetup(dataset=dataset, zenesis_config=ZenesisConfig(use_cache=use_cache))
        evaluator = Evaluator(build_methods(setup))
        t0 = time.perf_counter()
        evaluator.evaluate(dataset.slices, method_names=["zenesis"])
        return time.perf_counter() - t0

    reset_cache()
    t_off = run(use_cache=False)
    _fresh_cache()
    run(use_cache=True)  # warm: fills the cache, as a prior CLI run would
    t_on = run(use_cache=True)
    print(f"\nMode C 20 slices: cache off {t_off:.2f}s, cache on (warm) {t_on:.2f}s")
    assert t_on < t_off, f"cache-on eval ({t_on:.2f}s) not faster than cache-off ({t_off:.2f}s)"
    reset_cache()


def test_batched_decode_identical_and_single_pass():
    reset_cache()
    _fresh_cache()
    pipe = ZenesisPipeline()
    img = make_benchmark_dataset(shape=(192, 192), n_slices=1).slices[0].image.pixels

    calls: list[int] = []
    decoder_cls = type(pipe.sam.mask_decoder)
    orig = decoder_cls.decode_batch

    def counting(self, *args, **kwargs):
        out = orig(self, *args, **kwargs)
        calls.append(len(out))
        return out

    decoder_cls.decode_batch = counting
    try:
        result = pipe.segment_image(img, PROMPT)
    finally:
        decoder_cls.decode_batch = orig
    k = result.n_boxes
    assert k >= 2, "benchmark image should ground multiple boxes"
    assert calls == [k], f"expected one decoder pass for {k} boxes, saw {calls}"

    # Identical to the serial per-box path, bit for bit.
    serial_pipe = ZenesisPipeline(ZenesisConfig(use_cache=False))
    serial_pipe.predictor.set_image(pipe.predictor._image)
    boxes = result.detection.boxes
    batched = serial_pipe.predictor.predict_boxes(boxes)
    for box, (bm, bs, bl) in zip(boxes, batched):
        sm, ss, sl = serial_pipe.predictor.predict(box=box, multimask_output=True)
        assert np.array_equal(sm, bm)
        assert np.array_equal(ss, bs)
        assert np.array_equal(sl, bl)
    reset_cache()
