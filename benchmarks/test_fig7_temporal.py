"""Fig. 7: heuristic DINO-box refinement for volumes.

The paper's mechanism: sliding-window mean width/height statistics replace
outlier boxes.  The experiment injects synthetic grounding failures (giant
boxes, empty slices) into the real per-slice detections of a volume and
measures segmentation IoU with the heuristic off vs on.
"""

import numpy as np

from repro.core.pipeline import ZenesisPipeline
from repro.core.temporal import TemporalConfig, refine_box_sequences
from repro.eval.experiments import DEFAULT_PROMPT
from repro.metrics.overlap import iou


def _corrupt(per_slice_boxes, h, w, rng):
    """Inject Fig.-7-style failures: giant boxes + a dropped slice."""
    corrupted = [b.copy() for b in per_slice_boxes]
    giant = np.array([[0.0, 0.0, float(w), float(h)]])
    for z in (3, 6):
        corrupted[z] = np.concatenate([corrupted[z], giant]) if len(corrupted[z]) else giant
    corrupted[8] = np.zeros((0, 4))  # grounding failure: empty slice
    return corrupted


def test_fig7_temporal_refinement(setup, artifact_dir, benchmark):
    pipeline = ZenesisPipeline()
    sample = setup.dataset.crystalline
    voxels = sample.volume.voxels
    n = voxels.shape[0]
    h, w = voxels.shape[1:]

    adapted, detections = [], []
    for z in range(n):
        det_img, seg_img = pipeline.adapt(voxels[z])
        adapted.append(seg_img)
        detections.append(pipeline.ground(det_img, DEFAULT_PROMPT))

    rng = np.random.default_rng(0)
    corrupted = _corrupt([d.boxes for d in detections], h, w, rng)

    def run(per_slice_boxes):
        ious = []
        for z in range(n):
            mask, _, _ = pipeline.segment_with_boxes(adapted[z], detections[z], per_slice_boxes[z])
            ious.append(iou(mask, sample.catalyst_mask[z]))
        return ious

    raw_ious = run(corrupted)
    refined_boxes, report = refine_box_sequences(corrupted, TemporalConfig(), image_shape=(h, w))
    refined_ious = run(refined_boxes)

    lines = [
        f"slice {z}: corrupted {a:.3f} -> refined {b:.3f}"
        for z, (a, b) in enumerate(zip(raw_ious, refined_ious))
    ]
    lines.append(f"replacements: {report.n_replaced}")
    lines.append(f"mean corrupted {np.mean(raw_ious):.3f} -> refined {np.mean(refined_ious):.3f}")
    text = "\n".join(lines)
    print("\nFig. 7 — temporal heuristic under injected grounding failures")
    print(text)
    (artifact_dir / "fig7_temporal.txt").write_text(text)

    assert report.n_replaced >= 3, "giant boxes and the empty slice must be caught"
    assert np.mean(refined_ious) > np.mean(raw_ious), "refinement must recover quality"
    # The injected empty slice must get boxes back.
    assert len(refined_boxes[8]) >= 1


def test_fig7_refinement_latency(benchmark, rng_boxes=None):
    """Wall time of the heuristic itself on a 100-slice synthetic sequence."""
    rng = np.random.default_rng(1)
    seq = []
    for _ in range(100):
        n = rng.integers(1, 8)
        x0 = rng.uniform(0, 200, n)
        y0 = rng.uniform(0, 200, n)
        seq.append(np.stack([x0, y0, x0 + rng.uniform(10, 40, n), y0 + rng.uniform(10, 40, n)], axis=1))
    benchmark(refine_box_sequences, seq)
