"""Table 3: Zenesis — average performance metrics (the headline result).

Paper:
    Crystalline  accuracy 0.987±0.005  IoU 0.857±0.029  Dice 0.923±0.017
    Amorphous    accuracy 0.947±0.005  IoU 0.858±0.015  Dice 0.923±0.009

Reproduced shape: Zenesis dominates both baselines on both sample kinds by
a wide margin, with accuracy ≥ 0.97 and amorphous IoU ≈ 0.88 (crystalline
lands around 0.73 on the synthetic substrate — the blur apron on thin
needles bounds it; see EXPERIMENTS.md).
"""

from repro.core.pipeline import ZenesisPipeline
from repro.eval.experiments import DEFAULT_PROMPT, PAPER_REFERENCE
from repro.eval.report import comparison_table, paper_table
from .conftest import check_paper_shape


def test_table3_zenesis_rows(table_evaluations, artifact_dir, benchmark):
    ev = table_evaluations["zenesis"]
    print()
    print(paper_table(ev, title="Table 3 — Zenesis: Average Performance Metrics"))
    for kind in ("crystalline", "amorphous"):
        for line in check_paper_shape(ev.summary(kind), PAPER_REFERENCE["zenesis"][kind], note=f"({kind})"):
            print(line)
    print()
    print(comparison_table(table_evaluations, metric="iou"))
    (artifact_dir / "table3_zenesis.txt").write_text(paper_table(ev))
    (artifact_dir / "comparison_iou.txt").write_text(comparison_table(table_evaluations, metric="iou"))

    cry = ev.summary("crystalline")
    amo = ev.summary("amorphous")
    assert cry["accuracy"].mean > 0.95 and amo["accuracy"].mean > 0.95
    assert amo["iou"].mean > 0.8, "amorphous IoU must reach the paper's ~0.86 band"
    assert cry["iou"].mean > 0.6, "crystalline IoU must be rescued far above the 0.16 trap"
    # Winner structure: Zenesis beats both baselines everywhere.
    for kind in ("crystalline", "amorphous"):
        zen = ev.summary(kind)["iou"].mean
        for other in ("otsu", "sam_only"):
            assert zen > table_evaluations[other].summary(kind)["iou"].mean + 0.2


def test_table3_zenesis_latency(benchmark, setup):
    """Wall time of one full Zenesis inference (adapt + ground + segment)."""
    pipeline = ZenesisPipeline()
    sl = setup.dataset.slices[0]
    benchmark.pedantic(
        pipeline.segment_image, args=(sl.image, DEFAULT_PROMPT), rounds=3, iterations=1
    )
