"""Shared benchmark fixtures: the full paper-scale dataset and evaluations.

The three table experiments share one evaluation pass (as in the paper,
where all methods run over the same 20 slices); figures reuse the same
dataset.  Artifacts (figures, dashboards, reports) are written under
``benchmarks/_artifacts`` for inspection.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval.evaluator import Evaluator
from repro.eval.experiments import ExperimentSetup, build_methods

ARTIFACT_DIR = Path(__file__).parent / "_artifacts"


def pytest_configure(config):
    ARTIFACT_DIR.mkdir(exist_ok=True)


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    ARTIFACT_DIR.mkdir(exist_ok=True)
    return ARTIFACT_DIR


@pytest.fixture(scope="session")
def setup() -> ExperimentSetup:
    """The paper-scale benchmark: 2 volumes × 10 slices at 256²."""
    return ExperimentSetup.default()


@pytest.fixture(scope="session")
def table_evaluations(setup):
    """One shared evaluation pass for Tables 1-3."""
    evaluator = Evaluator(build_methods(setup))
    return evaluator.evaluate(setup.dataset.slices)


def check_paper_shape(measured, reference, *, note: str = "") -> list[str]:
    """Compare measured MetricSummary dict vs paper (mean, std) tuples.

    Returns human-readable lines: 'metric: paper X vs measured Y'.  The
    caller asserts orderings; this only formats.
    """
    lines = []
    for metric, (paper_mean, paper_std) in reference.items():
        m = measured[metric]
        lines.append(
            f"  {metric:<10} paper {paper_mean:.3f}±{paper_std if paper_std == paper_std else float('nan'):.3f}"
            f"  measured {m.mean:.3f}±{m.std:.3f} {note}"
        )
    return lines
