"""Cluster chaos soak + replica scaling → ``BENCH_cluster.json``.

Two experiments against a real :class:`~repro.cluster.ClusterCoordinator`
(replica subprocesses, shared jobs directory, reverse-proxy router):

**Chaos soak** — ``$REPRO_CLUSTER_SOAK_CLIENTS`` (default 16) concurrent
clients run a mixed session + background-job workload through the router
for ``$REPRO_CLUSTER_SOAK_SECONDS`` (default 18) while a killer thread
SIGKILLs a replica every ``$REPRO_CLUSTER_KILL_EVERY`` (default 4) seconds.
Pass criteria (the PR's acceptance bar):

* every client-visible response is structured: status in
  {200, 202, 429, 503, 504} — never a raw 500 and never a transport error
  that survives the client's bounded retry;
* **zero lost jobs**: every job that reached the journal ends in exactly
  one terminal state (the reclaim/ownership machinery never double-writes
  and never strands a lease);
* the cluster heals: every replica slot is healthy again after the storm.

**Scaling** — the same paced ``synthesize`` workload (``duration_s`` holds
a worker busy without burning CPU, so throughput is *capacity*-bound and
measurable on a single-core runner) is drained through 1 replica and then
4; the jobs/s ratio must be ≥ 2.5×.  The report lands in
``benchmarks/_artifacts/BENCH_cluster.json`` (commit it to the repo root
to refresh the baseline, as with ``BENCH_encoder.json``).
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request
from collections import Counter
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.cluster import ClusterCoordinator
from repro.jobs import CANCELLED, FAILED, SUCCEEDED, JobStore

SOAK_SECONDS = float(os.environ.get("REPRO_CLUSTER_SOAK_SECONDS", "18"))
N_CLIENTS = int(os.environ.get("REPRO_CLUSTER_SOAK_CLIENTS", "16"))
N_REPLICAS = int(os.environ.get("REPRO_CLUSTER_SOAK_REPLICAS", "3"))
KILL_EVERY_S = float(os.environ.get("REPRO_CLUSTER_KILL_EVERY", "4"))
BENCH_BACKLOG = int(os.environ.get("REPRO_CLUSTER_BENCH_BACKLOG", "36"))
BENCH_JOB_S = 0.4  # paced length of one bench job (worker occupancy)

TERMINAL = (SUCCEEDED, FAILED, CANCELLED)
OK_CODES = {200, 202, 429, 503, 504}


def _env() -> dict:
    src = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
    env.pop("REPRO_FAULTS", None)  # the chaos here is real SIGKILLs
    return env


def _post_once(url: str, payload: dict, timeout: float = 60.0) -> tuple[int, dict]:
    req = urllib.request.Request(
        url + "/api",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read() or b"{}")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


def _post(url: str, payload: dict, *, retries: int = 3) -> tuple[int, dict]:
    """POST with a bounded transport-level retry.

    The router owns *replica* failures; this loop only covers the client →
    router hop (e.g. a connect raced with nothing — the router never
    restarts mid-soak).  A transport error that survives ``retries``
    attempts surfaces as code 0, which the soak counts as a hard failure.
    """
    last = ""
    for attempt in range(1 + retries):
        try:
            return _post_once(url, payload)
        except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
            last = repr(exc)
            time.sleep(0.1 * (attempt + 1))
    return 0, {"transport_error": last}


def _all_terminal(store: JobStore) -> tuple[bool, dict]:
    store.refresh()
    states = Counter(rec.state for rec in store.list_jobs())
    done = bool(states) and all(state in TERMINAL for state in states)
    return done, dict(states)


def _wait_jobs_terminal(jobs_dir: Path, timeout_s: float) -> dict:
    store = JobStore(jobs_dir)
    deadline = time.monotonic() + timeout_s
    states: dict = {}
    while time.monotonic() < deadline:
        done, states = _all_terminal(store)
        if done:
            return states
        time.sleep(0.25)
    return states


def test_cluster_chaos_soak(tmp_path, artifact_dir):
    jobs_dir = tmp_path / "jobs"
    coord = ClusterCoordinator(
        N_REPLICAS,
        jobs_dir=str(jobs_dir),
        replica_args={
            "job_workers": 1,
            "job_lease_ttl": 2.0,
            "drain_timeout": 2.0,
            "max_inflight": max(8, N_CLIENTS),
        },
        log_dir=tmp_path / "cluster-logs",
        probe_interval_s=0.1,
        restart_backoff_s=0.2,
        boot_timeout_s=60.0,
        env=_env(),
    )
    coord.start()
    assert coord.wait_healthy(N_REPLICAS, timeout_s=60), coord.status()

    stop_at = time.monotonic() + SOAK_SECONDS
    codes: Counter[int] = Counter()
    actions: Counter[str] = Counter()
    failures: list[str] = []
    kills: list[int] = []
    lock = threading.Lock()

    def record(action: str, code: int, body: dict) -> None:
        with lock:
            codes[code] += 1
            actions[action] += 1
            if code not in OK_CODES:
                failures.append(f"{action} -> {code}: {json.dumps(body)[:200]}")

    def killer() -> None:
        rng = np.random.default_rng(1337)
        while time.monotonic() < stop_at:
            time.sleep(KILL_EVERY_S)
            if time.monotonic() >= stop_at:
                return
            running = [h.index for h in coord.replicas if h.running]
            if len(running) < 2:
                continue  # leave at least one replica standing
            victim = int(rng.choice(running))
            coord.kill_replica(victim)
            with lock:
                kills.append(victim)

    def client(seed: int) -> None:
        rng = np.random.default_rng(seed)
        sid: str | None = None
        pending: str | None = None  # at most one outstanding job per client,
        # so total submissions track drain capacity instead of flooding the
        # queue faster than the storm-thinned runners can empty it
        while time.monotonic() < stop_at:
            roll = float(rng.random())
            if roll < 0.55:
                if sid is None:
                    code, body = _post(coord.url, {"action": "create_session"})
                    record("create_session", code, body)
                    if code == 200 and body.get("ok", True):
                        sid = body.get("session_id")
                else:
                    code, body = _post(
                        coord.url, {"action": "preview", "session_id": sid}
                    )
                    record("preview", code, body)
                    if body.get("error") == "unknown_session":
                        sid = None  # evicted by a failover: start over
            elif roll < 0.90:
                if pending is not None:
                    code, body = _post(
                        coord.url, {"action": "job_status", "job_id": pending}
                    )
                    record("job_status", code, body)
                    if (body.get("job") or {}).get("state") in TERMINAL:
                        pending = None
                else:
                    code, body = _post(
                        coord.url,
                        {
                            "action": "job_submit",
                            "kind": "synthesize",
                            "params": {
                                "size": 32,
                                "n_slices": 1,
                                "seed": int(rng.integers(0, 2**31)),
                                "duration_s": 0.3,
                            },
                        },
                    )
                    record("job_submit", code, body)
                    if code == 202:
                        pending = body.get("job_id")
            elif sid is not None:
                code, body = _post(
                    coord.url, {"action": "drop_session", "session_id": sid}
                )
                record("drop_session", code, body)
                sid = None
            time.sleep(float(rng.uniform(0.01, 0.05)))

    threads = [
        threading.Thread(target=client, args=(seed,), name=f"soak-{seed}")
        for seed in range(N_CLIENTS)
    ]
    reaper = threading.Thread(target=killer, name="soak-killer")
    for t in threads:
        t.start()
    reaper.start()
    for t in threads:
        t.join(timeout=SOAK_SECONDS + 120)
        assert not t.is_alive(), "client thread deadlocked"
    reaper.join(timeout=KILL_EVERY_S + 10)

    # The storm is over: the cluster must heal and drain every journaled
    # job to a terminal state via lease reclaim on the survivors.
    assert coord.wait_healthy(N_REPLICAS, timeout_s=60), coord.status()
    states = _wait_jobs_terminal(jobs_dir, timeout_s=90.0)

    status = coord.status()
    coord.stop()

    # Exactly-once: one terminal state event per job, ever.
    store = JobStore(jobs_dir)
    job_ids = [rec.job_id for rec in store.list_jobs()]
    multi_terminal = []
    for job_id in job_ids:
        events, _, _ = store.events_after(job_id)
        terminal = [e for e in events if e.get("state") in TERMINAL]
        if len(terminal) != 1:
            multi_terminal.append((job_id, terminal))

    elapsed = SOAK_SECONDS
    summary = {
        "schema": 1,
        "soak_seconds": SOAK_SECONDS,
        "clients": N_CLIENTS,
        "replicas": N_REPLICAS,
        "kills": kills,
        "codes": {str(k): v for k, v in sorted(codes.items())},
        "actions": dict(actions),
        "jobs_journaled": len(job_ids),
        "job_states": states,
        "requests_per_s": round(sum(codes.values()) / max(elapsed, 1e-9), 2),
        "replica_deaths": {
            str(r["index"]): r["deaths"] for r in status["replicas"]
        },
        "replica_restarts": {
            str(r["index"]): r["restarts"] for r in status["replicas"]
        },
        "failures": failures[:20],
    }
    (artifact_dir / "cluster_soak.json").write_text(
        json.dumps(summary, indent=1, sort_keys=True) + "\n"
    )
    print(f"\ncluster soak → {json.dumps(summary['codes'])}, kills={kills}")

    assert not failures, failures[:5]
    assert kills, "the killer thread never fired; raise REPRO_CLUSTER_SOAK_SECONDS"
    assert job_ids, "no job ever reached the journal"
    lost = {s: n for s, n in states.items() if s not in TERMINAL}
    assert not lost, f"jobs stuck non-terminal after the drain window: {lost}"
    assert not multi_terminal, f"double-terminal jobs: {multi_terminal[:3]}"


def _drain_backlog(n_replicas: int, jobs_dir: Path, log_dir: Path) -> dict:
    """Submit BENCH_BACKLOG paced jobs through the router; time the drain."""
    coord = ClusterCoordinator(
        n_replicas,
        jobs_dir=str(jobs_dir),
        replica_args={"job_workers": 2, "job_lease_ttl": 6.0, "drain_timeout": 2.0},
        log_dir=log_dir,
        probe_interval_s=0.2,
        boot_timeout_s=60.0,
        env=_env(),
    )
    coord.start()
    try:
        assert coord.wait_healthy(n_replicas, timeout_s=60), coord.status()
        t0 = time.monotonic()
        for i in range(BENCH_BACKLOG):
            code, body = _post(
                coord.url,
                {
                    "action": "job_submit",
                    "kind": "synthesize",
                    "params": {
                        "size": 32,
                        "n_slices": 1,
                        "seed": i,
                        "duration_s": BENCH_JOB_S,
                    },
                },
            )
            assert code == 202, (code, body)
        states = _wait_jobs_terminal(jobs_dir, timeout_s=180.0)
        elapsed = time.monotonic() - t0
    finally:
        coord.stop()
    assert states.get(SUCCEEDED, 0) == BENCH_BACKLOG, states
    return {
        "replicas": n_replicas,
        "jobs": BENCH_BACKLOG,
        "job_duration_s": BENCH_JOB_S,
        "elapsed_s": round(elapsed, 3),
        "jobs_per_s": round(BENCH_BACKLOG / elapsed, 3),
    }


def test_cluster_scaling_bench(tmp_path, artifact_dir):
    """1 → 4 replica throughput on a capacity-bound backlog (≥ 2.5×)."""
    single = _drain_backlog(1, tmp_path / "jobs1", tmp_path / "logs1")
    quad = _drain_backlog(4, tmp_path / "jobs4", tmp_path / "logs4")
    ratio = quad["jobs_per_s"] / single["jobs_per_s"]
    report = {
        "schema": 1,
        "workload": {
            "backlog": BENCH_BACKLOG,
            "job_duration_s": BENCH_JOB_S,
            "job_workers_per_replica": 2,
            "kind": "synthesize (duration_s-paced: capacity-bound, not CPU-bound)",
        },
        "results": {"1_replica": single, "4_replicas": quad},
        "speedup_4x_vs_1x": round(ratio, 2),
    }
    bench_path = artifact_dir / "BENCH_cluster.json"
    bench_path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(
        f"\nBENCH_cluster.json → {bench_path}\n"
        f"  1 replica : {single['jobs_per_s']:.2f} jobs/s ({single['elapsed_s']:.1f}s)\n"
        f"  4 replicas: {quad['jobs_per_s']:.2f} jobs/s ({quad['elapsed_s']:.1f}s)\n"
        f"  speedup   : {ratio:.2f}x"
    )
    assert ratio >= 2.5, report
