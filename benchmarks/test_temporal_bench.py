"""Temporal propagation benchmark → ``BENCH_temporal.json``.

Measures ``segment_volume`` under both temporal modes on the same scripted
volumes:

* ``meanbox`` — the paper's per-slice pipeline: every slice pays a full
  DINO grounding + SAM decode, boxes are smoothed afterwards.
* ``propagate`` — the memory-conditioned engine: keyframes pay the full
  grounding, every other slice is an analytic decode against per-object
  memory (no ViT/DINO pass).

Both sides run with the inference cache disabled and a fresh pipeline per
repeat, so the wall clock measures model work, not cache hits.  Grounding
calls are counted from the ``repro_pipeline_groundings_total`` counter
delta around each run.

Acceptance (asserted here, enforced in CI against the committed
``BENCH_temporal.json`` by ``benchmarks/check_temporal_regression.py``):
propagate needs ≥ 2× fewer grounding calls and ≥ 1.5× wall-clock speedup
over meanbox on the same volume.

``REPRO_BENCH_QUICK=1`` trims the *scene list* only (the
acceptance-critical drift scene stays); slice counts and repeats are
unchanged so the emitted same-run ratios stay comparable with the
committed full baseline.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.pipeline import ZenesisConfig, ZenesisPipeline
from repro.data import make_sample
from repro.data.synthesis import synthesize_scenario_volume
from repro.observability import get_registry

from .conftest import ARTIFACT_DIR

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"
PROMPT = "catalyst particles"
N_SLICES = 12
EDGE = 128
REPEATS = 3
BENCH_PATH = ARTIFACT_DIR / "BENCH_temporal.json"


def _scenes() -> dict[str, np.ndarray]:
    scenes = {
        "drift": synthesize_scenario_volume(
            kind="drift", shape=(EDGE, EDGE), n_slices=N_SLICES, seed=3
        ).volume.voxels,
    }
    if not QUICK:
        scenes["fibsem"] = make_sample(
            "crystalline", shape=(EDGE, EDGE), n_slices=N_SLICES, seed=3
        ).volume.voxels
    return scenes


def _measure(mode: str, voxels: np.ndarray) -> dict:
    """Time REPEATS cold runs of one temporal mode; count grounding calls."""
    counter = get_registry().counter("repro_pipeline_groundings_total")
    laps: list[float] = []
    groundings: list[int] = []
    report: dict = {}
    for _ in range(REPEATS + 1):  # first run is the warm-up (allocator, BLAS)
        pipeline = ZenesisPipeline(ZenesisConfig(use_cache=False, temporal_mode=mode))
        before = counter.snapshot()
        t0 = time.perf_counter()
        result = pipeline.segment_volume(voxels, PROMPT)
        laps.append(time.perf_counter() - t0)
        groundings.append(int(counter.snapshot() - before))
        report = result.refinement_report
    laps, groundings = laps[1:], groundings[1:]
    assert len(set(groundings)) == 1, f"grounding count not deterministic: {groundings}"
    out = {
        "wall_s_p50": round(float(np.median(laps)), 4),
        "wall_s_min": round(float(np.min(laps)), 4),
        "groundings": groundings[0],
        "n_samples": len(laps),
    }
    if mode == "propagate":
        out["stats"] = {
            k: report[k]
            for k in ("grounded_slices", "propagated_slices", "regrounds", "short_circuits")
        }
    return out


def test_temporal_bench():
    results: dict[str, dict] = {}
    speedups: dict[str, float] = {}
    for scene, voxels in _scenes().items():
        meanbox = _measure("meanbox", voxels)
        propagate = _measure("propagate", voxels)
        results[scene] = {"meanbox": meanbox, "propagate": propagate}
        speedups[f"{scene}_wall_speedup"] = round(
            meanbox["wall_s_p50"] / propagate["wall_s_p50"], 2
        )
        speedups[f"{scene}_grounding_ratio"] = round(
            meanbox["groundings"] / max(propagate["groundings"], 1), 2
        )

    report = {
        "schema": 1,
        "quick": QUICK,
        "config": {
            "image": [EDGE, EDGE],
            "n_slices": N_SLICES,
            "repeats": REPEATS,
            "prompt": PROMPT,
        },
        "results": results,
        "speedups": speedups,
    }
    BENCH_PATH.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(f"\nBENCH_temporal.json → {BENCH_PATH}")
    for scene, modes in results.items():
        for mode, cfg in modes.items():
            print(
                f"  {scene:<8} {mode:<10} wall p50 {cfg['wall_s_p50'] * 1e3:>8.1f} ms"
                f"  groundings {cfg['groundings']:>3}"
            )
    for name, val in sorted(speedups.items()):
        print(f"  {name:<28} {val:.2f}x")

    # Acceptance floors from the issue.  Same-run ratios: the hardware term
    # cancels, so these hold on shared CI runners too.
    for scene in results:
        assert speedups[f"{scene}_grounding_ratio"] >= 2.0, speedups
        assert speedups[f"{scene}_wall_speedup"] >= 1.5, speedups
