"""Fig. 4: the platform UI — preview, prompt, mode selection.

Drives the no-code surface the figure shows (raw preview with readiness
card, natural-language prompt, mode switch) through the JSON API, measuring
end-to-end request latencies a user would feel.
"""

import json
import time

from repro.io.tiff import write_tiff
from repro.platform.api import ApiHandler


def test_fig4_platform_session(setup, artifact_dir, tmp_path_factory, benchmark):
    tmp = tmp_path_factory.mktemp("fig4")
    path = tmp / "upload.tif"
    write_tiff(path, setup.dataset.amorphous.volume.voxels, compress=True)

    api = ApiHandler()
    timings = {}

    def call(name, payload):
        t0 = time.perf_counter()
        r = api.handle(payload)
        timings[name] = time.perf_counter() - t0
        assert r["ok"], r
        return r

    sid = call("create_session", {"action": "create_session"})["session_id"]
    preview = call("upload+preview", {"action": "load_file", "session_id": sid, "path": str(path)})["preview"]
    assert preview["kind"] == "volume" and not preview["readiness"]["is_ready"]
    call("select_slice", {"action": "select_slice", "session_id": sid, "index": 4})
    seg = call("mode_a_segment", {"action": "segment", "session_id": sid, "prompt": "catalyst particles"})
    assert seg["result"]["coverage"] > 0.02
    vol = call("mode_b_volume", {"action": "segment_volume", "session_id": sid, "prompt": "catalyst particles"})
    assert vol["n_slices"] == 10
    call("export_png", {"action": "mask_png", "session_id": sid})

    lines = [f"{k:<18} {v * 1000:8.1f} ms" for k, v in timings.items()]
    report = "\n".join(lines)
    print("\nFig. 4 — platform request latencies")
    print(report)
    (artifact_dir / "fig4_platform.txt").write_text(report)
    (artifact_dir / "fig4_preview.json").write_text(json.dumps(preview, indent=2))


def test_fig4_preview_latency(benchmark, setup, tmp_path_factory):
    """Upload-to-preview latency (the UI's first paint)."""
    tmp = tmp_path_factory.mktemp("fig4b")
    path = tmp / "upload.tif"
    write_tiff(path, setup.dataset.crystalline.volume.voxels)
    api = ApiHandler()
    sid = api.handle({"action": "create_session"})["session_id"]

    def upload_preview():
        return api.handle({"action": "load_file", "session_id": sid, "path": str(path)})

    result = benchmark(upload_preview)
    assert result["ok"]
