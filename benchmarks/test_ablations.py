"""Ablation benches for the design choices DESIGN.md calls out.

Dimensions ablated on the crystalline volume (the hard case):

* **grounding** — Zenesis vs SAM-only shows what DINO grounding buys (the
  paper's central claim);
* **adaptation** — segmenter-branch unsharp masking on/off;
* **grounded selection** — relevance-guided hypothesis choice vs SAM's own
  confidence ranking;
* **extra baselines** — multi-level Otsu / k-means / adaptive / watershed,
  showing that no classical global or local method escapes the trap.
"""

import numpy as np

from repro.baselines.classical import (
    adaptive_threshold_segment,
    kmeans_segment,
    watershed_segment,
)
from repro.baselines.otsu import multi_otsu_segment, otsu_segment
from repro.core.pipeline import ZenesisConfig, ZenesisPipeline
from repro.eval.experiments import DEFAULT_PROMPT
from repro.metrics.overlap import iou


def _mean_iou(masks_fn, sample, z_range):
    return float(np.mean([iou(masks_fn(z), sample.catalyst_mask[z]) for z in z_range]))


def test_ablation_grounding_and_adaptation(setup, artifact_dir, benchmark):
    sample = setup.dataset.crystalline
    z_range = range(0, 10, 2)
    variants = {
        "full": ZenesisConfig(),
        "no-unsharp": ZenesisConfig(unsharp_amount=0.0),
        "no-gate": ZenesisConfig(gate_dilation=0),
        "no-selection-floor": ZenesisConfig(selection_floor=-1.0),
    }
    scores = {}
    for name, cfg in variants.items():
        pipeline = ZenesisPipeline(cfg)

        def run(z, p=pipeline):
            return p.segment_image(sample.volume.slice_image(z), DEFAULT_PROMPT).mask

        scores[name] = _mean_iou(run, sample, z_range)
    lines = [f"{k:<20} mean IoU {v:.3f}" for k, v in scores.items()]
    text = "\n".join(lines)
    print("\nAblation — Zenesis variants (crystalline)")
    print(text)
    (artifact_dir / "ablation_zenesis.txt").write_text(text)

    assert scores["full"] >= scores["no-unsharp"], "unsharp deblurring must not hurt"
    assert scores["full"] > 0.55


def test_ablation_classical_methods_all_trapped(setup, artifact_dir, benchmark):
    """No classical method escapes the crystalline trap."""
    sample = setup.dataset.crystalline
    methods = {
        "otsu": lambda img: otsu_segment(img),
        "multi-otsu-3": lambda img: multi_otsu_segment(img, classes=3),
        "kmeans-3": lambda img: kmeans_segment(img, k=3),
        "adaptive": lambda img: adaptive_threshold_segment(img),
        "watershed": lambda img: watershed_segment(img),
    }
    zenesis = ZenesisPipeline()
    scores = {}
    z_range = range(0, 10, 3)
    for name, fn in methods.items():
        scores[name] = _mean_iou(lambda z, f=fn: f(sample.volume.voxels[z]), sample, z_range)
    scores["zenesis"] = _mean_iou(
        lambda z: zenesis.segment_image(sample.volume.slice_image(z), DEFAULT_PROMPT).mask,
        sample,
        z_range,
    )
    text = "\n".join(f"{k:<14} mean IoU {v:.3f}" for k, v in sorted(scores.items(), key=lambda kv: kv[1]))
    print("\nAblation — classical baselines vs Zenesis (crystalline)")
    print(text)
    (artifact_dir / "ablation_classical.txt").write_text(text)

    # The paper's baselines (and their local/watershed cousins) must trail
    # Zenesis decisively.  Multi-level Otsu — which the paper did not
    # evaluate — is reported but only loosely asserted: synthetic phase
    # intensities are more stationary than real FIB-SEM data, which makes
    # global 3-class thresholds unrealistically strong on this substrate
    # (documented in EXPERIMENTS.md).
    for name in ("otsu", "watershed", "kmeans-3", "adaptive"):
        assert scores[name] < scores["zenesis"] - 0.15, f"{name} must trail Zenesis clearly"
    assert scores["multi-otsu-3"] < scores["zenesis"]


def test_ablation_prompt_sensitivity(setup, artifact_dir, benchmark):
    """Different grounded prompts behave sensibly; ungrounded gives nothing."""
    pipeline = ZenesisPipeline()
    sample = setup.dataset.crystalline
    sl = sample.volume.slice_image(0)
    gt = sample.catalyst_mask[0]
    film = sample.film_mask[0]

    res_cat = pipeline.segment_image(sl, "catalyst particles")
    res_needle = pipeline.segment_image(sl, "needle-like crystalline structures")
    res_bg = pipeline.segment_image(sl, "dark background")
    res_none = pipeline.segment_image(sl, "xyzzy plugh")

    lines = [
        f"catalyst prompt   IoU(gt) {iou(res_cat.mask, gt):.3f}",
        f"needle prompt     IoU(gt) {iou(res_needle.mask, gt):.3f}",
        f"background prompt IoU(bg) {iou(res_bg.mask, ~film):.3f}",
        f"ungrounded prompt coverage {res_none.coverage:.4f}",
    ]
    text = "\n".join(lines)
    print("\nAblation — prompt sensitivity")
    print(text)
    (artifact_dir / "ablation_prompts.txt").write_text(text)

    assert iou(res_cat.mask, gt) > 0.5
    assert iou(res_needle.mask, gt) > 0.4
    assert iou(res_bg.mask, ~film) > 0.5
    assert res_none.coverage == 0.0
