"""Mode B parallel-scaling bench (the ICPP angle).

Measures batch segmentation wall time at 1 / 2 / 4 workers over the
crystalline volume, reports speedup, and verifies worker decomposition
correctness (parallel output == serial output without temporal coupling).
"""

import numpy as np

from repro.core.batch import BatchConfig, segment_volume_batch
from repro.eval.experiments import DEFAULT_PROMPT


def test_parallel_scaling(setup, artifact_dir, benchmark):
    volume = setup.dataset.crystalline.volume
    results = {}
    masks_by_workers = {}
    for workers in (1, 2, 4):
        masks, report = segment_volume_batch(
            volume, DEFAULT_PROMPT, BatchConfig(n_workers=workers, temporal=False)
        )
        results[workers] = report.wall_s
        masks_by_workers[workers] = masks
    lines = [
        f"{w} worker(s): {t:6.2f}s  speedup x{results[1] / t:4.2f}" for w, t in results.items()
    ]
    text = "\n".join(lines)
    print("\nMode B parallel scaling (10 slices, 256², temporal off)")
    print(text)
    (artifact_dir / "parallel_scaling.txt").write_text(text)

    # Correctness: identical masks regardless of decomposition.
    for w in (2, 4):
        assert np.array_equal(masks_by_workers[1], masks_by_workers[w])
    # On a single-core box speedup may be flat; on multi-core it must not be
    # pathologically negative (2x slower would indicate serialization bugs).
    assert results[2] < results[1] * 2.5


def test_parallel_halo_consistency(setup, benchmark):
    """Temporal mode with halos approximates the serial refinement closely."""
    volume = setup.dataset.crystalline.volume
    serial, _ = segment_volume_batch(volume, DEFAULT_PROMPT, BatchConfig(n_workers=1))
    halo, _ = segment_volume_batch(volume, DEFAULT_PROMPT, BatchConfig(n_workers=2, halo=3))
    agreement = (serial == halo).mean()
    print(f"\nhalo-vs-serial voxel agreement: {agreement:.4f}")
    assert agreement > 0.97


def test_shared_memory_overhead(benchmark, setup):
    """Round-trip cost of placing a volume in shared memory."""
    from repro.parallel.sharedmem import SharedNDArray

    voxels = setup.dataset.crystalline.volume.voxels

    def roundtrip():
        with SharedNDArray.from_array(voxels) as shm:
            return shm.array.sum()

    benchmark(roundtrip)
