"""ViT encoder throughput benchmark → ``BENCH_encoder.json``.

Measures tokens/s and per-slice latency percentiles for the SAM image
encoder across the kernel/precision/batching matrix introduced by the
fused-kernel layer:

* ``naive_serial`` — the seed-faithful reference: ``np.power`` GELU,
  unfused Q/K/V projections, naive (unblocked) attention, one slice at a
  time.  This is the PR-5 hot path and the baseline for the acceptance
  ratios below.
* ``naive_serial_current`` — naive attention dispatch but today's fused
  projections and in-place GELU (isolates the kernel-layer gains from the
  attention restructure).  Full matrix only.
* ``blocked_serial_exact`` / ``blocked_batched_exact`` — the default
  blocked kernel, bit-identical to naive, serial vs ``encode_batch``.
* ``blocked_serial_fast`` / ``blocked_batched_fast`` — the fast precision
  tier (fp16 activations, fp32 accumulate, online softmax).

Acceptance (asserted here, enforced in CI against the committed
``BENCH_encoder.json`` by ``benchmarks/check_encoder_regression.py``):
blocked+batched exact ≥ 1.5× tokens/s over naive serial; fast ≥ 2×.

``REPRO_BENCH_QUICK=1`` runs the reduced matrix CI uses: fewer *configs*
(the acceptance-critical three), but the same slice count and repeats, so
the emitted speedup ratios stay comparable with the committed full-matrix
baseline.
"""

from __future__ import annotations

import contextlib
import json
import os
import time

import numpy as np

from repro.models.nn import kernels
from repro.models.nn.precision import EXACT, FAST, precision
from repro.models.registry import build_sam

from .conftest import ARTIFACT_DIR

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"
IMAGE = 256
# Quick mode trims the CONFIG LIST only — slice count and repeats stay
# identical to the full matrix, so the per-config speedup ratios (tokens/s
# over the same run's naive_serial) are directly comparable with the
# committed full-matrix baseline in check_encoder_regression.py.  Shrinking
# n_slices would change batching amortisation and shift the ratios even on
# identical hardware.
N_SLICES = 8
REPEATS = 3
BENCH_PATH = ARTIFACT_DIR / "BENCH_encoder.json"


def _images(n: int) -> list[np.ndarray]:
    rng = np.random.default_rng(7)
    return [rng.random((IMAGE, IMAGE)).astype(np.float32) for _ in range(n)]


@contextlib.contextmanager
def _seed_kernels(encoder):
    """Restore the PR-5 hot path: ``np.power`` GELU + unfused Q/K/V."""

    def seed_gelu_(x):
        c = np.float32(np.sqrt(2.0 / np.pi))
        x[...] = 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))
        return x

    saved = [(blk.attn, blk.attn._w_qkv, blk.attn._b_qkv) for blk in encoder.blocks]
    orig_inplace, orig_copy = kernels.gelu_, kernels.gelu
    kernels.gelu_ = seed_gelu_
    kernels.gelu = lambda x: seed_gelu_(np.array(x, dtype=np.float32))
    for blk in encoder.blocks:
        blk.attn._w_qkv = blk.attn._b_qkv = None
    try:
        yield
    finally:
        kernels.gelu_, kernels.gelu = orig_inplace, orig_copy
        for attn, w, b in saved:
            attn._w_qkv, attn._b_qkv = w, b


def _run_serial(encoder, imgs) -> list[float]:
    """Encode slices one by one; returns per-slice seconds."""
    laps = []
    for img in imgs:
        t0 = time.perf_counter()
        encoder(img)
        laps.append(time.perf_counter() - t0)
    return laps


def _run_batched(encoder, imgs) -> list[float]:
    """Encode all slices in one batch; returns amortised per-slice seconds."""
    t0 = time.perf_counter()
    encoder.encode_batch(imgs)
    per_slice = (time.perf_counter() - t0) / len(imgs)
    return [per_slice] * len(imgs)


def _measure(encoder, imgs, runner, tier) -> dict:
    tokens_per_slice = (IMAGE // encoder.patch_size) ** 2
    with precision(tier):
        runner(encoder, imgs[:2])  # warm-up: allocator, sincos cache
        laps = []
        for _ in range(REPEATS):
            laps.extend(runner(encoder, imgs))
    arr = np.asarray(laps)
    return {
        "tokens_per_s": round(tokens_per_slice / float(np.median(arr)), 1),
        "ms_per_slice_p50": round(float(np.percentile(arr, 50)) * 1e3, 3),
        "ms_per_slice_p95": round(float(np.percentile(arr, 95)) * 1e3, 3),
        "n_samples": len(laps),
    }


def test_encoder_bench_matrix():
    encoder = build_sam().image_encoder
    imgs = _images(N_SLICES)
    results: dict[str, dict] = {}

    with _seed_kernels(encoder), kernels.kernel_mode("naive"):
        results["naive_serial"] = _measure(encoder, imgs, _run_serial, EXACT)
    if not QUICK:
        with kernels.kernel_mode("naive"):
            results["naive_serial_current"] = _measure(encoder, imgs, _run_serial, EXACT)
        results["blocked_serial_exact"] = _measure(encoder, imgs, _run_serial, EXACT)
        results["blocked_serial_fast"] = _measure(encoder, imgs, _run_serial, FAST)
    results["blocked_batched_exact"] = _measure(encoder, imgs, _run_batched, EXACT)
    results["blocked_batched_fast"] = _measure(encoder, imgs, _run_batched, FAST)

    base = results["naive_serial"]["tokens_per_s"]
    speedups = {
        f"{name}_vs_naive_serial": round(cfg["tokens_per_s"] / base, 2)
        for name, cfg in results.items()
        if name != "naive_serial"
    }
    report = {
        "schema": 1,
        "quick": QUICK,
        "config": {
            "image": [IMAGE, IMAGE],
            "sam": build_sam().config.name,
            "patch_size": encoder.patch_size,
            "embed_dim": encoder.blocks[0].attn.dim,
            "depth": len(encoder.blocks),
            "n_slices": N_SLICES,
            "repeats": REPEATS,
            "attention_tile": kernels.attention_tile(
                (IMAGE // encoder.patch_size) ** 2, (IMAGE // encoder.patch_size) ** 2
            ),
        },
        "results": results,
        "speedups": speedups,
    }
    BENCH_PATH.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(f"\nBENCH_encoder.json → {BENCH_PATH}")
    for name, cfg in results.items():
        print(
            f"  {name:<22} {cfg['tokens_per_s']:>9.1f} tok/s"
            f"  p50 {cfg['ms_per_slice_p50']:.2f} ms  p95 {cfg['ms_per_slice_p95']:.2f} ms"
        )

    # Acceptance floors from the issue: these hold on a single-core CI
    # runner because they measure pass-count/allocation reductions, not
    # parallelism.
    assert speedups["blocked_batched_exact_vs_naive_serial"] >= 1.5, report["speedups"]
    assert speedups["blocked_batched_fast_vs_naive_serial"] >= 2.0, report["speedups"]
