"""Gate zoo batch-orchestration overhead against the committed BENCH_zoo.json.

Usage::

    python benchmarks/check_zoo_regression.py BASELINE CURRENT [--max-drop 0.3]

Compares the ``ratios`` section — batch throughput over the plain serial
loop, and ensemble cost over K independent BEST runs, both *measured in
the same run* — for every key present in both files, and exits non-zero
when any ratio drops by more than ``--max-drop`` (default 30%) relative to
the committed baseline ratio.

Same-run ratios are the only numbers comparable across machines: the
committed baseline is measured on a dev box while CI runs on shared
runners, so absolute files/s would fail spuriously.  Dividing by the same
run's serial wall time cancels the hardware term; what is left is the
orchestration layer's overhead, which is what this gate protects.

A *known and accepted* regression is merged by applying the
``perf-regression-ok`` label to the PR, which skips this check — then
refresh the committed baseline in the same PR::

    PYTHONPATH=src python -m pytest -q -s benchmarks/test_zoo_bench.py
    cp benchmarks/_artifacts/BENCH_zoo.json BENCH_zoo.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def compare(baseline: dict, current: dict, max_drop: float) -> list[str]:
    """Return failure lines; empty means the check passes."""
    failures = []
    base_ratios = baseline.get("ratios", {})
    cur_ratios = current.get("ratios", {})
    for name in sorted(base_ratios):
        if name not in cur_ratios:
            print(f"  {name:<30} not in current run — skipped")
            continue
        base, cur = base_ratios[name], cur_ratios[name]
        rel = cur / base if base else float("inf")
        status = "ok" if rel >= 1.0 - max_drop else "REGRESSED"
        print(f"  {name:<30} baseline {base:>6.3f}x  current {cur:>6.3f}x  ({rel:.2f}) {status}")
        if rel < 1.0 - max_drop:
            failures.append(
                f"{name}: ratio {cur:.3f}x is {(1.0 - rel) * 100:.1f}% below baseline "
                f"{base:.3f}x (allowed drop {max_drop * 100:.0f}%)"
            )
    for name in sorted(set(cur_ratios) - set(base_ratios)):
        print(f"  {name:<30} new ratio key (no baseline) — informational only")
    for label, report in (("baseline", baseline), ("current", current)):
        for name, wall in sorted(report.get("wall_s", {}).items()):
            print(f"    [{label}] {name:<16} {wall:>8.3f}s (informational)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_zoo.json")
    parser.add_argument("current", type=Path, help="freshly measured BENCH_zoo.json")
    parser.add_argument("--max-drop", type=float, default=0.3, help="allowed fractional drop")
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    print(f"zoo batch ratios vs {args.baseline} (max drop {args.max_drop * 100:.0f}%):")
    failures = compare(baseline, current, args.max_drop)
    if failures:
        print("\nFAIL: zoo batch-orchestration regression", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        print(
            "\nIf this trade-off is intentional, apply the 'perf-regression-ok' label "
            "and refresh the committed BENCH_zoo.json (see module docstring).",
            file=sys.stderr,
        )
        return 1
    print("zoo batch ratios OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
