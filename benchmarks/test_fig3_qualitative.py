"""Fig. 3: qualitative comparison (Otsu | SAM-only | Zenesis overlays).

Regenerates the figure as a PNG contact sheet — one row per sample kind —
and checks the qualitative claims pixel-wise: the baselines' predictions on
crystalline data sit on the background/film, Zenesis's on the catalyst.
"""

import numpy as np

from repro.adapt import robust_normalize
from repro.baselines.otsu import otsu_segment
from repro.baselines.sam_only import SamOnlyBaseline
from repro.core.pipeline import ZenesisPipeline
from repro.eval.experiments import DEFAULT_PROMPT
from repro.platform.render import render_comparison_figure, save_figure


def test_fig3_qualitative_panels(setup, artifact_dir, benchmark):
    pipeline = ZenesisPipeline()
    sam_only = SamOnlyBaseline()
    raws, method_masks = [], {"otsu": [], "sam-only": [], "zenesis": []}
    rows = []
    for kind in ("crystalline", "amorphous"):
        sl = setup.dataset.by_kind(kind)[0]
        raw = robust_normalize(sl.image.pixels)
        raws.append(raw)
        rows.append(kind)
        otsu_mask = otsu_segment(sl.image.pixels)
        sam_mask = sam_only.segment(sl.image.pixels)
        zen_mask = pipeline.segment_image(sl.image, DEFAULT_PROMPT).mask
        method_masks["otsu"].append(otsu_mask)
        method_masks["sam-only"].append(sam_mask)
        method_masks["zenesis"].append(zen_mask)

        gt = sl.gt_mask
        if kind == "crystalline":
            # The paper's Fig. 3a story: baselines on the wrong phase.
            assert (otsu_mask & ~gt).sum() > (otsu_mask & gt).sum()
            assert (sam_mask & gt).sum() / max(sam_mask.sum(), 1) < 0.3
            assert (zen_mask & gt).sum() / max(zen_mask.sum(), 1) > 0.5

    figure = render_comparison_figure(raws, method_masks, row_labels=rows)
    out = artifact_dir / "fig3_qualitative.png"
    save_figure(out, figure)
    print(f"\nFig. 3 written to {out} ({figure.shape[1]}x{figure.shape[0]})")
    assert out.stat().st_size > 10_000


def test_fig3_render_latency(benchmark, setup):
    """Wall time of composing one 3-method overlay figure."""
    sl = setup.dataset.slices[0]
    raw = robust_normalize(sl.image.pixels)
    masks = {"a": [sl.gt_mask], "b": [~sl.gt_mask]}
    benchmark(render_comparison_figure, [raw], masks)
