"""Table 1: Otsu thresholding — average performance metrics.

Paper:
    Crystalline  accuracy 0.586±0.125  IoU 0.161±0.057  Dice 0.274±0.080
    Amorphous    accuracy 0.581±0.019  IoU 0.407±0.024  Dice 0.578±0.024

Reproduced shape: Otsu captures the whole sample (film) on both kinds, so
crystalline IoU ≈ the catalyst's film share (~0.16 — we match the paper's
value almost exactly) and amorphous IoU is moderate (~0.36).
"""

from repro.baselines.otsu import otsu_segment
from repro.eval.experiments import PAPER_REFERENCE
from repro.eval.report import paper_table
from .conftest import check_paper_shape


def test_table1_otsu_rows(table_evaluations, artifact_dir, benchmark):
    ev = table_evaluations["otsu"]
    print()
    print(paper_table(ev, title="Table 1 — Otsu threshold: Average Performance Metrics"))
    for kind in ("crystalline", "amorphous"):
        for line in check_paper_shape(ev.summary(kind), PAPER_REFERENCE["otsu"][kind], note=f"({kind})"):
            print(line)
    (artifact_dir / "table1_otsu.txt").write_text(paper_table(ev))

    cry = ev.summary("crystalline")
    amo = ev.summary("amorphous")
    # Shape assertions mirroring the paper's findings.
    assert cry["iou"].mean < 0.30, "crystalline Otsu must stay trapped near the film share"
    assert amo["iou"].mean > cry["iou"].mean + 0.1, "amorphous must beat crystalline clearly"
    assert cry["dice"].mean < 0.45
    assert 0.45 < cry["accuracy"].mean < 0.75


def test_table1_otsu_throughput(benchmark, setup):
    """Wall time of the Otsu baseline on one 256² slice."""
    raw = setup.dataset.slices[0].image.pixels
    benchmark(otsu_segment, raw)
