"""Benches for the future-work extensions (beyond the paper's evaluation).

* **CLIPSeg vs Zenesis** — direct relevance thresholding vs SAM-refined
  masks (what the promptable decoder buys).
* **Propagation vs per-slice grounding** — SAM2-style memory propagation:
  quality and wall-time trade-off for Mode B.
* **Concept calibration** — the optional fine-tuning module: generic prompt
  vs a concept calibrated on two annotated slices.
* **Modality sweep** — zero-shot behaviour on XRD / STM / EDX generators.
"""

import time

import numpy as np

from repro.core.pipeline import ZenesisPipeline
from repro.core.propagation import propagate_volume
from repro.data.synthesis.modalities import (
    synthesize_edx_map,
    synthesize_stm_topography,
    synthesize_xrd_pattern,
)
from repro.eval.experiments import DEFAULT_PROMPT
from repro.metrics.boundary import boundary_f1
from repro.metrics.overlap import iou
from repro.models.clipseg import ClipSegSurrogate
from repro.models.text import default_lexicon
from repro.models.tuning import register_calibrated_concept


def test_ext_clipseg_vs_zenesis(setup, artifact_dir, benchmark):
    pipeline = ZenesisPipeline()
    clip = ClipSegSurrogate()
    rows = []
    for kind in ("crystalline", "amorphous"):
        sample = setup.dataset.crystalline if kind == "crystalline" else setup.dataset.amorphous
        c_iou, c_bf1, z_iou, z_bf1 = [], [], [], []
        for z in range(0, 10, 3):
            gt = sample.catalyst_mask[z]
            _, seg_img = pipeline.adapt(sample.volume.voxels[z])
            det_img, _ = pipeline.adapt(sample.volume.voxels[z])
            cm = clip.segment(det_img, DEFAULT_PROMPT)
            zm = pipeline.segment_image(sample.volume.slice_image(z), DEFAULT_PROMPT).mask
            c_iou.append(iou(cm, gt))
            c_bf1.append(boundary_f1(cm, gt))
            z_iou.append(iou(zm, gt))
            z_bf1.append(boundary_f1(zm, gt))
        rows.append(
            f"{kind:<12} clipseg IoU {np.mean(c_iou):.3f} bF1 {np.mean(c_bf1):.3f}"
            f" | zenesis IoU {np.mean(z_iou):.3f} bF1 {np.mean(z_bf1):.3f}"
        )
        assert np.mean(z_bf1) > np.mean(c_bf1), "SAM refinement must buy boundary quality"
    text = "\n".join(rows)
    print("\nExtension — CLIPSeg-style direct decoding vs full Zenesis")
    print(text)
    (artifact_dir / "ext_clipseg.txt").write_text(text)


def test_ext_propagation_tradeoff(setup, artifact_dir, benchmark):
    pipeline = ZenesisPipeline()
    sample = setup.dataset.amorphous
    t0 = time.perf_counter()
    full = pipeline.segment_volume(sample.volume, DEFAULT_PROMPT, temporal=False)
    t_full = time.perf_counter() - t0
    t0 = time.perf_counter()
    prop = propagate_volume(pipeline, sample.volume, DEFAULT_PROMPT, reference_slice=5)
    t_prop = time.perf_counter() - t0
    full_iou = np.mean([iou(full.masks[z], sample.catalyst_mask[z]) for z in range(10)])
    prop_iou = np.mean([iou(prop.masks[z], sample.catalyst_mask[z]) for z in range(10)])
    text = (
        f"per-slice grounding: IoU {full_iou:.3f} in {t_full:.1f}s\n"
        f"memory propagation:  IoU {prop_iou:.3f} in {t_prop:.1f}s "
        f"(regrounds: {prop.refinement_report['regrounds']})"
    )
    print("\nExtension — SAM2-style propagation vs per-slice grounding")
    print(text)
    (artifact_dir / "ext_propagation.txt").write_text(text)
    assert prop_iou > 0.35, "propagation must stay usable"


def test_ext_concept_calibration_gain(setup, artifact_dir, benchmark):
    sample = setup.dataset.crystalline
    lexicon = default_lexicon()
    pipeline = ZenesisPipeline()
    pipeline.dino.lexicon = lexicon
    train_imgs, train_masks = [], []
    for z in (0, 1):
        _, seg_img = pipeline.adapt(sample.volume.voxels[z])
        train_imgs.append(seg_img)
        train_masks.append(sample.catalyst_mask[z])
    result = register_calibrated_concept(lexicon, "targetphase", train_imgs, train_masks, rng=1)
    generic, calibrated = [], []
    for z in range(2, 10, 2):
        sl = sample.volume.slice_image(z)
        gt = sample.catalyst_mask[z]
        generic.append(iou(pipeline.segment_image(sl, DEFAULT_PROMPT).mask, gt))
        calibrated.append(iou(pipeline.segment_image(sl, "targetphase").mask, gt))
    text = (
        f"generic prompt ({DEFAULT_PROMPT!r}): IoU {np.mean(generic):.3f}\n"
        f"calibrated concept (2 annotated slices): IoU {np.mean(calibrated):.3f}\n"
        f"fisher separation {result.separation:.2f}, bias {result.bias:.3f}"
    )
    print("\nExtension — optional fine-tuning (concept calibration)")
    print(text)
    (artifact_dir / "ext_calibration.txt").write_text(text)
    assert np.mean(calibrated) > 0.4, "a calibrated concept must ground well on held-out slices"


def test_ext_modalities_zero_shot(artifact_dir, benchmark):
    pipeline = ZenesisPipeline()
    cases = {
        "xrd": (synthesize_xrd_pattern(seed=2), "bright rings"),
        "stm": (synthesize_stm_topography(seed=2), "bright particles"),
        "edx": (synthesize_edx_map(seed=2), "bright particles"),
    }
    # "rings" isn't in the base lexicon as such; map it for the XRD case.
    rows = []
    for name, ((image, gt), prompt) in cases.items():
        result = pipeline.segment_image(image, prompt)
        score = iou(result.mask, gt)
        recall = (result.mask & gt).sum() / max(gt.sum(), 1)
        rows.append(f"{name:<4} prompt={prompt!r:<20} IoU {score:.3f} recall {recall:.3f}")
    text = "\n".join(rows)
    print("\nExtension — zero-shot on future-work modalities (XRD/STM/EDX)")
    print(text)
    (artifact_dir / "ext_modalities.txt").write_text(text)
