"""Fig. 6: DINO box refinement with random boxes (Rectify Segmentation).

The interactive-correction experiment, run with the simulated annotator:
starting from a deliberately under-detected mask (raised box threshold),
oracle clicks on missed regions must raise IoU monotonically-ish and reach
a clear improvement within a click budget.
"""

import numpy as np

from repro.core.hitl import RectifyConfig, RectifySession, SimulatedAnnotator
from repro.core.pipeline import ZenesisConfig, ZenesisPipeline
from repro.eval.experiments import DEFAULT_PROMPT
from repro.metrics.overlap import iou
from repro.models.registry import build_sam
from repro.models.sam.model import SamPredictor


def test_fig6_rectify_improves_iou(setup, artifact_dir, benchmark):
    # Under-detect on purpose: high box threshold drops weak clusters.
    pipeline = ZenesisPipeline(ZenesisConfig(box_threshold=0.75))
    rows = []
    gains = []
    for kind in ("crystalline", "amorphous"):
        sl = setup.dataset.by_kind(kind)[1]
        result = pipeline.segment_image(sl.image, DEFAULT_PROMPT)
        _, seg_img = pipeline.adapt(sl.image)
        sess = RectifySession(
            SamPredictor(build_sam()),
            seg_img,
            initial_mask=result.mask,
            config=RectifyConfig(n_candidates=16),
        )
        annotator = SimulatedAnnotator(gt_mask=sl.gt_mask)
        trace = [iou(sess.mask, sl.gt_mask)]
        for _ in range(6):
            click = annotator.next_click(sess.mask)
            if click is None:
                break
            sess.rectify(click)
            trace.append(iou(sess.mask, sl.gt_mask))
        rows.append(f"{kind:<12} IoU trace: " + " -> ".join(f"{v:.3f}" for v in trace))
        gains.append(trace[-1] - trace[0])
        assert trace[-1] >= trace[0], "oracle clicks must never hurt"
    report = "\n".join(rows)
    print("\nFig. 6 — HITL rectification (simulated annotator)")
    print(report)
    (artifact_dir / "fig6_rectify.txt").write_text(report)
    assert max(gains) > 0.02, "at least one sample must improve measurably"


def test_fig6_rectify_click_latency(benchmark, setup):
    pipeline = ZenesisPipeline()
    sl = setup.dataset.by_kind("amorphous")[0]
    _, seg_img = pipeline.adapt(sl.image)
    sess = RectifySession(SamPredictor(build_sam()), seg_img)
    ys, xs = np.nonzero(sl.gt_mask)
    click = (float(xs[len(xs) // 2]), float(ys[len(ys) // 2]))
    benchmark.pedantic(sess.rectify, args=(click,), rounds=3, iterations=1)
