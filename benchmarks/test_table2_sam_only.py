"""Table 2: SAM-only — average performance metrics.

Paper (crystalline row partially garbled in the source; prose gives IoU
0.100 / Dice 0.173):
    Crystalline  IoU 0.100            Dice 0.173±0.137
    Amorphous    accuracy 0.499±0.160 IoU 0.405±0.088  Dice 0.571±0.087

Reproduced shape: unprompted SAM latches onto the sharp-edged black
background on crystalline samples (IoU ≈ 0, total failure) while the
feature-rich amorphous samples pull some predictions onto catalyst
aggregates — moderate mean IoU with large variance.
"""

from repro.baselines.sam_only import SamOnlyBaseline, SamOnlyConfig
from repro.eval.experiments import PAPER_REFERENCE
from repro.eval.report import paper_table
from .conftest import check_paper_shape


def test_table2_sam_only_rows(table_evaluations, artifact_dir, benchmark):
    ev = table_evaluations["sam_only"]
    print()
    print(paper_table(ev, title="Table 2 — SAM-only: Average Performance Metrics"))
    for kind in ("crystalline", "amorphous"):
        for line in check_paper_shape(ev.summary(kind), PAPER_REFERENCE["sam_only"][kind], note=f"({kind})"):
            print(line)
    (artifact_dir / "table2_sam_only.txt").write_text(paper_table(ev))

    cry = ev.summary("crystalline")
    amo = ev.summary("amorphous")
    assert cry["iou"].mean < 0.15, "SAM-only must fail entirely on crystalline"
    assert amo["iou"].mean > cry["iou"].mean + 0.1, "amorphous performs (much) better"
    assert amo["iou"].std > 0.08, "amorphous SAM-only is high-variance (paper: ±0.088)"


def test_table2_sam_only_latency(benchmark, setup):
    """Wall time of one SAM-only automatic-mode prediction (256² slice)."""
    baseline = SamOnlyBaseline(SamOnlyConfig(points_per_side=8))
    raw = setup.dataset.slices[0].image.pixels
    benchmark.pedantic(baseline.segment, args=(raw,), rounds=2, iterations=1)
