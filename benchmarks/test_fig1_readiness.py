"""Fig. 1: transforming non-AI-ready scientific data.

The figure's claim made quantitative: raw 16-bit FIB-SEM slices score below
the readiness threshold on every volume; after the lightweight adaptation
pipeline (+ 3-channel embedding) every slice scores as AI-ready.
"""

import numpy as np

from repro.adapt import (
    default_fibsem_pipeline,
    gray_to_multichannel,
    robust_normalize,
    score_readiness,
)
from repro.adapt.readiness import READY_THRESHOLD
from repro.data.image import ScientificImage


def test_fig1_readiness_before_after(setup, artifact_dir, benchmark):
    rows = []
    pipe = default_fibsem_pipeline()
    befores, afters = [], []
    for sl in setup.dataset.slices:
        before = score_readiness(sl.image).overall
        adapted = pipe.run(robust_normalize(sl.image.pixels))
        rgb = (gray_to_multichannel(adapted) * 255).astype(np.uint8)
        after = score_readiness(ScientificImage(rgb)).overall
        befores.append(before)
        afters.append(after)
        rows.append(f"{sl.name:<28} raw {before:.3f} -> adapted {after:.3f}")
    report = "\n".join(rows)
    print("\nFig. 1 — data readiness before/after adaptation")
    print(report)
    print(f"mean raw {np.mean(befores):.3f}  mean adapted {np.mean(afters):.3f}  threshold {READY_THRESHOLD}")
    (artifact_dir / "fig1_readiness.txt").write_text(report)

    assert max(befores) < READY_THRESHOLD, "every raw slice must be non-AI-ready"
    assert min(afters) >= READY_THRESHOLD, "every adapted slice must be AI-ready"


def test_fig1_adaptation_latency(benchmark, setup):
    """Wall time of the full adaptation recipe on one 256² slice."""
    pipe = default_fibsem_pipeline()
    raw = robust_normalize(setup.dataset.slices[0].image.pixels)
    benchmark(pipe.run, raw)
