"""Fig. 8: the segmentation performance dashboard.

Regenerates the dashboard over all three methods (Mode C on the 20-slice
benchmark) as standalone HTML plus a metric bar-chart PNG.
"""

from repro.cache import get_cache
from repro.eval.dashboard import render_dashboard
from repro.io.png import write_png
from repro.viz.plots import bar_chart


def test_fig8_dashboard_html(table_evaluations, artifact_dir, benchmark):
    html = render_dashboard(table_evaluations, cache_counters=get_cache().counters())
    out = artifact_dir / "fig8_dashboard.html"
    out.write_text(html)
    print(f"\nFig. 8 dashboard written to {out} ({len(html)} bytes)")
    for method in ("otsu", "sam_only", "zenesis"):
        assert f"Method: {method}" in html
    assert "Inference cache" in html
    assert "cache.memory.entries" in html
    # 20 per-sample rows per method.
    assert html.count("slice0") >= 3
    assert out.stat().st_size > 5_000


def test_fig8_metric_chart(table_evaluations, artifact_dir, benchmark):
    groups = {}
    for method, ev in table_evaluations.items():
        for kind in ev.kinds():
            s = ev.summary(kind, ["accuracy", "iou", "dice"])
            groups[f"{method[:4]}-{kind[:4]}"] = {m: s[m].mean for m in ("accuracy", "iou", "dice")}
    chart = bar_chart(groups)
    out = artifact_dir / "fig8_metrics.png"
    write_png(out, chart)
    print(f"Fig. 8 chart written to {out}")
    assert out.stat().st_size > 1_000


def test_fig8_dashboard_render_latency(benchmark, table_evaluations):
    benchmark(render_dashboard, table_evaluations)
