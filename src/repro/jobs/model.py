"""The job record: one durable unit of background work.

A :class:`JobRecord` is the single JSON-safe structure every queue component
shares — the :class:`~repro.jobs.store.JobStore` journals it, the
:class:`~repro.jobs.scheduler.JobScheduler` transitions it, the
:class:`~repro.jobs.runner.JobRunner` executes it, and the platform API
serialises its public view to clients.

State machine (see DESIGN.md §"Job lifecycle")::

    queued ──acquire──▶ leased ──start──▶ running ──▶ succeeded
       ▲                   │                 │   └──▶ failed
       │                   └───────┬─────────┘   └──▶ cancelled
       └──── lease expiry / retryable failure ◀──┘

A lease that expires (worker killed, heartbeat lost) sends the job back to
``queued`` for another attempt until ``max_attempts`` is exhausted, at which
point it lands in ``failed`` with the structured ``error`` carried along.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = [
    "JobRecord",
    "JOB_KINDS",
    "QUEUED",
    "LEASED",
    "RUNNING",
    "SUCCEEDED",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
    "ACTIVE_STATES",
]

#: Payload kinds the runner knows how to execute.
JOB_KINDS = ("segment_volume", "evaluate", "synthesize", "zoo_segment")

QUEUED = "queued"
LEASED = "leased"
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({SUCCEEDED, FAILED, CANCELLED})
#: States holding a lease a worker must keep alive.
ACTIVE_STATES = frozenset({LEASED, RUNNING})


@dataclass
class JobRecord:
    """One background job, JSON-safe end to end (everything journals)."""

    job_id: str
    kind: str
    params: dict = field(default_factory=dict)
    state: str = QUEUED
    priority: int = 0  # higher runs first; FIFO (submit_seq) within a priority
    submit_seq: int = 0
    attempt: int = 0  # executions started (1-based once first leased)
    max_attempts: int = 3
    created_at: float = 0.0  # wall-clock (survives restarts, unlike monotonic)
    updated_at: float = 0.0
    not_before: float = 0.0  # retry backoff gate (wall-clock)
    lease_owner: str | None = None
    lease_expires_at: float | None = None
    cancel_requested: bool = False
    session_id: str | None = None  # provenance only; jobs outlive sessions
    input_path: str | None = None  # durable input snapshot (e.g. volume .npy)
    checkpoint_dir: str | None = None  # per-slice shards for resume
    progress: dict = field(default_factory=dict)  # {"done": k, "total": n, ...}
    result: dict | None = None  # set on succeeded
    error: dict | None = None  # structured {"type": ..., "error": ...} on failed
    events_seq: int = 0  # last progress-event sequence number issued
    spans: list = field(default_factory=list)  # exported span dicts (adoption)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "JobRecord":
        known = {f for f in cls.__dataclass_fields__}  # tolerate newer fields
        return cls(**{k: v for k, v in d.items() if k in known})

    # -- views ----------------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def lease_expired(self, now: float) -> bool:
        return (
            self.state in ACTIVE_STATES
            and self.lease_expires_at is not None
            and now >= self.lease_expires_at
        )

    def public_view(self) -> dict:
        """The client-facing status dict (no payload internals, no spans)."""
        view = {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "attempt": self.attempt,
            "max_attempts": self.max_attempts,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "cancel_requested": self.cancel_requested,
            "progress": dict(self.progress),
            "has_result": self.result is not None,
        }
        if self.session_id is not None:
            view["session_id"] = self.session_id
        if self.error is not None:
            view["error"] = dict(self.error)
        return view
