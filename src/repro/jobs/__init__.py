"""repro.jobs — durable background jobs for asynchronous volume segmentation.

The serving layer (PR 4) made requests survive overload; this package makes
*work* survive everything else.  A job is journaled before it runs
(:class:`JobStore`: append-only JSONL + atomic snapshot compaction),
scheduled under priority + FIFO fairness with crash-detecting leases
(:class:`JobScheduler`), and executed through the shared-memory process
pool with per-slice checkpoints (:class:`JobRunner`) — so a SIGKILL'd
worker, a restarted server, or a torn journal write costs at most one
retry round, never the job, and a resumed ``segment_volume`` produces
bit-identical masks.

:class:`JobService` is the façade everything else uses::

    svc = JobService("jobs/").start()
    job = svc.submit_segment_volume(voxels, "catalyst particles")
    svc.wait(job.job_id)
    svc.result(job.job_id)["result"]["masks_path"]

See DESIGN.md §"Job lifecycle" for the state machine and journal format.
"""

from .model import (
    ACTIVE_STATES,
    CANCELLED,
    FAILED,
    JOB_KINDS,
    LEASED,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    TERMINAL_STATES,
    JobRecord,
)
from .runner import JobGuard, JobRunner
from .scheduler import JobScheduler
from .service import JobService
from .store import JobStore

__all__ = [
    "JobRecord",
    "JobStore",
    "JobScheduler",
    "JobRunner",
    "JobGuard",
    "JobService",
    "JOB_KINDS",
    "QUEUED",
    "LEASED",
    "RUNNING",
    "SUCCEEDED",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
    "ACTIVE_STATES",
]
