"""Crash-safe job persistence: append-only journal + atomic snapshots.

Layout under the jobs directory::

    jobs/
      journal.jsonl     append-only log of job upserts / events / removals
      snapshot.json     atomic full-state snapshot (compaction output)
      inputs/           durable input payloads (volume .npy snapshots)
      results/          durable result artifacts (mask bundles)
      checkpoints/      per-job CheckpointManager directories

Durability contract:

* every state change is one JSON line appended to ``journal.jsonl``; a
  process crash at any instant loses at most the line being written;
* recovery loads ``snapshot.json`` (if present) then replays the journal.
  A torn trailing line — the signature of a crash mid-append — is dropped
  and counted (``jobs.journal_torn_lines``), never fatal.  Replay is
  idempotent: upserts overwrite, events dedupe on their sequence number;
* when the journal grows past ``compact_every`` lines the store writes a
  fresh snapshot (tmp + ``os.replace``) and truncates the journal.  A crash
  between the two steps merely replays journal lines onto an already-current
  snapshot — the same idempotence that makes recovery safe makes compaction
  safe;
* :meth:`refresh` tail-reads lines appended by *other* processes (the CLI
  submitting into a directory a server is working), so one coordinator can
  pick up work queued offline.  Appends by this process never assume they
  landed at the read watermark: when a foreign writer interleaved lines the
  watermark stays put and refresh replays them (own-line replay is
  idempotent), and a foreign torn tail is newline-terminated before the next
  append so two writers' bytes never fuse into one corrupt line.  Compaction
  and GC belong to the coordinator only.

Fault injection: a ``journal_torn`` rule in ``REPRO_FAULTS`` makes an
append write half its line and hard-exit — a power cut mid-write — so the
chaos suite can exercise torn-tail recovery end to end (conditions:
``line=N`` matches the Nth append of the process).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Iterable

from ..errors import JobError, UnknownJobError
from ..observability.metrics import get_registry
from ..resilience.events import record_event
from ..resilience.faults import get_fault_plan
from .model import JobRecord

__all__ = ["JobStore"]

JOURNAL_NAME = "journal.jsonl"
SNAPSHOT_NAME = "snapshot.json"
_SNAPSHOT_VERSION = 1

#: Progress events retained per job (oldest dropped beyond this).
_MAX_EVENTS_PER_JOB = 10_000


class JobStore:
    """Durable registry of :class:`~repro.jobs.model.JobRecord` objects."""

    def __init__(
        self,
        root: Path | str,
        *,
        compact_every: int = 1024,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        for sub in ("inputs", "results", "checkpoints"):
            (self.root / sub).mkdir(exist_ok=True)
        self.compact_every = int(compact_every)
        self._clock = clock
        self._lock = threading.RLock()
        self._jobs: dict[str, JobRecord] = {}
        self._events: dict[str, list[dict]] = {}
        self._seq = 0  # submit-order sequence (FIFO tie-break)
        self._read_pos = 0  # journal bytes consumed (refresh watermark)
        self._journal_lines = 0  # lines since last compaction (trigger)
        self._appends = 0  # total appends by this process (fault context)
        self._load()

    # -- paths ----------------------------------------------------------------

    @property
    def journal_path(self) -> Path:
        return self.root / JOURNAL_NAME

    @property
    def snapshot_path(self) -> Path:
        return self.root / SNAPSHOT_NAME

    def input_path(self, job_id: str, suffix: str = ".npy") -> Path:
        return self.root / "inputs" / f"{job_id}{suffix}"

    def result_path(self, job_id: str, suffix: str = ".npz") -> Path:
        return self.root / "results" / f"{job_id}{suffix}"

    def checkpoint_dir(self, job_id: str) -> Path:
        return self.root / "checkpoints" / job_id

    # -- recovery -------------------------------------------------------------

    def _load(self) -> None:
        """Snapshot + full journal replay (fresh process / truncated file)."""
        with self._lock:
            self._jobs.clear()
            self._events.clear()
            self._seq = 0
            self._read_pos = 0
            self._journal_lines = 0
            if self.snapshot_path.exists():
                try:
                    snap = json.loads(self.snapshot_path.read_text())
                except (OSError, json.JSONDecodeError) as exc:
                    raise JobError(
                        f"unreadable job snapshot {self.snapshot_path}: {exc} "
                        "(delete it to rebuild from the journal)"
                    ) from exc
                self._seq = int(snap.get("seq", 0))
                for jid, rec in snap.get("jobs", {}).items():
                    self._jobs[jid] = JobRecord.from_dict(rec)
                for jid, events in snap.get("events", {}).items():
                    self._events[jid] = list(events)
            self._consume_journal(initial=True)

    def refresh(self) -> int:
        """Replay journal lines appended since the last read; returns count.

        Detects truncation (compaction by another process shrank the file
        below our watermark) and falls back to a full reload.
        """
        with self._lock:
            try:
                size = self.journal_path.stat().st_size
            except FileNotFoundError:
                size = 0
            if size < self._read_pos:
                self._load()
                return 0
            if size == self._read_pos:
                return 0
            return self._consume_journal(initial=False)

    def _consume_journal(self, *, initial: bool) -> int:
        """Apply complete journal lines beyond the watermark.

        A trailing chunk without a newline is a line still being written (or
        torn by a crash): it is left unconsumed on refresh, and dropped with
        a counted event on initial load (the writer is gone).
        """
        if not self.journal_path.exists():
            return 0
        with self.journal_path.open("rb") as fh:
            fh.seek(self._read_pos)
            data = fh.read()
        applied = 0
        consumed = 0
        lines = data.split(b"\n")
        tail = lines.pop()  # bytes after the last newline ("" when none)
        for chunk in lines:
            consumed += len(chunk) + 1
            if not chunk:
                continue
            try:
                entry = json.loads(chunk)
                self._apply(entry)
                applied += 1
                self._journal_lines += 1
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                record_event("jobs.journal_corrupt_lines")
                get_registry().counter("repro_jobs_journal_corrupt_total").inc()
        if tail and initial:
            record_event("jobs.journal_torn_lines")
            get_registry().counter("repro_jobs_journal_torn_total").inc()
            # The writer is gone: skip the torn tail, and terminate it so the
            # next append starts on a fresh line instead of fusing with it.
            with self.journal_path.open("ab") as fh:
                fh.write(b"\n")
            consumed += len(tail) + 1
        self._read_pos += consumed
        return applied

    def _apply(self, entry: dict) -> None:
        kind = entry.get("t")
        if kind == "job":
            rec = JobRecord.from_dict(entry["job"])
            events = self._events.get(rec.job_id)
            if events:
                # Never regress the event sequence: the record may have been
                # serialized before events that are already indexed (a crash
                # between an event append and the next upsert, or a replay of
                # our own older line after a foreign writer interleaved).
                rec.events_seq = max(rec.events_seq, events[-1]["seq"])
            self._jobs[rec.job_id] = rec
            self._seq = max(self._seq, rec.submit_seq)
        elif kind == "event":
            jid = entry["job_id"]
            events = self._events.setdefault(jid, [])
            seq = int(entry["seq"])
            if not events or seq > events[-1]["seq"]:  # replay dedupe
                events.append({k: v for k, v in entry.items() if k != "t"})
                if len(events) > _MAX_EVENTS_PER_JOB:
                    del events[: len(events) - _MAX_EVENTS_PER_JOB]
            rec = self._jobs.get(jid)
            if rec is not None and seq > rec.events_seq:
                rec.events_seq = seq
        elif kind == "gone":
            self._jobs.pop(entry["job_id"], None)
            self._events.pop(entry["job_id"], None)

    # -- journaling -----------------------------------------------------------

    def _tail_unterminated(self) -> bool:
        """True when the journal ends mid-line — a foreign writer's torn tail."""
        try:
            size = self.journal_path.stat().st_size
        except FileNotFoundError:
            return False
        if size == 0:
            return False
        with self.journal_path.open("rb") as fh:
            fh.seek(size - 1)
            return fh.read(1) != b"\n"

    def _append(self, entry: dict) -> None:
        line = json.dumps(entry, separators=(",", ":")).encode() + b"\n"
        self._appends += 1
        torn = get_fault_plan().should_fire("journal_torn", line=self._appends)
        # A foreign writer (CLI submitting into a live server's directory)
        # may have crashed mid-append since our last look: terminate its torn
        # tail first, so our line starts fresh instead of fusing with it into
        # one corrupt line that loses BOTH entries for every reader.
        lead = b""
        if self._tail_unterminated():
            record_event("jobs.journal_torn_lines")
            get_registry().counter("repro_jobs_journal_torn_total").inc()
            lead = b"\n"
        with self.journal_path.open("ab") as fh:
            start = fh.tell()
            if torn:
                # A power cut mid-append: half the line, no newline, gone.
                fh.write(lead + line[: max(1, len(line) // 2)])
                fh.flush()
                os.fsync(fh.fileno())
                os._exit(137)
            fh.write(lead + line)
            end = fh.tell()
        self._journal_lines += 1
        # Advance the read watermark only when our bytes landed exactly at
        # it.  Otherwise a foreign writer interleaved lines the watermark
        # must not skip: refresh() replays them (and replaying our own line
        # alongside is idempotent — upserts overwrite, events dedupe).
        if start == self._read_pos and end == start + len(lead) + len(line):
            self._read_pos = end
        if self._journal_lines >= self.compact_every:
            self.compact()

    def compact(self) -> None:
        """Write an atomic snapshot of full state, then truncate the journal."""
        with self._lock:
            payload = {
                "version": _SNAPSHOT_VERSION,
                "seq": self._seq,
                "jobs": {jid: rec.to_dict() for jid, rec in self._jobs.items()},
                "events": self._events,
            }
            tmp = self.snapshot_path.with_suffix(f".tmp.{os.getpid()}")
            try:
                tmp.write_text(json.dumps(payload))
                os.replace(tmp, self.snapshot_path)
            except OSError as exc:
                tmp.unlink(missing_ok=True)
                raise JobError(f"cannot write job snapshot: {exc}") from exc
            self.journal_path.write_bytes(b"")
            self._read_pos = 0
            self._journal_lines = 0
            record_event("jobs.compactions")

    # -- registry -------------------------------------------------------------

    def new_job_id(self) -> tuple[str, int]:
        """Allocate the next (job id, submit seq); id is collision-hardened
        against a second process submitting into the same directory."""
        with self._lock:
            self._seq += 1
            return f"j{self._seq:06d}-{os.urandom(3).hex()}", self._seq

    def upsert(self, record: JobRecord) -> JobRecord:
        """Persist (journal) and index one record; stamps ``updated_at``."""
        with self._lock:
            record.updated_at = self._clock()
            self._jobs[record.job_id] = record
            self._append({"t": "job", "job": record.to_dict()})
            return record

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            rec = self._jobs.get(job_id)
            if rec is None:
                raise UnknownJobError(f"unknown job {job_id!r}")
            return rec

    def maybe_get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self, states: Iterable[str] | None = None) -> list[JobRecord]:
        """Records in submit order, optionally filtered by state."""
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda r: r.submit_seq)
            if states is not None:
                wanted = set(states)
                jobs = [r for r in jobs if r.state in wanted]
            return jobs

    def remove(self, job_id: str) -> None:
        """Forget a job (GC); journaled so the removal survives restart."""
        with self._lock:
            if job_id in self._jobs:
                self._jobs.pop(job_id, None)
                self._events.pop(job_id, None)
                self._append({"t": "gone", "job_id": job_id})

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    # -- progress events ------------------------------------------------------

    def append_event(self, job_id: str, kind: str, **data) -> dict:
        """Record one progress event with a monotone per-job sequence number."""
        with self._lock:
            rec = self.get(job_id)
            rec.events_seq += 1
            event = {"job_id": job_id, "seq": rec.events_seq, "ts": self._clock(), "kind": kind}
            event.update(data)
            events = self._events.setdefault(job_id, [])
            events.append(event)
            if len(events) > _MAX_EVENTS_PER_JOB:
                del events[: len(events) - _MAX_EVENTS_PER_JOB]
            self._append({"t": "event", **event})
            return event

    def events_after(
        self, job_id: str, cursor: int = 0, limit: int | None = None
    ) -> tuple[list[dict], int, bool]:
        """Events with ``seq > cursor``, the next cursor, and a gap flag.

        The returned cursor always advances to the last delivered event, so
        concurrent pollers each see a strictly increasing stream.  The stream
        is gap-free unless retention trimming (``_MAX_EVENTS_PER_JOB``)
        discarded events past the caller's cursor — a slow poller cannot get
        them back, but the returned ``truncated`` flag tells it the events
        between its cursor and the oldest retained one are gone, instead of
        silently skipping them.
        """
        with self._lock:
            self.get(job_id)  # raise UnknownJobError on bogus ids
            retained = self._events.get(job_id, [])
            truncated = bool(retained) and int(cursor) < retained[0]["seq"] - 1
            events = [e for e in retained if e["seq"] > int(cursor)]
            if limit is not None:
                events = events[: int(limit)]
            next_cursor = events[-1]["seq"] if events else int(cursor)
            return [dict(e) for e in events], next_cursor, truncated
