"""Priority + FIFO-fair job scheduling with leases and heartbeats.

The scheduler owns every state transition of the job state machine; the
store only persists what the scheduler decides.  Dispatch order is strict
priority (higher first) with FIFO submit order inside a priority band, so a
flood of low-priority work cannot starve an earlier submission at the same
priority and an operator can always jump the queue.

Leases are the crash detector: a worker that acquires a job must heartbeat
within ``lease_ttl_s`` or the job is *reclaimed* — sent back to ``queued``
for another attempt under the configured
:class:`~repro.resilience.RetryPolicy` backoff (``not_before`` gate), or
moved to ``failed`` with a structured error once ``max_attempts`` is spent.
Reclaim is how a SIGKILL'd worker's job survives: the next scheduler to
look at the store (same process or a restarted one) notices the expired
lease and re-queues the work, and checkpoint shards make the re-run cheap.

Cancellation is cooperative: ``cancel`` flips ``cancel_requested`` on a
running job and the runner's deadline guard turns that flag into a
:class:`~repro.errors.JobCancelledError` at the next per-slice check.

Thread-safety: every state transition holds one scheduler-level mutex for
its whole read-modify-write sequence.  The store's own lock only makes each
*call* atomic; :meth:`acquire` spans several (refresh, reclaim, select,
upsert) and mutates the live record the store handed out, so without the
outer mutex two runner threads could lease the same job and execute it
twice.

Process-safety: the mutex is a :class:`_TransitionLock` — the RLock above
plus an advisory ``flock`` on ``<jobs-dir>/scheduler.lock`` taken at the
outermost entry.  The journal alone is multi-*writer* durable but not
transactional: two replica processes sharing one jobs directory could both
refresh, both see the same queued job, and both lease it.  With the file
lock, refresh→select→lease is atomic across processes too, so a job is
executed by exactly one worker cluster-wide.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX: thread-safety only
    fcntl = None

from ..errors import JobError
from ..observability.metrics import get_registry
from ..resilience.events import record_event
from ..resilience.policy import RetryPolicy
from .model import (
    ACTIVE_STATES,
    CANCELLED,
    FAILED,
    JOB_KINDS,
    LEASED,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    JobRecord,
)
from .store import JobStore

__all__ = ["JobScheduler"]

#: Default retry backoff for reclaimed / retryably-failed jobs.
DEFAULT_RETRY_POLICY = RetryPolicy(max_attempts=3, base_delay_s=0.2, max_delay_s=5.0)


class _TransitionLock:
    """Reentrant thread lock + cross-process advisory file lock.

    The thread RLock serializes this process's runner threads; the
    ``flock`` (taken only at the outermost acquisition, tracked by a depth
    counter so nested transitions like acquire→reclaim_expired don't
    deadlock on the non-reentrant file lock) serializes replica processes
    sharing one jobs directory.  If the lock file cannot be opened the
    scheduler degrades to thread-level safety — correct for every
    single-process deployment, which is all that can exist then.
    """

    def __init__(self, path) -> None:
        self._local = threading.RLock()
        self._path = path
        self._depth = 0
        self._fh = None

    def __enter__(self) -> "_TransitionLock":
        self._local.acquire()
        self._depth += 1
        if self._depth == 1 and fcntl is not None:
            try:
                self._fh = open(self._path, "ab")
                fcntl.flock(self._fh, fcntl.LOCK_EX)
            except OSError:
                if self._fh is not None:
                    self._fh.close()
                self._fh = None
        return self

    def __exit__(self, *exc) -> None:
        self._depth -= 1
        if self._depth == 0 and self._fh is not None:
            try:
                fcntl.flock(self._fh, fcntl.LOCK_UN)
            except OSError:
                pass
            self._fh.close()
            self._fh = None
        self._local.release()


class JobScheduler:
    """Transitions :class:`JobRecord` objects through the job state machine."""

    def __init__(
        self,
        store: JobStore,
        *,
        lease_ttl_s: float = 30.0,
        retry_policy: RetryPolicy | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if lease_ttl_s <= 0:
            raise ValueError(f"lease_ttl_s must be positive, got {lease_ttl_s}")
        self.store = store
        self.lease_ttl_s = float(lease_ttl_s)
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self._clock = clock
        # Serializes whole transitions (see module docstring): reentrant so
        # acquire -> reclaim_expired nests, and flock-backed so replica
        # processes sharing the jobs directory cannot double-lease.
        self._mutex = _TransitionLock(store.root / "scheduler.lock")

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        kind: str,
        params: dict | None = None,
        *,
        priority: int = 0,
        max_attempts: int | None = None,
        session_id: str | None = None,
        input_path: str | None = None,
    ) -> JobRecord:
        """Queue one job; returns the journaled record."""
        if kind not in JOB_KINDS:
            raise JobError(f"unknown job kind {kind!r}; known: {sorted(JOB_KINDS)}")
        with self._mutex:
            # Pick up peer replicas' journal lines first so submit_seq is
            # FIFO-ordered across every process sharing the directory.
            self.store.refresh()
            job_id, seq = self.store.new_job_id()
            now = self._clock()
            record = JobRecord(
                job_id=job_id,
                kind=kind,
                params=dict(params or {}),
                priority=int(priority),
                submit_seq=seq,
                max_attempts=int(max_attempts if max_attempts is not None else self.retry_policy.max_attempts),
                created_at=now,
                session_id=session_id,
                input_path=input_path,
                checkpoint_dir=str(self.store.checkpoint_dir(job_id)),
            )
            self.store.upsert(record)
            self.store.append_event(job_id, "state", state=QUEUED)
        record_event("jobs.submitted")
        get_registry().counter("repro_jobs_submitted_total", kind=kind).inc()
        self._publish_gauges()
        return record

    # -- dispatch -------------------------------------------------------------

    def acquire(self, worker_id: str) -> JobRecord | None:
        """Lease the best runnable job (priority desc, then FIFO), or None.

        Picks up journal lines from other submitters and reclaims expired
        leases first, so a single acquire loop is a complete scheduler tick.
        """
        with self._mutex:
            self.store.refresh()
            self.reclaim_expired()
            now = self._clock()
            runnable = [
                r
                for r in self.store.list_jobs(states=(QUEUED,))
                if r.not_before <= now and not r.cancel_requested
            ]
            if not runnable:
                return None
            job = min(runnable, key=lambda r: (-r.priority, r.submit_seq))
            job.state = LEASED
            job.attempt += 1
            job.lease_owner = str(worker_id)
            job.lease_expires_at = now + self.lease_ttl_s
            self.store.upsert(job)
            self._publish_gauges()
            return job

    def started(self, job_id: str, worker_id: str) -> JobRecord:
        """Mark a leased job running (the worker is about to execute)."""
        with self._mutex:
            job = self._owned(job_id, worker_id)
            job.state = RUNNING
            self.store.upsert(job)
            self.store.append_event(job_id, "state", state=RUNNING, attempt=job.attempt, worker=worker_id)
            self._publish_gauges()
            return job

    def heartbeat(self, job_id: str, worker_id: str, *, progress: dict | None = None) -> JobRecord | None:
        """Extend the lease; returns None when the lease was lost.

        A worker whose heartbeat returns None must abandon the job silently:
        another worker already owns (or finished) the reclaimed attempt.
        """
        with self._mutex:
            # Refresh first: a peer replica may have reclaimed this lease
            # after we went silent, and its journal lines are the truth.
            self.store.refresh()
            rec = self.store.maybe_get(job_id)
            if rec is None or rec.state not in ACTIVE_STATES or rec.lease_owner != str(worker_id):
                record_event("jobs.lost_leases")
                return None
            rec.lease_expires_at = self._clock() + self.lease_ttl_s
            if progress:
                rec.progress = dict(progress)
            self.store.upsert(rec)
            return rec

    # -- completion -----------------------------------------------------------

    def complete(self, job_id: str, worker_id: str, result: dict, *, spans: list | None = None) -> JobRecord:
        with self._mutex:
            job = self._owned(job_id, worker_id)
            job.state = SUCCEEDED
            job.result = result
            job.error = None
            job.lease_owner = None
            job.lease_expires_at = None
            if spans:
                job.spans = list(spans)
            self.store.upsert(job)
            self.store.append_event(job_id, "state", state=SUCCEEDED)
            self._count_terminal(job)
            return job

    def fail(
        self,
        job_id: str,
        worker_id: str,
        error: dict,
        *,
        retryable: bool = True,
        spans: list | None = None,
    ) -> JobRecord:
        """Record a failed attempt: requeue with backoff, or go terminal."""
        with self._mutex:
            job = self._owned(job_id, worker_id)
            if spans:
                job.spans = list(job.spans) + list(spans)
            return self._fail_attempt(job, dict(error), retryable=retryable)

    def cancelled(self, job_id: str, worker_id: str, *, spans: list | None = None) -> JobRecord:
        """A worker observed the cancel flag and stopped cleanly."""
        with self._mutex:
            job = self._owned(job_id, worker_id)
            if spans:
                job.spans = list(job.spans) + list(spans)
            return self._go_cancelled(job)

    def cancel(self, job_id: str) -> JobRecord:
        """Client-side cancel: immediate when queued, cooperative when running."""
        with self._mutex:
            self.store.refresh()
            job = self.store.get(job_id)
            if job.terminal:
                return job
            if job.state == QUEUED:
                return self._go_cancelled(job)
            job.cancel_requested = True
            self.store.upsert(job)
            self.store.append_event(job_id, "cancel_requested")
            return job

    # -- lease reclaim --------------------------------------------------------

    def reclaim_expired(self) -> list[JobRecord]:
        """Requeue (or fail out) every job whose lease expired."""
        with self._mutex:
            now = self._clock()
            reclaimed = []
            for job in self.store.list_jobs(states=ACTIVE_STATES):
                if not job.lease_expired(now):
                    continue
                record_event("jobs.lease_reclaimed")
                get_registry().counter("repro_jobs_reclaimed_total").inc()
                self.store.append_event(
                    job.job_id, "lease_reclaimed", attempt=job.attempt, worker=job.lease_owner
                )
                error = {
                    "type": "JobError",
                    "error": f"lease expired on attempt {job.attempt} "
                    f"(worker {job.lease_owner!r} stopped heartbeating)",
                }
                if job.cancel_requested:
                    self._go_cancelled(job)
                else:
                    self._fail_attempt(job, error, retryable=True)
                reclaimed.append(job)
            if reclaimed:
                self._publish_gauges()
            return reclaimed

    # -- internals ------------------------------------------------------------

    def _owned(self, job_id: str, worker_id: str) -> JobRecord:
        # Cross-process ownership check: see the peers' reclaims first.
        self.store.refresh()
        job = self.store.get(job_id)
        if job.lease_owner != str(worker_id) or job.state not in ACTIVE_STATES:
            raise JobError(
                f"job {job_id} is not leased to worker {worker_id!r} "
                f"(state {job.state}, owner {job.lease_owner!r})"
            )
        return job

    def _fail_attempt(self, job: JobRecord, error: dict, *, retryable: bool) -> JobRecord:
        error.setdefault("attempt", job.attempt)
        job.lease_owner = None
        job.lease_expires_at = None
        job.error = error
        if retryable and job.attempt < job.max_attempts:
            job.state = QUEUED
            job.not_before = self._clock() + self.retry_policy.delay_s(
                max(job.attempt, 1), key=f"job:{job.job_id}"
            )
            self.store.upsert(job)
            self.store.append_event(job.job_id, "retry_scheduled", attempt=job.attempt, error=error)
            record_event("jobs.retries")
            get_registry().counter("repro_jobs_retries_total").inc()
        else:
            job.state = FAILED
            self.store.upsert(job)
            self.store.append_event(job.job_id, "state", state=FAILED, error=error)
            self._count_terminal(job)
        self._publish_gauges()
        return job

    def _go_cancelled(self, job: JobRecord) -> JobRecord:
        job.state = CANCELLED
        job.lease_owner = None
        job.lease_expires_at = None
        self.store.upsert(job)
        self.store.append_event(job.job_id, "state", state=CANCELLED)
        self._count_terminal(job)
        return job

    def _count_terminal(self, job: JobRecord) -> None:
        record_event(f"jobs.{job.state}")
        get_registry().counter("repro_jobs_terminal_total", state=job.state, kind=job.kind).inc()
        self._publish_gauges()

    def _publish_gauges(self) -> None:
        registry = get_registry()
        by_state: dict[str, int] = {}
        for rec in self.store.list_jobs():
            by_state[rec.state] = by_state.get(rec.state, 0) + 1
        registry.gauge("repro_jobs_queued").set(by_state.get(QUEUED, 0))
        registry.gauge("repro_jobs_running").set(
            by_state.get(RUNNING, 0) + by_state.get(LEASED, 0)
        )
