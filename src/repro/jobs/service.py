"""The job façade the platform, CLI, and tests share.

:class:`JobService` wires a :class:`~repro.jobs.store.JobStore`,
:class:`~repro.jobs.scheduler.JobScheduler`, and
:class:`~repro.jobs.runner.JobRunner` over one jobs directory and exposes
the five client verbs (submit / status / result / events / cancel) plus the
operator verbs (gc, snapshot, start/stop workers).

Inputs are made durable at submit time: ``submit_segment_volume`` snapshots
the voxel array into ``jobs/inputs/`` before the job is journaled, so the
job survives the session (and the server) that created it.
"""

from __future__ import annotations

import os
import shutil
import time
from pathlib import Path
from typing import Callable

import numpy as np

from ..errors import JobError
from ..observability.trace import Tracer
from ..resilience.events import record_event
from ..resilience.policy import RetryPolicy
from .model import TERMINAL_STATES, JobRecord
from .runner import JobRunner
from .scheduler import JobScheduler
from .store import JobStore

__all__ = ["JobService"]


def _remove_input(path: Path) -> None:
    """Delete an input snapshot: a file, or a slice-directory copy."""
    if path.is_dir():
        shutil.rmtree(path, ignore_errors=True)
    else:
        path.unlink(missing_ok=True)


class JobService:
    """One jobs directory, fully wired: persistence, scheduling, execution."""

    def __init__(
        self,
        jobs_dir: Path | str,
        *,
        n_workers: int = 1,
        lease_ttl_s: float = 30.0,
        retry_policy: RetryPolicy | None = None,
        tracer: Tracer | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.store = JobStore(jobs_dir, clock=clock)
        self.scheduler = JobScheduler(
            self.store, lease_ttl_s=lease_ttl_s, retry_policy=retry_policy, clock=clock
        )
        self.runner = JobRunner(self.scheduler, self.store, n_workers=n_workers, tracer=tracer)
        self._clock = clock

    # -- worker lifecycle ------------------------------------------------------

    def start(self) -> "JobService":
        self.runner.start()
        return self

    def stop(self, timeout_s: float = 5.0) -> None:
        self.runner.stop(timeout_s=timeout_s)

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        kind: str,
        params: dict | None = None,
        *,
        priority: int = 0,
        max_attempts: int | None = None,
        session_id: str | None = None,
        input_path: str | None = None,
    ) -> JobRecord:
        """Queue a job of any known kind; see :meth:`submit_segment_volume`."""
        return self.scheduler.submit(
            kind,
            params,
            priority=priority,
            max_attempts=max_attempts,
            session_id=session_id,
            input_path=input_path,
        )

    def submit_segment_volume(
        self,
        voxels: np.ndarray,
        prompt: str,
        *,
        temporal: bool = True,
        temporal_mode: str = "meanbox",
        n_workers: int = 1,
        round_slices: int = 1,
        deadline_s: float | None = None,
        priority: int = 0,
        max_attempts: int | None = None,
        session_id: str | None = None,
    ) -> JobRecord:
        """Snapshot the volume to durable storage and queue a Mode B job.

        The snapshot is written *before* the job is journaled (a crash in
        between leaves an orphan file, cleaned by :meth:`gc` — never a job
        pointing at a missing input).
        """
        voxels = np.asarray(voxels)
        if voxels.ndim != 3:
            raise JobError(f"segment_volume jobs need a 3-D volume, got shape {voxels.shape}")
        snap = self.store.input_path(f"vol-{os.urandom(6).hex()}")
        np.save(snap, voxels, allow_pickle=False)
        if temporal_mode not in ("meanbox", "propagate"):
            raise JobError(f"unknown temporal_mode {temporal_mode!r}")
        params = {
            "prompt": str(prompt),
            "temporal": bool(temporal),
            "temporal_mode": str(temporal_mode),
            "n_workers": int(n_workers),
            "round_slices": int(round_slices),
        }
        if deadline_s is not None:
            params["deadline_s"] = float(deadline_s)
        return self.submit(
            "segment_volume",
            params,
            priority=priority,
            max_attempts=max_attempts,
            session_id=session_id,
            input_path=str(snap),
        )

    def submit_segment_volume_path(
        self,
        path: Path | str,
        prompt: str,
        *,
        temporal: bool = True,
        temporal_mode: str = "meanbox",
        on_corrupt: str = "fail",
        memory_budget_mb: float = 64.0,
        deadline_s: float | None = None,
        priority: int = 0,
        max_attempts: int | None = None,
        session_id: str | None = None,
    ) -> JobRecord:
        """Queue a *streaming* Mode B job over an on-disk volume.

        The volume is snapshotted by copying the source file (or slice
        directory) — plus its checksum sidecar, when present — into
        ``jobs/inputs/``; the runner opens it as a
        :class:`~repro.io.LazyVolume` and streams it through checkpointed
        decode rounds, so the voxels are never fully resident.  This is the
        upload-by-path route for volumes too large to post through the API.
        """
        from ..io.integrity import sidecar_path
        from ..io.lazy import open_lazy_volume

        src = Path(path)
        if not src.exists():
            raise JobError(f"no such volume source: {os.fspath(src)!r}")
        if temporal_mode not in ("meanbox", "propagate"):
            raise JobError(f"unknown temporal_mode {temporal_mode!r}")
        if on_corrupt not in ("fail", "skip", "degrade"):
            raise JobError(f"unknown on_corrupt policy {on_corrupt!r}")
        # Validate the source opens *before* the copy — a structured error
        # at submit beats a failed job an hour later.
        with open_lazy_volume(src):
            pass
        stem = f"vol-{os.urandom(6).hex()}"
        if src.is_dir():
            snap = self.store.input_path(stem, suffix="")
            shutil.copytree(src, snap)
        else:
            snap = self.store.input_path(stem, suffix=src.suffix)
            shutil.copyfile(src, snap)
            side = sidecar_path(src)
            if side.is_file():
                shutil.copyfile(side, sidecar_path(snap))
        params = {
            "prompt": str(prompt),
            "temporal": bool(temporal),
            "temporal_mode": str(temporal_mode),
            "stream": True,
            "on_corrupt": str(on_corrupt),
            "memory_budget_mb": float(memory_budget_mb),
        }
        if deadline_s is not None:
            params["deadline_s"] = float(deadline_s)
        return self.submit(
            "segment_volume",
            params,
            priority=priority,
            max_attempts=max_attempts,
            session_id=session_id,
            input_path=str(snap),
        )

    def submit_zoo_segment(
        self,
        path: Path | str,
        preset: str,
        *,
        mode: str = "best",
        stream: bool = False,
        on_corrupt: str = "fail",
        memory_budget_mb: float = 64.0,
        ensemble: dict | None = None,
        content_key: str | None = None,
        pixel_size_nm: float | None = None,
        deadline_s: float | None = None,
        priority: int = 0,
        max_attempts: int | None = None,
        session_id: str | None = None,
    ) -> tuple[JobRecord, bool]:
        """Queue one zoo job for a volume; idempotent by content key.

        Returns ``(record, created)``.  Identity is the hash of (volume
        content key, preset fingerprint, mode, ensemble params, stream flag,
        pixel size): resubmitting the same volume under the same registry
        state reuses any existing non-failed job instead of duplicating it —
        what makes crash-and-rerun batch orchestration safe.  Failed or
        cancelled jobs do *not* block a fresh attempt.
        """
        import hashlib
        import json

        from ..io.integrity import sidecar_path
        from ..io.lazy import open_lazy_volume
        from ..zoo.registry import load_registry

        src = Path(path)
        if not src.exists():
            raise JobError(f"no such volume source: {os.fspath(src)!r}")
        if mode not in ("best", "ensemble"):
            raise JobError(f"zoo mode must be 'best' or 'ensemble', got {mode!r}")
        if on_corrupt not in ("fail", "skip", "degrade"):
            raise JobError(f"unknown on_corrupt policy {on_corrupt!r}")
        if mode == "ensemble" and stream:
            raise JobError(
                "ensemble mode needs per-slice detections for semantic verification "
                "and cannot run over the streaming path; drop --stream or use mode 'best'"
            )
        registry = load_registry(self.store.root)
        task = registry.get(preset)  # raises UnknownPresetError
        if content_key is None:
            with open_lazy_volume(src) as vol:
                content_key = vol.content_key()
        else:
            with open_lazy_volume(src):
                pass
        zoo_key = hashlib.sha1(
            json.dumps(
                {
                    "content_key": content_key,
                    "preset": task.fingerprint(),
                    "mode": mode,
                    "ensemble": ensemble or {},
                    "stream": bool(stream),
                    "pixel_size_nm": pixel_size_nm,
                },
                sort_keys=True,
            ).encode()
        ).hexdigest()[:16]
        self.store.refresh()
        for rec in self.store.list_jobs():
            if (
                rec.kind == "zoo_segment"
                and rec.params.get("zoo_key") == zoo_key
                and rec.state not in ("failed", "cancelled")
            ):
                return rec, False
        stem = f"vol-{os.urandom(6).hex()}"
        if src.is_dir():
            snap = self.store.input_path(stem, suffix="")
            shutil.copytree(src, snap)
        else:
            snap = self.store.input_path(stem, suffix=src.suffix)
            shutil.copyfile(src, snap)
            side = sidecar_path(src)
            if side.is_file():
                shutil.copyfile(side, sidecar_path(snap))
        params = {
            "preset": task.name,
            "preset_fingerprint": task.fingerprint(),
            "registry_fingerprint": registry.fingerprint(),
            "prompt": task.prompt,
            "mode": mode,
            "zoo_key": zoo_key,
            "content_key": content_key,
            "source_name": src.name,
            "stream": bool(stream),
            "on_corrupt": str(on_corrupt),
            "memory_budget_mb": float(memory_budget_mb),
        }
        if pixel_size_nm is not None:
            params["pixel_size_nm"] = float(pixel_size_nm)
        if ensemble:
            params["ensemble"] = dict(ensemble)
        if deadline_s is not None:
            params["deadline_s"] = float(deadline_s)
        rec = self.submit(
            "zoo_segment",
            params,
            priority=priority,
            max_attempts=max_attempts,
            session_id=session_id,
            input_path=str(snap),
        )
        return rec, True

    # -- client verbs ----------------------------------------------------------

    def status(self, job_id: str) -> dict:
        """The public view of one job (refreshes from the journal first)."""
        self.store.refresh()
        return self.store.get(job_id).public_view()

    def result(self, job_id: str) -> dict:
        """Terminal outcome: result payload, structured error, or not-done."""
        self.store.refresh()
        rec = self.store.get(job_id)
        out = {"job_id": rec.job_id, "state": rec.state, "done": rec.terminal}
        if rec.result is not None:
            out["result"] = dict(rec.result)
        if rec.error is not None:
            out["error"] = dict(rec.error)
        return out

    def events(self, job_id: str, cursor: int = 0, limit: int | None = None) -> dict:
        """Progress events past ``cursor`` plus the monotone next cursor.

        ``truncated: true`` appears when retention trimming discarded events
        between the caller's cursor and the oldest retained one — the stream
        is still strictly increasing, but no longer complete.
        """
        self.store.refresh()
        events, next_cursor, truncated = self.store.events_after(job_id, cursor=cursor, limit=limit)
        out = {"job_id": job_id, "events": events, "cursor": next_cursor}
        if truncated:
            out["truncated"] = True
        return out

    def cancel(self, job_id: str) -> dict:
        """Cancel a job: immediate when queued, cooperative when running."""
        return self.scheduler.cancel(job_id).public_view()

    def wait(self, job_id: str, *, timeout_s: float = 60.0, poll_s: float = 0.05) -> dict:
        """Block until the job is terminal (tests / CLI watch); returns status."""
        t0 = time.monotonic()
        while True:
            self.store.refresh()
            self.scheduler.reclaim_expired()
            rec = self.store.get(job_id)
            if rec.terminal:
                return rec.public_view()
            if time.monotonic() - t0 > timeout_s:
                raise JobError(f"timed out waiting {timeout_s}s for job {job_id} ({rec.state})")
            time.sleep(poll_s)

    # -- operator verbs --------------------------------------------------------

    def gc(self, *, max_age_s: float = 24 * 3600.0) -> dict:
        """Delete terminal jobs (and their artifacts) older than ``max_age_s``.

        Also sweeps orphaned input snapshots no live job references — the
        residue of a crash between input save and journal append.  Orphans
        get the same ``max_age_s`` grace (by file mtime): submit writes the
        input *before* the journal line, and a shared-dir CLI submitter's
        line may not be visible to this process yet, so a freshly written
        snapshot is very likely a job mid-submission, not residue.
        """
        self.store.refresh()
        now = self._clock()
        removed = []
        for rec in self.store.list_jobs(states=TERMINAL_STATES):
            if now - rec.updated_at < max_age_s:
                continue
            self._delete_artifacts(rec)
            self.store.remove(rec.job_id)
            removed.append(rec.job_id)
        referenced = {r.input_path for r in self.store.list_jobs() if r.input_path}
        orphans = 0
        wall_now = time.time()  # mtimes are wall-clock, not self._clock
        for path in (self.store.root / "inputs").iterdir():
            if str(path) in referenced:
                continue
            try:
                age_s = wall_now - path.stat().st_mtime
            except OSError:
                continue  # swept by a peer mid-scan
            if age_s < max_age_s:
                continue
            _remove_input(path)
            orphans += 1
        self.store.compact()
        if removed or orphans:
            record_event("jobs.gc_removed", len(removed) + orphans)
        return {"removed": removed, "orphan_inputs": orphans}

    def _delete_artifacts(self, rec: JobRecord) -> None:
        if rec.input_path:
            _remove_input(Path(rec.input_path))
        self.store.result_path(rec.job_id).unlink(missing_ok=True)
        if rec.checkpoint_dir:
            shutil.rmtree(rec.checkpoint_dir, ignore_errors=True)

    def snapshot(self) -> dict:
        """Queue overview for the dashboard / metrics: counts + recent jobs."""
        self.store.refresh()
        jobs = self.store.list_jobs()
        by_state: dict[str, int] = {}
        for rec in jobs:
            by_state[rec.state] = by_state.get(rec.state, 0) + 1
        return {
            "total": len(jobs),
            "by_state": by_state,
            "jobs": [rec.public_view() for rec in jobs[-20:]],
        }
