"""Job execution: worker threads that lease, run, heartbeat, and checkpoint.

A :class:`JobRunner` owns a small pool of worker *threads* inside the
serving process.  Each worker loops: acquire a lease from the scheduler,
execute the payload, report terminal state.  The heavy lifting of a
``segment_volume`` payload fans out through the existing
:func:`repro.parallel.pool.run_partitioned` process pool, one *round* of
slices at a time, with every completed slice persisted through
:class:`~repro.resilience.CheckpointManager` — so a worker (or the whole
process) killed mid-job resumes from the last completed slice shard and the
final masks are bit-identical to an uninterrupted run.

Determinism note: the decode stage receives the *full-sequence* temporally
refined boxes from the coordinating thread, so masks are independent of the
worker count and of where a resume happened — unlike the halo-approximate
``segment_volume_batch`` path, which trades exactness for block locality.

Cancellation rides the request-deadline machinery: the runner binds a
:class:`JobGuard` via :func:`repro.resilience.serving.request_scope`, and
every per-slice ``check_deadline`` (or explicit ``guard.check()``) raises
:class:`~repro.errors.JobCancelledError` once the record's cancel flag is
set — no thread is ever killed, work stops at the next slice boundary.

Fault hooks: ``job_crash`` (REPRO_FAULTS) hard-exits the process at the
start of a decode round (``slice=N`` matches the first slice of the round),
the job-queue twin of ``volume_crash``.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from typing import Callable

import numpy as np

from ..cache import array_content_key, combine_keys, config_fingerprint
from ..core.pipeline import ZenesisConfig, ZenesisPipeline
from ..errors import DeadlineExceededError, JobCancelledError, JobError, ReproError
from ..observability.metrics import get_registry
from ..observability.trace import Tracer, export_spans
from ..parallel.pool import run_partitioned
from ..parallel.scheduler import block_partition
from ..parallel.sharedmem import SharedArraySpec, SharedNDArray
from ..resilience.checkpoint import CheckpointManager
from ..resilience.events import record_event
from ..resilience.faults import get_fault_plan
from ..resilience.policy import Deadline
from ..resilience.serving.lifecycle import request_scope
from .model import JobRecord
from .scheduler import JobScheduler
from .store import JobStore

__all__ = ["JobRunner", "JobGuard"]


class JobGuard:
    """Deadline-shaped cancellation token bound into ``request_scope``.

    Duck-types :class:`~repro.resilience.Deadline` for the parts the
    serving machinery uses (``check``/``remaining``/``clamp``/``expired``),
    layering the job's cooperative cancel flag — and, when ``worker_id`` is
    given, a *lease-ownership* check — on top of an optional wall-clock
    budget.  The ownership check is what stops a stalled worker from
    finishing a job another replica already reclaimed and double-writing
    the result: the moment the record names a different owner, the next
    ``check`` aborts the round with :class:`JobCancelledError`.

    Cross-process visibility: checks re-read the shared journal at most
    every ``lease_check_s`` (rate-limited — a per-slice refresh would turn
    every decode round into journal IO).
    """

    def __init__(
        self,
        store: JobStore,
        job_id: str,
        deadline: Deadline | None = None,
        *,
        worker_id: str | None = None,
        lease_check_s: float = 0.2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._store = store
        self._job_id = job_id
        self._deadline = deadline
        self._worker_id = None if worker_id is None else str(worker_id)
        self._lease_check_s = float(lease_check_s)
        self._clock = clock
        self._last_refresh = clock()  # the record was just read at acquire

    def check(self, what: str = "job") -> None:
        if self._deadline is not None:
            self._deadline.check(what)
        now = self._clock()
        if now - self._last_refresh >= self._lease_check_s:
            self._last_refresh = now
            try:
                self._store.refresh()
            except Exception:
                pass  # journal IO blip: keep the stale view; next check retries
        rec = self._store.maybe_get(self._job_id)
        if rec is None:
            return
        if rec.cancel_requested:
            raise JobCancelledError(f"job {self._job_id} cancelled during {what}")
        if self._worker_id is not None and rec.lease_owner != self._worker_id:
            record_event("jobs.lease_lost_aborts")
            raise JobCancelledError(
                f"job {self._job_id} lease lost during {what} "
                f"(owner is now {rec.lease_owner!r}); aborting this attempt"
            )

    def remaining(self) -> float:
        return self._deadline.remaining() if self._deadline is not None else float("inf")

    def clamp(self, wait_s: float) -> float:
        return self._deadline.clamp(wait_s) if self._deadline is not None else float(wait_s)

    @property
    def expired(self) -> bool:
        return self._deadline.expired if self._deadline is not None else False


# -- decode worker (module-level: picklable by reference under fork) -----------

#: Per-process pipeline memo so the inline (single-partition) pool path does
#: not rebuild models every round; forked children inherit it copy-on-write.
#: Keyed by config_fingerprint, which deliberately excludes output-invariant
#: perf knobs (ZenesisConfig.__fingerprint_exclude__): configs differing only
#: there share one pipeline — same bytes out, only throughput differs.
_PIPELINE_MEMO: dict[str, ZenesisPipeline] = {}


def _memo_pipeline(config: ZenesisConfig) -> ZenesisPipeline:
    key = config_fingerprint(config)
    pipeline = _PIPELINE_MEMO.get(key)
    if pipeline is None:
        pipeline = ZenesisPipeline(config)
        _PIPELINE_MEMO[key] = pipeline
    return pipeline


def _decode_round(
    partition,
    vol_spec: SharedArraySpec,
    out_spec: SharedArraySpec,
    z_list: tuple[int, ...],
    boxes_by_index: tuple,
    config: ZenesisConfig,
    prompt: str,
) -> dict:
    """Pool worker: decode one round's owned slices into the shared mask array.

    ``partition.owned`` indexes into ``z_list`` (the round's absolute slice
    numbers).  Adaptation and grounding re-run per slice — deterministic and
    served from the (fork-inherited) content-addressed cache — while the
    temporally refined boxes come precomputed from the coordinator, keeping
    masks independent of worker count and of resume boundaries.
    """
    pipeline = _memo_pipeline(config)
    vol = SharedNDArray.attach(vol_spec)
    out = SharedNDArray.attach(out_spec)
    try:
        for i in partition.owned:
            z = int(z_list[i])
            det_img, seg_img = pipeline.adapt(vol.array[z])
            detection = pipeline.ground(det_img, prompt, slice_index=z)
            mask, _, _ = pipeline.segment_with_boxes(seg_img, detection, boxes_by_index[i])
            out.array[z] = mask
        return {"worker": partition.worker, "n_slices": len(partition.owned)}
    finally:
        vol.close()
        out.close()


class JobRunner:
    """Executes leased jobs on background worker threads."""

    def __init__(
        self,
        scheduler: JobScheduler,
        store: JobStore,
        *,
        n_workers: int = 1,
        poll_s: float = 0.1,
        tracer: Tracer | None = None,
        decode_timeout_s: float = 600.0,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.scheduler = scheduler
        self.store = store
        self.n_workers = int(n_workers)
        self.poll_s = float(poll_s)
        self.tracer = tracer  # spans of finished jobs are adopted here
        self.decode_timeout_s = float(decode_timeout_s)
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._dispatch: dict[str, Callable] = {
            "segment_volume": self._run_segment_volume,
            "evaluate": self._run_evaluate,
            "synthesize": self._run_synthesize,
            "zoo_segment": self._run_zoo_segment,
        }

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "JobRunner":
        if self._threads:
            return self
        self._stop.clear()
        for i in range(self.n_workers):
            # The pid prefix makes worker ids unique across replica
            # processes sharing one jobs directory — two replicas both
            # running a "w0" would satisfy each other's lease-owner checks.
            t = threading.Thread(
                target=self._worker_loop, args=(f"{os.getpid()}-w{i}",), daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    @property
    def healthy(self) -> bool:
        """False once any started worker thread died unexpectedly.

        A replica whose runner threads are gone still answers HTTP but can
        never execute the async work routed to it — ``GET /ready`` folds
        this in so the router stops handing jobs to a zombie.
        """
        if self._stop.is_set():
            return True  # deliberate stop in progress, not a crash
        return all(t.is_alive() for t in self._threads)

    def stop(self, timeout_s: float = 5.0) -> None:
        """Stop accepting new jobs; wait briefly for running ones.

        A job still running past the window is *abandoned*, not killed: its
        lease expires and the next runner (this process restarted, or a
        peer) reclaims and resumes it from its checkpoint shards.
        """
        self._stop.set()
        deadline = Deadline(max(timeout_s, 1e-9), clock=time.monotonic)
        for t in self._threads:
            t.join(timeout=deadline.remaining())
        abandoned = sum(1 for t in self._threads if t.is_alive())
        if abandoned:
            record_event("jobs.abandoned_on_stop", abandoned)
        self._threads = []

    def run_until_idle(self, *, worker_id: str = "inline", max_jobs: int | None = None) -> int:
        """Drain the queue on the calling thread (CLI / tests); returns count."""
        done = 0
        while max_jobs is None or done < max_jobs:
            job = self.scheduler.acquire(worker_id)
            if job is None:
                break
            self._execute(job, worker_id)
            done += 1
        return done

    # -- the worker loop ------------------------------------------------------

    def _worker_loop(self, worker_id: str) -> None:
        while not self._stop.is_set():
            try:
                job = self.scheduler.acquire(worker_id)
            except Exception:  # journal IO trouble: back off, keep serving
                record_event("jobs.scheduler_errors")
                self._stop.wait(self.poll_s * 5)
                continue
            if job is None:
                self._stop.wait(self.poll_s)
                continue
            self._execute(job, worker_id)

    def _execute(self, job: JobRecord, worker_id: str) -> None:
        tracer = Tracer(f"job:{job.job_id}")
        root = tracer.begin("job.run", job=job.job_id, kind=job.kind, attempt=job.attempt)
        registry = get_registry()
        t0 = time.perf_counter()
        budget = job.params.get("deadline_s")
        guard = JobGuard(
            self.store,
            job.job_id,
            Deadline(float(budget)) if budget else None,
            worker_id=worker_id,
        )
        spans: list = []

        def finish(error: BaseException | None = None) -> list:
            tracer.finish(root, error=error)
            tracer.close()
            exported = export_spans(tracer)
            if self.tracer is not None:
                # Adopt the job's span tree into the server trace so one
                # timeline shows requests and the background work they spawned.
                self.tracer.adopt(exported, tid=job.submit_seq, job=job.job_id)
            registry.histogram("repro_jobs_duration_seconds", kind=job.kind).observe(
                time.perf_counter() - t0
            )
            return exported

        try:
            self.scheduler.started(job.job_id, worker_id)
        except JobError:
            finish()
            return  # lease lost between acquire and start; someone else owns it
        def report(outcome: Callable[[], object]) -> None:
            # A lease reclaimed mid-run means another attempt owns the job
            # now; our terminal report must yield, not crash the worker loop.
            try:
                outcome()
            except JobError:
                record_event("jobs.stale_reports")

        try:
            with request_scope(guard):
                handler = self._dispatch.get(job.kind)
                if handler is None:
                    raise JobError(f"no runner for job kind {job.kind!r}")
                result = handler(job, worker_id, guard, tracer)
        except JobCancelledError:
            spans = finish()
            report(lambda: self.scheduler.cancelled(job.job_id, worker_id, spans=spans))
        except DeadlineExceededError as exc:
            spans = finish(exc)
            report(
                lambda: self.scheduler.fail(
                    job.job_id,
                    worker_id,
                    {"type": type(exc).__name__, "error": str(exc)},
                    retryable=False,  # the job's own budget is spent; retry won't fit either
                    spans=spans,
                )
            )
        except ReproError as exc:
            spans = finish(exc)
            report(
                lambda: self.scheduler.fail(
                    job.job_id,
                    worker_id,
                    {"type": type(exc).__name__, "error": str(exc)},
                    retryable=True,
                    spans=spans,
                )
            )
        except Exception as exc:  # a runner bug: terminal, keep the traceback
            spans = finish(exc)
            report(
                lambda: self.scheduler.fail(
                    job.job_id,
                    worker_id,
                    {
                        "type": type(exc).__name__,
                        "error": str(exc),
                        "traceback": traceback.format_exc(limit=10),
                    },
                    retryable=False,
                    spans=spans,
                )
            )
        else:
            spans = finish()
            report(lambda: self.scheduler.complete(job.job_id, worker_id, result, spans=spans))

    def _progress(self, job: JobRecord, worker_id: str, done: int, total: int, **extra) -> None:
        """One progress tick: journal an event and extend the lease."""
        progress = {"done": int(done), "total": int(total), **extra}
        self.store.append_event(job.job_id, "progress", **progress)
        if self.scheduler.heartbeat(job.job_id, worker_id, progress=progress) is None:
            # The lease was reclaimed from under us (e.g. a long GC pause):
            # stop quietly; the reclaimed attempt owns the job now.
            raise JobCancelledError(f"job {job.job_id} lease lost at {done}/{total}")

    # -- payloads -------------------------------------------------------------

    def _run_segment_volume(
        self,
        job: JobRecord,
        worker_id: str,
        guard: JobGuard,
        tracer: Tracer,
        *,
        voxels: np.ndarray | None = None,
        config: ZenesisConfig | None = None,
        prompt: str | None = None,
    ) -> dict:
        """Checkpointed, pool-decoded Mode B; resume is bit-identical.

        ``voxels``/``config``/``prompt`` let the zoo handler reuse this
        payload with a preset-built config and a lazily decoded volume; when
        omitted, everything comes from the job params (the plain
        ``segment_volume`` contract, unchanged).
        """
        params = job.params
        if voxels is None:
            if not job.input_path:
                raise JobError("segment_volume job has no input_path volume snapshot")
            if params.get("stream"):
                return self._run_segment_volume_stream(job, worker_id, guard, tracer)
            try:
                voxels = np.load(job.input_path, allow_pickle=False)
            except (OSError, ValueError) as exc:
                raise JobError(f"cannot read job input {job.input_path}: {exc}") from exc
        if voxels.ndim != 3:
            raise JobError(f"job input must be a 3-D volume, got shape {voxels.shape}")
        prompt = str(params.get("prompt", "")) if prompt is None else str(prompt)
        temporal = bool(params.get("temporal", True))
        if config is not None:
            temporal_mode = config.temporal_mode
        else:
            temporal_mode = str(params.get("temporal_mode", "meanbox"))
        if temporal_mode == "propagate":
            return self._run_segment_volume_propagate(
                job, worker_id, guard, tracer, voxels, prompt, config=config
            )
        n_decode_workers = max(1, int(params.get("n_workers", 1)))
        round_size = max(1, int(params.get("round_slices", 1)))
        config = config if config is not None else ZenesisConfig()
        pipeline = _memo_pipeline(config)
        n = voxels.shape[0]
        plan = get_fault_plan()

        # Same fingerprint recipe as ZenesisPipeline.segment_volume, so the
        # shards are interchangeable with the CLI --checkpoint-dir path.
        fingerprint = combine_keys(
            array_content_key(voxels),
            repr(prompt),
            config_fingerprint(config),
            f"temporal={temporal}",
        )
        ckpt = CheckpointManager(
            job.checkpoint_dir,
            fingerprint=fingerprint,
            n_slices=n,
            meta={"job_id": job.job_id, "prompt": prompt},
        )
        done = ckpt.load(resume=True)
        if done:
            record_event("checkpoint.resumed_slices", len(done))
            get_registry().counter("repro_jobs_resumed_slices_total").inc(len(done))
        self._progress(job, worker_id, len(done), n, phase="prepare")

        # Prepare: adapt + ground every slice (deterministic, cached), then
        # refine boxes over the FULL sequence — resume must see the same
        # temporal context an uninterrupted run saw.
        detections = []
        span = tracer.begin("job.prepare", n_slices=n)
        for z in range(n):
            guard.check(f"segment_volume job (prepare slice {z})")
            det_img, _ = pipeline.adapt(voxels[z])
            detections.append(pipeline.ground(det_img, prompt, slice_index=z))
        per_slice_boxes = [d.boxes for d in detections]
        refinement = {"n_slices": n}
        if temporal:
            from ..core.temporal import refine_box_sequences

            per_slice_boxes, report = refine_box_sequences(
                per_slice_boxes, config.temporal, image_shape=voxels.shape[1:]
            )
            refinement = report.as_dict()
        tracer.finish(span)

        masks = np.zeros(voxels.shape, dtype=bool)
        for z in sorted(done):
            masks[z] = np.asarray(ckpt.load_slice(z), dtype=bool)
        remaining = [z for z in range(n) if z not in done]

        # Pre-encode the remaining slices through the batched ViT path
        # before forking decode workers: the sam.image entries land in the
        # coordinator's cache, children inherit them copy-on-write, and the
        # disk tier shares them with replica processes — so per-slice
        # set_image in the rounds below never re-runs the encoder.
        batch = config.encode_batch_size
        if batch > 1 and pipeline.cache.enabled and remaining:
            span = tracer.begin("job.preencode", n_slices=len(remaining))
            for start in range(0, len(remaining), batch):
                chunk = remaining[start : start + batch]
                guard.check(f"segment_volume job (pre-encode at slice {chunk[0]})")
                # adapt() is a cache hit after the prepare loop above.
                seg_chunk = [pipeline.adapt(voxels[z])[1] for z in chunk]
                pipeline.predictor.precompute_images(seg_chunk)
            tracer.finish(span)

        # Decode in rounds through the shared-memory process pool; the
        # coordinator checkpoints every slice of a finished round, so a kill
        # loses at most one round of work.
        span = tracer.begin("job.decode", n_remaining=len(remaining))
        with SharedNDArray.from_array(voxels) as vol_shm, SharedNDArray.create(
            voxels.shape, np.bool_
        ) as out_shm:
            completed = len(done)
            while remaining:
                round_z = tuple(remaining[: n_decode_workers * round_size])
                remaining = remaining[len(round_z) :]
                guard.check(f"segment_volume job (round at slice {round_z[0]})")
                plan.crash_if("job_crash", slice=round_z[0])
                partitions = block_partition(len(round_z), n_decode_workers)
                round_boxes = tuple(per_slice_boxes[z] for z in round_z)
                run_partitioned(
                    _decode_round,
                    partitions,
                    vol_shm.spec,
                    out_shm.spec,
                    round_z,
                    round_boxes,
                    config,
                    prompt,
                    timeout_s=guard.clamp(self.decode_timeout_s),
                )
                for z in round_z:
                    mask = np.array(out_shm.array[z], dtype=bool, copy=True)
                    masks[z] = mask
                    ckpt.save_slice(z, mask)
                    completed += 1
                    get_registry().counter("repro_jobs_slices_total").inc()
                self._progress(job, worker_id, completed, n, phase="decode")
        tracer.finish(span)
        ckpt.finalize()

        out_path = self.store.result_path(job.job_id)
        np.savez_compressed(out_path, masks=masks)
        return {
            "n_slices": n,
            "volume_fraction": float(masks.mean()),
            "per_slice_coverage": [float(m.mean()) for m in masks],
            "refinement": refinement,
            "resumed_slices": int(len(done)),
            "masks_path": str(out_path),
            "masks_key": array_content_key(masks),
        }

    def _run_segment_volume_stream(
        self,
        job: JobRecord,
        worker_id: str,
        guard: JobGuard,
        tracer: Tracer,
        *,
        config: ZenesisConfig | None = None,
        prompt: str | None = None,
    ) -> dict:
        """Streamed Mode B: the voxels are never fully resident.

        The pipeline's own streaming engine does the work — its per-slice
        ``check_deadline`` flows through the bound :class:`JobGuard` (cancel
        and lease-loss stop the run at a slice boundary), and its checkpoint
        shards under ``job.checkpoint_dir`` make SIGKILL/reclaim resume
        bit-identical.  Masks stay on disk as shards; the result names the
        directory instead of embedding an array.
        """
        from hashlib import sha1

        from ..errors import FormatError
        from ..io.integrity import IngestPolicy
        from ..io.lazy import open_lazy_volume

        params = job.params
        prompt = str(params.get("prompt", "")) if prompt is None else str(prompt)
        temporal = bool(params.get("temporal", True))
        if config is not None:
            temporal_mode = config.temporal_mode
        else:
            temporal_mode = str(params.get("temporal_mode", "meanbox"))
            config = ZenesisConfig(temporal_mode=temporal_mode)
        policy = IngestPolicy(
            on_corrupt=str(params.get("on_corrupt", "fail")),
            memory_budget_bytes=max(
                1, int(float(params.get("memory_budget_mb", 64.0)) * 1024 * 1024)
            ),
        )
        pipeline = _memo_pipeline(config)
        plan = get_fault_plan()

        def on_slice(z: int, phase: str, total: int) -> None:
            get_registry().counter("repro_jobs_slices_total").inc()
            self._progress(job, worker_id, z + 1, total, phase=f"stream_{phase}")
            plan.crash_if("job_crash", slice=z)

        span = tracer.begin("job.stream", source=job.input_path)
        try:
            with open_lazy_volume(job.input_path) as volume:
                result = pipeline.segment_volume_stream(
                    volume,
                    prompt,
                    temporal=temporal,
                    temporal_mode=temporal_mode,
                    checkpoint_dir=job.checkpoint_dir,
                    resume=True,
                    policy=policy,
                    on_slice=on_slice,
                )
        except FormatError as exc:
            raise JobError(f"cannot stream job input {job.input_path}: {exc}") from exc
        finally:
            tracer.finish(span)

        # Content-address the mask shards without materializing the stack.
        h = sha1()
        for _, mask in result.iter_masks():
            h.update(np.ascontiguousarray(mask).tobytes())
        coverage = list(result.per_slice_coverage)
        return {
            "n_slices": result.n_slices,
            "stream": True,
            "volume_fraction": float(sum(coverage) / max(len(coverage), 1)),
            "per_slice_coverage": coverage,
            "degraded": {str(z): r for z, r in sorted(result.degraded.items())},
            "refinement": dict(result.refinement_report),
            "io_stats": {
                k: v for k, v in result.io_stats.items() if k != "meta"
            },
            "masks_dir": result.checkpoint_dir,
            "masks_key": h.hexdigest(),
        }

    def _run_segment_volume_propagate(
        self,
        job: JobRecord,
        worker_id: str,
        guard: JobGuard,
        tracer: Tracer,
        voxels: np.ndarray,
        prompt: str,
        *,
        config: ZenesisConfig | None = None,
    ) -> dict:
        """Memory-conditioned Mode B job: keyframe grounding + propagation.

        Propagation is inherently sequential (each slice's prompts derive
        from the previous slice's memory), so there is no decode pool here;
        instead every slice persists its mask shard *and* the serialized
        per-object memory, making SIGKILL/reclaim resume bit-identical.
        Cancellation/lease-loss is honored at every slice boundary — the
        engine calls ``check_deadline`` per step and the bound ``JobGuard``
        duck-types the deadline.
        """
        from ..core.propagation import STATE_NAME, PropagationEngine, resume_propagation

        if config is None:
            config = ZenesisConfig(temporal_mode="propagate")
        pipeline = _memo_pipeline(config)
        n = voxels.shape[0]
        plan = get_fault_plan()

        # Same fingerprint recipe as ZenesisPipeline._segment_volume_propagate,
        # so the shards are interchangeable with the CLI --checkpoint-dir path.
        fingerprint = combine_keys(
            array_content_key(voxels),
            repr(prompt),
            config_fingerprint(config),
            "temporal_mode=propagate",
        )
        ckpt = CheckpointManager(
            job.checkpoint_dir,
            fingerprint=fingerprint,
            n_slices=n,
            meta={"job_id": job.job_id, "prompt": prompt, "temporal_mode": "propagate"},
        )
        ckpt.load(resume=True)
        engine = PropagationEngine(pipeline, prompt, config=config.propagation)
        masks = np.zeros(voxels.shape, dtype=bool)
        start_z = resume_propagation(ckpt, engine, masks)
        if start_z:
            record_event("checkpoint.resumed_slices", start_z)
            get_registry().counter("repro_jobs_resumed_slices_total").inc(start_z)
        self._progress(job, worker_id, start_z, n, phase="propagate")

        span = tracer.begin("job.propagate", n_slices=n, start=start_z)
        for z in range(start_z, n):
            guard.check(f"segment_volume job (propagate slice {z})")
            plan.crash_if("job_crash", slice=z)
            mask, _ = engine.step(z, voxels[z])
            masks[z] = mask
            ckpt.save_slice(z, mask)
            ckpt.save_state(STATE_NAME, engine.state.to_arrays())
            get_registry().counter("repro_jobs_slices_total").inc()
            self._progress(job, worker_id, z + 1, n, phase="propagate")
        tracer.finish(span)
        ckpt.finalize()

        out_path = self.store.result_path(job.job_id)
        np.savez_compressed(out_path, masks=masks)
        return {
            "n_slices": n,
            "volume_fraction": float(masks.mean()),
            "per_slice_coverage": [float(m.mean()) for m in masks],
            "refinement": {"mode": "propagation", **engine.state.stats()},
            "temporal_mode": "propagate",
            "resumed_slices": int(start_z),
            "masks_path": str(out_path),
            "masks_key": array_content_key(masks),
        }

    def _load_lazy_voxels(self, path: str) -> np.ndarray:
        """Materialize a snapshotted volume (tiff / npy / slice dir) eagerly."""
        from ..errors import FormatError
        from ..io.lazy import open_lazy_volume

        try:
            with open_lazy_volume(path) as vol:
                return np.stack([vol.read_tile(z) for z in range(vol.n_tiles)])
        except FormatError as exc:
            raise JobError(f"cannot read job input {path}: {exc}") from exc

    def _run_zoo_segment(
        self, job: JobRecord, worker_id: str, guard: JobGuard, tracer: Tracer
    ) -> dict:
        """One zoo job: a preset-built config in BEST or ENSEMBLE mode.

        BEST reuses the plain segment-volume payloads (eager pool decode or
        the streaming engine) with the preset's config and prompt; ENSEMBLE
        runs the member grid with per-member checkpoint sub-directories, so
        every mode inherits the bit-identical SIGKILL-resume story.
        """
        from ..zoo.ensemble import EnsembleConfig, segment_volume_ensemble
        from ..zoo.registry import load_registry

        params = job.params
        if not job.input_path:
            raise JobError("zoo_segment job has no input_path volume snapshot")
        registry = load_registry(self.store.root)
        preset = registry.get(str(params.get("preset", "")))
        submitted_fp = str(params.get("preset_fingerprint", ""))
        if submitted_fp and preset.fingerprint() != submitted_fp:
            raise JobError(
                f"preset {preset.name!r} changed since submit "
                f"(fingerprint {submitted_fp} -> {preset.fingerprint()}); resubmit the batch"
            )
        mode = str(params.get("mode", "best"))
        pixel_size_nm = params.get("pixel_size_nm")
        pixel_size_nm = float(pixel_size_nm) if pixel_size_nm is not None else None
        zoo_fields = {
            "preset": preset.name,
            "preset_fingerprint": preset.fingerprint(),
            "registry_fingerprint": registry.fingerprint(),
            "mode": mode,
            "content_key": params.get("content_key"),
            "pixel_size_nm": pixel_size_nm,
        }

        if mode == "best":
            config = preset.build_config(pixel_size_nm=pixel_size_nm)
            if params.get("stream"):
                result = self._run_segment_volume_stream(
                    job, worker_id, guard, tracer, config=config, prompt=preset.prompt
                )
            else:
                voxels = self._load_lazy_voxels(job.input_path)
                result = self._run_segment_volume(
                    job, worker_id, guard, tracer,
                    voxels=voxels, config=config, prompt=preset.prompt,
                )
            result.update(zoo_fields)
            return result

        if mode != "ensemble":
            raise JobError(f"zoo mode must be 'best' or 'ensemble', got {mode!r}")
        ensemble = EnsembleConfig.from_params(params.get("ensemble"))
        voxels = self._load_lazy_voxels(job.input_path)
        plan = get_fault_plan()

        def on_member(done: int, total: int) -> None:
            plan.crash_if("job_crash", member=done - 1)
            self._progress(job, worker_id, done, total, phase="ensemble")

        self._progress(job, worker_id, 0, ensemble.size, phase="ensemble")
        span = tracer.begin("job.ensemble", preset=preset.name, size=ensemble.size)
        try:
            res = segment_volume_ensemble(
                voxels,
                preset,
                ensemble=ensemble,
                pixel_size_nm=pixel_size_nm,
                checkpoint_dir=job.checkpoint_dir,
                resume=True,
                on_member=on_member,
            )
        finally:
            tracer.finish(span)
        out_path = self.store.result_path(job.job_id)
        np.savez_compressed(out_path, masks=res.fused_masks)
        masks = res.fused_masks
        return {
            **zoo_fields,
            "n_slices": int(masks.shape[0]),
            "volume_fraction": float(masks.mean()),
            "per_slice_coverage": [float(m.mean()) for m in masks],
            "ensemble": res.to_record(),
            "fallback": res.fallback,
            "masks_path": str(out_path),
            "masks_key": array_content_key(masks),
        }

    def _run_evaluate(self, job: JobRecord, worker_id: str, guard: JobGuard, tracer: Tracer) -> dict:
        """Mode C on the built-in benchmark, mirroring the sync API action."""
        from ..data.datasets import make_benchmark_dataset
        from ..eval.evaluator import Evaluator
        from ..eval.experiments import ExperimentSetup, build_methods

        params = job.params
        shape = tuple(params.get("shape", (128, 128)))
        n_slices = int(params.get("n_slices", 3))
        methods = list(params.get("methods", ["otsu"]))
        guard.check("evaluate job (setup)")
        self._progress(job, worker_id, 0, len(methods), phase="evaluate")
        setup = ExperimentSetup(dataset=make_benchmark_dataset(shape=shape, n_slices=n_slices))
        evaluator = Evaluator(build_methods(setup))
        out: dict = {}
        for i, name in enumerate(methods):
            guard.check(f"evaluate job (method {name})")
            evaluations = evaluator.evaluate(setup.dataset.slices, method_names=[name])
            ev = evaluations[name]
            out[name] = {
                kind: {m: s.as_dict() for m, s in ev.summary(kind).items()} for kind in ev.kinds()
            }
            self._progress(job, worker_id, i + 1, len(methods), phase="evaluate", method=name)
        return {"evaluations": out, "methods": methods}

    def _run_synthesize(self, job: JobRecord, worker_id: str, guard: JobGuard, tracer: Tracer) -> dict:
        """Generate a synthetic FIB-SEM acquisition into the results dir.

        ``duration_s`` paces the job to a requested wall-clock length — a
        real FIB-SEM mills and images for minutes per slice, and soak /
        demo workloads need that *occupancy* shape (a worker held busy
        while the CPU idles) without the compute.  The pacing loop
        heartbeats the lease and honors cancel/lease-loss at every tick.
        """
        from ..data.datasets import make_sample
        from ..io.volume_io import save_volume_bundle

        params = job.params
        kind = str(params.get("sample_kind", "crystalline"))
        seed = int(params.get("seed", 0))
        size = int(params.get("size", 128))
        n_slices = int(params.get("n_slices", 4))
        duration_s = float(params.get("duration_s", 0.0))
        guard.check("synthesize job")
        self._progress(job, worker_id, 0, 1, phase="synthesize")
        sample = make_sample(kind, seed=seed, shape=(size, size), n_slices=n_slices)
        if duration_s > 0:
            beat_s = self.scheduler.lease_ttl_s / 4
            end = time.monotonic() + duration_s
            next_beat = time.monotonic() + beat_s
            while True:
                now = time.monotonic()
                if now >= end:
                    break
                guard.check("synthesize job (paced acquisition)")
                if now >= next_beat:
                    # Keep the lease alive without flooding the journal:
                    # heartbeat directly, no progress event per tick.
                    if self.scheduler.heartbeat(job.job_id, worker_id) is None:
                        raise JobCancelledError(
                            f"job {job.job_id} lease lost during paced acquisition"
                        )
                    next_beat = now + beat_s
                time.sleep(min(0.05, end - now))
        out_path = self.store.result_path(job.job_id)
        save_volume_bundle(
            out_path,
            sample.volume.voxels,
            sample.catalyst_mask,
            {"kind": kind, "seed": seed, "job_id": job.job_id},
        )
        self._progress(job, worker_id, 1, 1, phase="synthesize")
        return {
            "sample_kind": kind,
            "shape": list(sample.volume.shape),
            "catalyst_fraction": float(sample.catalyst_mask.mean()),
            "out_path": str(out_path),
        }
