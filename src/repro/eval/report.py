"""Paper-style table rendering for evaluation results.

Produces exactly the row structure of the paper's Tables 1-3 (sample kind ×
accuracy/IoU/Dice, mean±std cells) as fixed-width text, plus a side-by-side
comparison table and a markdown export for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .evaluator import PAPER_METRICS, MethodEvaluation

__all__ = ["paper_table", "comparison_table", "markdown_table"]

_LABELS = {"accuracy": "Accuracy", "iou": "IOU", "dice": "Dice"}


def paper_table(evaluation: MethodEvaluation, *, title: str | None = None, digits: int = 3) -> str:
    """One method's table in the paper's format (rows = sample kinds)."""
    title = title if title is not None else f"{evaluation.method}: Average Performance Metrics"
    header = f"{'Sample':<14}" + "".join(f"{_LABELS[m]:>16}" for m in PAPER_METRICS)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for kind in evaluation.kinds():
        summary = evaluation.summary(kind, PAPER_METRICS)
        cells = "".join(f"{summary[m].format(digits):>16}" for m in PAPER_METRICS)
        lines.append(f"{kind.capitalize():<14}" + cells)
    return "\n".join(lines)


def comparison_table(
    evaluations: Mapping[str, MethodEvaluation],
    *,
    metric: str = "iou",
    digits: int = 3,
) -> str:
    """Methods × sample-kinds grid for one metric (who-wins-where view)."""
    methods = list(evaluations)
    kinds: list[str] = []
    for ev in evaluations.values():
        for k in ev.kinds():
            if k not in kinds:
                kinds.append(k)
    header = f"{metric:<14}" + "".join(f"{k.capitalize():>16}" for k in kinds)
    lines = [header, "-" * len(header)]
    for name in methods:
        row = f"{name:<14}"
        for kind in kinds:
            try:
                cell = evaluations[name].summary(kind, [metric])[metric].format(digits)
            except Exception:
                cell = "-"
            row += f"{cell:>16}"
        lines.append(row)
    return "\n".join(lines)


def markdown_table(
    evaluation: MethodEvaluation,
    *,
    metrics: Sequence[str] = PAPER_METRICS,
    digits: int = 3,
) -> str:
    """Markdown export (EXPERIMENTS.md rows)."""
    head = "| Sample | " + " | ".join(_LABELS.get(m, m) for m in metrics) + " |"
    sep = "|" + "---|" * (len(metrics) + 1)
    lines = [head, sep]
    for kind in evaluation.kinds():
        summary = evaluation.summary(kind, metrics)
        cells = " | ".join(summary[m].format(digits) for m in metrics)
        lines.append(f"| {kind.capitalize()} | {cells} |")
    return "\n".join(lines)
