"""Mode C: quantitative evaluation of segmentation methods over datasets.

An :class:`Evaluator` runs named methods (``image -> bool mask`` callables)
over a :class:`~repro.data.datasets.BenchmarkDataset` (or any iterable of
annotated slices), computing the paper's metrics (accuracy / IoU / Dice)
plus precision, recall, and boundary F1 at both granularities the paper's
dashboard offers: per sample and per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

import numpy as np

from ..cache import get_cache, subtract_counters
from ..data.datasets import AnnotatedSlice
from ..errors import EvaluationError
from ..metrics.aggregate import MetricSummary, summarize_records
from ..metrics.boundary import boundary_f1
from ..metrics.confusion import confusion_counts
from ..metrics.overlap import dice, iou
from ..observability.metrics import get_registry
from ..observability.trace import trace
from ..utils.timing import Timer

__all__ = ["SampleEvaluation", "MethodEvaluation", "Evaluator", "PAPER_METRICS", "evaluate_mask"]

#: Metric columns in the order the paper's tables print them.
PAPER_METRICS = ("accuracy", "iou", "dice")

#: Everything the evaluator computes per sample.
ALL_METRICS = ("accuracy", "iou", "dice", "precision", "recall", "boundary_f1")

SegmentFn = Callable[[np.ndarray], np.ndarray]


def evaluate_mask(pred: np.ndarray, gt: np.ndarray) -> dict[str, float]:
    """All per-sample metrics for one (prediction, ground truth) pair."""
    counts = confusion_counts(pred, gt)
    return {
        "accuracy": counts.accuracy,
        "iou": iou(pred, gt),
        "dice": dice(pred, gt),
        "precision": counts.precision,
        "recall": counts.recall,
        "boundary_f1": boundary_f1(pred, gt),
    }


@dataclass(frozen=True)
class SampleEvaluation:
    """Metrics for one method on one slice."""

    method: str
    sample_name: str
    sample_kind: str
    metrics: dict[str, float]
    wall_s: float

    def as_dict(self) -> dict:
        return {
            "method": self.method,
            "sample": self.sample_name,
            "kind": self.sample_kind,
            "wall_s": self.wall_s,
            **self.metrics,
        }


@dataclass
class MethodEvaluation:
    """All per-sample results for one method, with grouped summaries."""

    method: str
    samples: list[SampleEvaluation] = field(default_factory=list)

    def by_kind(self, kind: str) -> list[SampleEvaluation]:
        return [s for s in self.samples if s.sample_kind == kind]

    def kinds(self) -> list[str]:
        seen: list[str] = []
        for s in self.samples:
            if s.sample_kind not in seen:
                seen.append(s.sample_kind)
        return seen

    def summary(self, kind: str | None = None, metrics: Iterable[str] = ALL_METRICS) -> dict[str, MetricSummary]:
        rows = self.samples if kind is None else self.by_kind(kind)
        if not rows:
            raise EvaluationError(f"no samples for method {self.method!r}, kind {kind!r}")
        return summarize_records([s.metrics for s in rows], list(metrics))

    def mean_wall_s(self) -> float:
        if not self.samples:
            return 0.0
        return float(np.mean([s.wall_s for s in self.samples]))


class Evaluator:
    """Runs methods over annotated slices and aggregates results."""

    def __init__(self, methods: Mapping[str, SegmentFn], *, profiler=None) -> None:
        if not methods:
            raise EvaluationError("Evaluator needs at least one method")
        self.methods = dict(methods)
        self.profiler = profiler
        #: Inference-cache counter delta of the most recent :meth:`evaluate`.
        self.last_cache_counters: dict[str, int] = {}

    def evaluate(
        self,
        slices: Iterable[AnnotatedSlice],
        *,
        method_names: Iterable[str] | None = None,
    ) -> dict[str, MethodEvaluation]:
        """Evaluate (a subset of) methods over the given slices."""
        names = list(method_names) if method_names is not None else list(self.methods)
        unknown = [n for n in names if n not in self.methods]
        if unknown:
            raise EvaluationError(f"unknown methods {unknown}; registered: {sorted(self.methods)}")
        slices = list(slices)
        if not slices:
            raise EvaluationError("no slices to evaluate")
        out: dict[str, MethodEvaluation] = {name: MethodEvaluation(method=name) for name in names}
        cache_before = get_cache().counters()
        registry = get_registry()
        for sl in slices:
            raw = sl.image.pixels
            for name in names:
                with trace("eval.method", method=name, sample=sl.name), Timer() as t:
                    pred = self.methods[name](raw)
                registry.histogram("repro_eval_method_seconds", method=name).observe(t.elapsed)
                pred = np.asarray(pred, dtype=bool)
                if pred.shape != sl.gt_mask.shape:
                    raise EvaluationError(
                        f"method {name!r} returned shape {pred.shape}, expected {sl.gt_mask.shape}"
                    )
                out[name].samples.append(
                    SampleEvaluation(
                        method=name,
                        sample_name=sl.name,
                        sample_kind=sl.sample_kind,
                        metrics=evaluate_mask(pred, sl.gt_mask),
                        wall_s=t.elapsed,
                    )
                )
        self.last_cache_counters = subtract_counters(get_cache().counters(), cache_before)
        if self.profiler is not None:
            self.profiler.set_counters(self.last_cache_counters)
        return out
