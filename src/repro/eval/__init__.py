"""Mode C evaluation: evaluator, paper tables, experiments, HTML dashboard."""

from .dashboard import render_dashboard
from .evaluator import (
    ALL_METRICS,
    PAPER_METRICS,
    Evaluator,
    MethodEvaluation,
    SampleEvaluation,
    evaluate_mask,
)
from .experiments import (
    DEFAULT_PROMPT,
    PAPER_REFERENCE,
    ExperimentSetup,
    build_methods,
    run_all_tables,
    run_table,
)
from .report import comparison_table, markdown_table, paper_table

__all__ = [
    "ALL_METRICS",
    "DEFAULT_PROMPT",
    "Evaluator",
    "ExperimentSetup",
    "MethodEvaluation",
    "PAPER_METRICS",
    "PAPER_REFERENCE",
    "SampleEvaluation",
    "build_methods",
    "comparison_table",
    "evaluate_mask",
    "markdown_table",
    "paper_table",
    "render_dashboard",
    "run_all_tables",
    "run_table",
]
