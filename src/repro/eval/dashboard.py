"""The evaluation dashboard (paper Fig. 8), rendered as standalone HTML.

The real platform shows per-sample and dataset-level metric cards with bar
charts; this renderer produces the same content as a self-contained HTML
document (inline CSS, no external assets) that the platform's Mode C
endpoint serves and the Fig. 8 bench writes to disk.
"""

from __future__ import annotations

import html
from typing import Mapping

from .evaluator import ALL_METRICS, PAPER_METRICS, MethodEvaluation

__all__ = ["render_dashboard"]

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2em; background: #fafafa; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.8em 0; background: #fff; }
th, td { border: 1px solid #ccc; padding: 0.35em 0.8em; text-align: right; }
th { background: #eee; } td.name { text-align: left; }
.bar { display: inline-block; height: 0.8em; background: #4a90d9; vertical-align: middle; }
.cards { display: flex; gap: 1em; flex-wrap: wrap; }
.card { background: #fff; border: 1px solid #ddd; border-radius: 6px; padding: 0.8em 1.2em; }
.card .value { font-size: 1.6em; font-weight: 600; }
.small { color: #777; font-size: 0.85em; }
"""


def _bar(value: float, scale: float = 120.0) -> str:
    width = max(0.0, min(1.0, value)) * scale
    return f'<span class="bar" style="width:{width:.0f}px"></span>'


def _method_section(name: str, ev: MethodEvaluation) -> list[str]:
    parts = [f"<h2>Method: {html.escape(name)}</h2>"]
    # Dataset-level cards.
    parts.append('<div class="cards">')
    for kind in ev.kinds():
        summary = ev.summary(kind, PAPER_METRICS)
        cells = "".join(
            f"<div><span class='small'>{m}</span><div class='value'>{summary[m].mean:.3f}</div>"
            f"<span class='small'>±{summary[m].std:.3f}</span></div>"
            for m in PAPER_METRICS
        )
        parts.append(
            f"<div class='card'><b>{html.escape(kind)}</b> "
            f"<span class='small'>({summary['iou'].count} slices)</span>{cells}</div>"
        )
    parts.append("</div>")
    # Per-sample table.
    parts.append("<table><tr><th>sample</th>" + "".join(f"<th>{m}</th>" for m in ALL_METRICS) + "<th>iou</th></tr>")
    for s in ev.samples:
        row = f"<tr><td class='name'>{html.escape(s.sample_name)}</td>"
        row += "".join(f"<td>{s.metrics[m]:.3f}</td>" for m in ALL_METRICS)
        row += f"<td>{_bar(s.metrics['iou'])}</td></tr>"
        parts.append(row)
    parts.append("</table>")
    parts.append(f"<p class='small'>mean wall time per slice: {ev.mean_wall_s():.3f}s</p>")
    return parts


def _cache_section(cache_counters: Mapping[str, int]) -> list[str]:
    """Inference-cache card: hit rate plus every raw counter."""
    hits = sum(v for k, v in cache_counters.items() if k.endswith(".hits") and k.startswith("cache.ns."))
    misses = sum(v for k, v in cache_counters.items() if k.endswith(".misses") and k.startswith("cache.ns."))
    lookups = hits + misses
    rate = hits / lookups if lookups else 0.0
    parts = ["<h2>Inference cache</h2>", '<div class="cards">']
    parts.append(
        f"<div class='card'><span class='small'>hit rate</span>"
        f"<div class='value'>{rate:.1%}</div>"
        f"<span class='small'>{hits} hits / {lookups} lookups</span></div>"
    )
    parts.append("</div>")
    parts.append("<table><tr><th>counter</th><th>value</th></tr>")
    for key in sorted(cache_counters):
        parts.append(
            f"<tr><td class='name'>{html.escape(key)}</td><td>{cache_counters[key]}</td></tr>"
        )
    parts.append("</table>")
    return parts


def _latency_section(rows: list) -> list[str]:
    """Latency-percentile card: per-stage p50/p95/p99 wall time."""
    parts = ["<h2>Stage latency percentiles</h2>"]
    if not rows:
        parts.append("<p class='small'>no stage latencies recorded this run</p>")
        return parts
    worst = rows[0]
    parts.append('<div class="cards">')
    parts.append(
        f"<div class='card'><span class='small'>slowest stage (p95)</span>"
        f"<div class='value'>{worst['p95_s']:.3f}s</div>"
        f"<span class='small'>{html.escape(str(worst['stage']))}</span></div>"
    )
    parts.append("</div>")
    parts.append(
        "<table><tr><th>stage</th><th>calls</th><th>p50[s]</th><th>p95[s]</th><th>p99[s]</th></tr>"
    )
    for r in rows:
        parts.append(
            f"<tr><td class='name'>{html.escape(str(r['stage']))}</td><td>{r['count']}</td>"
            f"<td>{r['p50_s']:.4f}</td><td>{r['p95_s']:.4f}</td><td>{r['p99_s']:.4f}</td></tr>"
        )
    parts.append("</table>")
    return parts


def _resilience_section(counters: Mapping[str, int]) -> list[str]:
    """Resilience card: recovery-event counts (retries, failovers, resumes)."""

    def total(*names: str) -> int:
        return int(sum(counters.get(f"resilience.{n}", 0) for n in names))

    cards = [
        ("grounding retries", total("grounding.retries"), f"{total('grounding.recovered')} recovered"),
        ("worker failovers", total("pool.failovers"), f"{total('pool.dead_workers')} dead, {total('pool.hung_workers')} hung"),
        ("quarantined cache entries", total("cache.quarantined"), "moved to .bad/, never re-read"),
        ("resumed slices", total("checkpoint.resumed_slices"), f"{total('checkpoint.saved_slices')} checkpointed"),
    ]
    parts = ["<h2>Resilience</h2>", '<div class="cards">']
    for label, value, note in cards:
        parts.append(
            f"<div class='card'><span class='small'>{html.escape(label)}</span>"
            f"<div class='value'>{value}</div>"
            f"<span class='small'>{html.escape(note)}</span></div>"
        )
    parts.append("</div>")
    rows = sorted(k for k in counters if k.startswith("resilience."))
    if rows:
        parts.append("<table><tr><th>counter</th><th>value</th></tr>")
        for key in rows:
            parts.append(
                f"<tr><td class='name'>{html.escape(key)}</td><td>{counters[key]}</td></tr>"
            )
        parts.append("</table>")
    else:
        parts.append("<p class='small'>no recovery events recorded this run</p>")
    return parts


def _serving_section(serving: Mapping) -> list[str]:
    """Serving card: inflight/shed, breaker states, session occupancy."""
    admission = serving.get("admission", {})
    sessions = serving.get("sessions")
    cap = serving.get("session_cap")
    evicted = int(serving.get("sessions_evicted_ttl", 0)) + int(
        serving.get("sessions_evicted_capacity", 0)
    )
    cards = [
        ("in flight", admission.get("inflight", 0), f"cap {admission.get('max_inflight', '—')}"),
        ("requests shed", serving.get("shed_total", 0), "429 + Retry-After"),
        ("degraded responses", serving.get("degraded_requests", 0), "breaker fallbacks"),
        (
            "sessions evicted",
            evicted,
            f"{serving.get('sessions_evicted_ttl', 0)} ttl / "
            f"{serving.get('sessions_evicted_capacity', 0)} capacity",
        ),
    ]
    if sessions is not None:
        cards.insert(1, ("live sessions", sessions, f"cap {cap if cap is not None else '—'}"))
    parts = ["<h2>Serving</h2>", '<div class="cards">']
    for label, value, note in cards:
        parts.append(
            f"<div class='card'><span class='small'>{html.escape(label)}</span>"
            f"<div class='value'>{value}</div>"
            f"<span class='small'>{html.escape(str(note))}</span></div>"
        )
    for name, snap in sorted(serving.get("breakers", {}).items()):
        parts.append(
            f"<div class='card'><span class='small'>breaker: {html.escape(name)}</span>"
            f"<div class='value'>{html.escape(str(snap.get('state', '?')))}</div>"
            f"<span class='small'>{snap.get('consecutive_failures', 0)} consecutive "
            f"failure(s), {snap.get('rejected_total', 0)} rejected</span></div>"
        )
    parts.append("</div>")
    return parts


def _jobs_section(jobs: Mapping) -> list[str]:
    """Background-jobs card: queue depth, states, and the recent jobs table."""
    by_state = dict(jobs.get("by_state", {}))
    cards = [
        ("jobs total", jobs.get("total", 0), "everything the journal remembers"),
        ("queued", by_state.get("queued", 0), "waiting for a worker lease"),
        ("running", by_state.get("running", 0) + by_state.get("leased", 0), "leased or executing"),
        (
            "terminal",
            by_state.get("succeeded", 0) + by_state.get("failed", 0) + by_state.get("cancelled", 0),
            f"{by_state.get('succeeded', 0)} ok / {by_state.get('failed', 0)} failed / "
            f"{by_state.get('cancelled', 0)} cancelled",
        ),
    ]
    parts = ["<h2>Background jobs</h2>", '<div class="cards">']
    for label, value, note in cards:
        parts.append(
            f"<div class='card'><span class='small'>{html.escape(label)}</span>"
            f"<div class='value'>{value}</div>"
            f"<span class='small'>{html.escape(str(note))}</span></div>"
        )
    parts.append("</div>")
    recent = jobs.get("jobs", [])
    if recent:
        parts.append(
            "<table><tr><th>job</th><th>kind</th><th>state</th><th>attempt</th>"
            "<th>progress</th></tr>"
        )
        for j in recent:
            progress = j.get("progress", {})
            done, total = progress.get("done"), progress.get("total")
            frac = f"{done}/{total} {_bar(done / total)}" if total else "—"
            parts.append(
                f"<tr><td class='name'>{html.escape(str(j.get('job_id')))}</td>"
                f"<td class='name'>{html.escape(str(j.get('kind')))}</td>"
                f"<td class='name'>{html.escape(str(j.get('state')))}</td>"
                f"<td>{j.get('attempt', 0)}/{j.get('max_attempts', 0)}</td>"
                f"<td>{frac}</td></tr>"
            )
        parts.append("</table>")
    else:
        parts.append("<p class='small'>no jobs submitted this run</p>")
    return parts


def render_dashboard(
    evaluations: Mapping[str, MethodEvaluation],
    *,
    title: str = "Zenesis Evaluation Dashboard",
    cache_counters: Mapping[str, int] | None = None,
    resilience_counters: Mapping[str, int] | None = None,
    latency_rows: list | None = None,
    serving: Mapping | None = None,
    jobs: Mapping | None = None,
) -> str:
    """Render all evaluated methods into one HTML document.

    ``cache_counters`` (e.g. ``Evaluator.last_cache_counters`` or
    ``InferenceCache.counters()``) adds an inference-cache card showing the
    hit rate and per-tier occupancy for the run.  ``resilience_counters``
    (``repro.resilience.events_snapshot()``) adds a resilience card so
    retries, failovers, quarantines, and checkpoint resumes are visible —
    recoveries should never be silent.  ``latency_rows``
    (``repro.observability.stage_latency_rows()``) adds the Fig. 8
    latency-percentile card: per-stage p50/p95/p99 from the live
    ``repro_stage_seconds`` histograms.  ``serving``
    (``repro.resilience.serving.serving_snapshot()``) adds the serving
    card: in-flight/shed counts, breaker states, session occupancy and
    evictions.  ``jobs`` (``repro.jobs.JobService.snapshot()``) adds the
    background-jobs card: queue depth by state plus the recent jobs table
    with per-job progress bars.
    """
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title><style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        "<p class='small'>accuracy / IoU / Dice at sample and dataset granularity (paper Fig. 8)</p>",
    ]
    for name, ev in evaluations.items():
        parts.extend(_method_section(name, ev))
    if latency_rows is not None:
        parts.extend(_latency_section(latency_rows))
    if cache_counters is not None:
        parts.extend(_cache_section(cache_counters))
    if resilience_counters is not None:
        parts.extend(_resilience_section(resilience_counters))
    if serving is not None:
        parts.extend(_serving_section(serving))
    if jobs is not None:
        parts.extend(_jobs_section(jobs))
    parts.append("</body></html>")
    return "".join(parts)
