"""Canonical experiment definitions reproducing the paper's evaluation.

Each ``run_table*`` function assembles the exact protocol behind one of the
paper's tables on the 20-slice benchmark (10 crystalline + 10 amorphous
slices from two synthetic FIB-SEM volumes):

* **Table 1** — Otsu thresholding on robust-normalised slices.
* **Table 2** — SAM-only: unprompted automatic mode, max-confidence mask.
* **Table 3** — Zenesis: text prompt → GroundingDINO → SAM with grounded
  mask selection.

``run_all_tables`` shares one dataset and one evaluator pass so the three
tables are mutually consistent, and returns the `MethodEvaluation` objects
the report/dashboard layers render.  ``PAPER_REFERENCE`` records the
published numbers for EXPERIMENTS.md's paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.otsu import otsu_segment
from ..baselines.sam_only import SamOnlyBaseline, SamOnlyConfig
from ..core.pipeline import ZenesisConfig, ZenesisPipeline
from ..data.datasets import BenchmarkDataset, make_benchmark_dataset
from .evaluator import Evaluator, MethodEvaluation

__all__ = [
    "DEFAULT_PROMPT",
    "PAPER_REFERENCE",
    "ExperimentSetup",
    "build_methods",
    "run_all_tables",
    "run_table",
]

#: The text prompt the Zenesis experiments use.
DEFAULT_PROMPT = "catalyst particles"

#: Published numbers (mean, std) per table/kind/metric, from the paper.
PAPER_REFERENCE: dict[str, dict[str, dict[str, tuple[float, float]]]] = {
    "otsu": {
        "crystalline": {"accuracy": (0.586, 0.125), "iou": (0.161, 0.057), "dice": (0.274, 0.080)},
        "amorphous": {"accuracy": (0.581, 0.019), "iou": (0.407, 0.024), "dice": (0.578, 0.024)},
    },
    "sam_only": {
        # The paper's Table 2 is partially garbled in the text; the
        # crystalline IoU (0.100) and Dice (0.173) come from the prose.
        "crystalline": {"accuracy": (float("nan"), float("nan")), "iou": (0.100, float("nan")), "dice": (0.173, 0.137)},
        "amorphous": {"accuracy": (0.499, 0.160), "iou": (0.405, 0.088), "dice": (0.571, 0.087)},
    },
    "zenesis": {
        "crystalline": {"accuracy": (0.987, 0.005), "iou": (0.857, 0.029), "dice": (0.923, 0.017)},
        "amorphous": {"accuracy": (0.947, 0.005), "iou": (0.858, 0.015), "dice": (0.923, 0.009)},
    },
}

TABLE_METHODS = {"table1": "otsu", "table2": "sam_only", "table3": "zenesis"}


@dataclass
class ExperimentSetup:
    """Shared state for the table experiments."""

    dataset: BenchmarkDataset
    prompt: str = DEFAULT_PROMPT
    zenesis_config: ZenesisConfig = field(default_factory=ZenesisConfig)
    sam_only_config: SamOnlyConfig = field(default_factory=SamOnlyConfig)

    @classmethod
    def default(cls, *, seed: int | None = None, shape: tuple[int, int] = (256, 256), n_slices: int = 10) -> "ExperimentSetup":
        return cls(dataset=make_benchmark_dataset(seed=seed, shape=shape, n_slices=n_slices))


def build_methods(setup: ExperimentSetup) -> dict:
    """The three paper methods as ``image -> mask`` callables."""
    pipeline = ZenesisPipeline(setup.zenesis_config)
    sam_only = SamOnlyBaseline(setup.sam_only_config)

    def zenesis(image: np.ndarray) -> np.ndarray:
        return pipeline.segment_image(image, setup.prompt).mask

    return {
        "otsu": lambda img: otsu_segment(img),
        "sam_only": lambda img: sam_only.segment(img),
        "zenesis": zenesis,
    }


def run_all_tables(setup: ExperimentSetup | None = None) -> dict[str, MethodEvaluation]:
    """Run Tables 1-3 end to end; returns {method: MethodEvaluation}."""
    setup = setup or ExperimentSetup.default()
    evaluator = Evaluator(build_methods(setup))
    return evaluator.evaluate(setup.dataset.slices)


def run_table(table: str, setup: ExperimentSetup | None = None) -> MethodEvaluation:
    """Run a single table experiment ("table1" | "table2" | "table3")."""
    if table not in TABLE_METHODS:
        raise KeyError(f"unknown table {table!r}; expected one of {sorted(TABLE_METHODS)}")
    setup = setup or ExperimentSetup.default()
    method = TABLE_METHODS[table]
    evaluator = Evaluator(build_methods(setup))
    return evaluator.evaluate(setup.dataset.slices, method_names=[method])[method]
