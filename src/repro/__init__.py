"""repro — reproduction of Zenesis (ICPP 2025 DRAI).

*"Foundation Models for Zero-Shot Segmentation of Scientific Images
without AI-Ready Data"* — an interactive, no-code platform coupling
GroundingDINO-style text grounding with SAM-style promptable segmentation
for raw scientific images (FIB-SEM volumes of catalyst-loaded membranes).

Quickstart::

    from repro import ZenesisPipeline, make_benchmark_dataset
    from repro.metrics import iou

    dataset = make_benchmark_dataset()
    pipeline = ZenesisPipeline()
    sl = dataset.slices[0]
    result = pipeline.segment_image(sl.image, "catalyst particles")
    print(iou(result.mask, sl.gt_mask))

Subpackages
-----------
``repro.data``      containers + synthetic FIB-SEM generation (the dataset
                    substitute; see DESIGN.md).
``repro.adapt``     lightweight multi-modal adaptation + readiness scoring.
``repro.models``    GroundingDINO and SAM surrogates on a from-scratch
                    NumPy transformer stack.
``repro.core``      the Zenesis pipeline, HITL rectification, temporal and
                    hierarchical refinement, Mode B batching.
``repro.baselines`` Otsu, SAM-only, and classical extras.
``repro.metrics``   accuracy / IoU / Dice / boundary metrics + aggregation.
``repro.eval``      Mode C evaluation, paper tables, HTML dashboard.
``repro.parallel``  shared-memory worker pool and slice scheduling.
``repro.platform``  sessions, JSON API, HTTP server, figure rendering.
``repro.io``        from-scratch TIFF/PNG codecs and volume bundles.
``repro.resilience`` retry/deadline policies, checkpoint/resume, fault
                    injection, recovery-event counters.
``repro.observability`` span tracing (JSON/Chrome-trace export), the
                    metrics registry behind ``GET /metrics``, and run
                    manifests (``run.json`` + ``repro metrics diff``).
"""

from .core.pipeline import ZenesisConfig, ZenesisPipeline
from .data.datasets import make_benchmark_dataset, make_sample
from .errors import CheckpointError, DeadlineExceededError, ReproError, RetryExhaustedError

__version__ = "1.0.0"

__all__ = [
    "CheckpointError",
    "DeadlineExceededError",
    "ReproError",
    "RetryExhaustedError",
    "ZenesisConfig",
    "ZenesisPipeline",
    "__version__",
    "make_benchmark_dataset",
    "make_sample",
]
