"""The Zenesis core: pipeline, prompts, HITL, temporal/hierarchical refinement."""

from .batch import BatchConfig, BatchReport, segment_volume_batch
from .boxes import (
    as_boxes,
    box_area,
    box_center,
    box_iou,
    box_to_mask,
    clip_boxes,
    mask_to_box,
    merge_overlapping,
    nms,
    pad_box,
    random_boxes,
)
from .hierarchy import SegmentNode, further_segment
from .hitl import RectifyConfig, RectifySession, RectifyStep, SimulatedAnnotator
from .multiobject import MultiClassResult, segment_multi
from .propagation import PropagationConfig, propagate_volume
from .uncertainty import UncertaintyAnnotator, mean_confidence, uncertainty_map
from .masks import (
    clean_mask,
    component_containing,
    connected_components,
    largest_component,
    mask_boundary,
    masks_iou,
    rle_decode,
    rle_encode,
    stability_score,
)
from .pipeline import ZenesisConfig, ZenesisPipeline
from .prompts import SpatialHints, TextPrompt
from .results import SliceResult, VolumeResult
from .temporal import RefinementReport, TemporalConfig, refine_box_sequences

__all__ = [
    "BatchConfig",
    "BatchReport",
    "RectifyConfig",
    "RectifySession",
    "RectifyStep",
    "RefinementReport",
    "SegmentNode",
    "SimulatedAnnotator",
    "MultiClassResult",
    "PropagationConfig",
    "SliceResult",
    "UncertaintyAnnotator",
    "SpatialHints",
    "TemporalConfig",
    "TextPrompt",
    "VolumeResult",
    "ZenesisConfig",
    "ZenesisPipeline",
    "as_boxes",
    "box_area",
    "box_center",
    "box_iou",
    "box_to_mask",
    "clean_mask",
    "clip_boxes",
    "component_containing",
    "connected_components",
    "further_segment",
    "largest_component",
    "mask_boundary",
    "mask_to_box",
    "masks_iou",
    "merge_overlapping",
    "nms",
    "pad_box",
    "random_boxes",
    "refine_box_sequences",
    "rle_decode",
    "rle_encode",
    "propagate_volume",
    "segment_multi",
    "segment_volume_batch",
    "mean_confidence",
    "stability_score",
    "uncertainty_map",
]
