"""Per-pixel segmentation uncertainty and uncertainty-guided interaction.

The paper's related work highlights uncertainty-aware human-in-the-loop
segmentation (MedUHIP).  The surrogate stack exposes two natural uncertainty
sources, combined here into a per-pixel confidence field:

* **hypothesis disagreement** — the analytic head emits several competing
  masks per prompt; pixels claimed by some hypotheses but not others are
  uncertain (an ensemble-variance analogue of SAM's multimask output);
* **relevance ambiguity** — text-grounded relevance near the box threshold
  is the detector saying "maybe" (distance from the decision boundary).

:func:`uncertainty_map` fuses them; :class:`UncertaintyAnnotator` is a drop-in
replacement for the oracle annotator that clicks where the model is *least
sure* instead of where the most ground truth is missing — the active-learning
flavour of the Fig. 6 loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.ndimage import label, uniform_filter

from ..errors import EvaluationError
from .results import SliceResult

__all__ = ["uncertainty_map", "UncertaintyAnnotator", "mean_confidence"]


def uncertainty_map(
    result: SliceResult,
    *,
    relevance_weight: float = 0.5,
    threshold: float | None = None,
) -> np.ndarray:
    """Per-pixel uncertainty in [0, 1] for a slice result.

    Hypothesis disagreement: among the per-box candidate masks, the vote
    fraction ``v`` of a pixel yields ``4·v·(1-v)`` (max at an even split).
    Relevance ambiguity: ``exp(-(|relevance - t| / 0.15)²)`` peaks where the
    grounding sits on its own decision boundary ``t``.
    """
    if not 0.0 <= relevance_weight <= 1.0:
        raise EvaluationError(f"relevance_weight must be in [0, 1], got {relevance_weight}")
    h, w = result.mask.shape
    # Vote field over per-box masks (fall back to the final mask alone).
    # Each mask only "votes" within its own bounding region — a pixel far
    # from a hypothesis is not evidence against it, so the electorate is
    # local (masks whose extent covers the pixel).
    masks = result.per_box_masks if result.per_box_masks else (result.mask,)
    votes = np.zeros((h, w), dtype=np.float32)
    support = np.zeros((h, w), dtype=np.float32)
    for m in masks:
        ys, xs = np.nonzero(m)
        if ys.size == 0:
            continue
        y0, y1 = int(ys.min()), int(ys.max()) + 1
        x0, x1 = int(xs.min()), int(xs.max()) + 1
        votes[y0:y1, x0:x1] += m[y0:y1, x0:x1]
        support[y0:y1, x0:x1] += 1.0
    v = np.where(support > 0, votes / np.maximum(support, 1.0), 0.0)
    disagreement = 4.0 * v * (1.0 - v)
    # Smooth a little: single-pixel vote noise is not actionable.
    disagreement = uniform_filter(disagreement, size=3, mode="nearest")

    rel = result.detection.relevance
    t = threshold if threshold is not None else 0.35
    ambiguity = np.exp(-(((rel - t) / 0.15) ** 2)).astype(np.float32)

    combined = (1.0 - relevance_weight) * disagreement + relevance_weight * ambiguity
    return np.clip(combined, 0.0, 1.0)


def mean_confidence(result: SliceResult) -> float:
    """Scalar confidence for the dashboard: 1 - mean uncertainty over the mask
    boundary band (interior and far background are trivially confident)."""
    unc = uncertainty_map(result)
    from scipy.ndimage import binary_dilation, binary_erosion

    m = result.mask
    band = binary_dilation(m, iterations=3) & ~binary_erosion(m, iterations=3, border_value=0)
    if not band.any():
        return 1.0
    return float(1.0 - unc[band].mean())


@dataclass
class UncertaintyAnnotator:
    """Clicks where the model is least certain (active-learning HITL).

    Unlike :class:`~repro.core.hitl.SimulatedAnnotator` this needs no ground
    truth — it is deployable with real users, proposing where to look next.
    ``min_region_area`` suppresses single-pixel noise; visited regions are
    masked out so successive clicks explore.
    """

    min_region_area: int = 20
    uncertainty_floor: float = 0.35
    visited: np.ndarray | None = field(default=None)
    clicks: list[tuple[float, float]] = field(default_factory=list)

    def next_click(self, result: SliceResult) -> tuple[float, float] | None:
        unc = uncertainty_map(result)
        if self.visited is None:
            self.visited = np.zeros(unc.shape, dtype=bool)
        hot = (unc >= self.uncertainty_floor) & ~self.visited
        labels, n = label(hot)
        if n == 0:
            return None
        # Largest uncertain region wins.
        areas = np.bincount(labels.ravel())
        areas[0] = 0
        best = int(np.argmax(areas))
        if areas[best] < self.min_region_area:
            return None
        ys, xs = np.nonzero(labels == best)
        # Click the most uncertain pixel of that region.
        peak = int(np.argmax(unc[ys, xs]))
        click = (float(xs[peak]), float(ys[peak]))
        self.visited |= labels == best
        self.clicks.append(click)
        return click
