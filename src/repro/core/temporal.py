"""Heuristic temporal refinement of per-slice detections (paper Fig. 7).

For multi-slice volumes, GroundingDINO occasionally produces outlier boxes —
sudden appearance changes, milling artifacts, or plain grounding failures.
The paper's remedy: *compute mean width/height across a fallback window of
adjacent slices; boxes exceeding a height or width factor are replaced by
the average box of previous slices.*

:func:`refine_box_sequences` implements exactly that rule over a list of
per-slice box arrays, returning the corrected sequence plus a report of
every replacement (slice index, offending box, replacement source).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ValidationError
from .boxes import as_boxes

__all__ = ["TemporalConfig", "RefinementReport", "refine_box_sequences", "box_dimension_stats"]


@dataclass(frozen=True)
class TemporalConfig:
    """Parameters of the sliding-window outlier rule."""

    window: int = 3  # how many previous slices feed the fallback statistics
    size_factor: float = 1.5  # width/height beyond factor × window max → outlier
    min_history: int = 1  # replacements need at least this many prior slices
    recenter: bool = True  # keep the outlier's centre, fix only its size
    # Absolute guard: a box is only treated as a grounding failure when it
    # ALSO spans most of the frame (failures are frame-scale; legitimate
    # cluster boxes are not).  Requires image_shape at call time; without it
    # the pure relative rule applies.
    absolute_size_frac: float = 0.75

    def __post_init__(self):
        if self.window < 1:
            raise ValidationError("window must be >= 1")
        if self.size_factor <= 1.0:
            raise ValidationError("size_factor must be > 1")


@dataclass
class RefinementReport:
    """What the heuristic changed."""

    n_slices: int = 0
    n_boxes_in: int = 0
    n_replaced: int = 0
    replacements: list[dict] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "n_slices": self.n_slices,
            "n_boxes_in": self.n_boxes_in,
            "n_replaced": self.n_replaced,
            "replacements": list(self.replacements),
        }


def box_dimension_stats(boxes: np.ndarray) -> tuple[float, float]:
    """Mean (width, height) of a box array; (0, 0) when empty."""
    if len(boxes) == 0:
        return 0.0, 0.0
    b = as_boxes(boxes)
    return float((b[:, 2] - b[:, 0]).mean()), float((b[:, 3] - b[:, 1]).mean())


def _window_max_dims(history: list[np.ndarray], window: int) -> tuple[float, float] | None:
    """Max (width, height) over the last ``window`` non-empty slices.

    The outlier test compares against the window *maximum*, not the mean:
    legitimate detections vary in size slice to slice, but a grounding
    failure produces boxes beyond anything recently seen (typically the
    whole frame).  Testing against the mean triggers on legitimate large
    clusters and cascades (each false replacement shrinks the statistics,
    triggering more replacements); the maximum is stable.
    """
    recent = [h for h in history[-window:] if len(h)]
    if not recent:
        return None
    allb = np.concatenate(recent, axis=0)
    return float((allb[:, 2] - allb[:, 0]).max()), float((allb[:, 3] - allb[:, 1]).max())


def _window_mean_box(history: list[np.ndarray], window: int) -> np.ndarray | None:
    """Average box over the last ``window`` non-empty slices."""
    recent = [h for h in history[-window:] if len(h)]
    if not recent:
        return None
    return np.concatenate(recent, axis=0).mean(axis=0)


def refine_box_sequences(
    per_slice_boxes: list[np.ndarray],
    config: TemporalConfig | None = None,
    *,
    image_shape: tuple[int, int] | None = None,
) -> tuple[list[np.ndarray], RefinementReport]:
    """Apply the sliding-window outlier rule to a Z-ordered box sequence.

    Each element of ``per_slice_boxes`` is an ``(N_z, 4)`` XYXY array (N_z
    may vary, including 0).  A box whose width or height exceeds
    ``size_factor`` times the corresponding window-maximum dimension is
    replaced by the window-mean box (recentred on the outlier by default);
    slices with *no* boxes inherit the window-mean box too
    (a grounding failure is the extreme outlier).  The input history used
    for statistics is the already-refined prefix, so a run of bad slices
    does not poison its own correction.
    """
    cfg = config or TemporalConfig()
    report = RefinementReport(n_slices=len(per_slice_boxes))
    refined: list[np.ndarray] = []
    for z, raw in enumerate(per_slice_boxes):
        boxes = as_boxes(raw) if len(raw) else np.zeros((0, 4))
        report.n_boxes_in += len(boxes)
        dims = _window_max_dims(refined, cfg.window)
        mean_box = _window_mean_box(refined, cfg.window)
        have_history = sum(1 for h in refined if len(h)) >= cfg.min_history

        if len(boxes) == 0:
            if have_history and mean_box is not None:
                refined.append(mean_box[None, :].copy())
                report.n_replaced += 1
                report.replacements.append(
                    {"slice": z, "reason": "empty", "replacement": mean_box.tolist()}
                )
            else:
                refined.append(boxes)
            continue

        if not have_history or dims is None or mean_box is None:
            refined.append(boxes)
            continue

        max_w, max_h = dims
        out = boxes.copy()
        widths = out[:, 2] - out[:, 0]
        heights = out[:, 3] - out[:, 1]
        bad = np.zeros(len(out), dtype=bool)
        if max_w > 0:
            bad |= widths > cfg.size_factor * max_w
        if max_h > 0:
            bad |= heights > cfg.size_factor * max_h
        if image_shape is not None:
            # Legitimate cluster boxes are often frame-wide (the film spans
            # the image) but never frame-tall as well; a grounding failure
            # is frame-scale in BOTH dimensions.
            ih, iw = image_shape
            frame_scale = (widths >= cfg.absolute_size_frac * iw) & (
                heights >= cfg.absolute_size_frac * ih
            )
            bad &= frame_scale
        for i in np.nonzero(bad)[0]:
            if cfg.recenter:
                # "Replaced by the average box of previous slices": take the
                # window-mean *size* but keep the detection's centre, so the
                # correction regularises scale without discarding position.
                cx = (out[i, 0] + out[i, 2]) / 2.0
                cy = (out[i, 1] + out[i, 3]) / 2.0
                half_w = (mean_box[2] - mean_box[0]) / 2.0
                half_h = (mean_box[3] - mean_box[1]) / 2.0
                replacement = np.array([cx - half_w, cy - half_h, cx + half_w, cy + half_h])
            else:
                replacement = mean_box.copy()
            if image_shape is not None:
                # A recentred replacement near the frame edge can poke
                # outside the image; clamp it.  The decoder clips boxes
                # anyway (clip_boxes in masks_from_box), so this never
                # changes a mask — it keeps the *reported* boxes within
                # bounds for downstream consumers.
                ih, iw = image_shape
                replacement = np.clip(replacement, 0.0, [iw, ih, iw, ih])
            report.n_replaced += 1
            report.replacements.append(
                {
                    "slice": z,
                    "reason": "oversize",
                    "original": out[i].tolist(),
                    "replacement": replacement.tolist(),
                }
            )
            out[i] = replacement
        if bad.any():
            # Replacing several outliers with the same fallback box creates
            # duplicates; collapse them.
            out = np.unique(out, axis=0)
        refined.append(out)
    return refined, report
