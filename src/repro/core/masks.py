"""Mask operations: RLE codec, components, boundaries, morphology, stability.

The RLE codec matches the COCO-style column-major convention SAM tooling
uses, so exported annotations interoperate.  Everything else is vectorised
NumPy / scipy.ndimage.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import (
    binary_closing,
    binary_dilation,
    binary_erosion,
    binary_fill_holes,
    binary_opening,
    label,
)

from ..errors import ValidationError
from ..utils.validation import ensure_mask

__all__ = [
    "rle_encode",
    "rle_decode",
    "connected_components",
    "largest_component",
    "component_containing",
    "mask_boundary",
    "clean_mask",
    "stability_score",
    "masks_iou",
]


def rle_encode(mask: np.ndarray) -> dict:
    """Column-major run-length encoding (COCO uncompressed-RLE convention).

    Counts alternate background/foreground runs, starting with background.
    """
    m = ensure_mask(mask)
    if m.ndim != 2:
        raise ValidationError(f"rle_encode expects a 2-D mask, got shape {m.shape}")
    flat = m.flatten(order="F").astype(np.int8)
    changes = np.nonzero(np.diff(flat))[0] + 1
    points = np.concatenate([[0], changes, [flat.size]])
    counts = np.diff(points).tolist()
    if flat.size and flat[0] == 1:
        counts = [0] + counts  # must start with a background run
    return {"size": list(m.shape), "counts": counts}


def rle_decode(rle: dict) -> np.ndarray:
    """Inverse of :func:`rle_encode`."""
    h, w = rle["size"]
    counts = rle["counts"]
    total = int(np.sum(counts))
    if total != h * w:
        raise ValidationError(f"RLE counts sum to {total}, expected {h * w}")
    vals = np.zeros(total, dtype=bool)
    pos = 0
    val = False
    for c in counts:
        if val:
            vals[pos : pos + c] = True
        pos += c
        val = not val
    return vals.reshape((h, w), order="F")


def connected_components(mask: np.ndarray, *, min_area: int = 1) -> list[np.ndarray]:
    """Split a mask into per-component masks, largest first."""
    m = ensure_mask(mask)
    labels, n = label(m)
    if n == 0:
        return []
    areas = np.bincount(labels.ravel())[1:]
    order = np.argsort(-areas)
    return [labels == (i + 1) for i in order if areas[i] >= min_area]


def largest_component(mask: np.ndarray) -> np.ndarray:
    """The largest connected component (empty mask passes through)."""
    comps = connected_components(mask)
    if not comps:
        return ensure_mask(mask).copy()
    return comps[0]


def component_containing(mask: np.ndarray, point_yx: tuple[float, float]) -> np.ndarray | None:
    """The component containing a (y, x) point, or None."""
    m = ensure_mask(mask)
    y, x = int(round(point_yx[0])), int(round(point_yx[1]))
    if not (0 <= y < m.shape[0] and 0 <= x < m.shape[1]) or not m[y, x]:
        return None
    labels, _ = label(m)
    return labels == labels[y, x]


def mask_boundary(mask: np.ndarray) -> np.ndarray:
    """One-pixel-wide boundary of a mask (mask minus its erosion)."""
    m = ensure_mask(mask)
    if not m.any():
        return np.zeros_like(m)
    return m & ~binary_erosion(m, border_value=0)


def clean_mask(
    mask: np.ndarray,
    *,
    open_radius: int = 1,
    close_radius: int = 1,
    fill_holes: bool = False,
    min_area: int = 0,
) -> np.ndarray:
    """Morphological cleanup: opening, closing, optional hole fill, dust removal."""
    m = ensure_mask(mask).copy()
    if open_radius > 0:
        m = binary_opening(m, iterations=open_radius)
    if close_radius > 0:
        m = binary_closing(m, iterations=close_radius)
    if fill_holes:
        m = binary_fill_holes(m)
    if min_area > 0 and m.any():
        labels, n = label(m)
        if n:
            areas = np.bincount(labels.ravel())
            small = np.nonzero(areas < min_area)[0]
            small = small[small != 0]
            if small.size:
                m[np.isin(labels, small)] = False
    return m


def stability_score(mask: np.ndarray, *, iterations: int = 2) -> float:
    """SAM-style stability: IoU between eroded and dilated versions.

    1.0 means the mask barely changes when its decision boundary is
    perturbed; thin/noisy masks score low.
    """
    m = ensure_mask(mask)
    if not m.any():
        return 0.0
    lo = binary_erosion(m, iterations=iterations, border_value=0)
    hi = binary_dilation(m, iterations=iterations)
    inter = np.count_nonzero(lo)
    union = np.count_nonzero(hi)
    return float(inter / union) if union else 0.0


def masks_iou(a: np.ndarray, b: np.ndarray) -> float:
    """IoU between two boolean masks of the same shape."""
    ma = ensure_mask(a)
    mb = ensure_mask(b, shape=ma.shape, name="b")
    inter = np.count_nonzero(ma & mb)
    union = np.count_nonzero(ma | mb)
    return float(inter / union) if union else 0.0
