"""Mode B: batch segmentation of volumes, serial or shared-memory parallel.

The parallel path decomposes the Z axis into blocks with a leading halo
(:mod:`repro.parallel.scheduler`); each forked worker rebuilds the pipeline
deterministically from its config, processes halo slices for temporal
context, and writes only its owned slices into the shared output mask array.
Voxels travel via shared memory, never pickles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cache import subtract_counters
from ..data.volume import ScientificVolume
from ..errors import ParallelError
from ..observability.trace import end_trace, export_spans, get_tracer, start_trace, trace
from ..parallel.pool import default_worker_count, run_partitioned
from ..parallel.scheduler import SlicePartition, block_partition
from ..parallel.sharedmem import SharedArraySpec, SharedNDArray
from ..resilience.events import EVENTS
from ..resilience.faults import get_fault_plan
from ..utils.timing import Timer
from .pipeline import ZenesisConfig, ZenesisPipeline
from .temporal import refine_box_sequences

__all__ = ["BatchConfig", "BatchReport", "segment_volume_batch"]


@dataclass(frozen=True)
class BatchConfig:
    """Batch execution parameters."""

    n_workers: int = 1
    halo: int = 3  # temporal-context slices fed to each block
    temporal: bool = True
    pipeline: ZenesisConfig = field(default_factory=ZenesisConfig)
    # Supervision (see repro.parallel.pool): wall-clock budget for the whole
    # pool and how many inline re-executions a failed partition gets.
    timeout_s: float = 600.0
    max_failovers: int = 1


@dataclass(frozen=True)
class BatchReport:
    """Execution metadata for one batch run."""

    n_slices: int
    n_workers: int
    wall_s: float
    per_worker: tuple[dict, ...]
    n_failovers: int = 0  # partitions recovered by inline re-execution


def _process_block(
    partition: SlicePartition,
    vol_spec: SharedArraySpec,
    out_spec: SharedArraySpec,
    config: BatchConfig,
    prompt: str,
) -> dict:
    """Worker body: segment one block of slices (module-level for pickling)."""
    pipeline = ZenesisPipeline(config.pipeline)
    vol = SharedNDArray.attach(vol_spec)
    out = SharedNDArray.attach(out_spec)
    # Each execution records into its own tracer — pushed onto the tracer
    # stack so a failover re-execution inside the *parent* process leaves
    # the supervisor's trace untouched.  The spans come back in the report
    # dict and are re-parented under the supervisor (Tracer.adopt).
    start_trace(f"worker[{partition.worker}]")
    try:
        timer = Timer().start()
        cache_before = pipeline.cache.counters()
        z_order = partition.all_slices
        adapted: dict[int, np.ndarray] = {}
        detections = []
        fault_plan = get_fault_plan()
        with trace("worker.prepare", worker=partition.worker):
            for z in z_order:
                # worker_crash is child-only: the parent's inline re-execution of
                # this partition after a crash does not re-fire it.
                fault_plan.crash_if("worker_crash", child_only=True, slice=z)
                with trace("slice.prepare", slice=z):
                    det_img, seg_img = pipeline.adapt(vol.array[z])
                    adapted[z] = seg_img
                    detections.append(pipeline.ground(det_img, prompt, slice_index=z))
        boxes = [d.boxes for d in detections]
        n_replaced = 0
        if config.temporal:
            boxes, report = refine_box_sequences(
                boxes, config.pipeline.temporal, image_shape=vol.array.shape[1:]
            )
            n_replaced = report.n_replaced
        owned = set(partition.owned)
        with trace("worker.segment", worker=partition.worker):
            for i, z in enumerate(z_order):
                if z not in owned:
                    continue  # halo slice: context only
                with trace("slice.segment", slice=z):
                    mask, _, _ = pipeline.segment_with_boxes(adapted[z], detections[i], boxes[i])
                    out.array[z] = mask
        timer.stop()
        return {
            "worker": partition.worker,
            "owned": list(partition.owned),
            "halo": list(partition.halo),
            "n_replaced": n_replaced,
            "wall_s": timer.elapsed,
            "cache": subtract_counters(pipeline.cache.counters(), cache_before),
            "spans": export_spans(),
        }
    finally:
        end_trace()
        vol.close()
        out.close()


def segment_volume_batch(
    volume,
    prompt: str,
    config: BatchConfig | None = None,
) -> tuple[np.ndarray, BatchReport]:
    """Segment a full volume; returns (masks (Z, H, W) bool, report).

    ``config.n_workers <= 0`` selects :func:`default_worker_count`.
    """
    cfg = config or BatchConfig()
    voxels = volume.voxels if isinstance(volume, ScientificVolume) else np.asarray(volume)
    if voxels.ndim != 3:
        raise ParallelError(f"expected a 3-D volume, got shape {voxels.shape}")
    n = voxels.shape[0]
    n_workers = cfg.n_workers if cfg.n_workers > 0 else default_worker_count()
    partitions = block_partition(n, n_workers, halo=cfg.halo if cfg.temporal else 0)

    timer = Timer().start()
    failovers_before = EVENTS.get("pool.failovers")
    with trace("batch.segment_volume", prompt=prompt, n_slices=n, n_workers=len(partitions)):
        with SharedNDArray.from_array(voxels) as vol_shm, SharedNDArray.create(
            voxels.shape, np.bool_
        ) as out_shm:
            worker_reports = run_partitioned(
                _process_block,
                partitions,
                vol_shm.spec,
                out_shm.spec,
                cfg,
                prompt,
                timeout_s=cfg.timeout_s,
                max_failovers=cfg.max_failovers,
            )
            masks = np.array(out_shm.array, dtype=bool, copy=True)
        # Re-parent worker span trees under the supervisor trace; the spans
        # key is transport, not part of the public per-worker report.
        tracer = get_tracer()
        for report in worker_reports:
            spans = report.pop("spans", None)
            if tracer is not None and spans:
                tracer.adopt(
                    spans, tid=report["worker"] + 1, worker=report["worker"]
                )
    timer.stop()
    report = BatchReport(
        n_slices=n,
        n_workers=len(partitions),
        wall_s=timer.elapsed,
        per_worker=tuple(worker_reports),
        n_failovers=EVENTS.get("pool.failovers") - failovers_before,
    )
    return masks, report
