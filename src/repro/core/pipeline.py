"""The Zenesis pipeline: adaptation → grounding → segmentation → refinement.

This is the paper's core contribution wired together:

1. **Adaptation** (two branches): the *detector* branch feeds GroundingDINO
   contrast-rich input (bilateral denoise + CLAHE); the *segmenter* branch
   feeds SAM statistics-friendly input (bilateral denoise + unsharp masking
   to undo defocus).  Both run on the robust-normalised raw image.
2. **Grounding**: text prompt → boxes + pixel relevance map.
3. **Segmentation**: each box prompts SAM; among SAM's mask hypotheses the
   pipeline keeps the one most consistent with the text-grounded relevance
   (*grounded mask selection*), then unions the per-box masks and gates the
   union by the dilated high-relevance region.
4. **Volumes**: per-slice detections pass through the temporal heuristic
   (:mod:`repro.core.temporal`) before segmentation.

Every stage is timed into a :class:`~repro.utils.timing.StageProfiler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np
from scipy.ndimage import binary_dilation

from ..adapt.bitdepth import robust_normalize
from ..adapt.contrast import clahe
from ..adapt.denoise import denoise_bilateral, flatfield_correct, unsharp_mask
from ..cache import MISS, CacheConfig, InferenceCache, array_content_key, combine_keys, config_fingerprint, get_cache
from ..data.image import ScientificImage
from ..data.volume import ScientificVolume
from ..errors import GroundingError, PipelineError, RetryExhaustedError
from ..models.dino import Detection, GroundingDino
from ..models.registry import build_dino, build_sam
from ..models.sam.analytic import AnalyticMaskHead, MaskHypothesis
from ..models.sam.model import Sam, SamPredictor
from ..observability.metrics import get_registry
from ..observability.trace import trace
from ..resilience.checkpoint import CheckpointManager
from ..resilience.events import events_snapshot, record_event
from ..resilience.faults import get_fault_plan
from ..resilience.policy import RetryPolicy
from ..resilience.serving.lifecycle import check_deadline
from ..utils.timing import StageProfiler
from .prompts import SpatialHints, TextPrompt
from .propagation import PropagationConfig, PropagationEngine, resume_propagation
from .results import SliceResult, StreamResult, VolumeResult
from .temporal import RefinementReport, TemporalConfig, refine_box_sequences

__all__ = ["REFERENCE_PIXEL_NM", "ZenesisConfig", "ZenesisPipeline"]

# Physical pixel pitch (nm) the default adaptation sigmas were tuned at.
# When a volume carries calibrated pixel-size metadata, spatial kernels are
# rescaled relative to this reference so a feature of fixed physical size
# sees the same effective smoothing regardless of magnification.
REFERENCE_PIXEL_NM = 5.0


@dataclass(frozen=True)
class ZenesisConfig:
    """End-to-end pipeline configuration.

    ``__fingerprint_exclude__`` lists pure performance knobs — settings
    whose value never changes a single output byte (batched and serial
    encoding are bit-identical by construction, pinned in
    ``tests/test_sam_encode_batch.py``).  They are left out of
    :func:`~repro.cache.config_fingerprint` so retuning throughput does
    not invalidate caches, checkpoints, or durable job identities.
    """

    __fingerprint_exclude__ = frozenset({"encode_batch_size"})

    dino_name: str = "swin_t"
    sam_name: str = "vit_t"
    box_threshold: float = 0.35
    text_threshold: float = 0.25
    # Segmenter-branch adaptation.
    denoise_sigma_spatial: float = 1.5
    denoise_sigma_range: float = 0.12
    flatfield: bool = True  # sample-aware illumination correction
    flatfield_sigma: float = 48.0
    unsharp_amount: float = 2.0
    unsharp_sigma: float = 2.0
    # Detector-branch adaptation.
    clahe_tiles: tuple[int, int] = (8, 8)
    clahe_clip: float = 2.5
    # Grounded mask selection.
    selection_floor: float = 0.25
    gate_dilation: int = 4
    band_k: float = 2.0
    # Volumes.  ``temporal_mode`` selects the Mode B engine: "meanbox" is the
    # paper's sliding-window box heuristic (the bit-stable default);
    # "propagate" is the memory-conditioned propagation path (DINO only on
    # keyframes / confidence drops).  Folded into the config fingerprint —
    # the two modes produce different masks, so they must never share cache
    # or checkpoint identities.
    temporal: TemporalConfig = field(default_factory=TemporalConfig)
    temporal_mode: str = "meanbox"
    propagation: PropagationConfig = field(default_factory=PropagationConfig)
    seed: int = 0
    strict_grounding: bool = False  # raise GroundingError when nothing grounds
    use_cache: bool = True  # content-addressed inference cache (--no-cache)
    # Volume pre-encode: upcoming slices are pushed through the batched ViT
    # encoder in chunks of this size (warming the sam.image cache) before the
    # per-slice decode loop; <= 1 disables batching.
    encode_batch_size: int = 8
    # Strict-mode grounding recovery: before raising GroundingError, retry
    # with both thresholds multiplied by grounding_relax per attempt.
    grounding_retries: int = 2
    grounding_relax: float = 0.7
    # Registry provenance: zoo presets stamp "zoo:<name>@<fingerprint>" here
    # so cache / checkpoint / job key spaces for a preset-built config never
    # collide with a hand-rolled config of identical knob values.  A regular
    # field, so it enters config_fingerprint automatically.
    variant: str = ""
    # Calibrated in-plane pixel pitch (nm) from volume metadata; None means
    # uncalibrated (spatial kernels stay at their tuned defaults).  Folded
    # into the adaptation fingerprint — different pitches adapt differently.
    pixel_size_nm: float | None = None

    def __post_init__(self):
        if self.temporal_mode not in ("meanbox", "propagate"):
            raise PipelineError(
                f"temporal_mode must be 'meanbox' or 'propagate', got {self.temporal_mode!r}"
            )
        if self.pixel_size_nm is not None and not self.pixel_size_nm > 0:
            raise PipelineError(f"pixel_size_nm must be > 0, got {self.pixel_size_nm!r}")

    def spatial_scale(self) -> float:
        """Kernel scale factor for this config's physical pixel size.

        Sigmas tuned at :data:`REFERENCE_PIXEL_NM` are multiplied by this
        factor: finer pixels (smaller pitch) need wider kernels in pixel
        units to cover the same physical extent.  Clamped to [0.25, 4.0] so
        wild metadata cannot push kernels to degenerate sizes.
        """
        if self.pixel_size_nm is None:
            return 1.0
        return float(np.clip(REFERENCE_PIXEL_NM / self.pixel_size_nm, 0.25, 4.0))


class ZenesisPipeline:
    """Text-prompted zero-shot segmentation of raw scientific images."""

    def __init__(self, config: ZenesisConfig | None = None) -> None:
        self.config = config or ZenesisConfig()
        cfg = self.config
        # One cache serves both models and the adaptation layer; disabling
        # swaps in an inert instance rather than threading flags everywhere.
        self.cache: InferenceCache = (
            get_cache() if cfg.use_cache else InferenceCache(CacheConfig(enabled=False))
        )
        self.dino: GroundingDino = build_dino(
            cfg.dino_name,
            seed=cfg.seed,
            cache=self.cache,
            box_threshold=cfg.box_threshold,
            text_threshold=cfg.text_threshold,
        )
        self.sam: Sam = build_sam(cfg.sam_name, seed=cfg.seed, analytic=AnalyticMaskHead(band_k=cfg.band_k))
        self.predictor = SamPredictor(self.sam, cache=self.cache)
        self.profiler = StageProfiler()
        self._relaxed_dinos: dict[int, GroundingDino] = {}
        # Adaptation outputs depend only on these knobs, not the full config.
        self._adapt_fp = config_fingerprint(
            {
                "denoise_sigma_spatial": cfg.denoise_sigma_spatial,
                "denoise_sigma_range": cfg.denoise_sigma_range,
                "flatfield": cfg.flatfield,
                "flatfield_sigma": cfg.flatfield_sigma,
                "unsharp_amount": cfg.unsharp_amount,
                "unsharp_sigma": cfg.unsharp_sigma,
                "clahe_tiles": cfg.clahe_tiles,
                "clahe_clip": cfg.clahe_clip,
                "pixel_size_nm": cfg.pixel_size_nm,
            }
        )
        self._spatial_scale = cfg.spatial_scale()

    # -- adaptation -----------------------------------------------------------

    def adapt(self, image) -> tuple[np.ndarray, np.ndarray]:
        """Run both adaptation branches; returns (detector_img, segmenter_img).

        Both branch outputs are cached per (raw content, adaptation knobs):
        re-segmenting a slice with a new prompt skips adaptation entirely.
        """
        cfg = self.config
        raw = image.pixels if isinstance(image, ScientificImage) else np.asarray(image)
        if raw.ndim == 3:
            raw = raw.mean(axis=2)
        key = combine_keys(array_content_key(raw), self._adapt_fp)
        with trace("pipeline.adapt") as span:
            cached = self.cache.get("pipeline.adapt", key)
            if cached is not MISS:
                span.set(cache="hit")
                return cached
            span.set(cache="miss")
            with self.profiler.stage("adapt.normalize"):
                base = robust_normalize(raw)
            scale = self._spatial_scale
            with self.profiler.stage("adapt.denoise"):
                den = denoise_bilateral(
                    base,
                    sigma_spatial=cfg.denoise_sigma_spatial * scale,
                    sigma_range=cfg.denoise_sigma_range,
                )
            if cfg.flatfield:
                with self.profiler.stage("adapt.flatfield"):
                    den = flatfield_correct(den, sigma=cfg.flatfield_sigma * scale)
            with self.profiler.stage("adapt.detector_branch"):
                det_img = clahe(den, tiles=cfg.clahe_tiles, clip_limit=cfg.clahe_clip)
            with self.profiler.stage("adapt.segmenter_branch"):
                seg_img = unsharp_mask(den, amount=cfg.unsharp_amount, sigma=cfg.unsharp_sigma * scale)
            self.cache.put("pipeline.adapt", key, (det_img, seg_img))
            return det_img, seg_img

    # -- grounding -------------------------------------------------------------

    def _relaxed_dino(self, level: int) -> GroundingDino:
        """A detector with thresholds relaxed by ``grounding_relax**level``."""
        dino = self._relaxed_dinos.get(level)
        if dino is None:
            cfg = self.config
            factor = cfg.grounding_relax**level
            dino = build_dino(
                cfg.dino_name,
                seed=cfg.seed,
                cache=self.cache,
                box_threshold=max(cfg.box_threshold * factor, 0.01),
                text_threshold=max(cfg.text_threshold * factor, 0.0),
            )
            self._relaxed_dinos[level] = dino
        return dino

    def _ground_once(
        self, detector_img: np.ndarray, prompt: str, level: int, slice_index: int | None
    ) -> Detection:
        """One grounding attempt at relaxation ``level`` (0 = configured)."""
        with self.profiler.stage("dino.ground"):
            get_registry().counter("repro_pipeline_groundings_total").inc()
            if level == 0 and get_fault_plan().should_fire("grounding_empty", slice=slice_index):
                h, w = np.asarray(detector_img).shape[:2]
                return Detection(
                    boxes=np.zeros((0, 4), dtype=np.float64),
                    scores=np.zeros(0, dtype=np.float64),
                    phrases=(),
                    relevance=np.zeros((h, w), dtype=np.float32),
                    ungrounded=("<fault:grounding_empty>",),
                )
            dino = self.dino if level == 0 else self._relaxed_dino(level)
            return dino.ground(detector_img, prompt)

    def ground(
        self, detector_img: np.ndarray, prompt: str, *, slice_index: int | None = None
    ) -> Detection:
        """Text → boxes/relevance on the detector-branch image.

        In strict mode an empty result is retried with progressively relaxed
        box/text thresholds (``grounding_retries`` × ``grounding_relax``)
        before :class:`GroundingError` is raised; a recovery is recorded in
        the resilience counters.  Non-strict mode returns the empty
        detection untouched — an empty slice is a valid answer there.
        """
        cfg = self.config
        span = trace("pipeline.ground", **({} if slice_index is None else {"slice": slice_index}))
        with span as sp:
            det = self._ground_once(detector_img, prompt, 0, slice_index)
            if det.n_boxes > 0 or not cfg.strict_grounding:
                sp.set(n_boxes=int(det.n_boxes), retries=0)
                return det
            if cfg.grounding_retries > 0:
                policy = RetryPolicy(
                    max_attempts=cfg.grounding_retries,
                    base_delay_s=0.0,
                    jitter=0.0,
                    retry_on=(GroundingError,),
                    seed=cfg.seed,
                )
                retries = 0

                def attempt(i: int) -> Detection:
                    nonlocal retries
                    retries += 1
                    record_event("grounding.retries")
                    relaxed = self._ground_once(detector_img, prompt, i + 1, slice_index)
                    if relaxed.n_boxes == 0:
                        raise GroundingError(f"relaxed grounding (level {i + 1}) still empty")
                    return relaxed

                try:
                    recovered = policy.call(attempt, key=f"grounding:{prompt}")
                except RetryExhaustedError:
                    sp.set(retries=retries)
                else:
                    record_event("grounding.recovered")
                    sp.set(n_boxes=int(recovered.n_boxes), retries=retries, recovered=True)
                    return recovered
        raise GroundingError(
            f"prompt {prompt!r} grounded no regions after "
            f"{1 + max(cfg.grounding_retries, 0)} attempt(s) "
            f"(ungrounded words: {list(det.ungrounded)})"
        )

    # -- grounded mask selection -------------------------------------------------

    def _select_mask(
        self,
        hyps: list[MaskHypothesis],
        relevance: np.ndarray,
        box: np.ndarray,
        *,
        hi: np.ndarray | None = None,
        hi_dilated: np.ndarray | None = None,
    ) -> tuple[MaskHypothesis, float] | None:
        """Pick the hypothesis most consistent with the relevance map.

        Score = (mean relevance inside the mask) × √(fraction of the mask in
        the dilated high-relevance region) × √(coverage of the box's
        high-relevance pixels).  Returns None when every hypothesis is empty.

        ``hi``/``hi_dilated`` are box-independent; callers looping over many
        boxes pass them precomputed so the dilation runs once per image.
        """
        cfg = self.config
        if hi is None:
            hi = relevance >= cfg.box_threshold
        x0, y0, x1, y1 = (int(box[0]), int(box[1]), int(np.ceil(box[2])), int(np.ceil(box[3])))
        hi_box = np.zeros_like(hi)
        hi_box[max(y0, 0) : y1, max(x0, 0) : x1] = hi[max(y0, 0) : y1, max(x0, 0) : x1]
        n_hi = max(int(hi_box.sum()), 1)
        if hi_dilated is None:
            hi_dilated = binary_dilation(hi, iterations=2)
        best: tuple[MaskHypothesis, float] | None = None
        for hyp in hyps:
            m = hyp.mask
            n = int(m.sum())
            if n == 0:
                continue
            score = (
                float(relevance[m].mean())
                * float(np.sqrt((m & hi_dilated).sum() / n))
                * float(np.sqrt((m & hi_box).sum() / n_hi))
            )
            if best is None or score > best[1]:
                best = (hyp, score)
        return best

    def segment_with_boxes(
        self,
        segmenter_img: np.ndarray,
        detection: Detection,
        boxes: np.ndarray | None = None,
    ) -> tuple[np.ndarray, list[np.ndarray], list[str]]:
        """Box prompts → grounded-selected masks → gated union."""
        cfg = self.config
        use_boxes = detection.boxes if boxes is None else boxes
        with self.profiler.stage("sam.set_image"):
            self.predictor.set_image(segmenter_img)
        union = np.zeros(segmenter_img.shape, dtype=bool)
        per_box_masks: list[np.ndarray] = []
        per_box_kinds: list[str] = []
        with self.profiler.stage("sam.box_prompts"):
            if len(use_boxes):
                # Keep the transformer path exercised (tokens/logits exposed
                # on the predictor) while the analytic head picks the masks —
                # all K box prompts decoded in ONE batched pass.
                self.predictor.decode_boxes(np.asarray(use_boxes))
            # Box-independent selection masks, hoisted out of the loop.
            hi = detection.relevance >= cfg.box_threshold
            hi_dilated = binary_dilation(hi, iterations=2)
            for box in use_boxes:
                hyps = self.predictor.masks_from_box(box)
                picked = self._select_mask(
                    hyps, detection.relevance, box, hi=hi, hi_dilated=hi_dilated
                )
                if picked is None or picked[1] <= cfg.selection_floor:
                    continue
                per_box_masks.append(picked[0].mask)
                per_box_kinds.append(picked[0].kind)
                union |= picked[0].mask
        with self.profiler.stage("gate.relevance"):
            if cfg.gate_dilation > 0:
                gate = binary_dilation(detection.relevance >= cfg.box_threshold, iterations=cfg.gate_dilation)
                union &= gate
        return union, per_box_masks, per_box_kinds

    # -- public API ---------------------------------------------------------------

    def segment_image(
        self,
        image,
        prompt: str | TextPrompt,
        *,
        hints: SpatialHints | None = None,
    ) -> SliceResult:
        """Mode A: segment a single image/slice from a text prompt.

        ``hints`` adds user boxes (appended to DINO's) and points (each
        positive point contributes its best SAM mask to the union).
        """
        text = prompt.text if isinstance(prompt, TextPrompt) else str(prompt)
        with trace("pipeline.segment_image", prompt=text):
            det_img, seg_img = self.adapt(image)
            detection = self.ground(det_img, text)
            boxes = detection.boxes
            if hints is not None and hints.boxes:
                user_boxes = np.stack(hints.validated_boxes(seg_img.shape))
                boxes = np.concatenate([boxes, user_boxes], axis=0) if len(boxes) else user_boxes
            mask, per_box, kinds = self.segment_with_boxes(seg_img, detection, boxes)
            if hints is not None and hints.has_points:
                coords, labels = hints.point_arrays()
                with self.profiler.stage("sam.point_prompts"):
                    masks, _, _ = self.predictor.predict(
                        point_coords=coords, point_labels=labels, multimask_output=False
                    )
                mask = mask | masks[0]
        get_registry().counter("repro_pipeline_images_total").inc()
        self.profiler.set_counters(self.cache.counters())
        self.profiler.set_counters(events_snapshot())
        return SliceResult(
            mask=mask,
            detection=detection,
            per_box_masks=tuple(per_box),
            per_box_kinds=tuple(kinds),
            prompt=text,
            profiler=self.profiler,
            metadata={"n_user_boxes": 0 if hints is None else len(hints.boxes)},
        )

    def segment_volume(
        self,
        volume,
        prompt: str | TextPrompt,
        *,
        temporal: bool = True,
        temporal_mode: str | None = None,
        checkpoint_dir: Path | str | None = None,
        resume: bool = False,
    ) -> VolumeResult:
        """Mode B: segment every slice with optional temporal box refinement.

        ``temporal_mode`` (default: the config's ``temporal_mode``) selects
        the engine: ``"meanbox"`` grounds every slice and refines boxes with
        the paper's sliding-window heuristic; ``"propagate"`` grounds only
        keyframes and propagates per-object memory masks in between (the
        ``temporal`` flag is ignored there — propagation *is* the temporal
        model).

        With ``checkpoint_dir`` set, every completed slice mask is persisted
        (atomic manifest + ``.npy`` shards); ``resume=True`` then reloads
        completed slices from a previous interrupted run instead of
        re-segmenting them.  The checkpoint is fingerprinted by (volume
        content, prompt, config, temporal flag/mode) so stale checkpoints
        from a different job raise :class:`~repro.errors.CheckpointError`.
        Adaptation and grounding are re-run on resume — temporal refinement
        needs every slice's boxes, and both stages are deterministic (and
        cached) — so resumed masks are bit-identical to an uninterrupted run.
        In propagate mode the per-object memory state is itself shard-
        checkpointed, so resume replays from the last completed slice with
        the exact memory an uninterrupted run had there.
        """
        text = prompt.text if isinstance(prompt, TextPrompt) else str(prompt)
        voxels = volume.voxels if isinstance(volume, ScientificVolume) else np.asarray(volume)
        if voxels.ndim != 3:
            raise GroundingError(f"segment_volume expects a 3-D volume, got shape {voxels.shape}")
        mode = temporal_mode if temporal_mode is not None else self.config.temporal_mode
        if mode not in ("meanbox", "propagate"):
            raise PipelineError(f"temporal_mode must be 'meanbox' or 'propagate', got {mode!r}")
        if mode == "propagate":
            return self._segment_volume_propagate(voxels, text, checkpoint_dir, resume)
        n = voxels.shape[0]

        ckpt: CheckpointManager | None = None
        done: set[int] = set()
        if checkpoint_dir is not None:
            fingerprint = combine_keys(
                array_content_key(voxels),
                repr(text),
                config_fingerprint(self.config),
                f"temporal={bool(temporal)}",
            )
            ckpt = CheckpointManager(
                checkpoint_dir, fingerprint=fingerprint, n_slices=n, meta={"prompt": text}
            )
            done = ckpt.load(resume=resume)
            if done:
                record_event("checkpoint.resumed_slices", len(done))
        plan = get_fault_plan()

        # Only the segmenter-branch image is needed after grounding; dropping
        # det_img here halves the peak memory of the adapted-slice store.
        seg_imgs: list[np.ndarray] = []
        detections: list[Detection] = []
        with trace("volume.prepare", prompt=text, n_slices=n):
            for z in range(n):
                # Per-slice deadline check: a request whose budget expires
                # mid-volume 504s at the next slice boundary instead of
                # grinding through the remaining Z range first.
                check_deadline(f"segment_volume (prepare slice {z})")
                with trace("slice.prepare", slice=z):
                    det_img, seg_img = self.adapt(voxels[z])
                    detections.append(self.ground(det_img, text, slice_index=z))
                    seg_imgs.append(seg_img)

        report = RefinementReport(n_slices=n)
        per_slice_boxes = [d.boxes for d in detections]
        if temporal:
            with self.profiler.stage("temporal.refine"):
                per_slice_boxes, report = refine_box_sequences(
                    per_slice_boxes, self.config.temporal, image_shape=voxels.shape[1:]
                )

        # Pre-encode the slices the decode loop is about to visit through the
        # batched ViT path: the embeddings land in the content-addressed
        # sam.image cache (memory + disk tiers), so every set_image below —
        # and any later re-prompt on the same slices — is a pure hit.  A
        # no-op when caching is off (nowhere to park the embeddings) or the
        # batch size disables it.
        batch = self.config.encode_batch_size
        if batch > 1 and self.cache.enabled:
            pending = [z for z in range(n) if z not in done]
            if pending:
                with trace("volume.preencode", n_slices=len(pending)):
                    with self.profiler.stage("sam.preencode"):
                        for start in range(0, len(pending), batch):
                            chunk = pending[start : start + batch]
                            self.predictor.precompute_images([seg_imgs[z] for z in chunk])

        slice_results: list[SliceResult] = []
        masks = np.zeros(voxels.shape, dtype=bool)
        registry = get_registry()
        with trace("volume.segment", prompt=text, n_slices=n):
            for z in range(n):
                check_deadline(f"segment_volume (segment slice {z})")
                if plan.active:
                    plan.crash_if("volume_crash", slice=z)
                    if plan.should_fire("volume_abort", slice=z):
                        raise PipelineError(f"injected volume_abort fault at slice {z}")
                with trace("slice.segment", slice=z) as span:
                    if ckpt is not None and z in done:
                        span.set(resumed=True)
                        registry.counter("repro_pipeline_resumed_slices_total").inc()
                        mask = np.asarray(ckpt.load_slice(z), dtype=bool)
                        masks[z] = mask
                        slice_results.append(
                            SliceResult(
                                mask=mask,
                                detection=detections[z],
                                per_box_masks=(),
                                per_box_kinds=(),
                                prompt=text,
                                profiler=self.profiler,
                                metadata={"slice": z, "resumed": True},
                            )
                        )
                        continue
                    mask, per_box, kinds = self.segment_with_boxes(
                        seg_imgs[z], detections[z], per_slice_boxes[z]
                    )
                    masks[z] = mask
                    registry.counter("repro_pipeline_slices_total").inc()
                    if ckpt is not None:
                        ckpt.save_slice(z, mask)
                    slice_results.append(
                        SliceResult(
                            mask=mask,
                            detection=detections[z],
                            per_box_masks=tuple(per_box),
                            per_box_kinds=tuple(kinds),
                            prompt=text,
                            profiler=self.profiler,
                            metadata={"slice": z},
                        )
                    )
        if ckpt is not None:
            ckpt.finalize()
        self.profiler.set_counters(self.cache.counters())
        self.profiler.set_counters(events_snapshot())
        return VolumeResult(
            masks=masks,
            slice_results=tuple(slice_results),
            prompt=text,
            refinement_report=report.as_dict(),
            profiler=self.profiler,
        )

    # -- streaming (out-of-core) ---------------------------------------------------

    def _stream_fingerprint(self, volume, text: str, extra: str) -> str:
        """Checkpoint identity for a streamed volume: one hashing IO pass.

        Corrupt tiles contribute a structural marker instead of bytes, so a
        volume with a torn tail still has a *stable* identity across resume
        attempts (the alternative — refusing to fingerprint — would make
        exactly the damaged volumes the ones that cannot resume).
        """
        from hashlib import sha1

        from ..errors import CorruptTileError

        h = sha1()
        h.update(repr((tuple(volume.shape), str(volume.dtype))).encode())
        for z in range(volume.n_tiles):
            try:
                h.update(volume.tile_bytes(z))
            except CorruptTileError as exc:
                h.update(f"corrupt:{z}:{exc.kind}".encode())
        return combine_keys(
            h.hexdigest(), repr(text), config_fingerprint(self.config), extra, "stream"
        )

    def segment_volume_stream(
        self,
        source,
        prompt: str | TextPrompt,
        *,
        temporal: bool = True,
        temporal_mode: str | None = None,
        checkpoint_dir: Path | str,
        resume: bool = False,
        policy=None,
        on_slice=None,
    ) -> StreamResult:
        """Mode B over a :class:`~repro.io.LazyVolume`: out-of-core streaming.

        ``source`` is a LazyVolume or a path (file or slice directory) opened
        with :func:`~repro.io.open_lazy_volume`.  Masks are written straight
        to ``checkpoint_dir`` shards — the full (Z, H, W) stack is never
        materialized, and decoded tiles flow through a prefetch window
        bounded by ``policy.memory_budget_bytes``.

        Clean data produces masks bit-identical to :meth:`segment_volume` on
        the eagerly-loaded array: both paths run the same deterministic
        adapt → ground → refine → decode per slice.  The meanbox engine
        streams in two passes (boxes only are retained between them; pass 2
        re-runs adaptation/grounding, which the content-addressed cache
        serves when enabled) so temporal refinement sees every slice without
        holding any.  Corrupt tiles follow ``policy.on_corrupt``: ``fail``
        aborts, ``skip``/``degrade`` substitute data and record the slice in
        the checkpoint manifest's degraded markers — the run *completes*.

        ``on_slice(z, phase, total)`` fires per slice (phases ``prepare`` /
        ``segment`` / ``propagate``) — the jobs runner's progress hook.
        """
        from ..io.integrity import IngestPolicy, Prefetcher, TileStream
        from ..io.lazy import LazyVolume, open_lazy_volume

        if checkpoint_dir is None:
            raise PipelineError(
                "segment_volume_stream requires checkpoint_dir: streamed masks "
                "live as checkpoint shards, not in memory"
            )
        text = prompt.text if isinstance(prompt, TextPrompt) else str(prompt)
        owns_volume = not isinstance(source, LazyVolume)
        volume = open_lazy_volume(source) if owns_volume else source
        try:
            return self._segment_volume_stream(
                volume,
                text,
                temporal=temporal,
                temporal_mode=temporal_mode,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
                policy=policy if policy is not None else IngestPolicy(),
                on_slice=on_slice,
                prefetcher_cls=Prefetcher,
                stream_cls=TileStream,
            )
        finally:
            if owns_volume:
                volume.close()

    def _segment_volume_stream(
        self,
        volume,
        text: str,
        *,
        temporal: bool,
        temporal_mode: str | None,
        checkpoint_dir: Path | str,
        resume: bool,
        policy,
        on_slice,
        prefetcher_cls,
        stream_cls,
    ) -> StreamResult:
        mode = temporal_mode if temporal_mode is not None else self.config.temporal_mode
        if mode not in ("meanbox", "propagate"):
            raise PipelineError(f"temporal_mode must be 'meanbox' or 'propagate', got {mode!r}")
        n = volume.n_tiles
        stream = stream_cls(volume, policy)
        extra = "temporal_mode=propagate" if mode == "propagate" else f"temporal={bool(temporal)}"
        with trace("volume.stream_fingerprint", n_slices=n):
            fingerprint = self._stream_fingerprint(volume, text, extra)
        ckpt = CheckpointManager(
            checkpoint_dir,
            fingerprint=fingerprint,
            n_slices=n,
            meta={"prompt": text, "stream": True, "source": volume.source_path},
        )
        done = ckpt.load(resume=resume)
        if done:
            record_event("checkpoint.resumed_slices", len(done))
        registry = get_registry()
        if mode == "propagate":
            coverage = self._stream_propagate(volume, stream, text, ckpt, on_slice)
            report = {"mode": "propagation", "temporal_mode": "propagate"}
        else:
            coverage, report = self._stream_meanbox(
                volume, stream, text, ckpt, done, temporal, on_slice, prefetcher_cls
            )
        # Tiles the policy substituted this run; prior runs' markers are in
        # the manifest meta already (merged by ckpt.load).
        for z, reason in stream.degraded.items():
            if z not in ckpt.degraded:
                ckpt.mark_degraded(z, reason)
        ckpt.finalize()
        registry.gauge("repro_io_stream_degraded_slices").set(len(ckpt.degraded))
        self.profiler.set_counters(self.cache.counters())
        self.profiler.set_counters(events_snapshot())
        return StreamResult(
            n_slices=n,
            slice_shape=volume.tile_shape,
            checkpoint_dir=str(ckpt.root),
            prompt=text,
            per_slice_coverage=tuple(coverage),
            degraded=ckpt.degraded,
            refinement_report=report if isinstance(report, dict) else report.as_dict(),
            io_stats={
                "n_tiles": n,
                "tile_nbytes": volume.tile_nbytes,
                "degraded": len(ckpt.degraded),
                "quarantined": list(stream.quarantined),
                "source": volume.source_path,
                "meta": {k: v for k, v in volume.meta.items()},
            },
            profiler=self.profiler,
        )

    def _stream_meanbox(
        self, volume, stream, text, ckpt, done, temporal, on_slice, prefetcher_cls
    ):
        """Two-pass streaming meanbox: boxes survive between passes, tiles don't.

        Pass 1 grounds every slice and keeps only its boxes (a few hundred
        bytes each).  Pass 2 re-fetches each tile, re-runs adaptation and
        grounding (deterministic; cache-served when enabled) and decodes with
        the refined boxes.  Identical per-slice computation to the eager
        path — hence bit-identical masks — at O(prefetch window) memory.
        """
        n = volume.n_tiles
        plan = get_fault_plan()
        registry = get_registry()
        per_slice_boxes: list[np.ndarray] = [None] * n  # type: ignore[list-item]
        with trace("volume.stream_prepare", prompt=text, n_slices=n):
            prefetch = prefetcher_cls(stream)
            for z, tile, _reason in prefetch:
                check_deadline(f"segment_volume_stream (prepare slice {z})")
                with trace("slice.prepare", slice=z):
                    det_img, _seg_img = self.adapt(tile)
                    per_slice_boxes[z] = self.ground(det_img, text, slice_index=z).boxes
                if on_slice is not None:
                    on_slice(z, "prepare", n)
            registry.gauge("repro_io_stream_max_resident_bytes").set(
                prefetch.max_resident_bytes
            )

        report = RefinementReport(n_slices=n)
        if temporal:
            with self.profiler.stage("temporal.refine"):
                per_slice_boxes, report = refine_box_sequences(
                    per_slice_boxes, self.config.temporal, image_shape=volume.tile_shape
                )

        coverage = [0.0] * n
        with trace("volume.stream_segment", prompt=text, n_slices=n):
            prefetch = prefetcher_cls(stream, skip=lambda z: z in done)
            pending = iter(prefetch)
            for z in range(n):
                check_deadline(f"segment_volume_stream (segment slice {z})")
                if plan.active:
                    plan.crash_if("volume_crash", slice=z)
                    if plan.should_fire("volume_abort", slice=z):
                        raise PipelineError(f"injected volume_abort fault at slice {z}")
                with trace("slice.segment", slice=z) as span:
                    if z in done:
                        span.set(resumed=True)
                        registry.counter("repro_pipeline_resumed_slices_total").inc()
                        coverage[z] = float(
                            np.asarray(ckpt.load_slice(z), dtype=bool).mean()
                        )
                    else:
                        pz, tile, _reason = next(pending)
                        assert pz == z, f"prefetcher yielded slice {pz}, expected {z}"
                        _det_img, seg_img = self.adapt(tile)
                        detection = self.ground(_det_img, text, slice_index=z)
                        mask, _per_box, _kinds = self.segment_with_boxes(
                            seg_img, detection, per_slice_boxes[z]
                        )
                        coverage[z] = float(mask.mean())
                        registry.counter("repro_pipeline_slices_total").inc()
                        if z in stream.degraded:
                            ckpt.mark_degraded(z, stream.degraded[z])
                        ckpt.save_slice(z, mask)
                if on_slice is not None:
                    on_slice(z, "segment", n)
            gauge = registry.gauge("repro_io_stream_max_resident_bytes")
            gauge.set(max(gauge.value, prefetch.max_resident_bytes))
        return coverage, report

    def _stream_propagate(self, volume, stream, text, ckpt, on_slice):
        """One-pass streaming propagation: the engine is the only state."""
        from .propagation import STATE_NAME

        n = volume.n_tiles
        engine = PropagationEngine(self, text, config=self.config.propagation)
        start_z = 0
        if ckpt.completed:
            start_z = resume_propagation(ckpt, engine, None)
            if start_z:
                record_event("checkpoint.resumed_slices", start_z)
        plan = get_fault_plan()
        registry = get_registry()
        coverage = [0.0] * n
        for z in range(start_z):
            coverage[z] = float(np.asarray(ckpt.load_slice(z), dtype=bool).mean())
        with trace("volume.stream_propagate", prompt=text, n_slices=n):
            for z in range(start_z, n):
                check_deadline(f"segment_volume_stream (propagate slice {z})")
                if plan.active:
                    plan.crash_if("volume_crash", slice=z)
                    if plan.should_fire("volume_abort", slice=z):
                        raise PipelineError(f"injected volume_abort fault at slice {z}")
                tile, reason = stream.fetch(z)
                with trace("slice.propagate", slice=z) as span:
                    mask, meta = engine.step(z, tile)
                    span.set(
                        grounded=bool(meta.get("grounded", False)),
                        n_objects=int(meta.get("n_objects", 0)),
                    )
                coverage[z] = float(mask.mean())
                registry.counter("repro_pipeline_slices_total").inc()
                if reason is not None:
                    ckpt.mark_degraded(z, reason)
                ckpt.save_slice(z, mask)
                ckpt.save_state(STATE_NAME, engine.state.to_arrays())
                if on_slice is not None:
                    on_slice(z, "propagate", n)
        return coverage

    def _segment_volume_propagate(
        self,
        voxels: np.ndarray,
        text: str,
        checkpoint_dir: Path | str | None,
        resume: bool,
    ) -> VolumeResult:
        """Memory-conditioned Mode B: keyframe grounding + mask propagation.

        Forward streaming from slice 0; each completed slice persists its
        mask shard *then* the serialized propagation memory, so a kill at
        any instant resumes bit-identically (at most one slice recomputed).
        """
        from .propagation import STATE_NAME

        n = voxels.shape[0]
        engine = PropagationEngine(self, text, config=self.config.propagation)
        masks = np.zeros(voxels.shape, dtype=bool)
        ckpt: CheckpointManager | None = None
        start_z = 0
        if checkpoint_dir is not None:
            fingerprint = combine_keys(
                array_content_key(voxels),
                repr(text),
                config_fingerprint(self.config),
                "temporal_mode=propagate",
            )
            ckpt = CheckpointManager(
                checkpoint_dir,
                fingerprint=fingerprint,
                n_slices=n,
                meta={"prompt": text, "temporal_mode": "propagate"},
            )
            ckpt.load(resume=resume)
            if resume:
                start_z = resume_propagation(ckpt, engine, masks)
                if start_z:
                    record_event("checkpoint.resumed_slices", start_z)
        plan = get_fault_plan()
        registry = get_registry()
        metas: dict[int, dict] = {}
        with trace("volume.propagate", prompt=text, n_slices=n):
            for z in range(start_z, n):
                if plan.active:
                    plan.crash_if("volume_crash", slice=z)
                    if plan.should_fire("volume_abort", slice=z):
                        raise PipelineError(f"injected volume_abort fault at slice {z}")
                with trace("slice.propagate", slice=z) as span:
                    mask, meta = engine.step(z, voxels[z])
                    span.set(
                        grounded=bool(meta.get("grounded", False)),
                        n_objects=int(meta.get("n_objects", 0)),
                    )
                masks[z] = mask
                metas[z] = meta
                registry.counter("repro_pipeline_slices_total").inc()
                if ckpt is not None:
                    ckpt.save_slice(z, mask)
                    ckpt.save_state(STATE_NAME, engine.state.to_arrays())
        if ckpt is not None:
            ckpt.finalize()

        slice_results: list[SliceResult] = []
        last_detection = engine.last_detection
        for z in range(n):
            meta = metas.get(z)
            if meta is None:  # restored from checkpoint
                slice_results.append(
                    SliceResult(
                        mask=masks[z],
                        detection=None,
                        prompt=text,
                        metadata={"slice": z, "resumed": True, "propagated": True},
                    )
                )
            elif meta.get("grounded"):
                slice_results.append(
                    SliceResult(
                        mask=masks[z],
                        detection=meta.get("detection"),
                        per_box_masks=meta.get("per_box_masks", ()),
                        per_box_kinds=meta.get("per_box_kinds", ()),
                        prompt=text,
                        profiler=self.profiler,
                        metadata={"slice": z, "grounded": True, "reason": meta.get("reason")},
                    )
                )
            else:
                slice_results.append(
                    SliceResult(
                        mask=masks[z],
                        detection=last_detection,
                        prompt=text,
                        metadata={
                            "propagated": True,
                            "slice": z,
                            "confidence": meta.get("confidence"),
                        },
                    )
                )
        self.profiler.set_counters(self.cache.counters())
        self.profiler.set_counters(events_snapshot())
        report = {"mode": "propagation", "temporal_mode": "propagate", **engine.state.stats()}
        return VolumeResult(
            masks=masks,
            slice_results=tuple(slice_results),
            prompt=text,
            refinement_report=report,
            profiler=self.profiler,
        )
