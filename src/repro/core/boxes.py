"""Bounding-box operations (XYXY convention, x along columns).

Vectorised over arrays of boxes shaped ``(N, 4)``.  Used by the grounding
detector (NMS, merging), the HITL rectifier (random proposals, distances),
and the temporal heuristic (per-slice box statistics).
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..utils.rng import as_rng

__all__ = [
    "as_boxes",
    "box_area",
    "box_center",
    "box_iou",
    "clip_boxes",
    "pad_box",
    "nms",
    "merge_overlapping",
    "mask_to_box",
    "box_to_mask",
    "random_boxes",
]


def as_boxes(boxes) -> np.ndarray:
    """Coerce to a float ``(N, 4)`` array, validating x1>x0, y1>y0."""
    arr = np.asarray(boxes, dtype=np.float64)
    if arr.size == 0:
        return arr.reshape(0, 4)
    if arr.ndim == 1:
        arr = arr.reshape(1, 4)
    if arr.ndim != 2 or arr.shape[1] != 4:
        raise ValidationError(f"boxes must be (N, 4), got shape {arr.shape}")
    if not ((arr[:, 2] > arr[:, 0]) & (arr[:, 3] > arr[:, 1])).all():
        raise ValidationError("every box must satisfy x1 > x0 and y1 > y0")
    return arr


def box_area(boxes) -> np.ndarray:
    """Areas of ``(N, 4)`` boxes."""
    b = as_boxes(boxes)
    return (b[:, 2] - b[:, 0]) * (b[:, 3] - b[:, 1])


def box_center(boxes) -> np.ndarray:
    """Centres (x, y) of ``(N, 4)`` boxes, shape ``(N, 2)``."""
    b = as_boxes(boxes)
    return np.stack([(b[:, 0] + b[:, 2]) / 2.0, (b[:, 1] + b[:, 3]) / 2.0], axis=1)


def box_iou(a, b) -> np.ndarray:
    """Pairwise IoU matrix between ``(N, 4)`` and ``(M, 4)`` boxes."""
    a = as_boxes(a)
    b = as_boxes(b)
    x0 = np.maximum(a[:, None, 0], b[None, :, 0])
    y0 = np.maximum(a[:, None, 1], b[None, :, 1])
    x1 = np.minimum(a[:, None, 2], b[None, :, 2])
    y1 = np.minimum(a[:, None, 3], b[None, :, 3])
    inter = np.clip(x1 - x0, 0, None) * np.clip(y1 - y0, 0, None)
    union = box_area(a)[:, None] + box_area(b)[None, :] - inter
    return np.where(union > 0, inter / union, 0.0)


def clip_boxes(boxes, image_shape: tuple[int, int]) -> np.ndarray:
    """Clip boxes to image bounds (H, W); boxes fully outside collapse is an error."""
    b = as_boxes(boxes).copy()
    h, w = image_shape
    outside = (b[:, 0] >= w) | (b[:, 1] >= h) | (b[:, 2] <= 0) | (b[:, 3] <= 0)
    if outside.any():
        raise ValidationError(f"box {b[outside][0].tolist()} lies entirely outside image {(h, w)}")
    b[:, 0] = np.clip(b[:, 0], 0, w - 1)
    b[:, 2] = np.clip(b[:, 2], 1, w)
    b[:, 1] = np.clip(b[:, 1], 0, h - 1)
    b[:, 3] = np.clip(b[:, 3], 1, h)
    if not ((b[:, 2] > b[:, 0]) & (b[:, 3] > b[:, 1])).all():
        raise ValidationError("a box collapsed to zero size after clipping")
    return b


def pad_box(box, margin: float, image_shape: tuple[int, int] | None = None) -> np.ndarray:
    """Expand a single box by ``margin`` pixels on every side."""
    b = as_boxes(box)[0].copy()
    b += np.array([-margin, -margin, margin, margin])
    if image_shape is not None:
        b = clip_boxes(b, image_shape)[0]
    return b


def nms(boxes, scores, *, iou_threshold: float = 0.5) -> np.ndarray:
    """Greedy non-maximum suppression; returns kept indices, best first."""
    b = as_boxes(boxes)
    s = np.asarray(scores, dtype=np.float64)
    if s.shape != (b.shape[0],):
        raise ValidationError(f"scores shape {s.shape} != n_boxes {b.shape[0]}")
    order = np.argsort(-s)
    keep: list[int] = []
    iou = box_iou(b, b)
    suppressed = np.zeros(len(b), dtype=bool)
    for i in order:
        if suppressed[i]:
            continue
        keep.append(int(i))
        suppressed |= iou[i] > iou_threshold
    return np.asarray(keep, dtype=np.intp)


def merge_overlapping(boxes, *, iou_threshold: float = 0.3) -> np.ndarray:
    """Union boxes whose IoU exceeds the threshold (transitively).

    Returns the merged ``(M, 4)`` boxes.  Used to consolidate fragmented
    detections of the same particle cluster.
    """
    b = as_boxes(boxes)
    n = len(b)
    if n == 0:
        return b
    adj = box_iou(b, b) > iou_threshold
    # Union-find over the overlap graph.
    parent = np.arange(n)

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    ii, jj = np.nonzero(adj)
    for i, j in zip(ii, jj):
        ri, rj = find(int(i)), find(int(j))
        if ri != rj:
            parent[rj] = ri
    roots = np.array([find(i) for i in range(n)])
    merged = []
    for r in np.unique(roots):
        grp = b[roots == r]
        merged.append([grp[:, 0].min(), grp[:, 1].min(), grp[:, 2].max(), grp[:, 3].max()])
    return np.asarray(merged, dtype=np.float64)


def mask_to_box(mask: np.ndarray) -> np.ndarray | None:
    """Tight XYXY box around a mask's True pixels, or None for empty masks."""
    m = np.asarray(mask, dtype=bool)
    ys, xs = np.nonzero(m)
    if ys.size == 0:
        return None
    return np.array([xs.min(), ys.min(), xs.max() + 1, ys.max() + 1], dtype=np.float64)


def box_to_mask(box, image_shape: tuple[int, int]) -> np.ndarray:
    """Boolean mask of the pixels inside a box."""
    b = clip_boxes(box, image_shape)[0]
    mask = np.zeros(image_shape, dtype=bool)
    mask[int(b[1]) : int(np.ceil(b[3])), int(b[0]) : int(np.ceil(b[2]))] = True
    return mask


def random_boxes(
    n: int,
    image_shape: tuple[int, int],
    rng=None,
    *,
    full_extent_axis: str | None = None,
    min_size: float = 8.0,
) -> np.ndarray:
    """Random candidate boxes for the HITL Rectify-Segmentation feature.

    ``full_extent_axis`` of ``"width"``/``"height"`` pins that dimension to
    the full image (the paper's "length or width equal to the image size"
    criterion); ``None`` draws both extents freely.
    """
    rng = as_rng(rng)
    h, w = image_shape
    if n < 1:
        raise ValidationError("n must be >= 1")
    boxes = np.empty((n, 4), dtype=np.float64)
    for i in range(n):
        if full_extent_axis == "width":
            x0, x1 = 0.0, float(w)
        else:
            x0 = rng.uniform(0, w - min_size)
            x1 = rng.uniform(x0 + min_size, w)
        if full_extent_axis == "height":
            y0, y1 = 0.0, float(h)
        else:
            y0 = rng.uniform(0, h - min_size)
            y1 = rng.uniform(y0 + min_size, h)
        boxes[i] = (x0, y0, x1, y1)
    return boxes
