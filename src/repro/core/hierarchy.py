"""Further Segment: hierarchical re-segmentation of sub-regions (paper Fig. 5).

The platform lets a user pick one extracted segment and *trigger
GroundingDINO and SAM on the sub-region for more detailed analysis*.  Here
that is :func:`further_segment`: crop the region (from a box or a mask's
bounding box), re-run the full pipeline on the crop — where the relevance
grid is effectively finer relative to structure size — and paste the result
back into image coordinates.  Repeated application yields a segmentation
tree (:class:`SegmentNode`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ValidationError
from .boxes import mask_to_box, pad_box
from .pipeline import ZenesisPipeline
from .results import SliceResult

__all__ = ["SegmentNode", "further_segment"]


@dataclass
class SegmentNode:
    """One node of the hierarchical segmentation tree."""

    mask: np.ndarray  # full-image coordinates
    prompt: str
    box: np.ndarray | None = None  # region this node was computed in
    depth: int = 0
    children: list["SegmentNode"] = field(default_factory=list)

    def walk(self):
        """Yield nodes depth-first (self first)."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def n_descendants(self) -> int:
        return sum(1 for _ in self.walk()) - 1


def further_segment(
    pipeline: ZenesisPipeline,
    image: np.ndarray,
    region,
    prompt: str,
    *,
    parent: SegmentNode | None = None,
    margin: float = 6.0,
    min_region: int = 32,
) -> SegmentNode:
    """Re-segment a sub-region of ``image`` and attach it to the tree.

    ``region`` is an XYXY box or a boolean mask (its bounding box is used).
    Returns the new child node; if ``parent`` is given the node is appended
    to its children with ``depth = parent.depth + 1``.
    """
    img = np.asarray(image)
    if img.ndim == 3:
        img = img.mean(axis=2)
    h, w = img.shape
    if isinstance(region, np.ndarray) and region.dtype == bool:
        box = mask_to_box(region)
        if box is None:
            raise ValidationError("further_segment got an empty region mask")
    else:
        box = np.asarray(region, dtype=np.float64).reshape(4)
    box = pad_box(box, margin, image_shape=(h, w))
    x0, y0, x1, y1 = (int(box[0]), int(box[1]), int(np.ceil(box[2])), int(np.ceil(box[3])))
    if (y1 - y0) < min_region or (x1 - x0) < min_region:
        raise ValidationError(
            f"sub-region {x1 - x0}x{y1 - y0} too small for further segmentation (min {min_region})"
        )
    # Contiguous copy: the crop is the cache key for every downstream stage,
    # and hashing a strided view would re-copy it once per stage.
    crop = np.ascontiguousarray(img[y0:y1, x0:x1])
    result: SliceResult = pipeline.segment_image(crop, prompt)
    full = np.zeros((h, w), dtype=bool)
    full[y0:y1, x0:x1] = result.mask
    node = SegmentNode(
        mask=full,
        prompt=prompt,
        box=box,
        depth=0 if parent is None else parent.depth + 1,
    )
    if parent is not None:
        parent.children.append(node)
    return node
