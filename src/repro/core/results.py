"""Result containers for slice- and volume-level segmentation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ValidationError
from ..models.dino import Detection
from ..utils.timing import StageProfiler
from .masks import rle_encode

__all__ = ["SliceResult", "VolumeResult"]


@dataclass(frozen=True)
class SliceResult:
    """Segmentation output for one image/slice."""

    mask: np.ndarray  # (H, W) bool — the predicted target phase
    detection: Detection  # the grounding stage output (boxes, relevance)
    per_box_masks: tuple[np.ndarray, ...] = ()  # mask chosen for each box
    per_box_kinds: tuple[str, ...] = ()  # analytic hypothesis kind per box
    prompt: str = ""
    profiler: StageProfiler = field(default_factory=StageProfiler, repr=False)
    metadata: dict = field(default_factory=dict)

    @property
    def n_boxes(self) -> int:
        return self.detection.n_boxes

    @property
    def coverage(self) -> float:
        """Fraction of the image covered by the predicted mask."""
        return float(self.mask.mean())

    def to_record(self) -> dict:
        """JSON-safe export (mask as RLE) for the platform API."""
        return {
            "prompt": self.prompt,
            "mask_rle": rle_encode(self.mask),
            "boxes": self.detection.boxes.tolist(),
            "box_scores": self.detection.scores.tolist(),
            "phrases": list(self.detection.phrases),
            "coverage": self.coverage,
            "metadata": dict(self.metadata),
        }


@dataclass(frozen=True)
class VolumeResult:
    """Segmentation output for a volume (Mode B)."""

    masks: np.ndarray  # (Z, H, W) bool
    slice_results: tuple[SliceResult, ...]
    prompt: str = ""
    refinement_report: dict = field(default_factory=dict)
    profiler: StageProfiler = field(default_factory=StageProfiler, repr=False)

    def __post_init__(self):
        if self.masks.ndim != 3:
            raise ValidationError(f"masks must be (Z, H, W), got shape {self.masks.shape}")
        if len(self.slice_results) != self.masks.shape[0]:
            raise ValidationError(
                f"{len(self.slice_results)} slice results for {self.masks.shape[0]} slices"
            )

    @property
    def n_slices(self) -> int:
        return int(self.masks.shape[0])

    def volume_fraction(self) -> float:
        """Segmented-phase volume fraction (a materials-science deliverable)."""
        return float(self.masks.mean())
