"""Result containers for slice- and volume-level segmentation."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import CheckpointError, ValidationError
from ..models.dino import Detection
from ..utils.timing import StageProfiler
from .masks import rle_encode

__all__ = ["SliceResult", "VolumeResult", "StreamResult"]


@dataclass(frozen=True)
class SliceResult:
    """Segmentation output for one image/slice."""

    mask: np.ndarray  # (H, W) bool — the predicted target phase
    detection: Detection  # the grounding stage output (boxes, relevance)
    per_box_masks: tuple[np.ndarray, ...] = ()  # mask chosen for each box
    per_box_kinds: tuple[str, ...] = ()  # analytic hypothesis kind per box
    prompt: str = ""
    profiler: StageProfiler = field(default_factory=StageProfiler, repr=False)
    metadata: dict = field(default_factory=dict)

    @property
    def n_boxes(self) -> int:
        return self.detection.n_boxes

    @property
    def coverage(self) -> float:
        """Fraction of the image covered by the predicted mask."""
        return float(self.mask.mean())

    def to_record(self) -> dict:
        """JSON-safe export (mask as RLE) for the platform API."""
        return {
            "prompt": self.prompt,
            "mask_rle": rle_encode(self.mask),
            "boxes": self.detection.boxes.tolist(),
            "box_scores": self.detection.scores.tolist(),
            "phrases": list(self.detection.phrases),
            "coverage": self.coverage,
            "metadata": dict(self.metadata),
        }


@dataclass(frozen=True)
class VolumeResult:
    """Segmentation output for a volume (Mode B)."""

    masks: np.ndarray  # (Z, H, W) bool
    slice_results: tuple[SliceResult, ...]
    prompt: str = ""
    refinement_report: dict = field(default_factory=dict)
    profiler: StageProfiler = field(default_factory=StageProfiler, repr=False)

    def __post_init__(self):
        if self.masks.ndim != 3:
            raise ValidationError(f"masks must be (Z, H, W), got shape {self.masks.shape}")
        if len(self.slice_results) != self.masks.shape[0]:
            raise ValidationError(
                f"{len(self.slice_results)} slice results for {self.masks.shape[0]} slices"
            )

    @property
    def n_slices(self) -> int:
        return int(self.masks.shape[0])

    def volume_fraction(self) -> float:
        """Segmented-phase volume fraction (a materials-science deliverable)."""
        return float(self.masks.mean())


@dataclass(frozen=True)
class StreamResult:
    """Segmentation output for a *streamed* volume (Mode B, out-of-core).

    The masks never exist as one (Z, H, W) array — that is the point of the
    streaming path.  They live as checkpoint shards under ``checkpoint_dir``
    (one ``slice_*.npy`` per slice, bit-identical to what the eager path
    would have produced); :meth:`load_mask` reads one back and
    :meth:`assemble_masks` materializes the stack for callers who *know*
    it fits in memory.
    """

    n_slices: int
    slice_shape: tuple[int, int]
    checkpoint_dir: str
    prompt: str = ""
    per_slice_coverage: tuple[float, ...] = ()
    degraded: dict[int, str] = field(default_factory=dict)
    refinement_report: dict = field(default_factory=dict)
    io_stats: dict = field(default_factory=dict)
    profiler: StageProfiler = field(default_factory=StageProfiler, repr=False)

    def __post_init__(self):
        if self.n_slices < 1:
            raise ValidationError(f"n_slices must be >= 1, got {self.n_slices}")
        if self.per_slice_coverage and len(self.per_slice_coverage) != self.n_slices:
            raise ValidationError(
                f"{len(self.per_slice_coverage)} coverage entries for {self.n_slices} slices"
            )

    def shard_path(self, z: int) -> Path:
        return Path(self.checkpoint_dir) / f"slice_{int(z):05d}.npy"

    def load_mask(self, z: int) -> np.ndarray:
        """Read one slice mask shard back as a bool array."""
        path = self.shard_path(z)
        try:
            return np.asarray(np.load(path, allow_pickle=False), dtype=bool)
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"cannot read mask shard {path}: {exc}") from exc

    def iter_masks(self):
        """Yield ``(z, mask)`` in order, one resident slice at a time."""
        for z in range(self.n_slices):
            yield z, self.load_mask(z)

    def assemble_masks(self) -> np.ndarray:
        """Materialize the full (Z, H, W) bool stack.  Caller owns the RAM."""
        masks = np.zeros((self.n_slices, *self.slice_shape), dtype=bool)
        for z, mask in self.iter_masks():
            masks[z] = mask
        return masks

    def volume_fraction(self) -> float:
        """Segmented-phase volume fraction, computed one shard at a time."""
        total = 0.0
        for _, mask in self.iter_masks():
            total += float(mask.mean())
        return total / self.n_slices

    def to_record(self) -> dict:
        """JSON-safe summary for the jobs/platform layers."""
        return {
            "prompt": self.prompt,
            "n_slices": self.n_slices,
            "slice_shape": list(self.slice_shape),
            "checkpoint_dir": self.checkpoint_dir,
            "per_slice_coverage": list(self.per_slice_coverage),
            "degraded": {str(z): r for z, r in sorted(self.degraded.items())},
            "refinement_report": dict(self.refinement_report),
            "io_stats": dict(self.io_stats),
        }
