"""Memory-conditioned temporal mask propagation (SAM 2-style).

SAM 2 extends SAM to video with a memory of past masks; a FIB-SEM stack is
a "video" along Z.  This module promotes that idea to a first-class volume
path: ground with DINO only on *keyframes* (or when propagation confidence
drops), and decode every other slice from propagated prompts.

The memory is **per object**.  Each tracked object carries

* its previous mask (the dense memory the next slice is prompted with),
* an embedding centroid (mean ViT embedding cell under the mask, refreshed
  at grounded slices — used to re-associate objects across re-grounds),
* an EMA area and an EMA IoU *confidence* — the exponential moving average
  of how well each propagated candidate agreed with the memory.

Per slice, the engine either

1. **grounds** (scheduled keyframe, confidence below the floor, or no live
   objects): full adapt → DINO → SAM decode, then matches the grounded
   components against the tracked objects (birth / death / resurrection);
2. **propagates**: samples prompt points from each object's eroded memory
   mask, decodes analytic hypotheses (no ViT encode, no DINO — the cheap
   path), selects per object by IoU against the memory, and updates the
   confidence model; or
3. **short-circuits**: a slice whose raw content hash equals the previous
   slice's carries the previous mask over verbatim (content-addressed
   volumes are full of duplicated slices).

Everything is deterministic: prompt points derive from
``spawn_rng(seed, "propagation", z, object_id)`` — stateless per slice and
per object — so a checkpoint/resume replay is bit-identical, which is what
lets :class:`PropagationState` serialize into
:class:`~repro.resilience.CheckpointManager` shards.

Cancellation: every :meth:`PropagationEngine.step` calls
:func:`~repro.resilience.serving.lifecycle.check_deadline`, so a request
deadline or a :class:`~repro.jobs.runner.JobGuard` bound via
``request_scope`` stops propagation at the next slice boundary.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np
from scipy.ndimage import binary_erosion

from ..cache import MISS, array_content_key, combine_keys
from ..errors import PipelineError
from ..observability.metrics import get_registry
from ..observability.trace import trace
from ..resilience.serving.lifecycle import check_deadline
from ..utils.rng import spawn_rng
from .masks import connected_components, masks_iou
from .results import SliceResult, VolumeResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pipeline imports us)
    from .pipeline import ZenesisPipeline

__all__ = [
    "PropagationConfig",
    "ObjectMemory",
    "PropagationState",
    "PropagationEngine",
    "propagate_volume",
    "resume_propagation",
]

_STATE_VERSION = 1
STATE_NAME = "propagation"


@dataclass(frozen=True)
class PropagationConfig:
    """Propagation parameters (part of the pipeline config fingerprint)."""

    n_memory_points: int = 6
    erosion_iterations: int = 2
    area_change_limit: float = 0.55  # |Δarea|/EMA-area beyond this halves the observation
    reground: bool = True  # confidence gate may fall back to DINO grounding
    seed: int = 0
    # Keyframe policy: schedule a full DINO grounding after this many
    # propagated slices (0 disables scheduled keyframes — grounding then
    # happens only on the first slice and on confidence drops).
    keyframe_interval: int = 8
    # Confidence gate: re-ground when the area-weighted mean of the
    # per-object EMA IoU confidences falls below this floor.
    confidence_floor: float = 0.35
    ema_alpha: float = 0.5  # EMA weight of the newest observation
    # Object model.
    match_iou: float = 0.2  # grounded component ↔ tracked object association
    min_candidate_iou: float = 0.2  # below this a propagated candidate is a miss
    max_misses: int = 2  # consecutive misses beyond this kill the object
    min_object_area: int = 12  # px; smaller grounded components are noise
    max_objects: int = 32
    merge_iou: float = 0.8  # propagated masks overlapping this much merge
    resurrect_cosine: float = 0.85  # embedding-centroid match to revive a dead id
    # Propagated decodes run inside a window of the object's memory-mask
    # bbox padded by this many pixels; 0 decodes on the full frame.  An
    # object cannot move further than the margin between adjacent slices,
    # and the window bounds the morphology cost per object by object size
    # instead of frame size.
    roi_margin_px: int = 16

    def __post_init__(self):
        if self.n_memory_points < 1:
            raise PipelineError("n_memory_points must be >= 1")
        if self.roi_margin_px < 0:
            raise PipelineError("roi_margin_px must be >= 0")
        if not 0.0 < self.ema_alpha <= 1.0:
            raise PipelineError("ema_alpha must lie in (0, 1]")
        if self.keyframe_interval < 0:
            raise PipelineError("keyframe_interval must be >= 0")


@dataclass
class ObjectMemory:
    """Memory entry for one tracked object."""

    object_id: int
    mask: np.ndarray  # (H, W) bool — previous accepted mask
    centroid: np.ndarray  # (C,) float32 — embedding centroid at last grounding
    conf: float = 1.0  # EMA IoU confidence
    ema_area: float = 0.0  # EMA mask area in px
    misses: int = 0  # consecutive slices without an accepted observation
    born_at: int = 0  # slice index of birth


@dataclass
class PropagationState:
    """Everything needed to resume propagation bit-identically mid-volume."""

    objects: list[ObjectMemory] = field(default_factory=list)
    graveyard: list[tuple[int, np.ndarray]] = field(default_factory=list)
    next_object_id: int = 0
    z: int = -1  # last completed slice index
    steps_since_ground: int = 0
    last_raw_key: str | None = None
    last_mask: np.ndarray | None = None
    # Counters (also surfaced as repro_temporal_* metrics).
    grounded_slices: int = 0
    propagated_slices: int = 0
    regrounds: int = 0  # confidence/lost-triggered groundings only
    keyframes: int = 0  # scheduled groundings (excludes the initial one)
    births: int = 0
    deaths: int = 0
    resurrections: int = 0
    short_circuits: int = 0

    _COUNTERS = (
        "grounded_slices",
        "propagated_slices",
        "regrounds",
        "keyframes",
        "births",
        "deaths",
        "resurrections",
        "short_circuits",
    )

    def clone(self) -> "PropagationState":
        return copy.deepcopy(self)

    def stats(self) -> dict:
        return {name: int(getattr(self, name)) for name in self._COUNTERS}

    # -- serialization (CheckpointManager state shards) -----------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flatten into named arrays for an atomic ``.npz`` state shard."""
        objs = sorted(self.objects, key=lambda o: o.object_id)
        cdim = max([o.centroid.size for o in objs] + [g[1].size for g in self.graveyard] + [0])
        masks = (
            np.stack([o.mask for o in objs])
            if objs
            else np.zeros((0, 0, 0), dtype=bool)
        )
        centroids = np.zeros((len(objs), cdim), dtype=np.float32)
        for i, o in enumerate(objs):
            centroids[i, : o.centroid.size] = o.centroid
        grave_cent = np.zeros((len(self.graveyard), cdim), dtype=np.float32)
        for i, (_, c) in enumerate(self.graveyard):
            grave_cent[i, : c.size] = c
        meta = {
            "version": _STATE_VERSION,
            "z": int(self.z),
            "next_object_id": int(self.next_object_id),
            "steps_since_ground": int(self.steps_since_ground),
            "last_raw_key": self.last_raw_key,
            "counters": self.stats(),
        }
        return {
            "masks": masks,
            "centroids": centroids,
            "conf": np.array([o.conf for o in objs], dtype=np.float64),
            "ema_area": np.array([o.ema_area for o in objs], dtype=np.float64),
            "misses": np.array([o.misses for o in objs], dtype=np.int64),
            "ids": np.array([o.object_id for o in objs], dtype=np.int64),
            "born_at": np.array([o.born_at for o in objs], dtype=np.int64),
            "grave_ids": np.array([g[0] for g in self.graveyard], dtype=np.int64),
            "grave_centroids": grave_cent,
            "last_mask": (
                self.last_mask if self.last_mask is not None else np.zeros((0, 0), dtype=bool)
            ),
            "meta_json": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "PropagationState":
        meta = json.loads(bytes(np.asarray(arrays["meta_json"], dtype=np.uint8)).decode("utf-8"))
        if int(meta.get("version", -1)) != _STATE_VERSION:
            raise PipelineError(
                f"propagation state version {meta.get('version')} != {_STATE_VERSION}"
            )
        state = cls(
            next_object_id=int(meta["next_object_id"]),
            z=int(meta["z"]),
            steps_since_ground=int(meta["steps_since_ground"]),
            last_raw_key=meta.get("last_raw_key"),
        )
        for name, value in meta.get("counters", {}).items():
            if name in cls._COUNTERS:
                setattr(state, name, int(value))
        masks = np.asarray(arrays["masks"], dtype=bool)
        ids = np.asarray(arrays["ids"], dtype=np.int64)
        for i in range(len(ids)):
            state.objects.append(
                ObjectMemory(
                    object_id=int(ids[i]),
                    mask=masks[i].copy(),
                    centroid=np.asarray(arrays["centroids"][i], dtype=np.float32).copy(),
                    conf=float(arrays["conf"][i]),
                    ema_area=float(arrays["ema_area"][i]),
                    misses=int(arrays["misses"][i]),
                    born_at=int(arrays["born_at"][i]),
                )
            )
        grave_ids = np.asarray(arrays["grave_ids"], dtype=np.int64)
        for i in range(len(grave_ids)):
            state.graveyard.append(
                (int(grave_ids[i]), np.asarray(arrays["grave_centroids"][i], dtype=np.float32).copy())
            )
        last_mask = np.asarray(arrays["last_mask"], dtype=bool)
        state.last_mask = last_mask if last_mask.size else None
        return state


def _memory_points(mask: np.ndarray, n: int, rng, *, iterations: int = 2) -> np.ndarray | None:
    """Sample (x, y) prompt points from the confident interior of a mask."""
    interior = binary_erosion(mask, iterations=iterations, border_value=0) if mask.any() else mask
    ys, xs = np.nonzero(interior if interior.any() else mask)
    if ys.size == 0:
        return None
    idx = rng.choice(ys.size, size=min(n, ys.size), replace=False)
    return np.stack([xs[idx], ys[idx]], axis=1).astype(np.float64)


def _mask_roi(
    mask: np.ndarray, shape: tuple[int, int], margin: int
) -> tuple[int, int, int, int] | None:
    """Padded bbox ``(y0, y1, x0, x1)`` of a mask; None → decode full-frame.

    None when the margin is 0 (windowing disabled), the mask is empty, or
    the padded window already covers the whole frame.
    """
    if margin <= 0 or not mask.any():
        return None
    ys, xs = np.nonzero(mask)
    h, w = shape
    y0 = max(int(ys.min()) - margin, 0)
    y1 = min(int(ys.max()) + margin + 1, h)
    x0 = max(int(xs.min()) - margin, 0)
    x1 = min(int(xs.max()) + margin + 1, w)
    if (y1 - y0) * (x1 - x0) >= h * w:
        return None
    return y0, y1, x0, x1


def _embedding_centroid(embedding: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Mean embedding over the grid cells the mask touches."""
    gh, gw, c = embedding.shape
    h, w = mask.shape
    yy, xx = np.nonzero(mask)
    if yy.size == 0:
        return np.zeros(c, dtype=np.float32)
    cells = np.unique((yy * gh) // h * gw + (xx * gw) // w)
    return embedding.reshape(-1, c)[cells].mean(axis=0).astype(np.float32)


def _cosine(a: np.ndarray, b: np.ndarray) -> float:
    if a.size == 0 or b.size == 0 or a.size != b.size:
        return 0.0
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na <= 0.0 or nb <= 0.0:
        return 0.0
    return float(np.dot(a.astype(np.float64), b.astype(np.float64)) / (na * nb))


class PropagationEngine:
    """Streaming per-slice propagation with per-object memory.

    Callers drive the engine one slice at a time with :meth:`step`; the
    engine never sees the whole volume, so jobs can checkpoint
    ``engine.state`` after every slice and resume bit-identically.
    """

    def __init__(
        self,
        pipeline: "ZenesisPipeline",
        prompt: str,
        *,
        config: PropagationConfig | None = None,
        state: PropagationState | None = None,
    ) -> None:
        self.pipeline = pipeline
        self.prompt = str(prompt)
        self.config = config or PropagationConfig()
        self.state = state if state is not None else PropagationState()
        self.last_detection = None  # provenance for propagated SliceResults

    # -- confidence model ------------------------------------------------------

    @staticmethod
    def update_confidence(conf: float, obs: float, alpha: float) -> float:
        """EMA confidence update; obs=1 never decreases, obs in [0,1] stays bounded."""
        return (1.0 - alpha) * conf + alpha * obs

    def confidence(self) -> float:
        """Area-weighted mean of the live objects' EMA IoU confidences."""
        objs = self.state.objects
        if not objs:
            return 0.0
        weights = np.array([max(o.ema_area, 1.0) for o in objs], dtype=np.float64)
        confs = np.array([o.conf for o in objs], dtype=np.float64)
        return float((weights * confs).sum() / weights.sum())

    # -- one slice -------------------------------------------------------------

    def step(self, z: int, raw_slice: np.ndarray) -> tuple[np.ndarray, dict]:
        """Process slice ``z``; returns (mask, per-slice metadata)."""
        check_deadline(f"propagation (slice {z})")
        cfg = self.config
        st = self.state
        raw = np.asarray(raw_slice)
        raw_key = array_content_key(raw)
        registry = get_registry()

        initial = st.grounded_slices == 0
        scheduled = initial or (
            cfg.keyframe_interval > 0 and st.steps_since_ground >= cfg.keyframe_interval
        )

        if not scheduled and st.last_raw_key == raw_key and st.last_mask is not None:
            # Identical-slice short-circuit: content-addressed volumes repeat
            # slices verbatim; the memory observation is exact (IoU = 1).
            for obj in st.objects:
                obj.conf = self.update_confidence(obj.conf, 1.0, cfg.ema_alpha)
                obj.misses = 0
            mask = st.last_mask.copy()
            st.propagated_slices += 1
            st.short_circuits += 1
            st.steps_since_ground += 1
            meta = {
                "slice": int(z),
                "grounded": False,
                "short_circuit": True,
                "confidence": self.confidence(),
                "n_objects": len(st.objects),
            }
            self._commit(z, raw_key, mask, registry, meta)
            return mask, meta

        if scheduled:
            reason = "initial" if initial else "keyframe"
            mask, meta = self._ground_step(z, raw, reason)
        else:
            union = self._propagate_step(z, raw)
            conf = self.confidence()
            if cfg.reground and (not st.objects or conf < cfg.confidence_floor):
                reason = "lost" if not st.objects else "confidence"
                mask, meta = self._ground_step(z, raw, reason)
            else:
                mask = union
                st.propagated_slices += 1
                st.steps_since_ground += 1
                meta = {
                    "slice": int(z),
                    "grounded": False,
                    "confidence": conf,
                    "n_objects": len(st.objects),
                }
        self._commit(z, raw_key, mask, registry, meta)
        return mask, meta

    def _commit(self, z: int, raw_key: str, mask: np.ndarray, registry, meta: dict) -> None:
        st = self.state
        st.z = int(z)
        st.last_raw_key = raw_key
        st.last_mask = mask.copy()
        if meta.get("grounded", False):
            registry.counter("repro_temporal_grounded_slices_total").inc()
        else:
            registry.counter("repro_temporal_propagated_slices_total").inc()
        registry.gauge("repro_temporal_confidence").set(float(meta.get("confidence", 0.0)))

    # -- grounded slice (keyframe / confidence fallback) -----------------------

    def _ground_step(self, z: int, raw: np.ndarray, reason: str) -> tuple[np.ndarray, dict]:
        cfg = self.config
        st = self.state
        pipe = self.pipeline
        registry = get_registry()
        with trace("propagate.ground", slice=z, reason=reason):
            det_img, seg_img = pipe.adapt(raw)
            detection = pipe.ground(det_img, self.prompt, slice_index=z)
            mask, per_box, kinds = pipe.segment_with_boxes(seg_img, detection)
        self.last_detection = detection
        embedding = pipe.predictor._embedding  # set by segment_with_boxes

        comps = connected_components(mask, min_area=cfg.min_object_area)
        comps.sort(key=lambda m: int(m.sum()), reverse=True)
        comps = comps[: cfg.max_objects]

        # Associate grounded components with tracked objects by mask IoU.
        assigned: dict[int, np.ndarray] = {}
        births: list[np.ndarray] = []
        for comp in comps:
            best_obj, best_iou = None, 0.0
            for obj in st.objects:
                iou_val = masks_iou(comp, obj.mask)
                if iou_val >= cfg.match_iou and iou_val > best_iou:
                    best_obj, best_iou = obj, iou_val
            if best_obj is None:
                births.append(comp)
            elif best_obj.object_id in assigned:
                assigned[best_obj.object_id] |= comp
            else:
                assigned[best_obj.object_id] = comp.copy()

        survivors: list[ObjectMemory] = []
        for obj in st.objects:
            observed = assigned.get(obj.object_id)
            if observed is not None:
                obj.mask = observed
                obj.conf = 1.0  # grounded observation resets the memory
                obj.misses = 0
                area = float(observed.sum())
                obj.ema_area = (
                    area
                    if obj.ema_area <= 0.0
                    else self.update_confidence(obj.ema_area, area, cfg.ema_alpha)
                )
                if embedding is not None:
                    obj.centroid = _embedding_centroid(embedding, observed)
                survivors.append(obj)
            else:
                obj.misses += 1
                obj.conf = self.update_confidence(obj.conf, 0.0, cfg.ema_alpha)
                if obj.misses > cfg.max_misses:
                    self._bury(obj, registry)
                else:
                    survivors.append(obj)
        st.objects = survivors

        for comp in births:
            if len(st.objects) >= cfg.max_objects:
                break
            centroid = (
                _embedding_centroid(embedding, comp)
                if embedding is not None
                else np.zeros(0, dtype=np.float32)
            )
            object_id = self._resurrect(centroid)
            if object_id is None:
                object_id = st.next_object_id
                st.next_object_id += 1
                st.births += 1
                registry.counter("repro_temporal_births_total").inc()
            st.objects.append(
                ObjectMemory(
                    object_id=object_id,
                    mask=comp.copy(),
                    centroid=centroid,
                    conf=1.0,
                    ema_area=float(comp.sum()),
                    born_at=int(z),
                )
            )

        st.grounded_slices += 1
        st.steps_since_ground = 0
        if reason in ("confidence", "lost"):
            st.regrounds += 1
            registry.counter("repro_temporal_regrounds_total").inc()
        elif reason == "keyframe":
            st.keyframes += 1
        meta = {
            "slice": int(z),
            "grounded": True,
            "reason": reason,
            "confidence": self.confidence(),
            "n_objects": len(st.objects),
            "detection": detection,
            "per_box_masks": tuple(per_box),
            "per_box_kinds": tuple(kinds),
        }
        return mask, meta

    def _bury(self, obj: ObjectMemory, registry) -> None:
        st = self.state
        st.deaths += 1
        registry.counter("repro_temporal_deaths_total").inc()
        st.graveyard.append((obj.object_id, obj.centroid))
        if len(st.graveyard) > self.config.max_objects:
            st.graveyard = st.graveyard[-self.config.max_objects :]

    def _resurrect(self, centroid: np.ndarray) -> int | None:
        """Match a newborn component against dead objects' embedding centroids."""
        st = self.state
        best_idx, best_cos = None, self.config.resurrect_cosine
        for i, (_, dead_centroid) in enumerate(st.graveyard):
            cos = _cosine(centroid, dead_centroid)
            if cos >= best_cos:
                best_idx, best_cos = i, cos
        if best_idx is None:
            return None
        object_id, _ = st.graveyard.pop(best_idx)
        st.resurrections += 1
        get_registry().counter("repro_temporal_resurrections_total").inc()
        return object_id

    # -- propagated slice (no DINO, no ViT encode) -----------------------------

    def _analytic_ctx(self, raw: np.ndarray):
        """Analytic decode context for a slice without paying the ViT encode.

        Reuses a full ``sam.image`` cache entry when one exists (the tuple
        already holds the context); otherwise computes and caches the
        context alone — propagated slices never need the embedding.
        """
        pipe = self.pipeline
        _, seg_img = pipe.adapt(raw)
        img = pipe.predictor._normalize_image(seg_img)
        key = combine_keys(array_content_key(img), pipe.predictor._fingerprint)
        cached = pipe.cache.get("sam.image", key)
        if cached is not MISS:
            return cached[1]
        return pipe.cache.get_or_compute(
            "pipeline.analytic_ctx", key, lambda: pipe.sam.analytic.prepare(img)
        )

    def _propagate_step(self, z: int, raw: np.ndarray) -> np.ndarray:
        cfg = self.config
        st = self.state
        registry = get_registry()
        with trace("propagate.decode", slice=z, n_objects=len(st.objects)):
            ctx = self._analytic_ctx(raw)
            union = np.zeros(raw.shape[:2], dtype=bool)
            survivors: list[ObjectMemory] = []
            for obj in sorted(st.objects, key=lambda o: o.object_id):
                rng = spawn_rng(cfg.seed, "propagation", z, obj.object_id)
                points = _memory_points(
                    obj.mask, cfg.n_memory_points, rng, iterations=cfg.erosion_iterations
                )
                candidate = None
                if points is not None:
                    analytic = self.pipeline.sam.analytic
                    labels = np.ones(len(points), dtype=int)
                    roi = _mask_roi(obj.mask, raw.shape[:2], cfg.roi_margin_px)
                    if roi is not None:
                        # Windowed decode: the object fits in its padded
                        # bbox, so the band/clean morphology only touches
                        # O(object) pixels instead of the whole frame.
                        y0, y1, x0, x1 = roi
                        hyps = analytic.masks_from_points(
                            analytic.crop_context(ctx, roi),
                            points - np.array([x0, y0], dtype=np.float64),
                            labels,
                            score=False,
                        )
                    else:
                        hyps = analytic.masks_from_points(ctx, points, labels, score=False)
                    best_iou, best_mask = 0.0, None
                    for hyp in hyps:
                        if not hyp.mask.any():
                            continue
                        mask = hyp.mask
                        if roi is not None:
                            full = np.zeros(raw.shape[:2], dtype=bool)
                            full[y0:y1, x0:x1] = mask
                            mask = full
                        iou_val = masks_iou(mask, obj.mask)
                        if best_mask is None or iou_val > best_iou:
                            best_iou, best_mask = iou_val, mask
                    if best_mask is not None and best_iou >= cfg.min_candidate_iou:
                        candidate = (best_iou, best_mask)
                if candidate is None:
                    obj.misses += 1
                    obj.conf = self.update_confidence(obj.conf, 0.0, cfg.ema_alpha)
                    if obj.misses > cfg.max_misses:
                        self._bury(obj, registry)
                    else:
                        survivors.append(obj)
                    continue
                obs_iou, cand_mask = candidate
                area = float(cand_mask.sum())
                ref_area = max(obj.ema_area, 1.0)
                obs = obs_iou * (0.5 if abs(area - ref_area) / ref_area > cfg.area_change_limit else 1.0)
                obj.conf = self.update_confidence(obj.conf, obs, cfg.ema_alpha)
                obj.ema_area = self.update_confidence(obj.ema_area, area, cfg.ema_alpha)
                obj.mask = cand_mask
                obj.misses = 0
                union |= cand_mask
                survivors.append(obj)
            # Merge objects whose propagated masks converged (split/merge
            # topology): the older id absorbs the newer one.
            merged: list[ObjectMemory] = []
            for obj in sorted(survivors, key=lambda o: o.object_id):
                absorbed = False
                for keeper in merged:
                    if masks_iou(obj.mask, keeper.mask) > cfg.merge_iou:
                        keeper.mask |= obj.mask
                        self._bury(obj, registry)
                        absorbed = True
                        break
                if not absorbed:
                    merged.append(obj)
            st.objects = merged
        return union


def resume_propagation(ckpt, engine: PropagationEngine, masks: np.ndarray | None) -> int:
    """Restore ``engine.state`` and completed masks from a checkpoint.

    Returns the first slice index still to be computed (0 when the
    checkpoint has no usable propagation state).  A usable state requires
    every mask shard up to ``state.z`` — the state shard is written *after*
    the slice shard, so a crash between the two leaves shards ahead of the
    state, which are simply recomputed (deterministically, to identical
    bytes).

    ``masks=None`` (the streaming path) verifies the shards are readable
    without materializing them — the masks stay on disk.
    """
    arrays = ckpt.load_state(STATE_NAME)
    if arrays is None:
        return 0
    state = PropagationState.from_arrays(arrays)
    z_done = state.z
    n = ckpt.n_slices if masks is None else masks.shape[0]
    if z_done < 0 or z_done >= n:
        return 0
    if any(z not in ckpt.completed for z in range(z_done + 1)):
        return 0
    for z in range(z_done + 1):
        shard = np.asarray(ckpt.load_slice(z), dtype=bool)
        if masks is not None:
            masks[z] = shard
    engine.state = state
    return z_done + 1


def _combined_stats(parts: list[PropagationState], base: PropagationState | None) -> dict:
    """Sum counters across directional passes, removing the forked baseline."""
    totals = {name: 0 for name in PropagationState._COUNTERS}
    for part in parts:
        for name in totals:
            totals[name] += int(getattr(part, name))
    if base is not None:
        for name in totals:
            totals[name] -= int(getattr(base, name))
    return totals


def propagate_volume(
    pipeline: "ZenesisPipeline",
    volume,
    prompt: str,
    *,
    config: PropagationConfig | None = None,
    reference_slice: int = 0,
) -> VolumeResult:
    """Segment ``reference_slice`` with full grounding, propagate to the rest.

    Propagation runs outward from the reference in both Z directions, each
    direction with its own memory forked from the post-reference state.
    """
    cfg = config or PropagationConfig()
    voxels = volume.voxels if hasattr(volume, "voxels") else np.asarray(volume)
    if voxels.ndim != 3:
        raise PipelineError(f"propagate_volume expects a 3-D volume, got shape {voxels.shape}")
    n = voxels.shape[0]
    if not 0 <= reference_slice < n:
        raise PipelineError(f"reference_slice {reference_slice} out of range [0, {n})")
    text = prompt.text if hasattr(prompt, "text") else str(prompt)

    masks = np.zeros(voxels.shape, dtype=bool)
    metas: dict[int, dict] = {}
    forward = PropagationEngine(pipeline, text, config=cfg)
    with trace("volume.propagate", prompt=text, n_slices=n, reference=reference_slice):
        masks[reference_slice], metas[reference_slice] = forward.step(
            reference_slice, voxels[reference_slice]
        )
        fork = forward.state.clone()
        for z in range(reference_slice + 1, n):
            masks[z], metas[z] = forward.step(z, voxels[z])
        states = [forward.state]
        base = None
        if reference_slice > 0:
            backward = PropagationEngine(pipeline, text, config=cfg, state=fork.clone())
            for z in range(reference_slice - 1, -1, -1):
                masks[z], metas[z] = backward.step(z, voxels[z])
            states.append(backward.state)
            base = fork

    stats = _combined_stats(states, base)
    ref_detection = metas[reference_slice].get("detection")
    results = []
    for z in range(n):
        meta = metas[z]
        if meta.get("grounded"):
            results.append(
                SliceResult(
                    mask=masks[z],
                    detection=meta.get("detection"),
                    per_box_masks=meta.get("per_box_masks", ()),
                    per_box_kinds=meta.get("per_box_kinds", ()),
                    prompt=text,
                    profiler=pipeline.profiler,
                    metadata={"slice": z, "grounded": True, "reason": meta.get("reason")},
                )
            )
        else:
            results.append(
                SliceResult(
                    mask=masks[z],
                    detection=ref_detection,
                    prompt=text,
                    metadata={
                        "propagated": True,
                        "slice": z,
                        "confidence": meta.get("confidence"),
                    },
                )
            )
    report = {"mode": "propagation", **stats}
    return VolumeResult(
        masks=masks,
        slice_results=tuple(results),
        prompt=text,
        refinement_report=report,
        profiler=pipeline.profiler,
    )
