"""SAM 2-style mask propagation through a volume (streaming memory).

SAM 2 extends SAM to video with a memory of past masks; a FIB-SEM stack is
a "video" along Z.  This module implements the same workflow for the
surrogate: segment a reference slice with the full Zenesis pipeline once,
then *propagate* — each next slice is prompted with the previous slice's
mask (memory) instead of re-running grounding:

* prompt points are sampled from the eroded previous mask (confident
  interior);
* the previous mask enters the prompt encoder as a dense mask prompt;
* the analytic head's hypotheses are scored against the *previous mask*
  (temporal consistency) instead of a text relevance map;
* a drift guard re-grounds from text when the propagated mask changes area
  too quickly (the memory-reset mechanism).

This is the cheap Mode B variant: one grounding per volume instead of one
per slice, at the cost of slow drift — both measured by the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.ndimage import binary_erosion

from ..errors import PipelineError
from ..utils.rng import spawn_rng
from .masks import masks_iou
from .pipeline import ZenesisPipeline
from .results import VolumeResult, SliceResult

__all__ = ["PropagationConfig", "propagate_volume"]


@dataclass(frozen=True)
class PropagationConfig:
    """Propagation parameters."""

    n_memory_points: int = 6
    erosion_iterations: int = 2
    area_change_limit: float = 0.55  # |Δarea|/area beyond this → re-ground
    reground: bool = True
    seed: int = 0


def _memory_points(mask: np.ndarray, n: int, rng) -> np.ndarray | None:
    """Sample (x, y) points from the confident interior of a mask."""
    interior = binary_erosion(mask, iterations=2, border_value=0) if mask.any() else mask
    ys, xs = np.nonzero(interior if interior.any() else mask)
    if ys.size == 0:
        return None
    idx = rng.choice(ys.size, size=min(n, ys.size), replace=False)
    return np.stack([xs[idx], ys[idx]], axis=1).astype(np.float64)


def propagate_volume(
    pipeline: ZenesisPipeline,
    volume,
    prompt: str,
    *,
    config: PropagationConfig | None = None,
    reference_slice: int = 0,
) -> VolumeResult:
    """Segment ``reference_slice`` with full grounding, propagate to the rest.

    Propagation runs outward from the reference in both Z directions.
    """
    cfg = config or PropagationConfig()
    voxels = volume.voxels if hasattr(volume, "voxels") else np.asarray(volume)
    if voxels.ndim != 3:
        raise PipelineError(f"propagate_volume expects a 3-D volume, got shape {voxels.shape}")
    n = voxels.shape[0]
    if not 0 <= reference_slice < n:
        raise PipelineError(f"reference_slice {reference_slice} out of range [0, {n})")
    rng = spawn_rng(cfg.seed, "propagation")

    ref_result = pipeline.segment_image(voxels[reference_slice], prompt)
    masks = np.zeros(voxels.shape, dtype=bool)
    masks[reference_slice] = ref_result.mask
    slice_results: dict[int, SliceResult] = {reference_slice: ref_result}
    regrounds = 0

    def _propagate_to(z: int, prev_mask: np.ndarray) -> np.ndarray:
        nonlocal regrounds
        _, seg_img = pipeline.adapt(voxels[z])
        pipeline.predictor.set_image(seg_img)
        ctx = pipeline.predictor.analytic_context
        points = _memory_points(prev_mask, cfg.n_memory_points, rng)
        if points is None:
            hyps = []
        else:
            labels = np.ones(len(points), dtype=int)
            # Exercise the full prompt path (dense mask prompt included).
            pipeline.predictor.predict(
                point_coords=points,
                point_labels=labels,
                mask_input=prev_mask.astype(np.float32),
                multimask_output=True,
            )
            hyps = pipeline.sam.analytic.masks_from_points(ctx, points, labels)
        # Temporal-consistency selection: best IoU against the memory mask.
        best = None
        for hyp in hyps:
            if not hyp.mask.any():
                continue
            score = masks_iou(hyp.mask, prev_mask)
            if best is None or score > best[0]:
                best = (score, hyp.mask)
        candidate = best[1] if best is not None else np.zeros_like(prev_mask)

        prev_area = max(int(prev_mask.sum()), 1)
        change = abs(int(candidate.sum()) - prev_area) / prev_area
        if cfg.reground and (change > cfg.area_change_limit or not candidate.any()):
            regrounds += 1
            return pipeline.segment_image(voxels[z], prompt).mask
        return candidate

    for z in range(reference_slice + 1, n):
        masks[z] = _propagate_to(z, masks[z - 1])
    for z in range(reference_slice - 1, -1, -1):
        masks[z] = _propagate_to(z, masks[z + 1])

    # Wrap per-slice results minimally (propagated slices reuse the
    # reference detection object for provenance).
    results = []
    for z in range(n):
        if z in slice_results:
            results.append(slice_results[z])
        else:
            results.append(
                SliceResult(
                    mask=masks[z],
                    detection=ref_result.detection,
                    prompt=prompt,
                    metadata={"propagated": True, "slice": z},
                )
            )
    return VolumeResult(
        masks=masks,
        slice_results=tuple(results),
        prompt=prompt,
        refinement_report={"mode": "propagation", "regrounds": regrounds},
        profiler=pipeline.profiler,
    )
