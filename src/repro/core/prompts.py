"""Prompt types accepted by the Zenesis pipeline.

The platform's no-code surface is a text prompt plus optional spatial hints;
these dataclasses validate and normalise them once, at the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PromptError
from ..utils.validation import ensure_box

__all__ = ["TextPrompt", "SpatialHints"]


@dataclass(frozen=True)
class TextPrompt:
    """A natural-language segmentation request."""

    text: str

    def __post_init__(self):
        if not isinstance(self.text, str) or not self.text.strip():
            raise PromptError("text prompt must be a non-empty string")


@dataclass(frozen=True)
class SpatialHints:
    """Optional user-supplied spatial guidance (Mode A interactions)."""

    boxes: tuple[tuple[float, float, float, float], ...] = ()
    positive_points: tuple[tuple[float, float], ...] = ()  # (x, y)
    negative_points: tuple[tuple[float, float], ...] = ()
    extra: dict = field(default_factory=dict)

    def validated_boxes(self, image_shape: tuple[int, int]) -> list[np.ndarray]:
        return [ensure_box(b, image_shape) for b in self.boxes]

    @property
    def has_points(self) -> bool:
        return bool(self.positive_points or self.negative_points)

    def point_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(coords, labels) arrays in SAM convention ((x, y), 1=pos/0=neg)."""
        coords = list(self.positive_points) + list(self.negative_points)
        labels = [1] * len(self.positive_points) + [0] * len(self.negative_points)
        return np.asarray(coords, dtype=np.float64).reshape(-1, 2), np.asarray(labels)
