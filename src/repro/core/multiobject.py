"""Multi-object segmentation (paper: future work #2).

Segments several text-prompted classes in one pass and resolves pixel
conflicts into an exclusive label map.  Each prompt runs through the
standard Zenesis path; where class masks overlap, the pixel goes to the
class with the higher text-grounded relevance (ties break by prompt order).
Label 0 is reserved for "unassigned".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PromptError
from .pipeline import ZenesisPipeline
from .results import SliceResult

__all__ = ["MultiClassResult", "segment_multi"]


@dataclass(frozen=True)
class MultiClassResult:
    """An exclusive label map plus the per-class pipeline results."""

    labels: np.ndarray  # (H, W) intp; 0 = unassigned, 1..K = prompt order
    class_names: tuple[str, ...]
    per_class: tuple[SliceResult, ...]

    @property
    def n_classes(self) -> int:
        return len(self.class_names)

    def mask_of(self, name_or_index) -> np.ndarray:
        """Boolean mask of one class, by prompt text or 1-based index."""
        if isinstance(name_or_index, str):
            try:
                idx = self.class_names.index(name_or_index) + 1
            except ValueError:
                raise PromptError(
                    f"unknown class {name_or_index!r}; classes: {list(self.class_names)}"
                ) from None
        else:
            idx = int(name_or_index)
            if not 1 <= idx <= self.n_classes:
                raise PromptError(f"class index {idx} out of range 1..{self.n_classes}")
        return self.labels == idx

    def coverage(self) -> dict[str, float]:
        """Fraction of the image assigned to each class."""
        total = self.labels.size
        return {
            name: float((self.labels == i + 1).sum() / total)
            for i, name in enumerate(self.class_names)
        }


def segment_multi(
    pipeline: ZenesisPipeline,
    image,
    prompts: list[str],
) -> MultiClassResult:
    """Segment every prompt and fuse into an exclusive label map.

    Conflicts are resolved by per-pixel relevance: the class whose grounding
    map scores the pixel higher wins it.
    """
    if not prompts:
        raise PromptError("segment_multi needs at least one prompt")
    if len(set(prompts)) != len(prompts):
        raise PromptError("duplicate prompts")
    results: list[SliceResult] = []
    for prompt in prompts:
        results.append(pipeline.segment_image(image, prompt))
    h, w = results[0].mask.shape
    labels = np.zeros((h, w), dtype=np.intp)
    best_rel = np.full((h, w), -1.0, dtype=np.float32)
    # Prompt order iterates forward; strict '>' keeps earlier prompts on ties.
    for i, res in enumerate(results):
        rel = res.detection.relevance
        claim = res.mask & (rel > best_rel)
        labels[claim] = i + 1
        best_rel[claim] = rel[claim]
    return MultiClassResult(
        labels=labels,
        class_names=tuple(prompts),
        per_class=tuple(results),
    )
