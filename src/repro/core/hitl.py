"""Human-in-the-loop Rectify Segmentation (paper Fig. 6).

When automated grounding misfires, the paper's UI lets the user *generate
random boxes (with criteria such as length or width equal to the image
size) and select the nearest segmentation area of interest* — a weakly
supervised correction loop.

Two pieces live here:

* :class:`RectifySession` — the interactive mechanic: propose random
  candidate boxes, segment each, and accept the candidate segment nearest a
  user click.
* :class:`SimulatedAnnotator` — a benchmark-only oracle that plays the user:
  it clicks the centroid of the largest ground-truth region the current
  mask missed.  This turns the HITL loop into a measurable experiment
  (IoU vs number of interactions) without real humans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.ndimage import label

from ..errors import SessionError
from ..models.sam.model import SamPredictor
from ..utils.rng import as_rng
from .boxes import random_boxes
from .masks import connected_components

__all__ = ["RectifyConfig", "RectifyStep", "RectifySession", "SimulatedAnnotator"]


@dataclass(frozen=True)
class RectifyConfig:
    """Candidate-generation parameters."""

    n_candidates: int = 12
    full_extent_axis: str | None = "width"  # the paper's full-width criterion
    min_size: float = 12.0
    max_component_frac: float = 0.08  # candidate segments above this are implausible
    seed: int = 0


@dataclass(frozen=True)
class RectifyStep:
    """One accepted correction."""

    click_xy: tuple[float, float]
    chosen_box: np.ndarray
    added_mask: np.ndarray
    candidate_count: int


class RectifySession:
    """Interactive rectification over one image.

    Drive it with repeated :meth:`rectify` calls; ``mask`` accumulates the
    accepted segments (union semantics, matching the paper's workflow of
    adding missed regions).
    """

    def __init__(
        self,
        predictor: SamPredictor,
        image: np.ndarray,
        initial_mask: np.ndarray | None = None,
        config: RectifyConfig | None = None,
    ) -> None:
        self.config = config or RectifyConfig()
        self.predictor = predictor
        if not predictor.is_image_set:
            predictor.set_image(image)
        self.image = np.asarray(image, dtype=np.float32)
        self.mask = (
            np.zeros(self.image.shape, dtype=bool)
            if initial_mask is None
            else np.asarray(initial_mask, dtype=bool).copy()
        )
        self._rng = as_rng(self.config.seed)
        self.steps: list[RectifyStep] = []

    def propose_boxes(self) -> np.ndarray:
        """Random candidate boxes per the paper's criteria."""
        return random_boxes(
            self.config.n_candidates,
            self.image.shape,
            self._rng,
            full_extent_axis=self.config.full_extent_axis,
            min_size=self.config.min_size,
        )

    def rectify(self, click_xy: tuple[float, float]) -> RectifyStep:
        """One correction round: the user clicks a missed structure.

        Candidate boxes are segmented; among all candidate segments'
        connected components, the one whose centroid is nearest the click
        (and that actually contains structure) is added to the mask.
        """
        cx, cy = click_xy
        h, w = self.image.shape
        if not (0 <= cx < w and 0 <= cy < h):
            raise SessionError(f"click {click_xy} outside image {w}x{h}")
        boxes = self.propose_boxes()
        # Ranking key: (0, area) for components containing the click — the
        # *smallest* containing segment is what a user means when clicking a
        # structure embedded in a larger region — else (1, centroid distance).
        best: tuple[tuple, np.ndarray, np.ndarray] | None = None  # (key, comp, box)
        max_area = self.config.max_component_frac * self.image.size
        iy, ix = int(round(cy)), int(round(cx))
        for box in boxes:
            # Cached per (image, box): repeated rectify rounds re-propose
            # overlapping candidates, and the second visit is free.
            hyps = self.predictor.masks_from_box(box)
            for hyp in hyps:
                if hyp.kind == "dark" or not hyp.mask.any():
                    continue
                for comp in connected_components(hyp.mask, min_area=8)[:6]:
                    area = int(comp.sum())
                    if area > max_area:
                        continue  # a user picks a segment, not half the frame
                    if comp[iy, ix]:
                        key = (0, float(area))
                    else:
                        ys, xs = np.nonzero(comp)
                        key = (1, float(np.hypot(ys.mean() - cy, xs.mean() - cx)))
                    if best is None or key < best[0]:
                        best = (key, comp, box)
        if best is None:
            raise SessionError("no candidate segment found; increase n_candidates")
        _, comp, box = best
        self.mask |= comp
        step = RectifyStep(
            click_xy=(float(cx), float(cy)),
            chosen_box=np.asarray(box),
            added_mask=comp,
            candidate_count=int(len(boxes)),
        )
        self.steps.append(step)
        return step


@dataclass
class SimulatedAnnotator:
    """Benchmark oracle standing in for the human (Fig. 6 experiments).

    Strategy: click the centroid of the largest ground-truth component the
    current prediction misses.  ``None`` when nothing is missing (converged).
    """

    gt_mask: np.ndarray
    min_missing_area: int = 30
    clicks: list[tuple[float, float]] = field(default_factory=list)

    def next_click(self, current_mask: np.ndarray) -> tuple[float, float] | None:
        missing = self.gt_mask & ~np.asarray(current_mask, dtype=bool)
        labels, n = label(missing)
        if n == 0:
            return None
        areas = np.bincount(labels.ravel())
        areas[0] = 0
        best = int(np.argmax(areas))
        if areas[best] < self.min_missing_area:
            return None
        ys, xs = np.nonzero(labels == best)
        # Click ON the structure: a component's centroid can fall between
        # its pixels (needle clusters); take the member pixel nearest it —
        # a real user clicks the structure itself.
        cy, cx = ys.mean(), xs.mean()
        nearest = int(np.argmin((ys - cy) ** 2 + (xs - cx) ** 2))
        click = (float(xs[nearest]), float(ys[nearest]))
        self.clicks.append(click)
        return click
