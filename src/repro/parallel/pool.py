"""A supervised process pool specialised for shared-memory volume work.

``run_partitioned`` forks one process per :class:`SlicePartition`, hands each
the shared-memory specs plus its partition, and collects per-worker results
(small picklables only — masks travel through the shared output array).

The collection loop is a *supervisor*: instead of blocking on the result
queue for the full timeout, it polls the queue with a short interval and
watches each child's liveness.  A worker that dies before reporting
(SIGKILL, OOM, ``os._exit``) is detected within ~1 s via ``Process.exitcode``
— not after the 600 s queue timeout — and its partition is re-executed
inline in the parent (bounded failover) before :class:`ParallelError` is
raised.  Workers that are alive but exceed the wall-clock deadline are
terminated and reported as hung; hangs are *not* failed over (re-running a
deterministic hang inline would hang the parent too).

Worker exceptions propagate with the original traceback text attached;
every recovery action is recorded in :data:`repro.resilience.EVENTS`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from queue import Empty
from typing import Any, Callable, Sequence

from ..errors import ParallelError
from ..observability.metrics import get_registry
from ..observability.trace import trace
from ..resilience.events import record_event
from ..resilience.faults import get_fault_plan
from ..resilience.policy import Deadline
from .scheduler import SlicePartition

__all__ = ["run_partitioned", "default_worker_count"]


def default_worker_count() -> int:
    """Workers to use by default: cpu count capped at 4 (NumPy is threaded)."""
    return max(1, min(4, os.cpu_count() or 1))


def _trampoline(fn: Callable, part: SlicePartition, args: tuple, queue: mp.Queue) -> None:
    get_fault_plan().crash_if("worker_crash", child_only=True, worker=part.worker)
    try:
        result = fn(part, *args)
        queue.put((part.worker, "ok", result))
    except Exception:
        queue.put((part.worker, "error", traceback.format_exc()))


def run_partitioned(
    fn: Callable[..., Any],
    partitions: Sequence[SlicePartition],
    *args,
    timeout_s: float = 600.0,
    max_failovers: int = 1,
    poll_s: float = 0.2,
    grace_s: float = 1.0,
) -> list[Any]:
    """Run ``fn(partition, *args)`` in one forked process per partition.

    Returns results ordered by worker id.  ``fn`` must be module-level
    (picklable by reference under fork) and should write bulk output through
    shared memory; its return value is for small metadata only.

    ``timeout_s`` is a wall-clock deadline for the whole pool; a crashed or
    errored partition is retried up to ``max_failovers`` times *inline in
    the parent* before the pool raises.  ``grace_s`` is how long a worker
    that exited cleanly may leave its result in flight before being
    declared dead (crashes with a non-zero exit code skip the grace).
    """
    if not partitions:
        raise ParallelError("run_partitioned needs at least one partition")
    if len(partitions) == 1:
        # Degenerate case: run inline (no fork overhead, same code path for
        # the worker function).
        return [fn(partitions[0], *args)]
    ctx = mp.get_context("fork")
    queue: mp.Queue = ctx.Queue()
    procs: dict[int, mp.Process] = {
        part.worker: ctx.Process(target=_trampoline, args=(fn, part, args, queue), daemon=True)
        for part in partitions
    }
    for p in procs.values():
        p.start()

    results: dict[int, Any] = {}
    failures: dict[int, str] = {}
    pending: set[int] = set(procs)
    dead_since: dict[int, float] = {}
    deadline = Deadline(timeout_s)

    def drain(wait_s: float) -> bool:
        """Pull one report off the queue; returns False on timeout."""
        try:
            worker, status, payload = queue.get(timeout=max(wait_s, 0.0))
        except Empty:
            return False
        pending.discard(worker)
        dead_since.pop(worker, None)
        if status == "ok":
            results[worker] = payload
        else:
            failures[worker] = f"raised:\n{payload}"
            record_event("pool.worker_errors")
        return True

    try:
        while pending and not deadline.expired:
            if drain(deadline.clamp(poll_s)):
                continue
            for worker in sorted(pending):
                p = procs[worker]
                if p.is_alive():
                    dead_since.pop(worker, None)
                    continue
                # The child has exited; its report may still be in flight.
                while drain(0.02):
                    pass
                if worker not in pending:
                    continue
                if p.exitcode not in (0, None):
                    # Crashed (signal / os._exit): no report is coming.
                    failures[worker] = f"died without result (exit code {p.exitcode})"
                    record_event("pool.dead_workers")
                    pending.discard(worker)
                    continue
                first_seen = dead_since.setdefault(worker, time.monotonic())
                if time.monotonic() - first_seen >= grace_s:
                    failures[worker] = f"exited (code {p.exitcode}) without delivering a result"
                    record_event("pool.dead_workers")
                    pending.discard(worker)
        for worker in sorted(pending):
            failures[worker] = (
                f"hung past the {timeout_s:.0f}s pool deadline (still alive, terminated)"
            )
            record_event("pool.hung_workers")
            procs[worker].terminate()
        pending.clear()
    finally:
        for p in procs.values():
            p.join(timeout=10)
            if p.is_alive():  # pragma: no cover - hung worker resisting join
                p.terminate()

    # Bounded failover: re-execute crashed/errored partitions inline in the
    # parent.  The fault plan's child-only rules (e.g. worker_crash) do not
    # re-fire here, so an injected crash recovers on this path.
    if failures and max_failovers > 0:
        by_worker = {part.worker: part for part in partitions}
        for worker in sorted(failures):
            if "hung past" in failures[worker]:
                continue  # do not re-run a hang inline
            original = failures[worker]
            for _ in range(max_failovers):
                with trace("pool.failover", worker=worker) as span:
                    try:
                        results[worker] = fn(by_worker[worker], *args)
                    except Exception:
                        record_event("pool.failover_failures")
                        span.set(recovered=False)
                        failures[worker] = (
                            f"{original}\nfailover re-execution also failed:\n"
                            f"{traceback.format_exc()}"
                        )
                    else:
                        record_event("pool.failovers")
                        span.set(recovered=True)
                        del failures[worker]
                        break

    if failures:
        detail = "\n".join(f"worker {w}: {msg}" for w, msg in sorted(failures.items()))
        raise ParallelError(f"worker failure(s):\n{detail}")
    get_registry().counter("repro_pool_partitions_total").inc(len(partitions))
    return [results[part.worker] for part in partitions]
