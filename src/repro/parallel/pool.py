"""A process pool specialised for shared-memory volume work.

``run_partitioned`` forks one process per :class:`SlicePartition`, hands each
the shared-memory specs plus its partition, and collects per-worker results
(small picklables only — masks travel through the shared output array).
Worker exceptions propagate to the parent as :class:`ParallelError` with the
original traceback text attached.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import traceback
from typing import Any, Callable, Sequence

from ..errors import ParallelError
from .scheduler import SlicePartition

__all__ = ["run_partitioned", "default_worker_count"]


def default_worker_count() -> int:
    """Workers to use by default: cpu count capped at 4 (NumPy is threaded)."""
    return max(1, min(4, os.cpu_count() or 1))


def _trampoline(fn: Callable, part: SlicePartition, args: tuple, queue: mp.Queue) -> None:
    try:
        result = fn(part, *args)
        queue.put((part.worker, "ok", result))
    except Exception:
        queue.put((part.worker, "error", traceback.format_exc()))


def run_partitioned(
    fn: Callable[..., Any],
    partitions: Sequence[SlicePartition],
    *args,
    timeout_s: float = 600.0,
) -> list[Any]:
    """Run ``fn(partition, *args)`` in one forked process per partition.

    Returns results ordered by worker id.  ``fn`` must be module-level
    (picklable by reference under fork) and should write bulk output through
    shared memory; its return value is for small metadata only.
    """
    if not partitions:
        raise ParallelError("run_partitioned needs at least one partition")
    if len(partitions) == 1:
        # Degenerate case: run inline (no fork overhead, same code path for
        # the worker function).
        return [fn(partitions[0], *args)]
    ctx = mp.get_context("fork")
    queue: mp.Queue = ctx.Queue()
    procs = [
        ctx.Process(target=_trampoline, args=(fn, part, args, queue), daemon=True)
        for part in partitions
    ]
    for p in procs:
        p.start()
    results: dict[int, Any] = {}
    errors: list[str] = []
    try:
        for _ in partitions:
            worker, status, payload = queue.get(timeout=timeout_s)
            if status == "ok":
                results[worker] = payload
            else:
                errors.append(f"worker {worker}:\n{payload}")
    except Exception as exc:  # queue.Empty or interpreter shutdown
        errors.append(f"pool failure: {exc!r}")
    finally:
        for p in procs:
            p.join(timeout=10)
            if p.is_alive():  # pragma: no cover - hung worker
                p.terminate()
    if errors:
        raise ParallelError("worker failure(s):\n" + "\n".join(errors))
    return [results[part.worker] for part in partitions]
