"""Zero-copy volume sharing between Mode B worker processes.

Workers never pickle voxel data: the parent places the volume (and the
output mask array) in POSIX shared memory and ships only ``(name, shape,
dtype)`` handles.  This is the multiprocessing analogue of the mpi4py
buffer-protocol idiom (upper-case ``Send``/``Recv``) from the HPC guide —
the payload moves without serialisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..errors import ParallelError

__all__ = ["SharedArraySpec", "SharedNDArray"]


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable handle to a shared array."""

    name: str
    shape: tuple[int, ...]
    dtype: str


class SharedNDArray:
    """An ndarray backed by :class:`multiprocessing.shared_memory.SharedMemory`.

    Create with :meth:`create` (owner) or :meth:`attach` (worker).  The owner
    must call :meth:`unlink` when done; every process calls :meth:`close`.
    Usable as a context manager (closes, and unlinks if owner).
    """

    def __init__(self, shm: shared_memory.SharedMemory, shape: tuple[int, ...], dtype: np.dtype, *, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.array = np.ndarray(self.shape, dtype=self.dtype, buffer=shm.buf)

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, shape: tuple[int, ...], dtype, *, fill: np.ndarray | None = None) -> "SharedNDArray":
        """Allocate a new shared array, optionally copying ``fill`` into it."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        if nbytes <= 0:
            raise ParallelError(f"cannot allocate shared array of shape {shape}")
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        arr = cls(shm, tuple(shape), dtype, owner=True)
        if fill is not None:
            src = np.asarray(fill)
            if src.shape != arr.shape:
                arr.unlink()
                raise ParallelError(f"fill shape {src.shape} != shared shape {arr.shape}")
            arr.array[...] = src
        return arr

    @classmethod
    def from_array(cls, array: np.ndarray) -> "SharedNDArray":
        """Copy an existing array into new shared memory."""
        return cls.create(array.shape, array.dtype, fill=array)

    @classmethod
    def attach(cls, spec: SharedArraySpec) -> "SharedNDArray":
        """Attach to an existing shared array from its spec (worker side)."""
        try:
            shm = shared_memory.SharedMemory(name=spec.name)
        except FileNotFoundError as exc:
            raise ParallelError(f"shared memory segment {spec.name!r} not found") from exc
        return cls(shm, tuple(spec.shape), np.dtype(spec.dtype), owner=False)

    # -- lifecycle -------------------------------------------------------------

    @property
    def spec(self) -> SharedArraySpec:
        return SharedArraySpec(name=self._shm.name, shape=self.shape, dtype=self.dtype.str)

    def close(self) -> None:
        """Detach this process's mapping (safe to call repeatedly)."""
        self.array = None  # type: ignore[assignment]
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - interpreter-dependent
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; call after all workers closed)."""
        self.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass

    def __enter__(self) -> "SharedNDArray":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink() if self._owner else self.close()
