"""Slice-domain decomposition for Mode B volume processing.

Follows the MPI decomposition idiom: a Z-ordered volume is split across
workers either in contiguous **blocks** (cache-friendly, preserves temporal
context) or **cyclically** (load-balances when per-slice cost varies).  The
temporal heuristic needs a history window, so block partitions can carry a
*halo* of preceding slices that the worker reads but does not own — the
shared-memory analogue of an MPI halo exchange.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParallelError

__all__ = ["SlicePartition", "block_partition", "cyclic_partition"]


@dataclass(frozen=True)
class SlicePartition:
    """One worker's share of the Z range."""

    worker: int
    owned: tuple[int, ...]  # slices this worker writes
    halo: tuple[int, ...]  # extra slices read for temporal context

    @property
    def all_slices(self) -> tuple[int, ...]:
        """Halo then owned, in Z order (the order the worker processes them)."""
        return tuple(sorted(set(self.halo) | set(self.owned)))


def block_partition(n_slices: int, n_workers: int, *, halo: int = 0) -> list[SlicePartition]:
    """Contiguous blocks with a leading halo of up to ``halo`` slices.

    Workers receive blocks of size ``ceil(n/k)`` or ``floor(n/k)``; the halo
    reaches backwards (earlier Z) because the temporal heuristic only looks
    at *previous* slices.
    """
    if n_workers < 1:
        raise ParallelError("n_workers must be >= 1")
    if n_slices < 1:
        raise ParallelError("n_slices must be >= 1")
    n_workers = min(n_workers, n_slices)
    base = n_slices // n_workers
    extra = n_slices % n_workers
    parts: list[SlicePartition] = []
    start = 0
    for w in range(n_workers):
        size = base + (1 if w < extra else 0)
        owned = tuple(range(start, start + size))
        halo_lo = max(0, start - halo)
        parts.append(SlicePartition(worker=w, owned=owned, halo=tuple(range(halo_lo, start))))
        start += size
    return parts


def cyclic_partition(n_slices: int, n_workers: int) -> list[SlicePartition]:
    """Round-robin assignment (no halo; use when slices are independent)."""
    if n_workers < 1:
        raise ParallelError("n_workers must be >= 1")
    if n_slices < 1:
        raise ParallelError("n_slices must be >= 1")
    n_workers = min(n_workers, n_slices)
    return [
        SlicePartition(worker=w, owned=tuple(range(w, n_slices, n_workers)), halo=())
        for w in range(n_workers)
    ]
