"""Shared-memory parallelism for Mode B: arrays, partitions, worker pool."""

from .pool import default_worker_count, run_partitioned
from .scheduler import SlicePartition, block_partition, cyclic_partition
from .sharedmem import SharedArraySpec, SharedNDArray

__all__ = [
    "SharedArraySpec",
    "SharedNDArray",
    "SlicePartition",
    "block_partition",
    "cyclic_partition",
    "default_worker_count",
    "run_partitioned",
]
