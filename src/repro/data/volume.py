"""The :class:`ScientificVolume` container for 3-D stacks.

Volumes are ordered (Z, Y, X).  FIB-SEM stacks are typically anisotropic —
the milling step (Z) is coarser than the imaging pixel (Y, X) — which the
container records as ``voxel_size_nm`` so the adaptation layer can resample.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterator

import numpy as np

from ..errors import ValidationError
from ..utils.validation import ensure_3d
from .image import MODALITIES, Modality, ScientificImage, infer_bit_depth

__all__ = ["ScientificVolume"]


@dataclass(frozen=True)
class ScientificVolume:
    """A 3-D scientific volume plus acquisition provenance.

    ``voxels`` is ``(Z, Y, X)``; ``voxel_size_nm`` is (z, y, x) in nanometres.
    """

    voxels: np.ndarray
    modality: Modality = "unknown"
    voxel_size_nm: tuple[float, float, float] | None = None
    bit_depth: int | None = None
    metadata: dict[str, Any] = field(default_factory=dict)
    history: tuple[str, ...] = ()

    def __post_init__(self):
        arr = ensure_3d(self.voxels, "voxels")
        if self.modality not in MODALITIES:
            raise ValidationError(f"unknown modality {self.modality!r}")
        object.__setattr__(self, "voxels", arr)
        if self.bit_depth is None:
            object.__setattr__(self, "bit_depth", infer_bit_depth(arr))

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.voxels.shape  # type: ignore[return-value]

    @property
    def n_slices(self) -> int:
        return int(self.voxels.shape[0])

    @property
    def anisotropy(self) -> float | None:
        """Z spacing divided by in-plane Y spacing (1.0 means isotropic)."""
        if self.voxel_size_nm is None:
            return None
        z, y, _x = self.voxel_size_nm
        return float(z / y)

    def slice_image(self, index: int) -> ScientificImage:
        """Extract slice ``index`` as a :class:`ScientificImage` (view, not copy)."""
        if not -self.n_slices <= index < self.n_slices:
            raise ValidationError(f"slice index {index} out of range for {self.n_slices} slices")
        pixel_size = None
        if self.voxel_size_nm is not None:
            pixel_size = (self.voxel_size_nm[1], self.voxel_size_nm[2])
        return ScientificImage(
            pixels=self.voxels[index],
            modality=self.modality,
            pixel_size_nm=pixel_size,
            bit_depth=self.bit_depth,
            metadata={**self.metadata, "slice_index": int(index % self.n_slices)},
            history=self.history,
        )

    def iter_slices(self) -> Iterator[ScientificImage]:
        """Iterate slices in Z order as images."""
        for i in range(self.n_slices):
            yield self.slice_image(i)

    def with_voxels(self, voxels: np.ndarray, step: str) -> "ScientificVolume":
        """Return a copy with new voxel data and ``step`` appended to history."""
        return replace(self, voxels=np.asarray(voxels), bit_depth=None, history=self.history + (step,))

    def describe(self) -> dict[str, Any]:
        """A JSON-safe summary used by the platform's preview endpoint."""
        arr = self.voxels
        return {
            "shape": list(arr.shape),
            "dtype": str(arr.dtype),
            "bit_depth": self.bit_depth,
            "modality": self.modality,
            "voxel_size_nm": list(self.voxel_size_nm) if self.voxel_size_nm else None,
            "anisotropy": self.anisotropy,
            "min": float(arr.min()),
            "max": float(arr.max()),
            "history": list(self.history),
        }
