"""Scientific-image containers, synthetic FIB-SEM generation, benchmark dataset."""

from .datasets import AnnotatedSlice, BenchmarkDataset, make_benchmark_dataset, make_sample
from .image import MODALITIES, ScientificImage, infer_bit_depth
from .synthesis import (
    CATALYST_KINDS,
    FibsemConfig,
    FibsemSample,
    synthesize_fibsem_volume,
)
from .volume import ScientificVolume

__all__ = [
    "AnnotatedSlice",
    "BenchmarkDataset",
    "CATALYST_KINDS",
    "FibsemConfig",
    "FibsemSample",
    "MODALITIES",
    "ScientificImage",
    "ScientificVolume",
    "infer_bit_depth",
    "make_benchmark_dataset",
    "make_sample",
    "synthesize_fibsem_volume",
]
