"""Synthetic FIB-SEM volumes of catalyst-loaded membranes.

This is the reproduction's stand-in for the paper's proprietary dataset:
iridium-oxide catalysts embedded in Nafion ionomer films imaged by low-dose
FIB-SEM.  Each scene has three phases, top to bottom:

* **background** — the milled trench / vacuum above the sample: near-black,
  bounded by a rough interface.  Its sharp gradient against the film is the
  trap that Otsu and unprompted SAM fall into (the paper's reported failure).
* **ionomer film** — mid-gray with smooth texture.
* **catalyst** — *crystalline* needle-like particles with weak contrast
  against the ionomer (uniform, complex structures), or *amorphous* globular
  aggregates with strong contrast (distinct features).

Particles are genuinely 3-D (rods / ellipsoids spanning several slices with
per-slice drift), so consecutive slices are temporally coherent — a property
the Fig. 7 heuristic-refinement experiment depends on.  Ground-truth catalyst
masks are returned alongside the corrupted volume, which is what makes the
paper's metrics computable here at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ...errors import ValidationError
from ...utils.rng import as_rng, spawn_rng
from ..volume import ScientificVolume
from .artifacts import (
    add_charging,
    add_curtaining,
    add_poisson_gaussian_noise,
    apply_defocus,
    apply_drift,
)
from .shapes import raster_band_below, raster_blob, raster_needle, smooth_noise_1d, smooth_noise_2d

__all__ = ["FibsemConfig", "FibsemSample", "synthesize_fibsem_volume", "CATALYST_KINDS"]

CATALYST_KINDS = ("crystalline", "amorphous", "nanowire", "porous")


@dataclass(frozen=True)
class FibsemConfig:
    """Parameters of one synthetic FIB-SEM acquisition."""

    shape: tuple[int, int] = (256, 256)
    n_slices: int = 10
    catalyst: str = "crystalline"

    # Phase geometry / intensity (float image domain, [0, 1]).
    background_fraction: float = 0.50
    interface_roughness_px: float = 9.0
    bg_value: float = 0.03
    film_value: float = 0.42
    film_texture: float = 0.035

    # Crystalline needles: weak contrast against the ionomer.
    needle_count: int = 110
    needle_length_px: tuple[float, float] = (18.0, 52.0)
    needle_width_px: tuple[float, float] = (3.5, 7.0)
    needle_value: float = 0.66
    needle_value_jitter: float = 0.06  # per-particle intensity spread
    needle_z_span: tuple[int, int] = (3, 8)

    # Amorphous blobs: strong contrast aggregates.
    blob_count: int = 110
    blob_radius_px: tuple[float, float] = (6.0, 15.0)
    blob_value: float = 0.80
    blob_value_jitter: float = 0.04
    blob_z_span: tuple[int, int] = (3, 8)

    # Nanowire mesh: long, thin, bright wires (high aspect ratio) — the
    # zoo's "nanowire_mesh" synthetic domain.
    nanowire_count: int = 70
    nanowire_length_px: tuple[float, float] = (40.0, 90.0)
    nanowire_width_px: tuple[float, float] = (2.0, 3.6)
    nanowire_value: float = 0.74
    nanowire_value_jitter: float = 0.05
    nanowire_z_span: tuple[int, int] = (4, 9)

    # Porous film: dark rounded voids in the ionomer — the zoo's
    # "porous_film" synthetic domain (the segmentation target is the pores).
    pore_count: int = 140
    pore_radius_px: tuple[float, float] = (4.0, 9.0)
    pore_value: float = 0.13
    pore_value_jitter: float = 0.03
    pore_z_span: tuple[int, int] = (2, 6)

    # Slow lateral illumination drift (detector/beam alignment): defeats
    # global multi-class thresholds while leaving local structure intact —
    # the paper's "variability in contrast caused by defocus and sample
    # topography".
    illumination_gradient: float = 0.12

    # Artifact strengths.
    dose: float = 500.0
    read_sigma: float = 0.012
    curtaining_strength: float = 0.05
    charging_strength: float = 0.03
    defocus_sigma: tuple[float, float] = (0.4, 1.0)
    drift_gain: tuple[float, float] = (0.92, 1.08)

    # Acquisition.  Real detectors use only a sliver of the nominal range:
    # recorded = (offset + scale * signal) * full_scale.
    intensity_scale: float = 0.45
    intensity_offset: float = 0.04
    bit_depth: int = 16
    voxel_size_nm: tuple[float, float, float] = (20.0, 5.0, 5.0)
    seed: int = 0

    def __post_init__(self):
        if self.catalyst not in CATALYST_KINDS:
            raise ValidationError(f"catalyst must be one of {CATALYST_KINDS}, got {self.catalyst!r}")
        if self.bit_depth not in (8, 16, 32):
            raise ValidationError(f"bit_depth must be 8, 16 or 32, got {self.bit_depth}")
        if self.n_slices < 1:
            raise ValidationError("n_slices must be >= 1")
        h, w = self.shape
        if h < 32 or w < 32:
            raise ValidationError(f"shape must be at least 32x32, got {self.shape}")


@dataclass(frozen=True)
class FibsemSample:
    """One synthetic acquisition: corrupted volume + ground truth."""

    volume: ScientificVolume
    catalyst_mask: np.ndarray  # (Z, Y, X) bool — the segmentation target
    film_mask: np.ndarray  # (Z, Y, X) bool — ionomer film incl. catalyst
    clean: np.ndarray  # (Z, Y, X) float64 in [0,1], artifact-free
    config: FibsemConfig = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def n_slices(self) -> int:
        return int(self.catalyst_mask.shape[0])


@dataclass(frozen=True)
class _Particle:
    """A 3-D catalyst particle with per-slice cross-sections."""

    kind: str
    y: float
    x: float
    z_center: float
    z_half: float
    size: float  # needle length or blob radius
    width: float  # needle width (unused for blobs)
    angle: float
    drift_y: float  # px per slice
    drift_x: float
    value: float  # per-particle intensity (jittered around the kind's mean)
    seed: int


def _quantize(img: np.ndarray, bit_depth: int, scale: float, offset: float) -> np.ndarray:
    coded = np.clip(offset + scale * img, 0.0, 1.0)
    if bit_depth == 8:
        return np.round(coded * 255.0).astype(np.uint8)
    if bit_depth == 16:
        return np.round(coded * 65535.0).astype(np.uint16)
    return np.round(coded * 4294967295.0).astype(np.uint32)


# Kinds rendered as oriented rods (the rest render as rounded blobs).
ELONGATED_KINDS = frozenset({"crystalline", "nanowire"})


def _kind_params(cfg: FibsemConfig) -> tuple[int, tuple[float, float], tuple[float, float] | None, float, float, tuple[int, int]]:
    """(count, size_range, width_range|None, value, jitter, z_span) per kind."""
    if cfg.catalyst == "crystalline":
        return (cfg.needle_count, cfg.needle_length_px, cfg.needle_width_px,
                cfg.needle_value, cfg.needle_value_jitter, cfg.needle_z_span)
    if cfg.catalyst == "nanowire":
        return (cfg.nanowire_count, cfg.nanowire_length_px, cfg.nanowire_width_px,
                cfg.nanowire_value, cfg.nanowire_value_jitter, cfg.nanowire_z_span)
    if cfg.catalyst == "porous":
        return (cfg.pore_count, cfg.pore_radius_px, None,
                cfg.pore_value, cfg.pore_value_jitter, cfg.pore_z_span)
    return (cfg.blob_count, cfg.blob_radius_px, None,
            cfg.blob_value, cfg.blob_value_jitter, cfg.blob_z_span)


def _sample_particles(cfg: FibsemConfig, rng: np.random.Generator, interface_base: float) -> list[_Particle]:
    h, w = cfg.shape
    base_count, size_range, width_range, base_value, jitter, z_span = _kind_params(cfg)
    # Counts are calibrated for the reference scene (256² × 10 slices); scale
    # with scene volume so smaller test scenes keep the same phase fractions.
    scale = (h * w * cfg.n_slices) / (256 * 256 * 10)
    count = max(1, int(round(base_count * scale)))
    lo_z, hi_z = z_span
    particles: list[_Particle] = []
    # Particle centres live in the film: below the interface with a margin so
    # cross-sections rarely poke into the background (clipped anyway).
    y_lo = interface_base + 0.08 * h
    y_hi = h - 0.05 * h
    for i in range(count):
        # Draw order (size[, width], value) is part of the determinism
        # contract: existing kinds must stay byte-identical across releases.
        size = rng.uniform(*size_range)
        width = rng.uniform(*width_range) if width_range is not None else 0.0
        value = base_value + rng.uniform(-jitter, jitter)
        particles.append(
            _Particle(
                kind=cfg.catalyst,
                y=rng.uniform(y_lo, y_hi),
                x=rng.uniform(0, w),
                z_center=rng.uniform(-0.5, cfg.n_slices - 0.5),
                z_half=rng.uniform(lo_z, hi_z) / 2.0,
                size=size,
                width=width,
                angle=rng.uniform(0, np.pi),
                drift_y=rng.normal(scale=0.6),
                drift_x=rng.normal(scale=0.6),
                value=value,
                seed=int(rng.integers(0, 2**31)),
            )
        )
    return particles


def _raster_particle(p: _Particle, z: int, shape: tuple[int, int], out: np.ndarray) -> None:
    """Add particle ``p``'s cross-section at slice ``z`` into mask ``out``."""
    dz = z - p.z_center
    if abs(dz) > p.z_half:
        return
    # Cross-section shrinks toward the z extremities (spherical cap profile).
    shrink = float(np.sqrt(max(1.0 - (dz / max(p.z_half, 1e-6)) ** 2, 0.0)))
    if shrink < 0.2:
        return
    cy = p.y + p.drift_y * dz
    cx = p.x + p.drift_x * dz
    if p.kind in ELONGATED_KINDS:
        raster_needle(shape, (cy, cx), p.size * max(shrink, 0.55), max(p.width * shrink, 1.2), p.angle, out=out)
    else:
        raster_blob(shape, (cy, cx), max(p.size * shrink, 1.5), np.random.default_rng(p.seed), out=out)


def synthesize_fibsem_volume(config: FibsemConfig | None = None, **overrides) -> FibsemSample:
    """Generate one synthetic FIB-SEM acquisition.

    Accepts either a prebuilt :class:`FibsemConfig` or keyword overrides of
    the defaults.  Deterministic in ``config.seed``.
    """
    cfg = replace(config, **overrides) if config is not None else FibsemConfig(**overrides)
    rng = as_rng(cfg.seed)
    h, w = cfg.shape
    z_count = cfg.n_slices

    geometry_rng = spawn_rng(cfg.seed, "geometry")
    interface_base = cfg.background_fraction * h
    base_profile = interface_base + smooth_noise_1d(
        w, spawn_rng(cfg.seed, "interface"), n_modes=5, amplitude=cfg.interface_roughness_px
    )
    particles = _sample_particles(cfg, geometry_rng, interface_base)

    clean = np.zeros((z_count, h, w), dtype=np.float64)
    catalyst_mask = np.zeros((z_count, h, w), dtype=bool)
    film_mask = np.zeros((z_count, h, w), dtype=bool)
    corrupted = np.zeros((z_count, h, w), dtype=np.float64)

    # Slow Z evolution of the milled interface.
    z_wobble = smooth_noise_1d(max(z_count, 4), spawn_rng(cfg.seed, "interface-z"), n_modes=2, amplitude=2.5)[:z_count]

    texture = smooth_noise_2d((h, w), spawn_rng(cfg.seed, "texture"), scale=9.0, amplitude=cfg.film_texture)
    illumination = 1.0 + cfg.illumination_gradient * smooth_noise_2d(
        (h, w), spawn_rng(cfg.seed, "illumination"), scale=max(h, w) / 4.0, amplitude=1.0
    )

    drift_rng = spawn_rng(cfg.seed, "drift")
    defocus_rng = spawn_rng(cfg.seed, "defocus")
    noise_rng = spawn_rng(cfg.seed, "noise")

    for z in range(z_count):
        film = raster_band_below((h, w), base_profile + z_wobble[z])
        cat = np.zeros((h, w), dtype=bool)
        value_map = np.zeros((h, w), dtype=np.float64)
        tmp = np.zeros((h, w), dtype=bool)
        for p in particles:
            tmp[:] = False
            _raster_particle(p, z, (h, w), tmp)
            if tmp.any():
                cat |= tmp
                value_map[tmp] = p.value  # later particles overdraw earlier
        cat &= film  # catalyst exists only inside the film

        img = np.full((h, w), cfg.bg_value, dtype=np.float64)
        img[film] = cfg.film_value + texture[film]
        img[cat] = value_map[cat] + 0.5 * texture[cat]
        # Lateral illumination drift affects the sample, not the vacuum.
        img[film] *= illumination[film]

        clean[z] = np.clip(img, 0.0, 1.0)
        catalyst_mask[z] = cat
        film_mask[z] = film

        # Artifact chain, per slice.
        out = clean[z]
        if cfg.charging_strength > 0:
            out = add_charging(out, film, strength=cfg.charging_strength)
        sigma = defocus_rng.uniform(*cfg.defocus_sigma)
        out = apply_defocus(out, sigma=sigma)
        if cfg.curtaining_strength > 0:
            out = add_curtaining(out, spawn_rng(cfg.seed, "curtain", z), strength=cfg.curtaining_strength)
        out = add_poisson_gaussian_noise(out, noise_rng, dose=cfg.dose, read_sigma=cfg.read_sigma)
        gain = drift_rng.uniform(*cfg.drift_gain)
        out = apply_drift(out, gain=gain)
        corrupted[z] = out

    volume = ScientificVolume(
        voxels=_quantize(corrupted, cfg.bit_depth, cfg.intensity_scale, cfg.intensity_offset),
        modality="fibsem",
        voxel_size_nm=cfg.voxel_size_nm,
        metadata={
            "catalyst": cfg.catalyst,
            "synthetic": True,
            "seed": cfg.seed,
            "generator": "repro.data.synthesis.fibsem",
        },
    )
    return FibsemSample(
        volume=volume,
        catalyst_mask=catalyst_mask,
        film_mask=film_mask,
        clean=clean,
        config=cfg,
    )
