"""FIB-SEM artifact and noise models.

Each function maps a float image in [0, 1] to a corrupted float image in
[0, 1] (clipping at the end, like a detector saturating).  The models cover
the artifacts the paper blames for non-AI-readiness:

* **Poisson-Gaussian noise** — shot noise at low dose plus readout noise.
* **Curtaining** — vertical intensity stripes from uneven ion milling.
* **Charging** — bright halos where insulating material accumulates charge.
* **Defocus** — Gaussian blur with per-slice varying sigma (the paper cites
  "variability in contrast caused by defocus and sample topography").
* **Slice drift** — multiplicative brightness drift along Z.
* **Vignetting** — radial fall-off from detector geometry.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import distance_transform_edt, gaussian_filter

from ...utils.rng import as_rng
from ...utils.validation import ensure_2d, ensure_range
from .shapes import smooth_noise_1d

__all__ = [
    "add_poisson_gaussian_noise",
    "add_curtaining",
    "add_charging",
    "apply_defocus",
    "apply_drift",
    "apply_vignetting",
]


def _clip01(img: np.ndarray) -> np.ndarray:
    return np.clip(img, 0.0, 1.0, out=img)


def add_poisson_gaussian_noise(
    image: np.ndarray,
    rng,
    *,
    dose: float = 400.0,
    read_sigma: float = 0.015,
) -> np.ndarray:
    """Shot noise for an expected ``dose`` electrons/pixel plus readout noise.

    Lower dose → stronger relative shot noise, matching low-dose FIB-SEM of
    beam-sensitive ionomer samples.
    """
    img = ensure_2d(image, "image").astype(np.float64, copy=False)
    rng = as_rng(rng)
    counts = rng.poisson(np.maximum(img, 0.0) * dose).astype(np.float64)
    noisy = counts / dose
    noisy += rng.normal(scale=read_sigma, size=img.shape)
    return _clip01(noisy)


def add_curtaining(
    image: np.ndarray,
    rng,
    *,
    strength: float = 0.06,
    n_modes: int = 24,
) -> np.ndarray:
    """Vertical milling stripes: a smooth per-column gain field.

    ``strength`` is the RMS relative amplitude of the stripes.
    """
    img = ensure_2d(image, "image").astype(np.float64, copy=True)
    ensure_range(strength, 0.0, 1.0, "strength")
    rng = as_rng(rng)
    stripes = smooth_noise_1d(img.shape[1], rng, n_modes=n_modes, amplitude=strength)
    img *= 1.0 + stripes[None, :]
    return _clip01(img)


def add_charging(
    image: np.ndarray,
    mask: np.ndarray,
    *,
    strength: float = 0.12,
    decay_px: float = 4.0,
) -> np.ndarray:
    """Bright charging halo decaying with distance outside ``mask``.

    Insulating phases (the ionomer) glow near their boundaries; the halo
    brightness is ``strength * exp(-d / decay_px)`` for distance ``d`` from
    the masked phase.
    """
    img = ensure_2d(image, "image").astype(np.float64, copy=True)
    m = np.asarray(mask, dtype=bool)
    if m.shape != img.shape:
        raise ValueError(f"mask shape {m.shape} != image shape {img.shape}")
    if not m.any() or m.all():
        return _clip01(img)
    dist = distance_transform_edt(~m)
    halo = strength * np.exp(-dist / max(decay_px, 1e-6))
    halo[m] = 0.0
    img += halo
    return _clip01(img)


def apply_defocus(image: np.ndarray, *, sigma: float = 1.0) -> np.ndarray:
    """Gaussian defocus blur with standard deviation ``sigma`` pixels."""
    img = ensure_2d(image, "image").astype(np.float64, copy=False)
    if sigma <= 0:
        return _clip01(img.copy())
    return _clip01(gaussian_filter(img, sigma=sigma, mode="reflect"))


def apply_drift(image: np.ndarray, *, gain: float = 1.0, offset: float = 0.0) -> np.ndarray:
    """Per-slice brightness drift: ``gain * image + offset``."""
    img = ensure_2d(image, "image").astype(np.float64, copy=True)
    img *= gain
    img += offset
    return _clip01(img)


def apply_vignetting(image: np.ndarray, *, strength: float = 0.15) -> np.ndarray:
    """Radial brightness fall-off: centre unchanged, corners darkened."""
    img = ensure_2d(image, "image").astype(np.float64, copy=True)
    ensure_range(strength, 0.0, 1.0, "strength")
    h, w = img.shape
    yy, xx = np.mgrid[0:h, 0:w]
    cy, cx = (h - 1) / 2.0, (w - 1) / 2.0
    r2 = ((yy - cy) / max(cy, 1)) ** 2 + ((xx - cx) / max(cx, 1)) ** 2
    img *= 1.0 - strength * np.clip(r2 / 2.0, 0.0, 1.0)
    return _clip01(img)
