"""Scripted temporal scenarios for the propagation test battery.

The FIB-SEM synthesizer places particles at random; good for population
statistics, useless for *scripted* temporal behaviour.  This module builds
small scenes where a handful of catalyst blobs follow prescribed
trajectories across Z:

* **drift** — objects translate slice to slice (tests that propagated
  memory masks follow motion without re-grounding);
* **occlusion** — an object vanishes for a run of slices (milled away /
  charging flare) and reappears displaced (tests death, confidence-gated
  re-grounding, and re-acquisition);
* **split_merge** — one blob splits into two diverging children which later
  converge and merge back (tests object birth and the merge pass).

Scenes reuse the FIB-SEM phase palette (dark trench above a rough
interface, mid-gray film, bright blobs) so the pipeline's surrogate
grounding behaves exactly as it does on ``synthesize_fibsem_volume``
output, and the artifact chain is kept light so slices stay temporally
coherent.  Everything is deterministic in ``config.seed`` via
``spawn_rng``; per-object ground-truth labels and a scripted event log are
returned alongside the corrupted volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ...errors import ValidationError
from ...utils.rng import spawn_rng
from ..volume import ScientificVolume
from .artifacts import add_poisson_gaussian_noise, apply_defocus
from .fibsem import _quantize
from .shapes import raster_band_below, raster_blob, smooth_noise_1d, smooth_noise_2d

__all__ = [
    "ANCHOR_BASE",
    "SCENARIO_KINDS",
    "ScenarioConfig",
    "ScenarioSample",
    "synthesize_scenario_volume",
]

SCENARIO_KINDS = ("drift", "occlusion", "split_merge")

#: Label ids >= this are static "anchor" blobs — scene furniture that keeps
#: the particle density in the regime the surrogate grounder is calibrated
#: for (a sparse scene makes interface false-positives dominate the
#: detection).  Scripted objects use ids 1..9.
ANCHOR_BASE = 10


@dataclass(frozen=True)
class ScenarioConfig:
    """Parameters of one scripted temporal scene."""

    shape: tuple[int, int] = (128, 128)
    n_slices: int = 12
    kind: str = "drift"

    # Phase palette (mirrors FibsemConfig's amorphous scene).
    background_fraction: float = 0.50
    interface_roughness_px: float = 5.0
    bg_value: float = 0.03
    film_value: float = 0.42
    film_texture: float = 0.03
    blob_value: float = 0.80
    blob_radius_px: float = 13.0
    n_anchors: int = 4
    anchor_radius_px: float = 8.0

    # Trajectories.
    drift_px: float = 2.5  # per-slice translation of moving objects
    occlude_from: int = 4  # first occluded slice ("occlusion" kind)
    occlude_slices: int = 3  # length of the occlusion run

    # Light artifact chain — enough realism, full temporal coherence.
    dose: float = 900.0
    read_sigma: float = 0.008
    defocus_sigma: float = 0.6

    # Acquisition encoding (same recorded-range model as FibsemConfig).
    intensity_scale: float = 0.45
    intensity_offset: float = 0.04
    bit_depth: int = 16
    voxel_size_nm: tuple[float, float, float] = (20.0, 5.0, 5.0)
    seed: int = 0

    def __post_init__(self):
        if self.kind not in SCENARIO_KINDS:
            raise ValidationError(f"kind must be one of {SCENARIO_KINDS}, got {self.kind!r}")
        if self.n_slices < 6:
            raise ValidationError("scenarios need n_slices >= 6")
        h, w = self.shape
        if h < 64 or w < 64:
            raise ValidationError(f"shape must be at least 64x64, got {self.shape}")
        if self.kind == "occlusion":
            if self.occlude_from < 1 or self.occlude_from + self.occlude_slices >= self.n_slices:
                raise ValidationError(
                    "occlusion window must fit strictly inside the stack: "
                    f"[{self.occlude_from}, {self.occlude_from + self.occlude_slices}) "
                    f"vs n_slices={self.n_slices}"
                )


@dataclass(frozen=True)
class ScenarioSample:
    """One scripted acquisition: corrupted volume + per-object ground truth."""

    volume: ScientificVolume
    labels: np.ndarray  # (Z, Y, X) uint8 — 0 background, k = object id k
    clean: np.ndarray  # (Z, Y, X) float64 in [0,1], artifact-free
    events: tuple[dict, ...]  # scripted log: vanish/reappear/split/merge
    config: ScenarioConfig = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def n_slices(self) -> int:
        return int(self.labels.shape[0])

    @property
    def catalyst_mask(self) -> np.ndarray:
        """(Z, Y, X) bool — the segmentation target (any object)."""
        return self.labels > 0

    def object_mask(self, object_id: int) -> np.ndarray:
        """(Z, Y, X) bool ground truth of one scripted object."""
        return self.labels == int(object_id)

    @property
    def scripted_mask(self) -> np.ndarray:
        """(Z, Y, X) bool — scripted objects only, anchors excluded."""
        return (self.labels > 0) & (self.labels < ANCHOR_BASE)


#: Static anchor positions as (y, x) fractions of the scene — all safely
#: inside the film for the default background_fraction and clear of the
#: scripted trajectories.
_ANCHOR_SITES = ((0.66, 0.08), (0.64, 0.90), (0.88, 0.20), (0.88, 0.80))


def _placements(cfg: ScenarioConfig, z: int) -> list[tuple[int, float, float, float]]:
    """Scripted (object_id, cy, cx, radius) placements at slice ``z``."""
    h, w = cfg.shape
    top = cfg.background_fraction * h + 0.10 * h  # inside the film, clear of the interface
    r = cfg.blob_radius_px
    out: list[tuple[int, float, float, float]] = [
        (ANCHOR_BASE + i, fy * h, fx * w, cfg.anchor_radius_px)
        for i, (fy, fx) in enumerate(_ANCHOR_SITES[: cfg.n_anchors])
    ]
    if cfg.kind == "drift":
        out += [
            (1, top + 0.05 * h, 0.20 * w + cfg.drift_px * z, r),
            (2, h - 0.14 * h - 0.4 * cfg.drift_px * z, 0.70 * w - cfg.drift_px * z, 0.9 * r),
            (3, top + 0.18 * h, 0.48 * w, 1.1 * r),
        ]
        return out
    if cfg.kind == "occlusion":
        if not cfg.occlude_from <= z < cfg.occlude_from + cfg.occlude_slices:
            out.append((1, top + 0.14 * h, 0.32 * w + cfg.drift_px * z, r))
        return out
    # split_merge: one parent splits into two children which diverge along x
    # to a maximum mid-stack, then converge and merge back.
    n = cfg.n_slices
    z1, z2 = n // 4, n - n // 4 - 1
    cy, cx = top + 0.12 * h, 0.5 * w
    if z <= z1 or z >= z2:
        sep = 0.0
    else:
        # Triangle profile peaking halfway between the split and the merge.
        mid = (z1 + z2) / 2.0
        sep = 2.4 * r * (1.0 - abs(z - mid) / (mid - z1))
    if sep < 0.9 * r:
        out.append((1, cy, cx, 1.15 * r))
    else:
        out += [(1, cy, cx - sep, 0.85 * r), (2, cy, cx + sep, 0.85 * r)]
    return out


def _scripted_events(cfg: ScenarioConfig) -> tuple[dict, ...]:
    if cfg.kind == "occlusion":
        return (
            {"z": cfg.occlude_from, "event": "vanish", "object": 1},
            {"z": cfg.occlude_from + cfg.occlude_slices, "event": "reappear", "object": 1},
        )
    if cfg.kind == "split_merge":
        def n_scripted(z: int) -> int:
            return sum(1 for oid, *_ in _placements(cfg, z) if oid < ANCHOR_BASE)

        split_z = next(z for z in range(cfg.n_slices) if n_scripted(z) == 2)
        merge_z = next(z for z in range(split_z, cfg.n_slices) if n_scripted(z) == 1)
        return (
            {"z": split_z, "event": "split", "parent": 1, "children": [1, 2]},
            {"z": merge_z, "event": "merge", "survivor": 1, "absorbed": [2]},
        )
    return ()


def synthesize_scenario_volume(config: ScenarioConfig | None = None, **overrides) -> ScenarioSample:
    """Generate one scripted temporal scene.  Deterministic in ``config.seed``."""
    cfg = replace(config, **overrides) if config is not None else ScenarioConfig(**overrides)
    h, w = cfg.shape
    n = cfg.n_slices

    base_profile = cfg.background_fraction * h + smooth_noise_1d(
        w, spawn_rng(cfg.seed, "interface"), n_modes=4, amplitude=cfg.interface_roughness_px
    )
    z_wobble = smooth_noise_1d(
        max(n, 4), spawn_rng(cfg.seed, "interface-z"), n_modes=2, amplitude=1.5
    )[:n]
    texture = smooth_noise_2d(
        (h, w), spawn_rng(cfg.seed, "texture"), scale=9.0, amplitude=cfg.film_texture
    )
    defocus_rng = spawn_rng(cfg.seed, "defocus")
    noise_rng = spawn_rng(cfg.seed, "noise")

    clean = np.zeros((n, h, w), dtype=np.float64)
    labels = np.zeros((n, h, w), dtype=np.uint8)
    corrupted = np.zeros((n, h, w), dtype=np.float64)

    for z in range(n):
        film = raster_band_below((h, w), base_profile + z_wobble[z])
        slice_labels = np.zeros((h, w), dtype=np.uint8)
        tmp = np.zeros((h, w), dtype=bool)
        for object_id, cy, cx, radius in _placements(cfg, z):
            tmp[:] = False
            # One rng stream per object (not per slice): the blob keeps the
            # same irregular outline as it translates, as a real particle
            # cross-section would.
            raster_blob((h, w), (cy, cx), radius, spawn_rng(cfg.seed, "blob", object_id), out=tmp)
            slice_labels[tmp & film] = object_id
        cat = slice_labels > 0

        img = np.full((h, w), cfg.bg_value, dtype=np.float64)
        img[film] = cfg.film_value + texture[film]
        img[cat] = cfg.blob_value + 0.5 * texture[cat]

        clean[z] = np.clip(img, 0.0, 1.0)
        labels[z] = slice_labels

        out = apply_defocus(clean[z], sigma=float(defocus_rng.uniform(0.8, 1.2) * cfg.defocus_sigma))
        corrupted[z] = add_poisson_gaussian_noise(
            out, noise_rng, dose=cfg.dose, read_sigma=cfg.read_sigma
        )

    volume = ScientificVolume(
        voxels=_quantize(corrupted, cfg.bit_depth, cfg.intensity_scale, cfg.intensity_offset),
        modality="fibsem",
        voxel_size_nm=cfg.voxel_size_nm,
        metadata={
            "scenario": cfg.kind,
            "synthetic": True,
            "seed": cfg.seed,
            "generator": "repro.data.synthesis.scenarios",
        },
    )
    return ScenarioSample(
        volume=volume,
        labels=labels,
        clean=clean,
        events=_scripted_events(cfg),
        config=cfg,
    )
