"""Simple analytic phantoms with exact ground truth.

These are the unit-test workhorses: scenes whose correct segmentation is
known in closed form, so model/pipeline tests can assert quantitative
behaviour without depending on the full FIB-SEM generator.
"""

from __future__ import annotations

import numpy as np

from ...utils.rng import as_rng
from .shapes import raster_needle

__all__ = ["disk_phantom", "two_phase_phantom", "needles_phantom", "checkerboard"]


def disk_phantom(
    shape: tuple[int, int] = (96, 96),
    *,
    center: tuple[float, float] | None = None,
    radius: float = 20.0,
    fg: float = 0.8,
    bg: float = 0.2,
    noise: float = 0.0,
    rng=None,
) -> tuple[np.ndarray, np.ndarray]:
    """A bright disk on a dark background.  Returns (image, gt_mask)."""
    h, w = shape
    cy, cx = center if center is not None else ((h - 1) / 2.0, (w - 1) / 2.0)
    yy, xx = np.mgrid[0:h, 0:w]
    mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= radius**2
    img = np.full(shape, bg, dtype=np.float64)
    img[mask] = fg
    if noise > 0:
        img += as_rng(rng).normal(scale=noise, size=shape)
    return np.clip(img, 0.0, 1.0), mask


def two_phase_phantom(
    shape: tuple[int, int] = (96, 96),
    *,
    split_row: int | None = None,
    top: float = 0.05,
    bottom: float = 0.6,
    noise: float = 0.0,
    rng=None,
) -> tuple[np.ndarray, np.ndarray]:
    """A dark band over a bright band (the Otsu trap in miniature).

    Returns (image, mask-of-bottom-band).
    """
    h, w = shape
    split = split_row if split_row is not None else h // 2
    img = np.full(shape, top, dtype=np.float64)
    img[split:] = bottom
    mask = np.zeros(shape, dtype=bool)
    mask[split:] = True
    if noise > 0:
        img += as_rng(rng).normal(scale=noise, size=shape)
    return np.clip(img, 0.0, 1.0), mask


def needles_phantom(
    shape: tuple[int, int] = (128, 128),
    *,
    n: int = 8,
    fg: float = 0.7,
    bg: float = 0.4,
    noise: float = 0.0,
    rng=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Random needles on a uniform background.  Returns (image, gt_mask)."""
    rng = as_rng(rng)
    h, w = shape
    mask = np.zeros(shape, dtype=bool)
    for _ in range(n):
        raster_needle(
            shape,
            (rng.uniform(0.15 * h, 0.85 * h), rng.uniform(0.15 * w, 0.85 * w)),
            length=rng.uniform(0.15 * min(h, w), 0.35 * min(h, w)),
            width=rng.uniform(2.5, 5.0),
            angle_rad=rng.uniform(0, np.pi),
            out=mask,
        )
    img = np.full(shape, bg, dtype=np.float64)
    img[mask] = fg
    if noise > 0:
        img += rng.normal(scale=noise, size=shape)
    return np.clip(img, 0.0, 1.0), mask


def checkerboard(shape: tuple[int, int] = (64, 64), *, cell: int = 8, lo: float = 0.2, hi: float = 0.8) -> np.ndarray:
    """A checkerboard intensity pattern (texture-feature test input)."""
    h, w = shape
    yy, xx = np.mgrid[0:h, 0:w]
    board = ((yy // cell) + (xx // cell)) % 2
    return np.where(board == 1, hi, lo).astype(np.float64)
