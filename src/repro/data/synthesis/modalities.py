"""Additional imaging modalities (paper: future work #1 — XRD, STM, EDX).

The paper plans to extend Zenesis beyond FIB-SEM to X-ray diffraction,
scanning tunnelling microscopy, and energy-dispersive X-ray spectroscopy.
These generators provide synthetic instances of each, with ground truth, so
the zero-shot pipeline can be exercised (and regression-tested) on them:

* **XRD** — 2-D Debye-Scherrer patterns: bright diffraction rings on a dark
  detector, a beamstop shadow, shot noise.  Target: the ring system.
* **STM** — constant-current topographs: atomic corrugation on stepped
  terraces with scan-line noise and bright adsorbates.  Target: adsorbates.
* **EDX** — elemental count maps at brutally low dose: particles of the
  analyte element in a matrix.  Target: the analyte-rich phase.

All outputs mirror the FIB-SEM generator's contract: a
:class:`~repro.data.image.ScientificImage` (realistic dtype/range) plus a
boolean ground-truth mask, deterministic in the seed.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

from ...utils.rng import spawn_rng
from ..image import ScientificImage
from .shapes import raster_blob, smooth_noise_1d

__all__ = ["synthesize_xrd_pattern", "synthesize_stm_topography", "synthesize_edx_map"]


def synthesize_xrd_pattern(
    *,
    shape: tuple[int, int] = (256, 256),
    n_rings: int = 5,
    ring_width_px: float = 2.5,
    dose: float = 200.0,
    seed: int = 0,
) -> tuple[ScientificImage, np.ndarray]:
    """A 2-D powder-diffraction pattern.  Returns (image, ring mask)."""
    rng = spawn_rng(seed, "xrd")
    h, w = shape
    cy, cx = (h - 1) / 2.0, (w - 1) / 2.0
    yy, xx = np.mgrid[0:h, 0:w]
    r = np.hypot(yy - cy, xx - cx)

    signal = np.full(shape, 0.015, dtype=np.float64)
    gt = np.zeros(shape, dtype=bool)
    max_r = min(h, w) / 2.0
    radii = np.sort(rng.uniform(0.2, 0.95, n_rings)) * max_r
    for radius in radii:
        strength = rng.uniform(0.35, 0.9)
        width = ring_width_px * rng.uniform(0.8, 1.4)
        profile = np.exp(-((r - radius) ** 2) / (2.0 * width**2))
        # Texture: intensity varies around the ring (preferred orientation).
        theta = np.arctan2(yy - cy, xx - cx)
        tex = 1.0 + 0.3 * np.cos(2 * theta + rng.uniform(0, np.pi))
        signal += strength * profile * tex
        gt |= np.abs(r - radius) <= 1.5 * width
    # Central beam + beamstop shadow.
    signal += 1.2 * np.exp(-(r**2) / (2.0 * 6.0**2))
    beamstop = r < 10
    signal[beamstop] *= 0.05
    gt &= ~beamstop

    signal = np.clip(signal, 0.0, 1.0)
    counts = rng.poisson(signal * dose).astype(np.float64) / dose
    pixels = np.round(np.clip(counts, 0, 1) * 65535).astype(np.uint16)
    image = ScientificImage(pixels, modality="xrd", metadata={"synthetic": True, "seed": seed})
    return image, gt


def synthesize_stm_topography(
    *,
    shape: tuple[int, int] = (256, 256),
    lattice_px: float = 8.0,
    n_terraces: int = 4,
    n_adsorbates: int = 12,
    scanline_noise: float = 0.02,
    seed: int = 0,
) -> tuple[ScientificImage, np.ndarray]:
    """A constant-current STM topograph.  Returns (image, adsorbate mask)."""
    rng = spawn_rng(seed, "stm")
    h, w = shape
    yy, xx = np.mgrid[0:h, 0:w].astype(np.float64)

    # Stepped terraces: quantised smooth height field.
    ramp = (xx + 0.35 * yy) / w
    ramp += 0.06 * gaussian_filter(rng.normal(size=shape), 18)
    terraces = np.floor(ramp * n_terraces) / n_terraces

    # Atomic corrugation: hexagonal-ish superposition of plane waves.
    k = 2 * np.pi / lattice_px
    lattice = (
        np.cos(k * xx)
        + np.cos(k * (0.5 * xx + 0.866 * yy))
        + np.cos(k * (0.5 * xx - 0.866 * yy))
    ) / 6.0

    height = 0.55 * terraces + 0.08 * lattice + 0.3
    gt = np.zeros(shape, dtype=bool)
    for i in range(n_adsorbates):
        raster_blob(
            shape,
            (rng.uniform(8, h - 8), rng.uniform(8, w - 8)),
            radius=rng.uniform(3.0, 6.0),
            rng=spawn_rng(seed, "ads", i),
            irregularity=0.2,
            out=gt,
        )
    height[gt] += 0.22  # adsorbates protrude

    # Scan-line noise: per-row offsets (the classic STM artifact).
    rows = smooth_noise_1d(h, spawn_rng(seed, "rows"), n_modes=24, amplitude=scanline_noise)
    height += rows[:, None]
    height = np.clip(height + rng.normal(scale=0.01, size=shape), 0.0, 1.0)
    pixels = np.round(height * 4294967295.0).astype(np.uint32)  # 32-bit Z piezo data
    image = ScientificImage(pixels, modality="stm", metadata={"synthetic": True, "seed": seed})
    return image, gt


def synthesize_edx_map(
    *,
    shape: tuple[int, int] = (256, 256),
    n_particles: int = 14,
    counts_in: float = 9.0,
    counts_out: float = 1.2,
    seed: int = 0,
) -> tuple[ScientificImage, np.ndarray]:
    """An elemental count map (analyte channel).  Returns (image, phase mask).

    EDX maps are Poisson counts with single-digit means — the extreme
    low-SNR end of the data-readiness spectrum.
    """
    rng = spawn_rng(seed, "edx")
    h, w = shape
    gt = np.zeros(shape, dtype=bool)
    for i in range(n_particles):
        raster_blob(
            shape,
            (rng.uniform(10, h - 10), rng.uniform(10, w - 10)),
            radius=rng.uniform(6.0, 18.0),
            rng=spawn_rng(seed, "particle", i),
            irregularity=0.35,
            out=gt,
        )
    expectation = np.where(gt, counts_in, counts_out).astype(np.float64)
    # Beam spread blurs composition boundaries slightly.
    expectation = gaussian_filter(expectation, 1.2)
    counts = rng.poisson(expectation)
    pixels = np.clip(counts, 0, 255).astype(np.uint8)  # vendor 8-bit count maps
    image = ScientificImage(pixels, modality="edx", metadata={"synthetic": True, "seed": seed})
    return image, gt
