"""Vectorised rasterisers for the geometric primitives of FIB-SEM scenes.

Everything here produces boolean masks on a pixel grid with no per-pixel
Python loops: each primitive evaluates an implicit function over (a bounding
window of) the coordinate grid, following the vectorisation idiom from the
scientific-python optimisation guide.
"""

from __future__ import annotations

import numpy as np

from ...utils.rng import as_rng
from ...utils.validation import ensure_positive

__all__ = [
    "smooth_noise_1d",
    "smooth_noise_2d",
    "raster_needle",
    "raster_blob",
    "raster_band_below",
]


def smooth_noise_1d(n: int, rng, *, n_modes: int = 6, amplitude: float = 1.0) -> np.ndarray:
    """Smooth periodic 1-D noise as a random low-order Fourier series.

    Returns ``n`` samples with zero mean and RMS roughly ``amplitude``;
    used for rough material interfaces and curtaining stripe profiles.
    """
    rng = as_rng(rng)
    t = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
    out = np.zeros(n, dtype=np.float64)
    for k in range(1, n_modes + 1):
        a, b = rng.normal(size=2) / k  # 1/f-ish spectrum
        out += a * np.cos(k * t) + b * np.sin(k * t)
    rms = float(np.sqrt(np.mean(out**2)))
    if rms > 0:
        out *= amplitude / rms
    return out


def smooth_noise_2d(shape: tuple[int, int], rng, *, scale: float = 12.0, amplitude: float = 1.0) -> np.ndarray:
    """Smooth 2-D noise: white noise low-passed by a Gaussian of ``scale`` px.

    Zero mean, RMS ``amplitude``.  Used for ionomer texture fields.
    """
    from scipy.ndimage import gaussian_filter

    rng = as_rng(rng)
    ensure_positive(scale, "scale")
    field = gaussian_filter(rng.normal(size=shape), sigma=scale, mode="reflect")
    rms = float(np.sqrt(np.mean(field**2)))
    if rms > 0:
        field *= amplitude / rms
    return field


def _window(shape: tuple[int, int], cy: float, cx: float, half: float):
    """Clip a square window of half-width ``half`` around (cy, cx) to the grid."""
    h, w = shape
    y0 = max(0, int(np.floor(cy - half)))
    y1 = min(h, int(np.ceil(cy + half)) + 1)
    x0 = max(0, int(np.floor(cx - half)))
    x1 = min(w, int(np.ceil(cx + half)) + 1)
    return y0, y1, x0, x1


def raster_needle(
    shape: tuple[int, int],
    center: tuple[float, float],
    length: float,
    width: float,
    angle_rad: float,
    *,
    taper: float = 0.35,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Rasterise a needle (elongated rod with tapered tips) into a bool mask.

    ``center`` is (y, x); ``angle_rad`` measures the long axis from +x toward
    +y.  ``taper`` narrows the needle toward its tips (0 = rectangle, 1 =
    lens shape), matching the needle-like crystalline IrO2 morphology.
    """
    ensure_positive(length, "length")
    ensure_positive(width, "width")
    mask = out if out is not None else np.zeros(shape, dtype=bool)
    cy, cx = center
    half = length / 2.0 + width
    y0, y1, x0, x1 = _window(shape, cy, cx, half)
    if y0 >= y1 or x0 >= x1:
        return mask
    yy, xx = np.mgrid[y0:y1, x0:x1]
    dy = yy - cy
    dx = xx - cx
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    u = dx * c + dy * s  # along the long axis
    v = -dx * s + dy * c  # across
    frac = np.clip(np.abs(u) / (length / 2.0), 0.0, 1.0)
    local_half_width = (width / 2.0) * (1.0 - taper * frac**2)
    inside = (np.abs(u) <= length / 2.0) & (np.abs(v) <= local_half_width)
    mask[y0:y1, x0:x1] |= inside
    return mask


def raster_blob(
    shape: tuple[int, int],
    center: tuple[float, float],
    radius: float,
    rng,
    *,
    irregularity: float = 0.35,
    n_modes: int = 5,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Rasterise an irregular globular blob into a bool mask.

    The boundary radius is ``radius * (1 + irregularity * f(theta))`` with
    ``f`` a smooth periodic profile, giving the amorphous-aggregate look.
    """
    ensure_positive(radius, "radius")
    rng = as_rng(rng)
    mask = out if out is not None else np.zeros(shape, dtype=bool)
    cy, cx = center
    half = radius * (1.0 + abs(irregularity)) + 2.0
    y0, y1, x0, x1 = _window(shape, cy, cx, half)
    if y0 >= y1 or x0 >= x1:
        return mask
    profile = smooth_noise_1d(256, rng, n_modes=n_modes, amplitude=1.0)
    yy, xx = np.mgrid[y0:y1, x0:x1]
    dy = yy - cy
    dx = xx - cx
    r = np.hypot(dy, dx)
    theta = np.arctan2(dy, dx)  # [-pi, pi]
    idx = ((theta + np.pi) / (2.0 * np.pi) * 256).astype(np.intp) % 256
    boundary = radius * (1.0 + irregularity * profile[idx])
    mask[y0:y1, x0:x1] |= r <= np.maximum(boundary, 1.0)
    return mask


def raster_band_below(shape: tuple[int, int], boundary_rows: np.ndarray) -> np.ndarray:
    """Mask of pixels strictly below a per-column boundary row.

    ``boundary_rows`` has one entry per column; pixels with
    ``row >= boundary_rows[col]`` are True.  Models the membrane/film region
    under the rough milled interface, with the black pore/vacuum above.
    """
    h, w = shape
    boundary = np.asarray(boundary_rows, dtype=np.float64)
    if boundary.shape != (w,):
        raise ValueError(f"boundary_rows must have shape ({w},), got {boundary.shape}")
    rows = np.arange(h, dtype=np.float64)[:, None]
    return rows >= boundary[None, :]
