"""Synthetic scientific-image generation: FIB-SEM scenes, artifacts, phantoms."""

from .artifacts import (
    add_charging,
    add_curtaining,
    add_poisson_gaussian_noise,
    apply_defocus,
    apply_drift,
    apply_vignetting,
)
from .fibsem import CATALYST_KINDS, FibsemConfig, FibsemSample, synthesize_fibsem_volume
from .modalities import synthesize_edx_map, synthesize_stm_topography, synthesize_xrd_pattern
from .phantoms import checkerboard, disk_phantom, needles_phantom, two_phase_phantom
from .scenarios import (
    ANCHOR_BASE,
    SCENARIO_KINDS,
    ScenarioConfig,
    ScenarioSample,
    synthesize_scenario_volume,
)
from .shapes import (
    raster_band_below,
    raster_blob,
    raster_needle,
    smooth_noise_1d,
    smooth_noise_2d,
)

__all__ = [
    "ANCHOR_BASE",
    "CATALYST_KINDS",
    "FibsemConfig",
    "FibsemSample",
    "SCENARIO_KINDS",
    "ScenarioConfig",
    "ScenarioSample",
    "add_charging",
    "add_curtaining",
    "add_poisson_gaussian_noise",
    "apply_defocus",
    "apply_drift",
    "apply_vignetting",
    "checkerboard",
    "disk_phantom",
    "needles_phantom",
    "raster_band_below",
    "raster_blob",
    "raster_needle",
    "smooth_noise_1d",
    "smooth_noise_2d",
    "synthesize_edx_map",
    "synthesize_fibsem_volume",
    "synthesize_scenario_volume",
    "synthesize_stm_topography",
    "synthesize_xrd_pattern",
    "two_phase_phantom",
]
