"""The benchmark dataset mirroring the paper's evaluation protocol.

The paper benchmarks on *20 full slices extracted from 3-D volumetric
images, 10 each from the crystalline and amorphous volumes*.  This module
assembles the synthetic equivalent: one crystalline and one amorphous
FIB-SEM volume of 10 slices each, exposed both as volumes (for the Mode B /
temporal experiments) and as a flat list of annotated slices (for the
Table 1-3 benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..errors import ValidationError
from ..utils.rng import GLOBAL_SEED, derive_seed
from .image import ScientificImage
from .synthesis.fibsem import CATALYST_KINDS, FibsemConfig, FibsemSample, synthesize_fibsem_volume

__all__ = ["AnnotatedSlice", "BenchmarkDataset", "make_benchmark_dataset", "make_sample"]


@dataclass(frozen=True)
class AnnotatedSlice:
    """One benchmark slice: raw image + ground-truth catalyst mask."""

    image: ScientificImage
    gt_mask: np.ndarray
    sample_kind: str  # "crystalline" | "amorphous"
    slice_index: int
    volume_id: str

    def __post_init__(self):
        if self.gt_mask.shape != self.image.pixels.shape[:2]:
            raise ValidationError(
                f"gt_mask shape {self.gt_mask.shape} != image shape {self.image.pixels.shape[:2]}"
            )

    @property
    def name(self) -> str:
        return f"{self.volume_id}/slice{self.slice_index:03d}"


@dataclass(frozen=True)
class BenchmarkDataset:
    """The full 20-slice benchmark plus source volumes."""

    crystalline: FibsemSample
    amorphous: FibsemSample
    slices: tuple[AnnotatedSlice, ...] = field(default=())

    def by_kind(self, kind: str) -> list[AnnotatedSlice]:
        if kind not in CATALYST_KINDS:
            raise ValidationError(f"kind must be one of {CATALYST_KINDS}, got {kind!r}")
        return [s for s in self.slices if s.sample_kind == kind]

    def __iter__(self) -> Iterator[AnnotatedSlice]:
        return iter(self.slices)

    def __len__(self) -> int:
        return len(self.slices)


def make_sample(kind: str, *, seed: int | None = None, shape: tuple[int, int] = (256, 256), n_slices: int = 10, **overrides) -> FibsemSample:
    """Generate one FIB-SEM sample of the given catalyst ``kind``."""
    if kind not in CATALYST_KINDS:
        raise ValidationError(f"kind must be one of {CATALYST_KINDS}, got {kind!r}")
    base = GLOBAL_SEED if seed is None else seed
    cfg = FibsemConfig(
        catalyst=kind,
        shape=shape,
        n_slices=n_slices,
        seed=derive_seed(base, "dataset", kind),
        **overrides,
    )
    return synthesize_fibsem_volume(cfg)


def _slices_of(sample: FibsemSample, volume_id: str) -> list[AnnotatedSlice]:
    out = []
    for z in range(sample.n_slices):
        out.append(
            AnnotatedSlice(
                image=sample.volume.slice_image(z),
                gt_mask=sample.catalyst_mask[z],
                sample_kind=sample.config.catalyst,
                slice_index=z,
                volume_id=volume_id,
            )
        )
    return out


def make_benchmark_dataset(
    *,
    seed: int | None = None,
    shape: tuple[int, int] = (256, 256),
    n_slices: int = 10,
    **overrides,
) -> BenchmarkDataset:
    """Build the paper's 20-slice benchmark (10 crystalline + 10 amorphous).

    ``shape``/``n_slices`` can be reduced for fast tests; benchmarks use the
    defaults.  Deterministic in ``seed``.
    """
    crystalline = make_sample("crystalline", seed=seed, shape=shape, n_slices=n_slices, **overrides)
    amorphous = make_sample("amorphous", seed=seed, shape=shape, n_slices=n_slices, **overrides)
    slices = tuple(_slices_of(crystalline, "crystalline_vol") + _slices_of(amorphous, "amorphous_vol"))
    return BenchmarkDataset(crystalline=crystalline, amorphous=amorphous, slices=slices)
