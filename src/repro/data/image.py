"""The :class:`ScientificImage` container.

Raw scientific images differ from web imagery in precisely the ways that
break foundation models: extreme bit depths (8/16/32), single-channel
grayscale, physical pixel sizes, and acquisition metadata that downstream
stages must not lose.  ``ScientificImage`` wraps the pixel array with this
provenance, and every transform in :mod:`repro.adapt` returns a new container
so fidelity is auditable end-to-end (paper contribution #2: "while preserving
data fidelity").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from ..errors import ValidationError
from ..utils.validation import ensure_ndarray

__all__ = ["ScientificImage", "Modality", "infer_bit_depth", "MODALITIES"]

#: Imaging modalities the platform recognises.  The paper validates FIB-SEM
#: and names cryoTEM/microCT as sibling modalities; XRD/STM/EDX are listed as
#: future extensions and are accepted here so the readiness scorer can reason
#: about them.
MODALITIES = ("fibsem", "cryotem", "microct", "sem", "xrd", "stm", "edx", "optical", "unknown")

Modality = str


def infer_bit_depth(array: np.ndarray) -> int:
    """Infer the nominal bit depth of an image array from its dtype."""
    dt = array.dtype
    if dt == np.uint8:
        return 8
    if dt == np.uint16:
        return 16
    if dt in (np.uint32, np.int32):
        return 32
    if dt in (np.float32, np.float64):
        return 32
    raise ValidationError(f"cannot infer bit depth for dtype {dt}")


@dataclass(frozen=True)
class ScientificImage:
    """A single 2-D scientific image plus acquisition provenance.

    Attributes
    ----------
    pixels:
        ``(H, W)`` grayscale or ``(H, W, 3)`` RGB array; any of uint8/uint16/
        uint32/float32/float64.
    modality:
        One of :data:`MODALITIES`.
    pixel_size_nm:
        Physical size of one pixel, (y, x) in nanometres, or ``None``.
    bit_depth:
        Nominal acquisition bit depth; inferred from dtype when omitted.
    metadata:
        Free-form acquisition metadata (instrument, dwell time, ...).
    history:
        Names of the adaptation steps applied so far, oldest first.
    """

    pixels: np.ndarray
    modality: Modality = "unknown"
    pixel_size_nm: tuple[float, float] | None = None
    bit_depth: int | None = None
    metadata: dict[str, Any] = field(default_factory=dict)
    history: tuple[str, ...] = ()

    def __post_init__(self):
        arr = ensure_ndarray(self.pixels, "pixels")
        if arr.ndim not in (2, 3) or (arr.ndim == 3 and arr.shape[2] not in (3, 4)):
            raise ValidationError(f"pixels must be HxW or HxWx3/4, got shape {arr.shape}")
        if self.modality not in MODALITIES:
            raise ValidationError(f"unknown modality {self.modality!r}; expected one of {MODALITIES}")
        object.__setattr__(self, "pixels", arr)
        if self.bit_depth is None:
            object.__setattr__(self, "bit_depth", infer_bit_depth(arr))

    # -- geometry -----------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.pixels.shape

    @property
    def height(self) -> int:
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        return int(self.pixels.shape[1])

    @property
    def is_rgb(self) -> bool:
        return self.pixels.ndim == 3

    @property
    def dtype(self) -> np.dtype:
        return self.pixels.dtype

    # -- transforms ---------------------------------------------------------

    def with_pixels(self, pixels: np.ndarray, step: str) -> "ScientificImage":
        """Return a copy with new pixel data and ``step`` appended to history."""
        return replace(self, pixels=np.asarray(pixels), bit_depth=None, history=self.history + (step,))

    def as_float(self) -> np.ndarray:
        """Pixels as float32 scaled to [0, 1] by the dtype's nominal range.

        Float inputs are assumed pre-scaled and are only clipped.
        """
        arr = self.pixels
        if arr.dtype == np.uint8:
            return arr.astype(np.float32) / 255.0
        if arr.dtype == np.uint16:
            return arr.astype(np.float32) / 65535.0
        if arr.dtype in (np.uint32, np.int32):
            return (arr.astype(np.float64) / 4294967295.0).astype(np.float32)
        return np.clip(arr.astype(np.float32), 0.0, 1.0)

    def describe(self) -> dict[str, Any]:
        """A JSON-safe summary used by the platform's preview endpoint."""
        arr = self.pixels
        finite = arr[np.isfinite(arr)] if np.issubdtype(arr.dtype, np.floating) else arr
        return {
            "shape": list(arr.shape),
            "dtype": str(arr.dtype),
            "bit_depth": self.bit_depth,
            "modality": self.modality,
            "pixel_size_nm": list(self.pixel_size_nm) if self.pixel_size_nm else None,
            "min": float(finite.min()) if finite.size else None,
            "max": float(finite.max()) if finite.size else None,
            "mean": float(finite.mean()) if finite.size else None,
            "history": list(self.history),
        }
