"""Run manifests: one JSON document describing what a run did and cost.

Every ``segment``/``evaluate`` CLI run can emit a ``run.json`` capturing
the config fingerprint, the git SHA (when the working tree is a git
checkout), per-stage latency summaries *and* percentiles, a full metrics
snapshot, and the recovery events that fired — enough to compare two runs
(``repro metrics diff a/run.json b/run.json``) without re-running either.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Mapping

from .adapters import collect_default_metrics, stage_latency_rows
from .metrics import MetricsRegistry

__all__ = [
    "SCHEMA_VERSION",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "diff_manifests",
    "git_sha",
]

SCHEMA_VERSION = 1


def git_sha(root: Path | str | None = None) -> str | None:
    """The checkout's HEAD SHA, or None outside git / without the binary."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _jsonable_config(config: Any) -> dict | None:
    if config is None:
        return None
    if is_dataclass(config) and not isinstance(config, type):
        config = asdict(config)
    if isinstance(config, Mapping):
        return {k: _coerce(v) for k, v in config.items()}
    return {"repr": repr(config)}


def _coerce(value: Any):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {k: _coerce(v) for k, v in value.items()}
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _coerce(v) for k, v in asdict(value).items()}
    if isinstance(value, (list, tuple, set)):
        return [_coerce(v) for v in value]
    return repr(value)


def build_manifest(
    command: str,
    *,
    config: Any = None,
    profiler=None,
    registry: MetricsRegistry | None = None,
    argv: list[str] | None = None,
    extra: Mapping | None = None,
) -> dict:
    """Assemble the manifest dict for one finished run."""
    from ..cache.keys import config_fingerprint
    from ..resilience.events import events_snapshot

    reg = collect_default_metrics(registry, profiler=profiler)
    percentiles = {r["stage"]: r for r in stage_latency_rows(reg)}
    stages = []
    if profiler is not None:
        for row in profiler.as_rows():
            p = percentiles.get(row["stage"], {})
            stages.append(
                {
                    **row,
                    "p50_s": p.get("p50_s"),
                    "p95_s": p.get("p95_s"),
                    "p99_s": p.get("p99_s"),
                }
            )
    manifest = {
        "schema": SCHEMA_VERSION,
        "command": command,
        "argv": list(argv) if argv is not None else None,
        "created_unix": time.time(),
        # The SHA of the *code* checkout (not the caller's cwd).
        "git_sha": git_sha(Path(__file__).resolve().parent),
        "config": _jsonable_config(config),
        "config_fingerprint": config_fingerprint(config) if config is not None else None,
        "stages": stages,
        "counters": dict(getattr(profiler, "counters", {}) or {}),
        "resilience": dict(events_snapshot()),
        "metrics": reg.snapshot(),
    }
    if extra:
        manifest.update(dict(extra))
    return manifest


def write_manifest(path: Path | str, manifest: Mapping) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True, default=repr))
    return path


def load_manifest(path: Path | str) -> dict:
    return json.loads(Path(path).read_text())


def _fmt_delta(a: float | None, b: float | None, unit: str = "") -> str:
    if a is None or b is None:
        return f"{_fmt(a)}{unit} -> {_fmt(b)}{unit}"
    sign = "+" if b >= a else ""
    return f"{_fmt(a)}{unit} -> {_fmt(b)}{unit} ({sign}{b - a:.4g}{unit})"


def _fmt(v: float | None) -> str:
    return "n/a" if v is None else f"{v:.4g}"


def diff_manifests(a: Mapping, b: Mapping) -> str:
    """Human-readable comparison of two run manifests (A → B)."""
    lines: list[str] = []
    for field in ("command", "git_sha", "config_fingerprint"):
        va, vb = a.get(field), b.get(field)
        marker = "  " if va == vb else "! "
        lines.append(f"{marker}{field}: {va} -> {vb}")

    stages_a = {s["stage"]: s for s in a.get("stages", ())}
    stages_b = {s["stage"]: s for s in b.get("stages", ())}
    names = sorted(set(stages_a) | set(stages_b))
    if names:
        lines.append("")
        lines.append(f"{'stage':<28}{'total[s] A->B':>36}{'p95[s] A->B':>34}")
        for name in names:
            sa, sb = stages_a.get(name, {}), stages_b.get(name, {})
            lines.append(
                f"{name:<28}"
                f"{_fmt_delta(sa.get('total_s'), sb.get('total_s')):>36}"
                f"{_fmt_delta(sa.get('p95_s'), sb.get('p95_s')):>34}"
            )

    counters_a = dict(a.get("counters", {}))
    counters_b = dict(b.get("counters", {}))
    changed = sorted(
        k for k in set(counters_a) | set(counters_b) if counters_a.get(k) != counters_b.get(k)
    )
    if changed:
        lines.append("")
        lines.append(f"{'counter':<44}{'A':>12}{'B':>12}")
        for key in changed:
            lines.append(f"{key:<44}{_fmt(counters_a.get(key)):>12}{_fmt(counters_b.get(key)):>12}")
    if len(lines) == 3 and not changed:
        lines.append("")
        lines.append("(no stage or counter differences)")
    return "\n".join(lines)
