"""Span-based tracing: hierarchical wall-clock traces of pipeline runs.

The paper sells a *real-time* platform (Fig. 2 workflow latencies, Fig. 8
dashboard); a flat stage table cannot answer "where inside slice 7 did the
time go?".  A :class:`Tracer` records a tree of :class:`Span` objects —
each with a name, wall time, and JSON-safe attributes (slice index, prompt,
cache hit/miss, retry count) — and exports it as either a hierarchical JSON
tree or the Chrome-trace event format (load the file at ``chrome://tracing``
or https://ui.perfetto.dev).

Design constraints:

* **Zero deps, zero repro imports.**  Everything else (timing, pipeline,
  pool, server) may import this module without cycles.
* **Off by default.**  :func:`trace` is a cheap no-op unless a tracer is
  active, so library code can be instrumented unconditionally.
* **Survives process boundaries.**  Workers export their spans as plain
  dicts (:func:`export_spans`); the supervisor re-parents them under its
  own trace with :meth:`Tracer.adopt` — worker wall clocks are not
  comparable across processes, so adopted subtrees keep their *relative*
  offsets and durations only.
* **Thread-aware.**  The active-span stack is thread-local, so concurrent
  server requests each build their own subtree under the shared root.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "Span",
    "Tracer",
    "trace",
    "start_trace",
    "end_trace",
    "get_tracer",
    "reset_tracing",
    "export_spans",
    "span_topology",
]


class Span:
    """One timed operation in a trace tree."""

    __slots__ = ("name", "t0", "t1", "attrs", "children", "tid")

    def __init__(self, name: str, t0: float, attrs: dict | None = None, tid: int = 0) -> None:
        self.name = name
        self.t0 = t0
        self.t1: float | None = None
        self.attrs: dict = dict(attrs or {})
        self.children: list[Span] = []
        self.tid = tid

    @property
    def duration_s(self) -> float:
        return (self.t1 if self.t1 is not None else self.t0) - self.t0

    def set(self, **attrs: Any) -> "Span":
        """Attach JSON-safe attributes to this span."""
        self.attrs.update(attrs)
        return self

    def as_dict(self, origin: float | None = None) -> dict:
        """Hierarchical dict with times relative to ``origin`` (default self)."""
        base = self.t0 if origin is None else origin
        return {
            "name": self.name,
            "start_s": round(self.t0 - base, 9),
            "duration_s": round(self.duration_s, 9),
            "attrs": dict(self.attrs),
            "children": [c.as_dict(base) for c in self.children],
        }

    @staticmethod
    def from_dict(d: Mapping, origin: float = 0.0, tid: int = 0) -> "Span":
        """Rebuild a span subtree exported by :meth:`as_dict`."""
        sp = Span(str(d["name"]), origin + float(d.get("start_s", 0.0)), d.get("attrs"), tid=tid)
        sp.t1 = sp.t0 + float(d.get("duration_s", 0.0))
        sp.children = [Span.from_dict(c, origin, tid=tid) for c in d.get("children", ())]
        return sp


class _NullSpan:
    """Inert span handed out when no tracer is active."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Owns one trace tree and the (thread-local) active-span stack."""

    def __init__(self, name: str = "run", clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.root = Span(name, clock())
        self._local = threading.local()
        self._lock = threading.Lock()  # guards child-list appends across threads

    # -- span lifecycle -------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current(self) -> Span:
        stack = self._stack()
        return stack[-1] if stack else self.root

    def begin(self, name: str, **attrs: Any) -> Span:
        """Open a span under the current one; pair with :meth:`finish`."""
        span = Span(name, self._clock(), attrs)
        parent = self.current
        with self._lock:
            parent.children.append(span)
        self._stack().append(span)
        return span

    def finish(self, span: Span, error: BaseException | None = None) -> Span:
        span.t1 = self._clock()
        if error is not None:
            span.attrs.setdefault("error", type(error).__name__)
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        return span

    def close(self) -> "Tracer":
        if self.root.t1 is None:
            self.root.t1 = self._clock()
        return self

    # -- cross-process adoption ----------------------------------------------

    def adopt(self, span_dicts: Iterable[Mapping], *, tid: int = 0, **attrs: Any) -> list[Span]:
        """Re-parent exported worker spans under the current span.

        Worker clocks are not comparable with ours; the subtree is re-based
        at the adopting span's start so relative offsets/durations survive.
        ``attrs`` (e.g. ``worker=2``) are merged into each adopted root.
        """
        parent = self.current
        adopted = []
        for d in span_dicts:
            span = Span.from_dict(d, origin=parent.t0, tid=tid)
            span.attrs.update(attrs)
            adopted.append(span)
        with self._lock:
            parent.children.extend(adopted)
        return adopted

    # -- exports --------------------------------------------------------------

    def as_dict(self) -> dict:
        """The whole trace as a hierarchical JSON-safe tree."""
        self.close()
        return self.root.as_dict()

    def to_chrome_trace(self) -> dict:
        """Chrome-trace (``chrome://tracing`` / Perfetto) event document."""
        self.close()
        events: list[dict] = []
        origin = self.root.t0

        def walk(span: Span) -> None:
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": round((span.t0 - origin) * 1e6, 3),
                    "dur": round(span.duration_s * 1e6, 3),
                    "pid": 1,
                    "tid": span.tid,
                    "args": dict(span.attrs),
                }
            )
            for child in span.children:
                walk(child)

        walk(self.root)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_chrome_trace(), indent=1))


# -- the global tracer stack ---------------------------------------------------
#
# A *stack* rather than a single slot: a pool worker that is failed over
# inline pushes its own tracer in the parent process and pops it when done,
# leaving the supervisor's trace untouched.

_STACK: list[Tracer] = []
_STACK_LOCK = threading.Lock()


def start_trace(name: str = "run") -> Tracer:
    """Activate a new tracer (nested calls stack; see :func:`end_trace`)."""
    tracer = Tracer(name)
    with _STACK_LOCK:
        _STACK.append(tracer)
    return tracer


def get_tracer() -> Tracer | None:
    """The active tracer, or None when tracing is off."""
    return _STACK[-1] if _STACK else None


def end_trace() -> Tracer | None:
    """Deactivate and close the innermost active tracer."""
    with _STACK_LOCK:
        tracer = _STACK.pop() if _STACK else None
    return tracer.close() if tracer is not None else None


def reset_tracing() -> None:
    """Drop every active tracer (tests)."""
    with _STACK_LOCK:
        _STACK.clear()


class trace:
    """Context manager *and* decorator recording one span on the active tracer.

    No-op (yields :data:`NULL_SPAN`) when tracing is inactive, so hot-path
    code can be instrumented unconditionally::

        with trace("sam.set_image", slice=z) as span:
            ...
            span.set(cache="hit")

        @trace("eval.method")
        def run(): ...
    """

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.attrs = attrs
        self._open: list[tuple[Tracer, Span] | None] = []

    def __enter__(self):
        tracer = get_tracer()
        if tracer is None:
            self._open.append(None)
            return NULL_SPAN
        span = tracer.begin(self.name, **self.attrs)
        self._open.append((tracer, span))
        return span

    def __exit__(self, exc_type, exc, tb) -> None:
        entry = self._open.pop()
        if entry is not None:
            tracer, span = entry
            tracer.finish(span, error=exc)

    def __call__(self, fn: Callable) -> Callable:
        import functools

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with trace(self.name, **self.attrs):
                return fn(*args, **kwargs)

        return wrapper


def export_spans(tracer: Tracer | None = None) -> list[dict]:
    """The active tracer's top-level spans as picklable dicts (worker → parent)."""
    tracer = tracer if tracer is not None else get_tracer()
    if tracer is None:
        return []
    origin = tracer.root.t0
    return [c.as_dict(origin) for c in tracer.root.children]


def span_topology(node: Mapping, attr_keys: tuple[str, ...] = ("slice", "stage", "worker")) -> dict:
    """Reduce a span dict tree to its deterministic shape (golden tests).

    Keeps names, nesting, and the whitelisted attributes; drops every
    timing field so the result is stable across machines and runs.
    """
    out: dict = {"name": node["name"]}
    attrs = {k: v for k, v in dict(node.get("attrs", {})).items() if k in attr_keys}
    if attrs:
        out["attrs"] = attrs
    children = [span_topology(c, attr_keys) for c in node.get("children", ())]
    if children:
        out["children"] = children
    return out
