"""The central metrics registry: counters, gauges, fixed-bucket histograms.

One registry absorbs what used to live in three ad-hoc systems (cache
``CacheStats`` counters, resilience event counters, ``StageProfiler``
summaries — see :mod:`repro.observability.adapters`) and serves them in two
shapes: a JSON snapshot (run manifests, dashboards) and Prometheus text
exposition (the platform's ``GET /metrics`` endpoint).

Naming scheme: ``repro_<layer>_<name>`` with ``_total`` suffixed on
counters and ``_seconds``/``_bytes`` unit suffixes, per Prometheus
conventions; dimensions (stage, tier, namespace, method) are labels.

Like the tracer, this module imports nothing from the rest of the package
so every layer can feed it without cycles.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default latency bucket upper bounds (seconds): sub-ms adaptation kernels
#: through multi-minute volume jobs.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


class Counter:
    """A monotonically non-decreasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {n})")
        self.value += n

    def set_to(self, value: float) -> None:
        """Absorb a cumulative snapshot from an external counter source.

        Monotone: a stale (smaller) snapshot never rolls the value back, so
        interleaved absorbs from the same source cannot lose increments.
        """
        self.value = max(self.value, float(value))

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down (bytes resident, entries, ...)."""

    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed-boundary histogram with exact bucket counts and a running sum.

    ``boundaries`` are inclusive upper bounds of the finite buckets; one
    overflow bucket catches everything beyond the last boundary.  Merging
    two histograms with identical boundaries is exact on bucket counts and
    observation counts (floats only touch ``sum``).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        boundaries: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        labels: tuple[tuple[str, str], ...] = (),
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds or any(b1 <= b0 for b0, b1 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name}: boundaries must be strictly increasing, got {bounds}")
        self.name = name
        self.labels = labels
        self.boundaries = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1 overflow
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.boundaries)
        for i, bound in enumerate(self.boundaries):
            if value <= bound:
                idx = i
                break
        self.bucket_counts[idx] += 1
        self.count += 1
        self.sum += value

    def merge(self, other: "Histogram") -> "Histogram":
        if other.boundaries != self.boundaries:
            raise ValueError(
                f"cannot merge histograms with different boundaries: "
                f"{self.boundaries} vs {other.boundaries}"
            )
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        self.count += other.count
        self.sum += other.sum
        return self

    def percentile(self, q: float) -> float:
        """Estimated q-quantile (q in [0, 1]) by linear in-bucket interpolation.

        The estimate always lies within the bounds of the bucket holding the
        target rank; the overflow bucket clamps to the last finite boundary
        (histograms cannot bound what they did not measure).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cum = 0
        lo = 0.0
        for i, n in enumerate(self.bucket_counts):
            hi = self.boundaries[i] if i < len(self.boundaries) else self.boundaries[-1]
            if n and cum + n >= target:
                frac = (target - cum) / n
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            cum += n
            if i < len(self.boundaries):
                lo = hi
        return self.boundaries[-1]

    def snapshot(self) -> dict:
        return {
            "boundaries": list(self.boundaries),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Thread-safe home for every metric in the process."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}

    def _get_or_create(self, cls, name: str, labels: Mapping[str, str], **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, labels=key[1], **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {type(metric).__name__}, "
                    f"requested {cls.__name__}"
                )
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, boundaries: Iterable[float] = DEFAULT_LATENCY_BUCKETS, **labels: str
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, boundaries=boundaries)

    # -- views ----------------------------------------------------------------

    def metrics(self) -> list:
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def snapshot(self) -> dict:
        """JSON-safe snapshot: ``{kind: {"name{labels}": value-or-dict}}``."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in self.metrics():
            key = f"{metric.name}{_format_labels(metric.labels)}"
            out[metric.kind + "s"][key] = metric.snapshot()
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        seen_types: set[str] = set()
        for metric in self.metrics():
            if metric.name not in seen_types:
                lines.append(f"# TYPE {metric.name} {metric.kind}")
                seen_types.add(metric.name)
            if isinstance(metric, Histogram):
                cum = 0
                for i, bound in enumerate(metric.boundaries):
                    cum += metric.bucket_counts[i]
                    labels = _format_labels(metric.labels + (("le", repr(bound)),))
                    lines.append(f"{metric.name}_bucket{labels} {cum}")
                cum += metric.bucket_counts[-1]
                labels = _format_labels(metric.labels + (("le", "+Inf"),))
                lines.append(f"{metric.name}_bucket{labels} {cum}")
                plain = _format_labels(metric.labels)
                lines.append(f"{metric.name}_sum{plain} {metric.sum}")
                lines.append(f"{metric.name}_count{plain} {metric.count}")
            else:
                value = metric.snapshot()
                text = repr(int(value)) if float(value).is_integer() else repr(value)
                lines.append(f"{metric.name}{_format_labels(metric.labels)} {text}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


#: The process-global registry every layer feeds by default.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY


def reset_registry() -> None:
    """Clear the global registry (tests)."""
    _REGISTRY.reset()
