"""Adapters folding the legacy counter systems into the metrics registry.

Three instrumentation systems predate :mod:`repro.observability` and are
kept working (tests, ``--profile`` tables, the dashboard all read them),
but they are *deprecated as primary interfaces*: the registry is now the
one place metrics live, and these adapters absorb each legacy shape:

* :class:`~repro.utils.timing.StageProfiler` → ``repro_stage_*`` series
  (live per-call latency histograms are fed directly by the profiler hook;
  the adapter contributes the cumulative call/seconds counters).
* ``InferenceCache.counters()`` (``cache.<tier>.<metric>`` /
  ``cache.ns.<ns>.<metric>`` flat dicts) → ``repro_cache_*`` with ``tier``
  / ``namespace`` labels.
* ``repro.resilience.events_snapshot()`` (``resilience.<name>`` dicts) →
  ``repro_resilience_<name>_total`` counters.

All absorbs are *snapshot-monotone* (:meth:`Counter.set_to`): absorbing
the same source twice, or interleaved with further increments, never loses
or double-counts an increment.

Repro-internal imports happen lazily inside functions so this module (and
the package ``__init__``) stays cycle-free.
"""

from __future__ import annotations

from typing import Mapping

from .metrics import MetricsRegistry, get_registry

__all__ = [
    "absorb_profiler",
    "absorb_cache_counters",
    "absorb_resilience_events",
    "collect_default_metrics",
    "publish_cluster_metrics",
    "stage_latency_rows",
]

#: Gauge-like cache metrics (absolute occupancy, not monotone counts).
_CACHE_GAUGES = ("bytes", "entries", "byte_budget")


def absorb_profiler(profiler, registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Fold a StageProfiler's cumulative stage summaries into the registry."""
    reg = registry or get_registry()
    for name, rec in profiler.records.items():
        reg.counter("repro_stage_calls_total", stage=name).set_to(rec.calls)
        reg.counter("repro_stage_seconds_total", stage=name).set_to(rec.total_s)
    return reg


def absorb_cache_counters(
    counters: Mapping[str, float], registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Fold a flat ``InferenceCache.counters()`` mapping into the registry."""
    reg = registry or get_registry()
    for key, value in counters.items():
        parts = key.split(".")
        if key.startswith("cache.ns.") and len(parts) >= 4:
            # namespaces may themselves contain dots (e.g. "sam.image")
            namespace, metric = key.removeprefix("cache.ns.").rsplit(".", 1)
            reg.counter(f"repro_cache_ns_{metric}_total", namespace=namespace).set_to(value)
        elif len(parts) == 3 and parts[0] == "cache":
            _, tier, metric = parts
            if metric in _CACHE_GAUGES:
                reg.gauge(f"repro_cache_{metric}", tier=tier).set(value)
            else:
                reg.counter(f"repro_cache_{metric}_total", tier=tier).set_to(value)
    return reg


def absorb_resilience_events(
    snapshot: Mapping[str, int], registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Fold a ``resilience.<name>`` event snapshot into the registry."""
    reg = registry or get_registry()
    for key, value in snapshot.items():
        name = key.removeprefix("resilience.").replace(".", "_")
        reg.counter(f"repro_resilience_{name}_total").set_to(value)
    return reg


def collect_default_metrics(
    registry: MetricsRegistry | None = None, profiler=None
) -> MetricsRegistry:
    """Absorb every live legacy source: global cache, resilience events,
    and (optionally) a profiler.  Called before rendering ``GET /metrics``
    and before building a run manifest, so snapshots are never stale."""
    from ..cache import get_cache
    from ..resilience.events import events_snapshot

    reg = registry or get_registry()
    absorb_cache_counters(get_cache().counters(), reg)
    absorb_resilience_events(events_snapshot(), reg)
    if profiler is not None:
        absorb_profiler(profiler, reg)
    return reg


def publish_cluster_metrics(replicas, registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Publish per-replica liveness gauges from the coordinator's handles.

    Fed by the supervisor loop on every probe tick, so the router's
    ``GET /metrics`` always reflects the current cluster shape:
    ``repro_cluster_replica_up{replica}`` (1 = routing-eligible) plus the
    aggregate ``repro_cluster_replicas_healthy`` / ``..._configured``.
    Cumulative death/restart counters are incremented at the event sites in
    :mod:`repro.cluster.coordinator`, not here.
    """
    reg = registry or get_registry()
    healthy = 0
    for handle in replicas:
        up = 1 if handle.healthy else 0
        healthy += up
        reg.gauge("repro_cluster_replica_up", replica=str(handle.index)).set(up)
    reg.gauge("repro_cluster_replicas_healthy").set(healthy)
    reg.gauge("repro_cluster_replicas_configured").set(len(list(replicas)))
    return reg


def stage_latency_rows(registry: MetricsRegistry | None = None) -> list[dict]:
    """Per-stage latency percentiles from the live ``repro_stage_seconds``
    histograms (dashboard latency card, run manifests)."""
    from .metrics import Histogram

    reg = registry or get_registry()
    rows: list[dict] = []
    for metric in reg.metrics():
        if not isinstance(metric, Histogram) or metric.name != "repro_stage_seconds":
            continue
        labels = dict(metric.labels)
        rows.append(
            {
                "stage": labels.get("stage", "?"),
                "count": metric.count,
                "p50_s": metric.percentile(0.50),
                "p95_s": metric.percentile(0.95),
                "p99_s": metric.percentile(0.99),
            }
        )
    rows.sort(key=lambda r: -r["p95_s"])
    return rows
