"""Unified observability: span tracing, metrics registry, run manifests.

The three legacy instrumentation systems (``StageProfiler`` wall-clock
tables, cache counters, resilience event counters) keep working but now
feed one place:

* :mod:`~repro.observability.trace` — hierarchical span traces with
  JSON and Chrome-trace export, serializable across the worker pool.
* :mod:`~repro.observability.metrics` — counters / gauges / fixed-bucket
  histograms, JSON snapshots, and Prometheus text for ``GET /metrics``.
* :mod:`~repro.observability.adapters` — folds the legacy counter shapes
  into the registry.
* :mod:`~repro.observability.manifest` — ``run.json`` documents plus
  ``repro metrics diff`` between two runs.
"""

from .adapters import (
    absorb_cache_counters,
    absorb_profiler,
    absorb_resilience_events,
    collect_default_metrics,
    stage_latency_rows,
)
from .manifest import build_manifest, diff_manifests, load_manifest, write_manifest
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from .trace import (
    Span,
    Tracer,
    end_trace,
    export_spans,
    get_tracer,
    reset_tracing,
    span_topology,
    start_trace,
    trace,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "absorb_cache_counters",
    "absorb_profiler",
    "absorb_resilience_events",
    "build_manifest",
    "collect_default_metrics",
    "diff_manifests",
    "end_trace",
    "export_spans",
    "get_registry",
    "get_tracer",
    "load_manifest",
    "reset_registry",
    "reset_tracing",
    "span_topology",
    "stage_latency_rows",
    "start_trace",
    "trace",
    "write_manifest",
]
