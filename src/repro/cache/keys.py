"""Content-addressed cache keys.

A cache entry is addressed by *what went in*, never by identity: the SHA-1
of the input array's bytes (dtype and shape included, so a float32 image
and its float64 twin never collide) combined with a fingerprint of every
model/config knob that influences the output.  Two arrays with identical
content but different strides — a view, a Fortran-ordered copy, a
transposed-then-transposed-back buffer — hash identically because hashing
always happens over the C-contiguous byte stream.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass

import numpy as np

__all__ = ["array_content_key", "config_fingerprint", "combine_keys"]


def array_content_key(arr) -> str:
    """SHA-1 of an array's logical content: dtype ⊕ shape ⊕ C-order bytes."""
    a = np.asarray(arr)
    h = hashlib.sha1()
    h.update(a.dtype.str.encode())
    h.update(repr(a.shape).encode())
    if not a.flags.c_contiguous:
        a = np.ascontiguousarray(a)
    h.update(a)  # zero-copy over the buffer protocol
    return h.hexdigest()


def _canonical(obj):
    """Reduce a config-like object to a deterministic, repr-stable form.

    A dataclass may declare ``__fingerprint_exclude__`` (an iterable of
    field names) to keep *output-invariant* knobs out of the fingerprint:
    pure performance settings (batch sizes, tile hints) that change how
    fast a result is computed but never its bytes.  Including them would
    spuriously invalidate caches, checkpoints, and durable job identities
    whenever someone tunes throughput.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        exclude = frozenset(getattr(obj, "__fingerprint_exclude__", ()))
        return (
            type(obj).__name__,
            [
                (f.name, _canonical(getattr(obj, f.name)))
                for f in fields(obj)
                if f.name not in exclude
            ],
        )
    if isinstance(obj, np.ndarray):
        return ("ndarray", array_content_key(obj))
    if isinstance(obj, dict):
        return [(k, _canonical(v)) for k, v in sorted(obj.items())]
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if obj is None or isinstance(obj, (str, bytes, int, float, bool)):
        return obj
    # Plain objects with simple attribute dicts (e.g. AnalyticMaskHead).
    if hasattr(obj, "__dict__"):
        return (type(obj).__name__, [(k, _canonical(v)) for k, v in sorted(vars(obj).items())])
    return repr(obj)


def config_fingerprint(*objs) -> str:
    """Stable SHA-1 fingerprint of one or more configuration objects.

    Any change to a field value (a different seed, dim, threshold, …)
    produces a different fingerprint, which invalidates every cache entry
    keyed with it — the content-addressing answer to "is this result still
    valid under my current model?".

    The active numeric precision tier (``repro.models.nn.precision``) is
    folded in as well, so entries computed under ``fast`` math can never
    satisfy an ``exact`` lookup (or vice versa) — including on the disk
    tier shared across processes.
    """
    # Imported lazily: repro.models pulls in modules that import repro.cache
    # at module scope, so a top-level import here would be circular.
    from ..models.nn.precision import precision_tag

    return hashlib.sha1(
        repr([_canonical(o) for o in objs] + [precision_tag()]).encode()
    ).hexdigest()


def combine_keys(*parts: str) -> str:
    """Join key components into one address."""
    return "|".join(parts)
