"""The multi-tier inference cache and its process-global instance.

Lookup walks memory → disk; a disk hit is promoted into memory so the
second access is free.  Every value is addressed by content (see
:mod:`repro.cache.keys`), so correctness never depends on invalidation
logic: change an input array or a config field and the address changes
with it.

Cached values are shared by reference — treat them as immutable.  All
producers in this repository (encoders, adaptation, analytic heads) return
fresh arrays derived from their inputs, so sharing is safe.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from .disk import DiskTier
from .memory import MemoryTier, nbytes_of
from .stats import CacheStats

__all__ = ["MISS", "CacheConfig", "InferenceCache", "get_cache", "configure_cache", "reset_cache"]


class _Miss:
    """Sentinel distinguishing a cache miss from a cached ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<cache MISS>"


MISS = _Miss()


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


@dataclass(frozen=True)
class CacheConfig:
    """Tier sizes and switches (env overrides for ops tuning)."""

    enabled: bool = field(default_factory=lambda: os.environ.get("REPRO_CACHE_DISABLE", "") != "1")
    memory_bytes: int = field(default_factory=lambda: _env_int("REPRO_CACHE_BYTES", 256 * 1024 * 1024))
    disk_enabled: bool = field(default_factory=lambda: os.environ.get("REPRO_CACHE_DISK", "") == "1")
    disk_dir: Path | None = None
    disk_bytes: int = field(default_factory=lambda: _env_int("REPRO_CACHE_DISK_BYTES", 1024 * 1024 * 1024))


class InferenceCache:
    """Content-addressed, multi-tier cache for heavy inference products."""

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()
        self.enabled = self.config.enabled
        self._memory = MemoryTier(byte_budget=self.config.memory_bytes)
        self._disk = (
            DiskTier(root=self.config.disk_dir, byte_budget=self.config.disk_bytes)
            if self.config.disk_enabled
            else None
        )
        self._stats = CacheStats()
        self._stats.tiers[self._memory.name] = self._memory.stats
        if self._disk is not None:
            self._stats.tiers[self._disk.name] = self._disk.stats
        self._lock = threading.RLock()

    # -- core protocol --------------------------------------------------------

    def get(self, namespace: str, key: str):
        """Look ``namespace:key`` up across tiers; returns :data:`MISS` if absent."""
        if not self.enabled:
            return MISS
        full = f"{namespace}:{key}"
        with self._lock:
            ns = self._stats.namespace(namespace)
            value = self._memory.get(full, MISS)
            if value is not MISS:
                ns.hits += 1
                return value
            if self._disk is not None:
                value = self._disk.get(full, MISS)
                if value is not MISS:
                    ns.hits += 1
                    self._memory.put(full, value)  # promote
                    return value
            ns.misses += 1
            return MISS

    def put(self, namespace: str, key: str, value) -> None:
        if not self.enabled:
            return
        full = f"{namespace}:{key}"
        size = nbytes_of(value)
        with self._lock:
            self._memory.put(full, value, nbytes=size)
            if self._disk is not None:
                self._disk.put(full, value, nbytes=size)

    def get_or_compute(self, namespace: str, key: str, compute: Callable[[], object]):
        """Return the cached value or compute-and-store it."""
        value = self.get(namespace, key)
        if value is MISS:
            value = compute()
            self.put(namespace, key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
            if self._disk is not None:
                self._disk.clear()

    # -- observability --------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        return self._stats

    def counters(self) -> dict[str, float]:
        """Flat counter mapping (see :meth:`CacheStats.as_counters`)."""
        with self._lock:
            return self._stats.as_counters()


_global_cache: InferenceCache | None = None
_global_lock = threading.Lock()


def get_cache() -> InferenceCache:
    """The process-global cache (created lazily from env defaults)."""
    global _global_cache
    if _global_cache is None:
        with _global_lock:
            if _global_cache is None:
                _global_cache = InferenceCache()
    return _global_cache


def configure_cache(config: CacheConfig) -> InferenceCache:
    """Replace the process-global cache (e.g. to enable the disk tier)."""
    global _global_cache
    with _global_lock:
        _global_cache = InferenceCache(config)
    return _global_cache


def reset_cache() -> None:
    """Drop the global cache entirely (tests; frees all held arrays)."""
    global _global_cache
    with _global_lock:
        _global_cache = None
