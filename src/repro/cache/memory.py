"""In-memory LRU tier with a byte budget.

The working set of an interactive session (a handful of image embeddings,
analytic contexts, adapted branches, text encodings) fits comfortably in a
couple hundred megabytes; the budget bounds the worst case — a Mode B sweep
over a large volume — by evicting least-recently-used entries.  Sizes are
estimated by walking the stored value for ndarray buffers, which is where
essentially all the bytes live.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from dataclasses import fields, is_dataclass

import numpy as np

from .stats import TierStats

__all__ = ["MemoryTier", "nbytes_of"]


def nbytes_of(obj) -> int:
    """Approximate deep size in bytes, counting ndarray buffers exactly."""
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if is_dataclass(obj) and not isinstance(obj, type):
        return sum(nbytes_of(getattr(obj, f.name)) for f in fields(obj))
    if isinstance(obj, dict):
        return sum(nbytes_of(k) + nbytes_of(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(nbytes_of(v) for v in obj)
    if isinstance(obj, (str, bytes)):
        return len(obj)
    try:
        return int(sys.getsizeof(obj))
    except TypeError:
        return 64


class MemoryTier:
    """Byte-budgeted LRU over an :class:`collections.OrderedDict`."""

    name = "memory"

    def __init__(self, byte_budget: int = 256 * 1024 * 1024) -> None:
        self.byte_budget = int(byte_budget)
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._sizes: dict[str, int] = {}
        self.stats = TierStats(tier=self.name, byte_budget=self.byte_budget)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str, default=None):
        if key not in self._entries:
            self.stats.misses += 1
            return default
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return self._entries[key]

    def put(self, key: str, value, nbytes: int | None = None) -> bool:
        """Insert (or refresh) an entry; returns False when it cannot fit."""
        size = nbytes_of(value) if nbytes is None else int(nbytes)
        if size > self.byte_budget:
            return False  # larger than the whole tier: never admit
        if key in self._entries:
            self.stats.bytes_used -= self._sizes[key]
            del self._entries[key]
        self._entries[key] = value
        self._sizes[key] = size
        self.stats.bytes_used += size
        self.stats.puts += 1
        while self.stats.bytes_used > self.byte_budget and self._entries:
            old_key, _ = self._entries.popitem(last=False)
            self.stats.bytes_used -= self._sizes.pop(old_key)
            self.stats.evictions += 1
        self.stats.entries = len(self._entries)
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._sizes.clear()
        self.stats.bytes_used = 0
        self.stats.entries = 0
