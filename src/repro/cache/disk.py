"""Optional on-disk tier under ``~/.cache/repro``.

Persists cache entries across processes and sessions: Mode B worker
processes, repeated CLI invocations on the same acquisition, and server
restarts all reuse each other's encodings.  Entries are pickled blobs in a
two-level fan-out directory keyed by the content address; writes are atomic
(tmp file + rename) so concurrent readers never observe torn entries.
Disabled by default — enable via ``CacheConfig(disk_enabled=True)`` or
``REPRO_CACHE_DISK=1``.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from .stats import TierStats

__all__ = ["DiskTier", "default_cache_dir"]


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path(os.environ.get("XDG_CACHE_HOME", "~/.cache")).expanduser() / "repro"


class DiskTier:
    """Content-addressed pickle store with an LRU-by-mtime byte budget."""

    name = "disk"

    def __init__(self, root: Path | None = None, byte_budget: int = 1024 * 1024 * 1024) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.byte_budget = int(byte_budget)
        self.stats = TierStats(tier=self.name, byte_budget=self.byte_budget)
        self._scanned = False

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _scan(self) -> None:
        """Lazily compute occupancy from the directory tree."""
        if self._scanned:
            return
        total = 0
        count = 0
        if self.root.is_dir():
            for p in self.root.glob("*/*.pkl"):
                try:
                    total += p.stat().st_size
                    count += 1
                except OSError:
                    continue
        self.stats.bytes_used = total
        self.stats.entries = count
        self._scanned = True

    def get(self, key: str, default=None):
        self._scan()
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.stats.misses += 1
            return default
        try:
            os.utime(path)  # refresh for LRU-by-mtime eviction
        except OSError:
            pass
        self.stats.hits += 1
        return value

    def put(self, key: str, value, nbytes: int | None = None) -> bool:
        self._scan()
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            size = tmp.stat().st_size
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError):
            tmp.unlink(missing_ok=True)
            return False
        self.stats.puts += 1
        self.stats.bytes_used += size
        self.stats.entries += 1
        self._evict()
        return True

    def _evict(self) -> None:
        if self.stats.bytes_used <= self.byte_budget:
            return
        entries = []
        for p in self.root.glob("*/*.pkl"):
            try:
                st = p.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, p))
        entries.sort()
        used = sum(size for _, size, _ in entries)
        for _, size, p in entries:
            if used <= self.byte_budget:
                break
            p.unlink(missing_ok=True)
            used -= size
            self.stats.evictions += 1
        self.stats.bytes_used = used
        self.stats.entries = sum(1 for e in entries if e[2].exists())

    def clear(self) -> None:
        if self.root.is_dir():
            for p in self.root.glob("*/*.pkl"):
                p.unlink(missing_ok=True)
        self.stats.bytes_used = 0
        self.stats.entries = 0
        self._scanned = True
