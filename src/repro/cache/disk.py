"""Optional on-disk tier under ``~/.cache/repro``.

Persists cache entries across processes and sessions: Mode B worker
processes, repeated CLI invocations on the same acquisition, and server
restarts all reuse each other's encodings.  Entries are pickled blobs in a
two-level fan-out directory keyed by the content address; writes are atomic
(tmp file + rename) so concurrent readers never observe torn entries.
Disabled by default — enable via ``CacheConfig(disk_enabled=True)`` or
``REPRO_CACHE_DISK=1``.

A corrupt entry (torn by a power cut, truncated by a full disk, damaged by
bit rot) is **quarantined** on first read: moved into a ``.bad/`` subdir —
excluded from scanning and eviction — counted in
``TierStats.quarantined``, and never re-read.  The ``disk_corrupt`` fault
(:mod:`repro.resilience.faults`) deliberately mangles just-written entries
to exercise this path.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from ..resilience.events import record_event
from ..resilience.faults import get_fault_plan
from .stats import TierStats

__all__ = ["DiskTier", "default_cache_dir"]


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path(os.environ.get("XDG_CACHE_HOME", "~/.cache")).expanduser() / "repro"


class DiskTier:
    """Content-addressed pickle store with an LRU-by-mtime byte budget."""

    name = "disk"

    def __init__(self, root: Path | None = None, byte_budget: int = 1024 * 1024 * 1024) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.byte_budget = int(byte_budget)
        self.stats = TierStats(tier=self.name, byte_budget=self.byte_budget)
        self._scanned = False

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _entries(self):
        """Live ``.pkl`` entries, excluding the ``.bad/`` quarantine dir."""
        if not self.root.is_dir():
            return
        for p in self.root.glob("*/*.pkl"):
            if p.parent.name != ".bad":
                yield p

    def _scan(self) -> None:
        """Lazily compute occupancy from the directory tree."""
        if self._scanned:
            return
        total = 0
        count = 0
        for p in self._entries():
            try:
                total += p.stat().st_size
                count += 1
            except OSError:
                continue
        self.stats.bytes_used = total
        self.stats.entries = count
        self._scanned = True

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry into ``.bad/`` so it is never re-read."""
        bad_dir = self.root / ".bad"
        try:
            size = path.stat().st_size
            bad_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, bad_dir / path.name)
        except OSError:
            # Could not move it aside; unlink so it cannot be re-read.
            size = 0
            path.unlink(missing_ok=True)
        self.stats.quarantined += 1
        self.stats.bytes_used = max(0, self.stats.bytes_used - size)
        self.stats.entries = max(0, self.stats.entries - 1)
        record_event("cache.quarantined")

    def get(self, key: str, default=None):
        self._scan()
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return default
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            # The entry exists but cannot be decoded: corrupt.  Quarantine
            # it and report a miss — the caller recomputes and re-puts.
            self._quarantine(path)
            self.stats.misses += 1
            return default
        try:
            os.utime(path)  # refresh for LRU-by-mtime eviction
        except OSError:
            pass
        self.stats.hits += 1
        return value

    def put(self, key: str, value, nbytes: int | None = None) -> bool:
        self._scan()
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            size = tmp.stat().st_size
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError):
            tmp.unlink(missing_ok=True)
            return False
        if get_fault_plan().should_fire("disk_corrupt", key=key[:12]):
            path.write_bytes(b"\x80CORRUPTED-BY-FAULT-INJECTION")
        self.stats.puts += 1
        self.stats.bytes_used += size
        self.stats.entries += 1
        self._evict()
        return True

    def _evict(self) -> None:
        if self.stats.bytes_used <= self.byte_budget:
            return
        entries = []
        for p in self._entries():
            try:
                st = p.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, p))
        entries.sort()
        used = sum(size for _, size, _ in entries)
        for _, size, p in entries:
            if used <= self.byte_budget:
                break
            p.unlink(missing_ok=True)
            used -= size
            self.stats.evictions += 1
        self.stats.bytes_used = used
        self.stats.entries = sum(1 for e in entries if e[2].exists())

    def clear(self) -> None:
        for p in self._entries():
            p.unlink(missing_ok=True)
        self.stats.bytes_used = 0
        self.stats.entries = 0
        self._scanned = True
