"""Cache observability: per-tier and per-namespace counters.

Every tier (memory, disk) tracks hits/misses/puts/evictions plus its byte
occupancy; every namespace (``sam.image``, ``dino.ground``, …) tracks its
own hit/miss split so the profiler tables and the Fig 8 dashboard can show
*where* reuse happens, not just that it does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TierStats", "NamespaceStats", "CacheStats", "subtract_counters"]


@dataclass
class TierStats:
    """Counters for one storage tier."""

    tier: str
    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    quarantined: int = 0  # corrupt entries moved aside, never re-read
    bytes_used: int = 0
    byte_budget: int = 0
    entries: int = 0

    def as_dict(self) -> dict:
        return {
            "tier": self.tier,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "bytes_used": self.bytes_used,
            "byte_budget": self.byte_budget,
            "entries": self.entries,
        }


@dataclass
class NamespaceStats:
    """Hit/miss split for one logical cache namespace."""

    namespace: str
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        n = self.hits + self.misses
        return self.hits / n if n else 0.0


@dataclass
class CacheStats:
    """Aggregated view over all tiers and namespaces of one cache."""

    tiers: dict[str, TierStats] = field(default_factory=dict)
    namespaces: dict[str, NamespaceStats] = field(default_factory=dict)

    def tier(self, name: str) -> TierStats:
        return self.tiers.setdefault(name, TierStats(tier=name))

    def namespace(self, name: str) -> NamespaceStats:
        return self.namespaces.setdefault(name, NamespaceStats(namespace=name))

    @property
    def hits(self) -> int:
        return sum(t.hits for t in self.tiers.values())

    @property
    def misses(self) -> int:
        # A full miss walks every tier; count it once, via the namespaces.
        return sum(ns.misses for ns in self.namespaces.values())

    def as_rows(self) -> list[dict]:
        """Per-tier rows for tables/dashboards."""
        return [self.tiers[k].as_dict() for k in sorted(self.tiers)]

    def as_counters(self) -> dict[str, float]:
        """Flat ``{"cache.<tier>.<metric>": value}`` mapping for profilers."""
        out: dict[str, float] = {}
        for name, t in sorted(self.tiers.items()):
            out[f"cache.{name}.hits"] = float(t.hits)
            out[f"cache.{name}.misses"] = float(t.misses)
            out[f"cache.{name}.evictions"] = float(t.evictions)
            out[f"cache.{name}.quarantined"] = float(t.quarantined)
            out[f"cache.{name}.bytes"] = float(t.bytes_used)
            out[f"cache.{name}.entries"] = float(t.entries)
        for name, ns in sorted(self.namespaces.items()):
            out[f"cache.ns.{name}.hits"] = float(ns.hits)
            out[f"cache.ns.{name}.misses"] = float(ns.misses)
        return out


def subtract_counters(after: dict[str, float], before: dict[str, float]) -> dict[str, float]:
    """Counter delta between two :meth:`CacheStats.as_counters` snapshots.

    Gauges (``bytes``, ``entries``) keep their *after* value — a delta of a
    gauge is meaningless; monotonic counters are differenced.
    """
    out: dict[str, float] = {}
    for key, value in after.items():
        if key.endswith((".bytes", ".entries")):
            out[key] = value
        else:
            out[key] = value - before.get(key, 0.0)
    return out
