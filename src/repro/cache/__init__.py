"""Content-addressed inference cache (memory LRU + optional disk tier).

The interactive claims of the paper — HITL rectification, Further Segment,
the live Mode C dashboard — all revisit images and prompts the session has
already seen.  Upstream SAM amortizes its image embedding once per image so
thousands of prompts are cheap; this package generalises that idiom to the
whole Zenesis stack: SAM image embeddings and analytic contexts, DINO text
and image encodings, full grounding results, both adaptation branches, and
batched decoder outputs are cached under SHA-1 content addresses combined
with model-config fingerprints (see :mod:`repro.cache.keys`).

Public surface:

* :func:`get_cache` / :func:`configure_cache` — the process-global cache;
* :class:`InferenceCache`, :class:`CacheConfig` — explicit instances;
* :data:`MISS` — the miss sentinel returned by :meth:`InferenceCache.get`;
* :func:`array_content_key`, :func:`config_fingerprint`,
  :func:`combine_keys` — key construction;
* :class:`CacheStats` + :func:`subtract_counters` — observability.
"""

from .core import MISS, CacheConfig, InferenceCache, configure_cache, get_cache, reset_cache
from .disk import DiskTier, default_cache_dir
from .keys import array_content_key, combine_keys, config_fingerprint
from .memory import MemoryTier, nbytes_of
from .stats import CacheStats, NamespaceStats, TierStats, subtract_counters

__all__ = [
    "MISS",
    "CacheConfig",
    "InferenceCache",
    "configure_cache",
    "get_cache",
    "reset_cache",
    "DiskTier",
    "default_cache_dir",
    "MemoryTier",
    "nbytes_of",
    "array_content_key",
    "combine_keys",
    "config_fingerprint",
    "CacheStats",
    "NamespaceStats",
    "TierStats",
    "subtract_counters",
]
