"""Out-of-core volume readers: shape/dtype up front, tiles on demand.

Instrument stacks are routinely larger than RAM, and the paper's whole
premise is ingesting them *without* AI-ready preprocessing.  A
:class:`LazyVolume` exposes a volume's geometry and acquisition metadata
immediately — parsed from headers alone — while pixel data is read one
*tile* (Z slice) at a time, so the resident set of a streaming segmentation
is a handful of tiles, never the array.

Three front ends cover what instruments actually produce:

* :class:`TiffLazyVolume` — multi-page TIFF stacks, read via a
  bounds-checked IFD walk over a read-only memory map.  Every offset and
  length is validated against the file size before it is dereferenced, so a
  truncated or bit-rotted file yields a structured
  :class:`~repro.errors.CorruptTileError` (classified torn / flip /
  unreadable), never a raw ``struct.error``.  A stack whose IFD chain is
  torn mid-file opens with the pages that survive and flags
  ``meta["truncated_tail"]``.
* :class:`SliceDirectoryVolume` — a directory of per-slice image files
  (TIFF/PNG/npy), sorted by name; the common "export every frame" layout.
* :class:`NpyLazyVolume` — raw ``.npy`` volumes read through ``mmap`` with
  the header parsed by numpy's own format module.

:func:`open_lazy_volume` sniffs which front end applies.  The failure
model around per-tile reads (checksums, retries, quarantine, degrade
policies) lives in :mod:`repro.io.integrity`.
"""

from __future__ import annotations

import mmap
import os
import struct
import zlib
from dataclasses import dataclass, field
from hashlib import sha1
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import CorruptTileError, FormatError, UnknownFormatError, ValidationError
from .tiff import TiffPageInfo

__all__ = [
    "LazyVolume",
    "TiffLazyVolume",
    "SliceDirectoryVolume",
    "NpyLazyVolume",
    "ArrayLazyVolume",
    "open_lazy_volume",
]

_SLICE_FILE_SUFFIXES = (".tif", ".tiff", ".png", ".npy")


class LazyVolume:
    """Protocol base: geometry/metadata eagerly, pixels per tile on demand.

    Subclasses set ``shape`` (Z, Y, X), ``dtype`` (native byte order), and
    ``meta`` in ``__init__`` and implement :meth:`_read_tile_raw`.
    """

    shape: tuple[int, int, int]
    dtype: np.dtype
    meta: dict[str, Any]
    source_path: str | None = None

    # -- geometry -------------------------------------------------------------

    @property
    def n_tiles(self) -> int:
        return int(self.shape[0])

    @property
    def tile_shape(self) -> tuple[int, int]:
        return (int(self.shape[1]), int(self.shape[2]))

    @property
    def tile_nbytes(self) -> int:
        """Bytes one decoded tile occupies (the unit of the memory budget)."""
        return int(self.shape[1]) * int(self.shape[2]) * int(self.dtype.itemsize)

    @property
    def nbytes(self) -> int:
        return self.tile_nbytes * self.n_tiles

    # -- data -----------------------------------------------------------------

    def read_tile(self, z: int) -> np.ndarray:
        """Decode tile ``z`` as a native-byte-order 2-D array.

        Raises :class:`~repro.errors.CorruptTileError` (with a torn / flip /
        unreadable classification) for damaged tiles; never leaks a raw
        ``struct.error`` / ``zlib.error`` / ``ValueError``.
        """
        if not 0 <= int(z) < self.n_tiles:
            raise ValidationError(f"tile {z} out of range for {self.n_tiles} tiles")
        tile = self._read_tile_raw(int(z))
        if tile.dtype.byteorder in ("<", ">"):
            tile = tile.astype(tile.dtype.newbyteorder("="))
        return tile

    def _read_tile_raw(self, z: int) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def tile_bytes(self, z: int) -> bytes:
        """The canonical byte serialization of tile ``z`` (checksum input).

        Defined over the *decoded* native-order array so a checksum written
        from one front end verifies a re-export through another.
        """
        return np.ascontiguousarray(self.read_tile(z)).tobytes()

    def content_key(self) -> str:
        """A streaming content address: sha1 over decoded tile bytes.

        One full pass of IO, O(tile) memory.  Cached — checkpoint
        fingerprints and job identities call this repeatedly.
        """
        cached = getattr(self, "_content_key", None)
        if cached is not None:
            return cached
        h = sha1()
        h.update(repr((self.shape, str(self.dtype))).encode())
        for z in range(self.n_tiles):
            h.update(self.tile_bytes(z))
        key = h.hexdigest()
        self._content_key = key
        return key

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release file handles / maps.  Idempotent."""

    def __enter__(self) -> "LazyVolume":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def describe(self) -> dict[str, Any]:
        """JSON-safe summary (the platform preview for streamed volumes)."""
        return {
            "kind": "volume",
            "lazy": True,
            "shape": [int(s) for s in self.shape],
            "dtype": str(self.dtype),
            "tile_nbytes": self.tile_nbytes,
            "nbytes": self.nbytes,
            "source": self.source_path,
            "meta": {k: v for k, v in self.meta.items() if _json_safe(v)},
        }


def _json_safe(v) -> bool:
    return isinstance(v, (str, int, float, bool, type(None), list, tuple))


# ---------------------------------------------------------------------------
# TIFF front end: bounds-checked IFD walk over a memory map
# ---------------------------------------------------------------------------

_TAG_WIDTH = 256
_TAG_HEIGHT = 257
_TAG_BITS = 258
_TAG_COMPRESSION = 259
_TAG_DESCRIPTION = 270
_TAG_STRIP_OFFSETS = 273
_TAG_SAMPLES_PER_PIXEL = 277
_TAG_STRIP_BYTE_COUNTS = 279
_TAG_XRES = 282
_TAG_YRES = 283
_TAG_PLANAR = 284
_TAG_SAMPLE_FORMAT = 339

_TYPE_SIZE = {1: 1, 2: 1, 3: 2, 4: 4, 5: 8}


@dataclass
class _TiffPage:
    """Validated layout of one page: everything a tile read needs."""

    info: TiffPageInfo
    strip_offsets: tuple[int, ...]
    strip_counts: tuple[int, ...]
    ifd_offset: int


class _BoundedReader:
    """Checked primitive reads over a buffer; every access is validated."""

    def __init__(self, buf, endian: str) -> None:
        self.buf = buf
        self.size = len(buf)
        self.endian = endian

    def require(self, offset: int, length: int, what: str) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise CorruptTileError(
                f"TIFF {what} at offset {offset} (+{length} bytes) exceeds "
                f"file size {self.size}",
                kind="torn",
            )

    def u16(self, offset: int, what: str) -> int:
        self.require(offset, 2, what)
        return struct.unpack_from(self.endian + "H", self.buf, offset)[0]

    def u32(self, offset: int, what: str) -> int:
        self.require(offset, 4, what)
        return struct.unpack_from(self.endian + "I", self.buf, offset)[0]

    def bytes_at(self, offset: int, length: int, what: str) -> bytes:
        self.require(offset, length, what)
        return bytes(self.buf[offset : offset + length])


def _read_tag_values(r: _BoundedReader, typ: int, count: int, raw: bytes) -> tuple:
    """Decode one IFD entry's values with full bounds checking."""
    size = _TYPE_SIZE.get(typ)
    if size is None:
        return ()
    total = size * count
    if total <= 4:
        payload = raw[:total]
    else:
        (offset,) = struct.unpack(r.endian + "I", raw)
        payload = r.bytes_at(offset, total, "tag payload")
    try:
        if typ == 2:  # ASCII
            return (payload.rstrip(b"\x00").decode("ascii", "replace"),)
        if typ == 1:  # BYTE
            return tuple(payload)
        if typ == 3:  # SHORT
            return struct.unpack(r.endian + "H" * count, payload)
        if typ == 4:  # LONG
            return struct.unpack(r.endian + "I" * count, payload)
        if typ == 5:  # RATIONAL
            vals = struct.unpack(r.endian + "II" * count, payload)
            return tuple(
                (vals[2 * i] / vals[2 * i + 1]) if vals[2 * i + 1] else 0.0
                for i in range(count)
            )
    except struct.error as exc:
        raise CorruptTileError(f"corrupt TIFF tag payload: {exc}", kind="unreadable") from exc
    return ()


def _parse_page(r: _BoundedReader, ifd_offset: int) -> tuple[_TiffPage, int]:
    """Parse one IFD into a validated page layout; returns (page, next_ifd)."""
    n = r.u16(ifd_offset, "IFD entry count")
    tags: dict[int, tuple] = {}
    pos = ifd_offset + 2
    r.require(pos, 12 * n + 4, "IFD entries")
    for _ in range(n):
        tag, typ, count = struct.unpack_from(r.endian + "HHI", r.buf, pos)
        raw = bytes(r.buf[pos + 8 : pos + 12])
        tags[tag] = _read_tag_values(r, typ, count, raw)
        pos += 12
    next_ifd = r.u32(pos, "next-IFD pointer")

    def one(tag, default=None):
        v = tags.get(tag)
        return v[0] if v else default

    width, height = one(_TAG_WIDTH), one(_TAG_HEIGHT)
    if width is None or height is None:
        raise CorruptTileError("TIFF page missing width/height", kind="unreadable")
    info = TiffPageInfo(
        width=int(width),
        height=int(height),
        bits_per_sample=int(one(_TAG_BITS, 8)),
        samples_per_pixel=int(one(_TAG_SAMPLES_PER_PIXEL, 1)),
        sample_format=int(one(_TAG_SAMPLE_FORMAT, 1)),
        compression=int(one(_TAG_COMPRESSION, 1)),
        description=str(one(_TAG_DESCRIPTION, "")),
        tags=tags,
    )
    if _TAG_XRES in tags and _TAG_YRES in tags and tags[_TAG_XRES] and tags[_TAG_YRES]:
        info.resolution = (float(tags[_TAG_XRES][0]), float(tags[_TAG_YRES][0]))
    if int(one(_TAG_PLANAR, 1)) != 1:
        raise CorruptTileError("planar TIFF not supported", kind="unreadable")
    if info.compression not in (1, 8):
        raise CorruptTileError(
            f"unsupported TIFF compression {info.compression}", kind="unreadable"
        )
    offsets = tags.get(_TAG_STRIP_OFFSETS)
    counts = tags.get(_TAG_STRIP_BYTE_COUNTS)
    if not offsets or not counts or len(offsets) != len(counts):
        raise CorruptTileError("TIFF page missing strip layout", kind="unreadable")
    page = _TiffPage(
        info=info,
        strip_offsets=tuple(int(o) for o in offsets),
        strip_counts=tuple(int(c) for c in counts),
        ifd_offset=ifd_offset,
    )
    return page, next_ifd


class TiffLazyVolume(LazyVolume):
    """A multi-page TIFF stack over ``mmap``; one page per tile.

    The IFD chain is walked once at open time (headers only — strip data is
    untouched until :meth:`read_tile`).  A chain torn mid-file keeps the
    pages whose IFDs parsed and sets ``meta["truncated_tail"]``; a first
    page that does not parse raises :class:`~repro.errors.FormatError`.
    """

    def __init__(self, path: Path | str) -> None:
        self.source_path = os.fspath(path)
        self._fh = open(path, "rb")
        try:
            self._mm: Any = mmap.mmap(self._fh.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as exc:  # zero-byte file cannot be mapped
            self._fh.close()
            raise UnknownFormatError(
                f"{self.source_path!r} is empty (0 bytes)", reason="empty"
            ) from exc
        if len(self._mm) < 8:
            self.close()
            raise FormatError(f"{self.source_path!r} too short to be a TIFF")
        head = bytes(self._mm[:2])
        if head == b"II":
            endian = "<"
        elif head == b"MM":
            endian = ">"
        else:
            self.close()
            raise FormatError("not a TIFF: bad byte-order mark")
        self._r = _BoundedReader(self._mm, endian)
        if self._r.u16(2, "magic") != 42:
            self.close()
            raise FormatError("not a TIFF: magic != 42")

        pages: list[_TiffPage] = []
        truncated = False
        ifd_offset = self._r.u32(4, "first IFD offset")
        seen: set[int] = set()
        while ifd_offset:
            if ifd_offset in seen:
                self.close()
                raise FormatError("TIFF IFD chain loops")
            seen.add(ifd_offset)
            try:
                page, ifd_offset = _parse_page(self._r, ifd_offset)
            except CorruptTileError as exc:
                if not pages:
                    self.close()
                    raise FormatError(
                        f"first TIFF page unreadable in {self.source_path!r}: {exc}"
                    ) from exc
                # A torn tail ate this IFD: keep the surviving prefix.
                truncated = True
                break
            pages.append(page)
        if not pages:
            self.close()
            raise FormatError(f"TIFF {self.source_path!r} contains no pages")

        first = pages[0].info
        if first.samples_per_pixel != 1:
            self.close()
            raise FormatError("lazy TIFF volumes must be single-channel grayscale stacks")
        for i, page in enumerate(pages):
            if (page.info.height, page.info.width) != (first.height, first.width) or (
                page.info.dtype != first.dtype
            ):
                self.close()
                raise FormatError(
                    f"TIFF pages have ragged shapes/dtypes: page {i} is "
                    f"{page.info.height}x{page.info.width} {page.info.dtype}, "
                    f"page 0 is {first.height}x{first.width} {first.dtype}"
                )
        self._pages = pages
        self._endian = endian
        self.shape = (len(pages), first.height, first.width)
        self.dtype = np.dtype(first.dtype)
        voxel_size = None
        if first.resolution is not None and all(first.resolution):
            # Resolution tags carry pixels-per-centimetre; invert to nm.
            voxel_size = (1e7 / first.resolution[0], 1e7 / first.resolution[1])
        self.meta = {
            "format": "tiff",
            "endian": "little" if endian == "<" else "big",
            "bit_depth": first.bits_per_sample,
            "compression": first.compression,
            "description": first.description,
            "pixel_size_nm": list(voxel_size) if voxel_size else None,
            "truncated_tail": truncated,
        }

    def _read_tile_raw(self, z: int) -> np.ndarray:
        page = self._pages[z]
        info = page.info
        n_expected = info.width * info.height
        expected_bytes = n_expected * info.dtype.itemsize
        blob = bytearray()
        short = False
        for off, cnt in zip(page.strip_offsets, page.strip_counts):
            try:
                self._r.require(off, cnt, f"page {z} strip")
            except CorruptTileError:
                # Strip extends past EOF: a torn tail.  Salvage what exists.
                avail = max(0, min(cnt, self._r.size - off)) if off < self._r.size else 0
                blob += self._r.bytes_at(off, avail, "salvage") if avail else b""
                short = True
                continue
            chunk = self._r.bytes_at(off, cnt, f"page {z} strip")
            if info.compression == 8:
                try:
                    chunk = zlib.decompress(chunk)
                except zlib.error as exc:
                    raise CorruptTileError(
                        f"TIFF page {z} has a corrupt zlib stream: {exc}",
                        kind="unreadable",
                        tile=z,
                        path=self.source_path,
                    ) from exc
            blob += chunk
        if short or len(blob) < expected_bytes:
            # Zero-fill the missing tail so degrade mode can salvage.
            salvage = np.zeros(n_expected, dtype=info.dtype)
            got = min(len(blob), expected_bytes) // info.dtype.itemsize
            if got:
                dtype = info.dtype.newbyteorder(self._endian)
                salvage[:got] = np.frombuffer(
                    bytes(blob[: got * info.dtype.itemsize]), dtype=dtype
                ).astype(info.dtype)
            raise CorruptTileError(
                f"TIFF page {z} truncated: {len(blob)} of {expected_bytes} bytes",
                kind="torn",
                tile=z,
                path=self.source_path,
                salvage=salvage.reshape(info.height, info.width),
            )
        dtype = info.dtype.newbyteorder(self._endian)
        arr = np.frombuffer(bytes(blob), dtype=dtype, count=n_expected)
        return arr.astype(info.dtype).reshape(info.height, info.width)

    def close(self) -> None:
        mm = getattr(self, "_mm", None)
        if mm is not None:
            try:
                mm.close()
            except ValueError:  # exported buffers still alive
                pass
            self._mm = None
        fh = getattr(self, "_fh", None)
        if fh is not None and not fh.closed:
            fh.close()


# ---------------------------------------------------------------------------
# Directory-of-slices front end
# ---------------------------------------------------------------------------


class SliceDirectoryVolume(LazyVolume):
    """A directory of per-slice image files, one tile per file (name order)."""

    def __init__(self, path: Path | str) -> None:
        self.source_path = os.fspath(path)
        root = Path(path)
        files = sorted(
            p for p in root.iterdir()
            if p.is_file() and p.suffix.lower() in _SLICE_FILE_SUFFIXES
        )
        if not files:
            raise FormatError(
                f"{self.source_path!r} holds no slice files "
                f"(looked for {', '.join(_SLICE_FILE_SUFFIXES)})"
            )
        self._files = files
        first = self._load_file(0)
        if first.ndim != 2:
            raise FormatError(
                f"slice files must be 2-D grayscale, {files[0].name} has shape {first.shape}"
            )
        self.shape = (len(files), int(first.shape[0]), int(first.shape[1]))
        self.dtype = np.dtype(first.dtype)
        self.meta = {
            "format": "slice_dir",
            "n_files": len(files),
            "first_file": files[0].name,
            "bit_depth": int(first.dtype.itemsize * 8),
        }

    def _load_file(self, z: int) -> np.ndarray:
        from .formats import load_image_file

        path = self._files[z]
        try:
            return np.asarray(load_image_file(path))
        except CorruptTileError as exc:
            raise CorruptTileError(
                str(exc), kind=exc.kind, tile=z, path=os.fspath(path), salvage=exc.salvage
            ) from exc
        except FormatError as exc:
            if not hasattr(self, "shape"):  # first file: no expectation yet
                raise
            # Distinguish a short file (torn transfer) from bad structure.
            try:
                size = path.stat().st_size
            except OSError:
                size = None
            kind = "torn" if size is not None and size < self.tile_nbytes // 4 else "unreadable"
            raise CorruptTileError(
                f"slice file {path.name} unreadable: {exc}",
                kind=kind,
                tile=z,
                path=os.fspath(path),
            ) from exc

    def _read_tile_raw(self, z: int) -> np.ndarray:
        tile = self._load_file(z)
        if tile.shape != self.tile_shape or tile.dtype != self.dtype:
            raise CorruptTileError(
                f"slice file {self._files[z].name} is {tile.shape} {tile.dtype}, "
                f"volume is {self.tile_shape} {self.dtype}",
                kind="unreadable",
                tile=z,
                path=os.fspath(self._files[z]),
            )
        return tile

    def tile_path(self, z: int) -> Path:
        return self._files[int(z)]


# ---------------------------------------------------------------------------
# Raw .npy / memmap front end
# ---------------------------------------------------------------------------


class NpyLazyVolume(LazyVolume):
    """A raw ``.npy`` 3-D volume, tiles sliced out of a read-only memmap."""

    def __init__(self, path: Path | str) -> None:
        self.source_path = os.fspath(path)
        try:
            with open(path, "rb") as fh:
                version = np.lib.format.read_magic(fh)
                if version == (1, 0):
                    header = np.lib.format.read_array_header_1_0(fh)
                elif version == (2, 0):
                    header = np.lib.format.read_array_header_2_0(fh)
                else:
                    raise FormatError(f"unsupported .npy format version {version}")
                header_shape, fortran, dtype = header
                self._data_offset = fh.tell()
        except (ValueError, OSError) as exc:
            raise FormatError(f"{self.source_path!r} is not a valid .npy file: {exc}") from exc
        if fortran:
            raise FormatError("Fortran-order .npy volumes are not supported for streaming")
        if len(header_shape) != 3:
            raise FormatError(
                f".npy volume must be 3-D (Z, Y, X), got shape {tuple(header_shape)}"
            )
        if dtype.hasobject:
            raise FormatError("object-dtype .npy volumes are not supported")
        self.shape = tuple(int(s) for s in header_shape)  # type: ignore[assignment]
        self.dtype = np.dtype(dtype.newbyteorder("="))
        self._file_dtype = np.dtype(dtype)
        self._size = os.path.getsize(path)
        self.meta = {
            "format": "npy",
            "bit_depth": int(self.dtype.itemsize * 8),
            "data_offset": int(self._data_offset),
            "truncated_tail": self._size
            < self._data_offset + self.tile_nbytes * self.shape[0],
        }
        # Map exactly the whole samples present: a torn tail may end
        # mid-sample, which shape=None would reject with a ValueError.
        n_items = max(0, (self._size - self._data_offset) // self._file_dtype.itemsize)
        if n_items == 0:
            raise FormatError(f"{self.source_path!r} holds a header but no samples")
        self._mm = np.memmap(
            path, dtype=self._file_dtype, mode="r", offset=self._data_offset, shape=(n_items,)
        )

    def _read_tile_raw(self, z: int) -> np.ndarray:
        n = self.shape[1] * self.shape[2]
        start = z * n
        avail = int(self._mm.shape[0])
        if start + n > avail:
            got = max(0, avail - start)
            salvage = np.zeros(n, dtype=self.dtype)
            if got:
                salvage[:got] = np.asarray(self._mm[start : start + got]).astype(self.dtype)
            raise CorruptTileError(
                f".npy tile {z} truncated: {got} of {n} samples present",
                kind="torn",
                tile=z,
                path=self.source_path,
                salvage=salvage.reshape(self.tile_shape),
            )
        tile = np.asarray(self._mm[start : start + n]).astype(self.dtype)
        return tile.reshape(self.tile_shape)

    def close(self) -> None:
        mm = getattr(self, "_mm", None)
        if mm is not None:
            del self._mm
            self._mm = None


# ---------------------------------------------------------------------------
# In-memory wrapper (uniform code path for tests and the platform)
# ---------------------------------------------------------------------------


@dataclass
class ArrayLazyVolume(LazyVolume):
    """Wrap an in-memory array behind the LazyVolume protocol."""

    array: np.ndarray
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        arr = np.asarray(self.array)
        if arr.ndim != 3:
            raise ValidationError(f"ArrayLazyVolume needs a 3-D array, got {arr.shape}")
        self.array = arr
        self.shape = tuple(int(s) for s in arr.shape)  # type: ignore[assignment]
        self.dtype = arr.dtype
        self.meta = {"format": "array", **self.meta}
        self.source_path = None

    def _read_tile_raw(self, z: int) -> np.ndarray:
        return np.array(self.array[z], copy=True)


# ---------------------------------------------------------------------------
# Dispatcher
# ---------------------------------------------------------------------------


def open_lazy_volume(path: Path | str) -> LazyVolume:
    """Open any supported source as a :class:`LazyVolume`.

    Directories become :class:`SliceDirectoryVolume`; files are sniffed by
    magic bytes (never extension).  Unsupported or empty content raises a
    structured :class:`~repro.errors.UnknownFormatError`.
    """
    p = Path(path)
    if p.is_dir():
        return SliceDirectoryVolume(p)
    if not p.exists():
        raise FormatError(f"no such volume source: {os.fspath(p)!r}")
    from .formats import sniff_format

    fmt = sniff_format(p)
    if fmt == "tiff":
        return TiffLazyVolume(p)
    if fmt == "npy":
        return NpyLazyVolume(p)
    raise UnknownFormatError(
        f"{os.fspath(p)!r} is a {fmt} file; streaming ingestion supports "
        "multi-page TIFF stacks, .npy volumes, and slice directories",
        reason="unstreamable",
    )
