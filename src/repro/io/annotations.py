"""COCO-style annotation export/import for segmentation results.

Lets masks produced here flow into the wider SAM tooling ecosystem: the
export is a single JSON document with ``images``, ``annotations`` (RLE
segmentation + XYXY bbox + area), and ``categories`` — the subset of the
COCO schema mask consumers rely on.
"""

from __future__ import annotations

import json

import numpy as np

from ..core.boxes import mask_to_box
from ..core.masks import rle_decode, rle_encode
from ..errors import FormatError

__all__ = ["export_annotations", "import_annotations"]

_SCHEMA_NOTE = "repro-zenesis-annotations-v1"


def export_annotations(
    path,
    masks: dict[str, np.ndarray] | list[np.ndarray],
    *,
    image_name: str = "image",
    category: str = "catalyst",
    metadata: dict | None = None,
) -> dict:
    """Write masks as a COCO-style JSON document; returns the document.

    ``masks`` is either {annotation_name: mask} or a list of masks (named
    ``region_<i>``).  All masks must share one shape (one image).
    """
    if isinstance(masks, list):
        masks = {f"region_{i}": m for i, m in enumerate(masks)}
    if not masks:
        raise FormatError("export_annotations needs at least one mask")
    shapes = {np.asarray(m).shape for m in masks.values()}
    if len(shapes) != 1:
        raise FormatError(f"masks must share one shape, got {sorted(shapes)}")
    h, w = shapes.pop()

    annotations = []
    for i, (name, mask) in enumerate(masks.items(), start=1):
        m = np.asarray(mask, dtype=bool)
        bbox = mask_to_box(m)
        annotations.append(
            {
                "id": i,
                "image_id": 1,
                "category_id": 1,
                "name": name,
                "segmentation": rle_encode(m),
                "bbox": bbox.tolist() if bbox is not None else None,
                "area": int(m.sum()),
                "iscrowd": 0,
            }
        )
    document = {
        "info": {"description": _SCHEMA_NOTE, **(metadata or {})},
        "images": [{"id": 1, "file_name": image_name, "height": int(h), "width": int(w)}],
        "categories": [{"id": 1, "name": category}],
        "annotations": annotations,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
    return document


def import_annotations(path) -> dict[str, np.ndarray]:
    """Read a document written by :func:`export_annotations`; returns
    {annotation_name: boolean mask}."""
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    try:
        annotations = document["annotations"]
    except (TypeError, KeyError) as exc:
        raise FormatError(f"{path!r} is not an annotation document") from exc
    out: dict[str, np.ndarray] = {}
    for i, ann in enumerate(annotations):
        try:
            mask = rle_decode(ann["segmentation"])
        except (KeyError, TypeError) as exc:
            raise FormatError(f"annotation {i} has no valid RLE segmentation") from exc
        out[ann.get("name", f"region_{i}")] = mask
    return out
