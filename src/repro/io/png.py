"""A from-scratch PNG codec on top of stdlib :mod:`zlib`.

Scope: the subset of PNG that scientific grayscale/RGB data needs —
bit depths 8 and 16; color types grayscale (0), RGB (2), and RGBA (6);
non-interlaced.  The encoder emits filter type 0 (None) rows for simplicity
and determinism; the decoder understands all five standard filters so files
from other writers load too.

PNG is big-endian for 16-bit samples; arrays round-trip with native dtypes.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..errors import CodecError, FormatError, ValidationError

__all__ = ["write_png", "read_png", "encode_png", "decode_png", "PNG_SIGNATURE"]

PNG_SIGNATURE = b"\x89PNG\r\n\x1a\n"

_COLOR_GRAY = 0
_COLOR_RGB = 2
_COLOR_RGBA = 6
_CHANNELS = {_COLOR_GRAY: 1, _COLOR_RGB: 3, _COLOR_RGBA: 4}


def _chunk(tag: bytes, payload: bytes) -> bytes:
    return (
        struct.pack(">I", len(payload))
        + tag
        + payload
        + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
    )


def _classify(image: np.ndarray) -> tuple[int, int, np.ndarray]:
    """Return (color_type, bit_depth, normalised array) for ``image``."""
    arr = np.asarray(image)
    if arr.ndim == 2:
        color = _COLOR_GRAY
    elif arr.ndim == 3 and arr.shape[2] == 3:
        color = _COLOR_RGB
    elif arr.ndim == 3 and arr.shape[2] == 4:
        color = _COLOR_RGBA
    else:
        raise ValidationError(f"PNG encoder needs HxW, HxWx3 or HxWx4 array, got shape {arr.shape}")
    if arr.dtype == np.uint8:
        depth = 8
    elif arr.dtype == np.uint16:
        depth = 16
    else:
        raise ValidationError(f"PNG encoder needs uint8 or uint16 data, got {arr.dtype}")
    return color, depth, arr


def encode_png(image: np.ndarray, *, compress_level: int = 6) -> bytes:
    """Encode an array as PNG bytes."""
    color, depth, arr = _classify(image)
    h, w = arr.shape[:2]
    if depth == 16:
        raw = arr.astype(">u2").tobytes()
    else:
        raw = arr.astype(np.uint8).tobytes()
    stride = w * _CHANNELS[color] * (depth // 8)
    # Prefix every scanline with filter byte 0 (None).
    rows = bytearray()
    for y in range(h):
        rows.append(0)
        rows += raw[y * stride : (y + 1) * stride]
    ihdr = struct.pack(">IIBBBBB", w, h, depth, color, 0, 0, 0)
    idat = zlib.compress(bytes(rows), compress_level)
    return PNG_SIGNATURE + _chunk(b"IHDR", ihdr) + _chunk(b"IDAT", idat) + _chunk(b"IEND", b"")


def write_png(path, image: np.ndarray, *, compress_level: int = 6) -> None:
    """Write ``image`` to ``path`` as a PNG file."""
    with open(path, "wb") as fh:
        fh.write(encode_png(image, compress_level=compress_level))


def _unfilter(data: bytes, h: int, w: int, channels: int, depth: int) -> np.ndarray:
    """Reverse PNG scanline filtering (types 0-4) into a sample array."""
    bpp = channels * (depth // 8)  # bytes per pixel
    stride = w * bpp
    out = np.zeros((h, stride), dtype=np.uint8)
    pos = 0
    prev = np.zeros(stride, dtype=np.int32)
    for y in range(h):
        ftype = data[pos]
        pos += 1
        line = np.frombuffer(data, dtype=np.uint8, count=stride, offset=pos).astype(np.int32)
        pos += stride
        if ftype == 0:  # None
            cur = line
        elif ftype == 1:  # Sub
            cur = line.copy()
            for i in range(bpp, stride):
                cur[i] = (cur[i] + cur[i - bpp]) & 0xFF
        elif ftype == 2:  # Up
            cur = (line + prev) & 0xFF
        elif ftype == 3:  # Average
            cur = line.copy()
            for i in range(stride):
                left = cur[i - bpp] if i >= bpp else 0
                cur[i] = (cur[i] + ((left + prev[i]) >> 1)) & 0xFF
        elif ftype == 4:  # Paeth
            cur = line.copy()
            for i in range(stride):
                a = cur[i - bpp] if i >= bpp else 0
                b = prev[i]
                c = prev[i - bpp] if i >= bpp else 0
                p = a + b - c
                pa, pb, pc = abs(p - a), abs(p - b), abs(p - c)
                pred = a if (pa <= pb and pa <= pc) else (b if pb <= pc else c)
                cur[i] = (cur[i] + pred) & 0xFF
        else:
            raise CodecError(f"unknown PNG filter type {ftype}")
        out[y] = cur.astype(np.uint8)
        prev = cur
    return out


def decode_png(data: bytes) -> np.ndarray:
    """Decode PNG bytes into a uint8/uint16 array (HxW or HxWxC)."""
    if data[:8] != PNG_SIGNATURE:
        raise FormatError("not a PNG: bad signature")
    pos = 8
    ihdr = None
    idat = bytearray()
    while pos + 8 <= len(data):
        (length,) = struct.unpack(">I", data[pos : pos + 4])
        tag = data[pos + 4 : pos + 8]
        payload = data[pos + 8 : pos + 8 + length]
        pos += 12 + length
        if tag == b"IHDR":
            ihdr = struct.unpack(">IIBBBBB", payload)
        elif tag == b"IDAT":
            idat += payload
        elif tag == b"IEND":
            break
    if ihdr is None:
        raise FormatError("PNG missing IHDR chunk")
    w, h, depth, color, comp, filt, interlace = ihdr
    if comp != 0 or filt != 0:
        raise CodecError("unsupported PNG compression/filter method")
    if interlace != 0:
        raise CodecError("interlaced PNG not supported")
    if color not in _CHANNELS:
        raise CodecError(f"unsupported PNG color type {color}")
    if depth not in (8, 16):
        raise CodecError(f"unsupported PNG bit depth {depth}")
    channels = _CHANNELS[color]
    raw = zlib.decompress(bytes(idat))
    expected = h * (1 + w * channels * (depth // 8))
    if len(raw) < expected:
        raise FormatError(f"PNG pixel data truncated: {len(raw)} < {expected}")
    flat = _unfilter(raw, h, w, channels, depth)
    if depth == 16:
        arr = flat.reshape(h, -1).view(">u2").astype(np.uint16)
        arr = arr.reshape(h, w, channels)
    else:
        arr = flat.reshape(h, w, channels)
    if channels == 1:
        arr = arr[:, :, 0]
    return arr


def read_png(path) -> np.ndarray:
    """Read a PNG file into an array."""
    with open(path, "rb") as fh:
        return decode_png(fh.read())
