"""A from-scratch baseline TIFF codec.

FIB-SEM instruments ship volumes as multi-page TIFF stacks with unusual
sample formats (8/16/32-bit unsigned, 32-bit float), which is exactly the
"non-AI-ready" input the paper targets.  This module implements:

* **Writer** — little-endian baseline TIFF, one strip per page, uncompressed
  or zlib ("Deflate", tag value 8) compressed; grayscale ``uint8``/``uint16``/
  ``uint32``/``float32`` and RGB ``uint8``; multi-page stacks for volumes;
  optional X/Y resolution tags carrying the voxel size.
* **Reader** — both byte orders, strips (any strip layout), compression 1
  (none) and 8 (zlib), PlanarConfiguration 1, the sample formats above.

Only the features the library needs are implemented, but malformed input is
diagnosed with specific errors rather than silent garbage.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import CodecError, FormatError, ValidationError

__all__ = ["write_tiff", "read_tiff", "read_tiff_pages", "TiffPageInfo"]

# TIFF tag ids used by this codec.
_TAG_WIDTH = 256
_TAG_HEIGHT = 257
_TAG_BITS = 258
_TAG_COMPRESSION = 259
_TAG_PHOTOMETRIC = 262
_TAG_DESCRIPTION = 270
_TAG_STRIP_OFFSETS = 273
_TAG_SAMPLES_PER_PIXEL = 277
_TAG_ROWS_PER_STRIP = 278
_TAG_STRIP_BYTE_COUNTS = 279
_TAG_XRES = 282
_TAG_YRES = 283
_TAG_PLANAR = 284
_TAG_RES_UNIT = 296
_TAG_SAMPLE_FORMAT = 339

_TYPE_BYTE = 1
_TYPE_ASCII = 2
_TYPE_SHORT = 3
_TYPE_LONG = 4
_TYPE_RATIONAL = 5

_TYPE_SIZE = {_TYPE_BYTE: 1, _TYPE_ASCII: 1, _TYPE_SHORT: 2, _TYPE_LONG: 4, _TYPE_RATIONAL: 8}

_SF_UINT = 1
_SF_FLOAT = 3


@dataclass
class TiffPageInfo:
    """Decoded metadata for one TIFF page (IFD)."""

    width: int
    height: int
    bits_per_sample: int
    samples_per_pixel: int
    sample_format: int
    compression: int
    description: str = ""
    resolution: tuple[float, float] | None = None  # pixels per unit (x, y)
    tags: dict[int, tuple] = field(default_factory=dict)

    @property
    def dtype(self) -> np.dtype:
        if self.sample_format == _SF_FLOAT:
            if self.bits_per_sample == 32:
                return np.dtype(np.float32)
            if self.bits_per_sample == 64:
                return np.dtype(np.float64)
            raise CodecError(f"unsupported float bit depth {self.bits_per_sample}")
        if self.bits_per_sample == 8:
            return np.dtype(np.uint8)
        if self.bits_per_sample == 16:
            return np.dtype(np.uint16)
        if self.bits_per_sample == 32:
            return np.dtype(np.uint32)
        raise CodecError(f"unsupported integer bit depth {self.bits_per_sample}")


def _page_dtype_fields(arr: np.ndarray) -> tuple[int, int, int]:
    """Map an array dtype to (bits, sample_format, photometric-ish samples)."""
    if arr.dtype == np.uint8:
        return 8, _SF_UINT, 1
    if arr.dtype == np.uint16:
        return 16, _SF_UINT, 1
    if arr.dtype == np.uint32:
        return 32, _SF_UINT, 1
    if arr.dtype == np.float32:
        return 32, _SF_FLOAT, 1
    raise ValidationError(
        f"TIFF writer supports uint8/uint16/uint32/float32 (and uint8 RGB), got {arr.dtype}"
    )


def _normalise_pages(image: np.ndarray) -> list[np.ndarray]:
    arr = np.asarray(image)
    if arr.ndim == 2:
        return [arr]
    if arr.ndim == 3 and arr.shape[2] in (3, 4) and arr.dtype == np.uint8 and arr.shape[0] > 4:
        return [arr]  # single RGB(A) page
    if arr.ndim == 3:
        return [arr[i] for i in range(arr.shape[0])]  # volume: one page per slice
    if arr.ndim == 4 and arr.shape[3] == 3:
        return [arr[i] for i in range(arr.shape[0])]
    raise ValidationError(f"cannot interpret array of shape {arr.shape} as TIFF pages")


def write_tiff(
    path,
    image: np.ndarray,
    *,
    compress: bool = False,
    description: str = "",
    resolution: tuple[float, float] | None = None,
) -> None:
    """Write a 2-D image, RGB image, or 3-D volume as a (multi-page) TIFF.

    ``resolution`` is (x, y) pixels-per-centimetre, carrying voxel size into
    the file the way FIB-SEM vendor software does.
    """
    pages = _normalise_pages(image)
    with open(path, "wb") as fh:
        fh.write(b"II*\x00")  # little-endian magic + version 42
        fh.write(struct.pack("<I", 0))  # placeholder for first IFD offset
        next_ifd_ptr_pos = 4
        for page in pages:
            ifd_offset = _write_page(fh, page, compress, description, resolution)
            # Patch the previous IFD-chain pointer to this page's IFD.
            end = fh.tell()
            fh.seek(next_ifd_ptr_pos)
            fh.write(struct.pack("<I", ifd_offset))
            fh.seek(end)
            next_ifd_ptr_pos = ifd_offset + 2 + 12 * _entry_count(page, description, resolution)


def _entry_count(page: np.ndarray, description: str, resolution) -> int:
    n = 10  # width, height, bits, compression, photometric, offsets, spp, rps, counts, sampleformat
    if description:
        n += 1
    if resolution is not None:
        n += 3  # xres, yres, unit
    return n


def _write_page(fh, page: np.ndarray, compress: bool, description: str, resolution) -> int:
    rgb = page.ndim == 3
    if rgb:
        if page.dtype != np.uint8 or page.shape[2] not in (3,):
            raise ValidationError("RGB TIFF pages must be uint8 HxWx3")
        bits, sample_format, spp = 8, _SF_UINT, 3
    else:
        bits, sample_format, spp = _page_dtype_fields(page)
    h, w = page.shape[:2]
    raw = np.ascontiguousarray(page).tobytes()
    data = zlib.compress(raw) if compress else raw
    data_offset = fh.tell()
    fh.write(data)
    if fh.tell() % 2:
        fh.write(b"\x00")  # word-align the IFD

    extra: dict[int, bytes] = {}  # tag -> out-of-line payload

    entries: list[tuple[int, int, int, bytes | None]] = []

    def entry(tag: int, typ: int, count: int, value: int | bytes):
        if isinstance(value, int):
            if typ == _TYPE_SHORT:
                packed = struct.pack("<HH", value, 0)
            else:
                packed = struct.pack("<I", value)
            entries.append((tag, typ, count, packed))
        else:
            if len(value) <= 4:
                entries.append((tag, typ, count, value.ljust(4, b"\x00")))
            else:
                entries.append((tag, typ, count, None))
                extra[tag] = value

    entry(_TAG_WIDTH, _TYPE_LONG, 1, w)
    entry(_TAG_HEIGHT, _TYPE_LONG, 1, h)
    entry(_TAG_BITS, _TYPE_SHORT, 1, bits)
    entry(_TAG_COMPRESSION, _TYPE_SHORT, 1, 8 if compress else 1)
    entry(_TAG_PHOTOMETRIC, _TYPE_SHORT, 1, 2 if rgb else 1)  # RGB or BlackIsZero
    if description:
        entry(_TAG_DESCRIPTION, _TYPE_ASCII, len(description) + 1, description.encode("ascii") + b"\x00")
    entry(_TAG_STRIP_OFFSETS, _TYPE_LONG, 1, data_offset)
    entry(_TAG_SAMPLES_PER_PIXEL, _TYPE_SHORT, 1, spp)
    entry(_TAG_ROWS_PER_STRIP, _TYPE_LONG, 1, h)
    entry(_TAG_STRIP_BYTE_COUNTS, _TYPE_LONG, 1, len(data))
    if resolution is not None:
        def _rational(value: float) -> bytes:
            # Largest power-of-ten denominator keeping the numerator in uint32.
            denom = 10000
            while denom > 1 and value * denom > 0xFFFFFFFF:
                denom //= 10
            return struct.pack("<II", int(round(value * denom)), denom)

        xres, yres = resolution
        entry(_TAG_XRES, _TYPE_RATIONAL, 1, _rational(xres))
        entry(_TAG_YRES, _TYPE_RATIONAL, 1, _rational(yres))
        entry(_TAG_RES_UNIT, _TYPE_SHORT, 1, 3)  # centimetre
    entry(_TAG_SAMPLE_FORMAT, _TYPE_SHORT, 1, sample_format)

    entries.sort(key=lambda e: e[0])
    ifd_offset = fh.tell()
    ifd_size = 2 + 12 * len(entries) + 4
    # Out-of-line payloads go right after the IFD.
    payload_offset = ifd_offset + ifd_size
    payload_blob = bytearray()
    resolved: list[bytes] = []
    for tag, typ, count, packed in entries:
        if packed is None:
            payload = extra[tag]
            addr = payload_offset + len(payload_blob)
            payload_blob += payload
            if len(payload_blob) % 2:
                payload_blob += b"\x00"
            resolved.append(struct.pack("<HHI", tag, typ, count) + struct.pack("<I", addr))
        else:
            resolved.append(struct.pack("<HHI", tag, typ, count) + packed)
    fh.write(struct.pack("<H", len(entries)))
    for r in resolved:
        fh.write(r)
    fh.write(struct.pack("<I", 0))  # next-IFD pointer; patched by caller for stacks
    fh.write(bytes(payload_blob))
    return ifd_offset


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------


def _read_value(data: bytes, endian: str, typ: int, count: int, raw: bytes) -> tuple:
    size = _TYPE_SIZE.get(typ)
    if size is None:
        return ()
    total = size * count
    if total <= 4:
        payload = raw[:total]
    else:
        (offset,) = struct.unpack(endian + "I", raw)
        payload = data[offset : offset + total]
        if len(payload) < total:
            raise FormatError("TIFF tag payload out of bounds")
    if typ == _TYPE_ASCII:
        return (payload.rstrip(b"\x00").decode("ascii", "replace"),)
    if typ == _TYPE_BYTE:
        return tuple(payload)
    if typ == _TYPE_SHORT:
        return struct.unpack(endian + "H" * count, payload)
    if typ == _TYPE_LONG:
        return struct.unpack(endian + "I" * count, payload)
    if typ == _TYPE_RATIONAL:
        vals = struct.unpack(endian + "II" * count, payload)
        return tuple(
            (vals[2 * i] / vals[2 * i + 1]) if vals[2 * i + 1] else 0.0 for i in range(count)
        )
    return ()


def _parse_ifd(data: bytes, endian: str, offset: int) -> tuple[dict[int, tuple], int]:
    if offset < 0 or offset + 2 > len(data):
        raise FormatError("TIFF IFD offset out of bounds")
    (n,) = struct.unpack_from(endian + "H", data, offset)
    pos = offset + 2
    if pos + 12 * n + 4 > len(data):
        # The IFD table itself runs past EOF: a truncated tail.
        raise FormatError(
            f"TIFF IFD at offset {offset} declares {n} entries but the file "
            f"ends at {len(data)} bytes (truncated?)"
        )
    tags: dict[int, tuple] = {}
    for _ in range(n):
        tag, typ, count = struct.unpack_from(endian + "HHI", data, pos)
        raw = data[pos + 8 : pos + 12]
        try:
            tags[tag] = _read_value(data, endian, typ, count, raw)
        except struct.error as exc:
            raise FormatError(f"corrupt TIFF tag {tag}") from exc
        pos += 12
    (next_ifd,) = struct.unpack_from(endian + "I", data, pos)
    return tags, next_ifd


def _decode_page(data: bytes, endian: str, tags: dict[int, tuple]) -> tuple[np.ndarray, TiffPageInfo]:
    def one(tag, default=None):
        v = tags.get(tag)
        return v[0] if v else default

    width = one(_TAG_WIDTH)
    height = one(_TAG_HEIGHT)
    if width is None or height is None:
        raise FormatError("TIFF page missing width/height")
    info = TiffPageInfo(
        width=int(width),
        height=int(height),
        bits_per_sample=int(one(_TAG_BITS, 8)),
        samples_per_pixel=int(one(_TAG_SAMPLES_PER_PIXEL, 1)),
        sample_format=int(one(_TAG_SAMPLE_FORMAT, _SF_UINT)),
        compression=int(one(_TAG_COMPRESSION, 1)),
        description=str(one(_TAG_DESCRIPTION, "")),
        tags=tags,
    )
    if _TAG_XRES in tags and _TAG_YRES in tags:
        info.resolution = (float(tags[_TAG_XRES][0]), float(tags[_TAG_YRES][0]))
    if int(one(_TAG_PLANAR, 1)) != 1:
        raise CodecError("planar TIFF not supported")
    if info.compression not in (1, 8):
        raise CodecError(f"unsupported TIFF compression {info.compression}")
    offsets = tags.get(_TAG_STRIP_OFFSETS)
    counts = tags.get(_TAG_STRIP_BYTE_COUNTS)
    if not offsets or not counts or len(offsets) != len(counts):
        raise FormatError("TIFF page missing strip layout")
    blob = bytearray()
    for off, cnt in zip(offsets, counts):
        chunk = data[off : off + cnt]
        if len(chunk) < cnt:
            raise FormatError("TIFF strip out of bounds")
        if info.compression == 8:
            try:
                chunk = zlib.decompress(chunk)
            except zlib.error as exc:
                raise FormatError(f"corrupt TIFF strip (zlib): {exc}") from exc
        blob += chunk
    dtype = info.dtype.newbyteorder("<" if endian == "<" else ">")
    n_expected = info.width * info.height * info.samples_per_pixel
    if len(blob) < n_expected * dtype.itemsize:
        raise FormatError(
            f"TIFF page holds {len(blob)} bytes of pixel data, "
            f"needs {n_expected * dtype.itemsize}"
        )
    arr = np.frombuffer(bytes(blob), dtype=dtype, count=n_expected)
    arr = arr.astype(info.dtype)  # native byte order
    if info.samples_per_pixel == 1:
        arr = arr.reshape(info.height, info.width)
    else:
        arr = arr.reshape(info.height, info.width, info.samples_per_pixel)
    return arr, info


def read_tiff_pages(path) -> list[tuple[np.ndarray, TiffPageInfo]]:
    """Read every page of a TIFF file as (array, info) pairs."""
    with open(path, "rb") as fh:
        data = fh.read()
    if len(data) < 8:
        raise FormatError("file too short to be a TIFF")
    if data[:2] == b"II":
        endian = "<"
    elif data[:2] == b"MM":
        endian = ">"
    else:
        raise FormatError("not a TIFF: bad byte-order mark")
    (magic,) = struct.unpack_from(endian + "H", data, 2)
    if magic != 42:
        raise FormatError(f"not a TIFF: magic {magic} != 42")
    (ifd_offset,) = struct.unpack_from(endian + "I", data, 4)
    pages = []
    seen = set()
    while ifd_offset:
        if ifd_offset in seen:
            raise FormatError("TIFF IFD chain loops")
        seen.add(ifd_offset)
        tags, ifd_offset = _parse_ifd(data, endian, ifd_offset)
        pages.append(_decode_page(data, endian, tags))
    if not pages:
        raise FormatError("TIFF contains no pages")
    return pages


def read_tiff(path) -> np.ndarray:
    """Read a TIFF as a single array: 2-D for one page, 3-D stack otherwise."""
    pages = read_tiff_pages(path)
    arrays = [a for a, _ in pages]
    if len(arrays) == 1:
        return arrays[0]
    shapes = {a.shape for a in arrays}
    dtypes = {a.dtype for a in arrays}
    if len(shapes) != 1 or len(dtypes) != 1:
        raise FormatError("TIFF pages have heterogeneous shapes/dtypes; use read_tiff_pages")
    return np.stack(arrays, axis=0)
