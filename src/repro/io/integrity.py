"""Ingestion failure model: validation, retries, quarantine, degrade policies.

A :class:`LazyVolume` knows how to *read* a tile; this module decides what
happens when that read goes wrong on real instrument data.  The pieces:

* **Checksum sidecar** — ``write_sidecar`` records a per-tile sha256
  manifest next to the source (``<file>.sha256.json``, or
  ``.sha256.json`` inside a slice directory).  With a sidecar present,
  :class:`TileStream` verifies every tile it hands out, which is the only
  way to *detect* silent bit rot (a flipped bit usually still decodes).
* **Classification** — failures surface as
  :class:`~repro.errors.CorruptTileError` with ``kind``:
  ``torn`` (file ends early), ``flip`` (decodes but checksum disagrees),
  ``unreadable`` (malformed metadata/encoding).
* **Policy** — :class:`IngestPolicy` decides the response per tile:
  ``fail`` aborts the run, ``skip`` substitutes a zero tile, ``degrade``
  uses the best salvage available (zero-filled torn tail, the mismatching
  decode for a flip).  Skip and degrade both record the slice as degraded
  so the run manifest tells the truth about what was segmented.
* **Retry** — transient ``OSError`` (NFS hiccup, USB re-enumeration) is
  retried with bounded exponential backoff before being treated as corrupt.
* **Quarantine** — corrupt tile bytes are copied into a ``.bad/`` directory
  beside the source (the PR 2 disk-cache convention) with a small report,
  so the original evidence survives triage.
* **Prefetch** — :class:`Prefetcher` reads ahead on a worker thread into a
  queue bounded by ``memory_budget_bytes``, and tracks the maximum bytes
  simultaneously resident so streaming tests can assert the ceiling
  structurally rather than trusting RSS.

Fault kinds ``io_transient`` / ``io_torn`` / ``io_flip`` (see
:mod:`repro.resilience.faults`) inject each failure class at the fetch
boundary without touching bytes on disk.
"""

from __future__ import annotations

import json
import os
import queue
import shutil
import threading
import time
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Any, Callable, Iterator

import numpy as np

from ..errors import CorruptTileError, RetryExhaustedError, ValidationError
from ..observability.metrics import get_registry
from ..observability.trace import trace
from ..resilience.events import record_event
from ..resilience.faults import get_fault_plan
from ..resilience.policy import RetryPolicy
from .lazy import LazyVolume, SliceDirectoryVolume

__all__ = [
    "IngestPolicy",
    "TileStream",
    "Prefetcher",
    "sidecar_path",
    "write_sidecar",
    "load_sidecar",
    "verify_volume",
]

_SIDECAR_NAME = ".sha256.json"
_ON_CORRUPT = ("fail", "skip", "degrade")


@dataclass(frozen=True)
class IngestPolicy:
    """How a streaming run responds to bad tiles and slow disks.

    ``memory_budget_bytes`` bounds the decoded tiles simultaneously resident
    in the prefetch window — the knob that makes "volume ≫ RAM" safe.
    """

    on_corrupt: str = "fail"
    max_attempts: int = 3
    backoff_s: float = 0.05
    memory_budget_bytes: int = 64 * 1024 * 1024
    verify_checksums: bool | None = None  # None: verify iff a sidecar exists
    quarantine: bool = True
    quarantine_dir: str | None = None

    def __post_init__(self) -> None:
        if self.on_corrupt not in _ON_CORRUPT:
            raise ValidationError(
                f"on_corrupt must be one of {_ON_CORRUPT}, got {self.on_corrupt!r}"
            )
        if self.max_attempts < 1:
            raise ValidationError("max_attempts must be >= 1")
        if self.memory_budget_bytes < 1:
            raise ValidationError("memory_budget_bytes must be positive")

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_attempts=self.max_attempts,
            base_delay_s=self.backoff_s,
            max_delay_s=max(self.backoff_s * 8, self.backoff_s),
            retry_on=(OSError,),
        )


# ---------------------------------------------------------------------------
# Checksum sidecar manifest
# ---------------------------------------------------------------------------


def sidecar_path(source: Path | str) -> Path:
    """Where the checksum manifest for ``source`` lives."""
    p = Path(source)
    if p.is_dir():
        return p / _SIDECAR_NAME
    return p.with_name(p.name + _SIDECAR_NAME)


def tile_checksum(tile_bytes: bytes) -> str:
    return sha256(tile_bytes).hexdigest()


def write_sidecar(volume: LazyVolume, path: Path | str | None = None) -> Path:
    """Checksum every tile of ``volume`` and write the sidecar manifest.

    One streaming pass; O(tile) memory.  Checksums are taken over the
    *decoded* native-order tile bytes, so they survive a lossless re-export
    between front ends (TIFF stack → slice directory → ``.npy``).
    """
    if path is None:
        if volume.source_path is None:
            raise ValidationError("write_sidecar needs a path for in-memory volumes")
        path = sidecar_path(volume.source_path)
    manifest = {
        "algo": "sha256",
        "shape": [int(s) for s in volume.shape],
        "dtype": str(volume.dtype),
        "tiles": [tile_checksum(volume.tile_bytes(z)) for z in range(volume.n_tiles)],
    }
    out = Path(path)
    tmp = out.with_name(out.name + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=1))
    os.replace(tmp, out)
    return out


def load_sidecar(source: Path | str) -> dict[str, Any] | None:
    """The parsed sidecar manifest for ``source``, or None if absent/unusable."""
    path = sidecar_path(source)
    try:
        manifest = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict) or not isinstance(manifest.get("tiles"), list):
        return None
    return manifest


def verify_volume(
    volume: LazyVolume, manifest: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Verify every tile of ``volume``; the ``repro io verify`` engine.

    Returns a report: per-tile status plus counts.  Never raises on corrupt
    tiles — verification's whole job is to enumerate them.
    """
    if manifest is None and volume.source_path is not None:
        manifest = load_sidecar(volume.source_path)
    expected = manifest.get("tiles") if manifest else None
    tiles: list[dict[str, Any]] = []
    counts = {"ok": 0, "torn": 0, "flip": 0, "unreadable": 0}
    for z in range(volume.n_tiles):
        try:
            blob = volume.tile_bytes(z)
        except CorruptTileError as exc:
            kind = exc.kind if exc.kind in counts else "unreadable"
            counts[kind] += 1
            tiles.append({"tile": z, "status": kind, "error": str(exc)})
            continue
        if expected is not None and z < len(expected) and tile_checksum(blob) != expected[z]:
            counts["flip"] += 1
            tiles.append({"tile": z, "status": "flip", "error": "checksum mismatch"})
            continue
        counts["ok"] += 1
        tiles.append({"tile": z, "status": "ok"})
    # A torn tail can drop whole trailing pages from the container's index
    # (e.g. a truncated TIFF whose last IFD fell past EOF): every surviving
    # tile then verifies clean while the volume has silently shrunk.  The
    # sidecar pins the expected tile count, so report the missing tail as
    # torn rather than calling the shrunken volume ok.
    if expected is not None:
        for z in range(volume.n_tiles, len(expected)):
            counts["torn"] += 1
            tiles.append(
                {
                    "tile": z,
                    "status": "torn",
                    "error": f"sidecar lists {len(expected)} tiles but volume has {volume.n_tiles}",
                }
            )
    n_expected = max(volume.n_tiles, len(expected)) if expected is not None else volume.n_tiles
    return {
        "source": volume.source_path,
        "n_tiles": volume.n_tiles,
        "checksums": expected is not None,
        "counts": counts,
        "ok": counts["ok"] == n_expected,
        "tiles": [t for t in tiles if t["status"] != "ok"],
    }


# ---------------------------------------------------------------------------
# TileStream: the policy-applying fetch path
# ---------------------------------------------------------------------------


class TileStream:
    """Fetch tiles through validation, retry, faults, and the corrupt policy.

    ``fetch(z)`` returns ``(tile, degraded_reason)`` where the reason is
    ``None`` for a clean read or ``"<policy>:<kind>"`` (e.g. ``"degrade:torn"``)
    when the policy substituted data.  With ``on_corrupt="fail"`` the
    structured :class:`CorruptTileError` propagates instead.
    """

    def __init__(
        self,
        volume: LazyVolume,
        policy: IngestPolicy | None = None,
        *,
        manifest: dict[str, Any] | None = None,
    ) -> None:
        self.volume = volume
        self.policy = policy or IngestPolicy()
        if manifest is None and self.policy.verify_checksums is not False:
            if volume.source_path is not None:
                manifest = load_sidecar(volume.source_path)
        if self.policy.verify_checksums is True and manifest is None:
            raise ValidationError(
                "verify_checksums=True but no checksum sidecar was found "
                f"for {volume.source_path!r} (write one with `repro io checksum`)"
            )
        self.manifest = manifest
        self._expected = manifest.get("tiles") if manifest else None
        self._retry = self.policy.retry_policy()
        self.degraded: dict[int, str] = {}
        # A torn tail can drop whole trailing pages from the container's
        # index, so the volume opens "clean" but shorter than the sidecar
        # says it should be.  fail refuses up front; lenient policies stream
        # what exists and record the missing tail as degraded slices.
        if self._expected is not None and len(self._expected) > volume.n_tiles:
            if self.policy.on_corrupt == "fail":
                raise CorruptTileError(
                    f"sidecar lists {len(self._expected)} tiles but the volume "
                    f"opened with only {volume.n_tiles} — trailing pages are missing",
                    kind="torn",
                    tile=volume.n_tiles,
                    path=str(volume.source_path) if volume.source_path else None,
                )
            for z in range(volume.n_tiles, len(self._expected)):
                self.degraded[z] = f"{self.policy.on_corrupt}:torn"
        self.quarantined: list[str] = []
        # Substituted tiles are pinned so a later pass over the same stream
        # (the two-pass streaming pipeline) sees identical bytes even when
        # the failure that produced them was transient or injected-once.
        # Bounded by the number of corrupt tiles, not the volume.
        self._substituted: dict[int, np.ndarray] = {}
        self._registry = get_registry()

    # -- fault injection ------------------------------------------------------

    def _injected_read(self, z: int) -> np.ndarray:
        plan = get_fault_plan()
        if plan.should_fire("io_transient", slice=z):
            raise OSError(f"injected transient I/O error on tile {z}")
        tile = self.volume.read_tile(z)
        if plan.should_fire("io_torn", slice=z):
            salvage = np.array(tile, copy=True)
            salvage.reshape(-1)[salvage.size // 2 :] = 0
            raise CorruptTileError(
                f"injected torn tail on tile {z}",
                kind="torn",
                tile=z,
                path=self.volume.source_path,
                salvage=salvage,
            )
        if plan.should_fire("io_flip", slice=z):
            tile = np.array(tile, copy=True)
            flat = tile.view(np.uint8).reshape(-1)
            flat[flat.size // 2] ^= 0x10
        return tile

    # -- core fetch -----------------------------------------------------------

    def _read_verified(self, z: int) -> np.ndarray:
        tile = self._injected_read(z)
        if self._expected is not None:
            if z >= len(self._expected):
                raise CorruptTileError(
                    f"tile {z} missing from checksum manifest "
                    f"({len(self._expected)} entries)",
                    kind="unreadable",
                    tile=z,
                    path=self.volume.source_path,
                )
            digest = tile_checksum(np.ascontiguousarray(tile).tobytes())
            if digest != self._expected[z]:
                raise CorruptTileError(
                    f"tile {z} checksum mismatch (bit flip): "
                    f"{digest[:12]} != {self._expected[z][:12]}",
                    kind="flip",
                    tile=z,
                    path=self.volume.source_path,
                    salvage=tile,
                )
        return tile

    def fetch(self, z: int) -> tuple[np.ndarray, str | None]:
        if z in self._substituted:
            return self._substituted[z], self.degraded.get(z)
        start = time.perf_counter()
        with trace("io.fetch_tile", slice=z):
            try:
                tile = self._retry.call(
                    lambda attempt: self._read_verified(z),
                    key=f"io-tile-{z}",
                    on_retry=lambda attempt, exc: self._on_retry(z, attempt, exc),
                )
            except (CorruptTileError, RetryExhaustedError) as exc:
                tile, reason = self._apply_policy(z, exc)
            else:
                reason = None
        self._registry.counter("repro_io_tiles_read_total").inc()
        self._registry.counter("repro_io_bytes_read_total").inc(int(tile.nbytes))
        self._registry.histogram("repro_io_tile_read_seconds").observe(
            time.perf_counter() - start
        )
        if reason is not None:
            self.degraded[z] = reason
            self._substituted[z] = tile
            self._registry.counter("repro_io_degraded_slices_total").inc()
            record_event("io.tile_degraded")
        return tile, reason

    def _on_retry(self, z: int, attempt: int, exc: BaseException) -> None:
        self._registry.counter("repro_io_retries_total").inc()
        record_event("io.tile_retry")

    def _apply_policy(self, z: int, exc: BaseException) -> tuple[np.ndarray, str]:
        if isinstance(exc, RetryExhaustedError):
            cause = exc.__cause__
            err = CorruptTileError(
                f"tile {z} unreadable after {self.policy.max_attempts} attempts: {cause}",
                kind="unreadable",
                tile=z,
                path=self.volume.source_path,
            )
            err.__cause__ = exc
        else:
            err = exc  # type: ignore[assignment]
        kind = err.kind if err.kind in ("torn", "flip", "unreadable") else "unreadable"
        self._registry.counter("repro_io_corrupt_tiles_total", kind=kind).inc()
        record_event("io.tile_corrupt")
        self._quarantine(z, err)
        if self.policy.on_corrupt == "fail":
            raise err
        shape = self.volume.tile_shape
        if self.policy.on_corrupt == "degrade" and err.salvage is not None:
            tile = np.asarray(err.salvage, dtype=self.volume.dtype).reshape(shape)
            return tile, f"degrade:{kind}"
        return np.zeros(shape, dtype=self.volume.dtype), f"{self.policy.on_corrupt}:{kind}"

    # -- quarantine -----------------------------------------------------------

    def _quarantine_root(self) -> Path | None:
        if not self.policy.quarantine:
            return None
        if self.policy.quarantine_dir:
            return Path(self.policy.quarantine_dir)
        if self.volume.source_path is None:
            return None
        src = Path(self.volume.source_path)
        return (src if src.is_dir() else src.parent) / ".bad"

    def _quarantine(self, z: int, err: CorruptTileError) -> None:
        root = self._quarantine_root()
        if root is None:
            return
        try:
            root.mkdir(parents=True, exist_ok=True)
            stem = Path(self.volume.source_path or "volume").name
            report = root / f"{stem}.tile{z:05d}.{err.kind}.json"
            payload = {
                "tile": z,
                "kind": err.kind,
                "error": str(err),
                "source": self.volume.source_path,
            }
            if isinstance(self.volume, SliceDirectoryVolume):
                # Per-file layout: preserve the damaged file itself.
                src = self.volume.tile_path(z)
                dst = root / src.name
                if src.exists() and not dst.exists():
                    shutil.copyfile(src, dst)
                payload["quarantined_file"] = str(dst)
            report.write_text(json.dumps(payload, indent=1))
            self.quarantined.append(str(report))
            self._registry.counter("repro_io_quarantined_total").inc()
            record_event("io.tile_quarantined")
        except OSError:
            # Quarantine is evidence preservation, never a reason to abort.
            pass


# ---------------------------------------------------------------------------
# Bounded prefetch
# ---------------------------------------------------------------------------


class Prefetcher:
    """Read tiles ahead on a worker thread, bounded by the memory budget.

    Iterating yields ``(z, tile, degraded_reason)`` in order.  The window
    (concurrent decoded tiles) is ``memory_budget_bytes // tile_nbytes``
    clamped to [1, 32]; ``max_resident_bytes`` reports the high-water mark
    of decoded tile bytes alive inside the prefetcher — the structural
    number the larger-than-RAM test asserts against the budget.
    """

    _DONE = object()

    def __init__(
        self,
        stream: TileStream,
        *,
        start: int = 0,
        stop: int | None = None,
        skip: Callable[[int], bool] | None = None,
    ) -> None:
        self.stream = stream
        volume = stream.volume
        self.start = int(start)
        self.stop = volume.n_tiles if stop is None else int(stop)
        self.skip = skip
        budget = stream.policy.memory_budget_bytes
        tile_nbytes = max(1, volume.tile_nbytes)
        self.window = max(1, min(32, budget // tile_nbytes))
        # Flow control is permit-based: the worker acquires a permit BEFORE
        # fetching and the consumer returns it when it takes the tile, so at
        # most ``window`` decoded tiles are ever alive inside the prefetcher
        # — a one-tile budget really means one resident tile.  The queue
        # itself is unbounded (the semaphore is the bound), which also keeps
        # ``close()`` from deadlocking a blocked producer.
        self._permits = threading.Semaphore(self.window)
        self._queue: queue.Queue = queue.Queue()
        self._resident = 0
        self._lock = threading.Lock()
        self.max_resident_bytes = 0
        self._cancel = threading.Event()
        self._thread: threading.Thread | None = None

    def _note_resident(self, delta: int) -> None:
        with self._lock:
            self._resident += delta
            if self._resident > self.max_resident_bytes:
                self.max_resident_bytes = self._resident

    def _worker(self) -> None:
        try:
            for z in range(self.start, self.stop):
                if self._cancel.is_set():
                    return
                if self.skip is not None and self.skip(z):
                    continue
                while not self._permits.acquire(timeout=0.2):
                    if self._cancel.is_set():
                        return
                tile, reason = self.stream.fetch(z)
                self._note_resident(int(tile.nbytes))
                self._queue.put((z, tile, reason))
            self._queue.put(self._DONE)
        except BaseException as exc:  # propagate to the consumer
            self._queue.put(exc)

    def __iter__(self) -> Iterator[tuple[int, np.ndarray, str | None]]:
        self._thread = threading.Thread(
            target=self._worker, name="repro-io-prefetch", daemon=True
        )
        self._thread.start()
        try:
            while True:
                item = self._queue.get()
                if item is self._DONE:
                    return
                if isinstance(item, BaseException):
                    raise item
                z, tile, reason = item
                self._note_resident(-int(tile.nbytes))
                self._permits.release()
                yield z, tile, reason
        finally:
            self.close()

    def close(self) -> None:
        self._cancel.set()
        # Unblock a producer stuck on a full queue.
        try:
            while True:
                self._queue.get_nowait()
        except queue.Empty:
            pass
        if self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout=5.0)
