"""Persistence for annotated volumes: raw data + masks + provenance.

Experiments snapshot their inputs and outputs as ``.npz`` bundles so that a
bench re-run can verify it reproduces the exact masks; the TIFF path is used
when interoperating with instrument software.  Malformed bundles surface as
structured :class:`~repro.errors.FormatError` (never a raw ``KeyError`` /
``zipfile.BadZipFile`` / ``struct.error``), and the damaged file is
quarantined to a sibling ``.bad/`` directory so the evidence survives triage
— the same convention the disk cache uses.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
import zipfile
import zlib
from pathlib import Path

import numpy as np

from ..errors import FormatError
from ..resilience.events import record_event
from .tiff import read_tiff, write_tiff

__all__ = ["save_volume_bundle", "load_volume_bundle", "export_volume_tiff", "import_volume_tiff"]

_BUNDLE_VERSION = 1


def quarantine_file(path, reason: str = "corrupt") -> Path | None:
    """Move a damaged file into ``.bad/`` beside it; returns the new path.

    Best-effort: any filesystem error is swallowed (quarantine preserves
    evidence, it must never mask the original failure) and None is returned.
    """
    src = Path(path)
    try:
        if not src.is_file():
            return None
        bad = src.parent / ".bad"
        bad.mkdir(exist_ok=True)
        dst = bad / src.name
        shutil.move(os.fspath(src), os.fspath(dst))
        (bad / (src.name + ".reason")).write_text(reason + "\n")
        record_event("io.bundle_quarantined")
        return dst
    except OSError:
        return None


def save_volume_bundle(path, volume: np.ndarray, masks: np.ndarray | None = None, metadata: dict | None = None) -> None:
    """Save a volume (+ optional per-voxel masks and JSON metadata) to ``.npz``."""
    payload = {"volume": np.asarray(volume)}
    if masks is not None:
        masks = np.asarray(masks)
        if masks.shape != payload["volume"].shape:
            raise FormatError(f"masks shape {masks.shape} != volume shape {payload['volume'].shape}")
        payload["masks"] = masks.astype(np.uint8)
    meta = dict(metadata or {})
    meta["bundle_version"] = _BUNDLE_VERSION
    payload["metadata_json"] = np.frombuffer(json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **payload)


def load_volume_bundle(path) -> tuple[np.ndarray, np.ndarray | None, dict]:
    """Load a bundle saved by :func:`save_volume_bundle`.

    A bundle that cannot be parsed (truncated zip, corrupt member, invalid
    metadata JSON) raises :class:`FormatError` and is moved to ``.bad/``.
    """
    try:
        with np.load(path, allow_pickle=False) as bundle:
            if "volume" not in bundle:
                raise FormatError(f"{os.fspath(path)!r} is not a volume bundle (missing 'volume')")
            try:
                volume = bundle["volume"]
                masks = bundle["masks"].astype(bool) if "masks" in bundle else None
                metadata: dict = {}
                if "metadata_json" in bundle:
                    metadata = json.loads(bundle["metadata_json"].tobytes().decode("utf-8"))
            except (zipfile.BadZipFile, zlib.error, struct.error, KeyError, ValueError, OSError) as exc:
                quarantine_file(path, f"corrupt bundle member: {exc}")
                raise FormatError(
                    f"volume bundle {os.fspath(path)!r} is corrupt "
                    f"(quarantined to .bad/): {exc}"
                ) from exc
    except FormatError:
        raise
    except (zipfile.BadZipFile, zlib.error, struct.error, ValueError, EOFError, OSError) as exc:
        quarantine_file(path, f"unreadable bundle: {exc}")
        raise FormatError(
            f"{os.fspath(path)!r} is not a readable volume bundle "
            f"(quarantined to .bad/): {exc}"
        ) from exc
    return volume, masks, metadata


def export_volume_tiff(path, volume: np.ndarray, *, voxel_size_nm: tuple[float, float] | None = None, compress: bool = True, description: str = "") -> None:
    """Export a volume as a multi-page TIFF, embedding voxel size as resolution."""
    resolution = None
    if voxel_size_nm is not None:
        # pixels per centimetre = 1e7 nm/cm divided by nm per pixel
        resolution = (1e7 / voxel_size_nm[0], 1e7 / voxel_size_nm[1])
    write_tiff(path, np.asarray(volume), compress=compress, description=description, resolution=resolution)


def import_volume_tiff(path) -> np.ndarray:
    """Import a multi-page TIFF stack as a 3-D array (or 2-D for one page).

    Malformed stacks raise :class:`FormatError` with the file quarantined
    to ``.bad/``; structural errors never leak as raw ``struct.error``.
    """
    try:
        return read_tiff(path)
    except FormatError as exc:
        # A file that *claims* to be a TIFF (valid magic) but fails to parse
        # is damaged goods — quarantine it.  Wrong-format uploads (no magic)
        # stay where they are; the user just picked the wrong file.
        try:
            with open(path, "rb") as fh:
                magic = fh.read(4)
        except OSError:
            magic = b""
        if magic in (b"II*\x00", b"MM\x00*"):
            quarantine_file(path, f"corrupt TIFF structure: {exc}")
        raise
    except (struct.error, ValueError, EOFError, zlib.error, OSError) as exc:
        quarantine_file(path, f"corrupt TIFF: {exc}")
        raise FormatError(
            f"{os.fspath(path)!r} is not a readable TIFF stack "
            f"(quarantined to .bad/): {exc}"
        ) from exc
