"""Persistence for annotated volumes: raw data + masks + provenance.

Experiments snapshot their inputs and outputs as ``.npz`` bundles so that a
bench re-run can verify it reproduces the exact masks; the TIFF path is used
when interoperating with instrument software.
"""

from __future__ import annotations

import json

import numpy as np

from ..errors import FormatError
from .tiff import read_tiff, write_tiff

__all__ = ["save_volume_bundle", "load_volume_bundle", "export_volume_tiff", "import_volume_tiff"]

_BUNDLE_VERSION = 1


def save_volume_bundle(path, volume: np.ndarray, masks: np.ndarray | None = None, metadata: dict | None = None) -> None:
    """Save a volume (+ optional per-voxel masks and JSON metadata) to ``.npz``."""
    payload = {"volume": np.asarray(volume)}
    if masks is not None:
        masks = np.asarray(masks)
        if masks.shape != payload["volume"].shape:
            raise FormatError(f"masks shape {masks.shape} != volume shape {payload['volume'].shape}")
        payload["masks"] = masks.astype(np.uint8)
    meta = dict(metadata or {})
    meta["bundle_version"] = _BUNDLE_VERSION
    payload["metadata_json"] = np.frombuffer(json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **payload)


def load_volume_bundle(path) -> tuple[np.ndarray, np.ndarray | None, dict]:
    """Load a bundle saved by :func:`save_volume_bundle`."""
    with np.load(path, allow_pickle=False) as bundle:
        if "volume" not in bundle:
            raise FormatError(f"{path!r} is not a volume bundle (missing 'volume')")
        volume = bundle["volume"]
        masks = bundle["masks"].astype(bool) if "masks" in bundle else None
        metadata: dict = {}
        if "metadata_json" in bundle:
            metadata = json.loads(bundle["metadata_json"].tobytes().decode("utf-8"))
    return volume, masks, metadata


def export_volume_tiff(path, volume: np.ndarray, *, voxel_size_nm: tuple[float, float] | None = None, compress: bool = True, description: str = "") -> None:
    """Export a volume as a multi-page TIFF, embedding voxel size as resolution."""
    resolution = None
    if voxel_size_nm is not None:
        # pixels per centimetre = 1e7 nm/cm divided by nm per pixel
        resolution = (1e7 / voxel_size_nm[0], 1e7 / voxel_size_nm[1])
    write_tiff(path, np.asarray(volume), compress=compress, description=description, resolution=resolution)


def import_volume_tiff(path) -> np.ndarray:
    """Import a multi-page TIFF stack as a 3-D array (or 2-D for one page)."""
    return read_tiff(path)
