"""From-scratch image/volume codecs and format sniffing (TIFF, PNG, npz)."""

from .annotations import export_annotations, import_annotations
from .formats import KNOWN_FORMATS, load_image_file, sniff_format
from .png import decode_png, encode_png, read_png, write_png
from .tiff import TiffPageInfo, read_tiff, read_tiff_pages, write_tiff
from .volume_io import (
    export_volume_tiff,
    import_volume_tiff,
    load_volume_bundle,
    save_volume_bundle,
)

__all__ = [
    "KNOWN_FORMATS",
    "TiffPageInfo",
    "decode_png",
    "encode_png",
    "export_annotations",
    "import_annotations",
    "export_volume_tiff",
    "import_volume_tiff",
    "load_image_file",
    "load_volume_bundle",
    "read_png",
    "read_tiff",
    "read_tiff_pages",
    "save_volume_bundle",
    "sniff_format",
    "write_png",
    "write_tiff",
]
