"""From-scratch image/volume codecs, format sniffing, and lazy ingestion.

Eager codecs (TIFF, PNG, npz) materialize arrays; :mod:`~repro.io.lazy`
streams arbitrarily large volumes tile-by-tile, and
:mod:`~repro.io.integrity` wraps the tile fetch in the ingestion failure
model (checksums, retries, quarantine, degrade policies).
"""

from .annotations import export_annotations, import_annotations
from .formats import KNOWN_FORMATS, load_image_file, sniff_format
from .integrity import (
    IngestPolicy,
    Prefetcher,
    TileStream,
    load_sidecar,
    sidecar_path,
    verify_volume,
    write_sidecar,
)
from .lazy import (
    ArrayLazyVolume,
    LazyVolume,
    NpyLazyVolume,
    SliceDirectoryVolume,
    TiffLazyVolume,
    open_lazy_volume,
)
from .png import decode_png, encode_png, read_png, write_png
from .tiff import TiffPageInfo, read_tiff, read_tiff_pages, write_tiff
from .volume_io import (
    export_volume_tiff,
    import_volume_tiff,
    load_volume_bundle,
    save_volume_bundle,
)

__all__ = [
    "ArrayLazyVolume",
    "IngestPolicy",
    "KNOWN_FORMATS",
    "LazyVolume",
    "NpyLazyVolume",
    "Prefetcher",
    "SliceDirectoryVolume",
    "TiffLazyVolume",
    "TiffPageInfo",
    "TileStream",
    "decode_png",
    "encode_png",
    "export_annotations",
    "import_annotations",
    "export_volume_tiff",
    "import_volume_tiff",
    "load_image_file",
    "load_sidecar",
    "load_volume_bundle",
    "open_lazy_volume",
    "read_png",
    "read_tiff",
    "read_tiff_pages",
    "save_volume_bundle",
    "sidecar_path",
    "sniff_format",
    "verify_volume",
    "write_png",
    "write_sidecar",
    "write_tiff",
]
