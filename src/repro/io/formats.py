"""File-format sniffing for the no-code upload path.

The platform accepts whatever the instrument produced; this module decides
which codec to dispatch to by inspecting magic bytes, never the extension
(FIB-SEM exports are notorious for ``.dat`` files that are really TIFFs).
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import FormatError, UnknownFormatError
from .png import PNG_SIGNATURE, read_png
from .tiff import read_tiff

__all__ = ["sniff_format", "load_image_file", "KNOWN_FORMATS"]

KNOWN_FORMATS = ("tiff", "png", "npy", "npz")

_NPY_MAGIC = b"\x93NUMPY"
_ZIP_MAGIC = b"PK\x03\x04"


def sniff_format(path) -> str:
    """Identify a file's format from its magic bytes.

    Returns one of :data:`KNOWN_FORMATS`; raises
    :class:`~repro.errors.UnknownFormatError` for unrecognised content,
    with ``reason="empty"`` for zero-byte files (a crashed transfer looks
    nothing like a wrong-format upload and the API reports them apart).
    """
    with open(path, "rb") as fh:
        head = fh.read(8)
    if not head:
        raise UnknownFormatError(
            f"{os.fspath(path)!r} is empty (0 bytes) — truncated upload or "
            "interrupted transfer?",
            reason="empty",
        )
    if head[:4] in (b"II*\x00", b"MM\x00*"):
        return "tiff"
    if head == PNG_SIGNATURE:
        return "png"
    if head.startswith(_NPY_MAGIC):
        return "npy"
    if head.startswith(_ZIP_MAGIC):
        return "npz"
    raise UnknownFormatError(
        f"unrecognised image format in {os.fspath(path)!r} (magic {head[:4]!r})"
    )


def load_image_file(path) -> np.ndarray:
    """Load any supported image/volume file into an ndarray."""
    fmt = sniff_format(path)
    if fmt == "tiff":
        return read_tiff(path)
    if fmt == "png":
        return read_png(path)
    if fmt == "npy":
        return np.load(path, allow_pickle=False)
    if fmt == "npz":
        with np.load(path, allow_pickle=False) as bundle:
            keys = list(bundle.keys())
            if len(keys) != 1:
                raise FormatError(
                    f"npz file {os.fspath(path)!r} holds {len(keys)} arrays; expected exactly one"
                )
            return bundle[keys[0]]
    raise FormatError(f"no loader for format {fmt!r}")  # pragma: no cover - sniff covers all
