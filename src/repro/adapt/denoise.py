"""Denoising for low-dose scientific images.

Four denoisers with increasing edge awareness: Gaussian, median, bilateral,
and a patch-mean non-local-means variant.  The bilateral and NLM filters are
implemented with vectorised shift-and-accumulate loops over the (small)
neighbourhood offsets, never over pixels.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter, median_filter, uniform_filter

from ..utils.validation import ensure_2d, ensure_positive

__all__ = ["denoise_gaussian", "denoise_median", "denoise_bilateral", "denoise_nlm", "unsharp_mask", "flatfield_correct"]


def flatfield_correct(image: np.ndarray, *, sigma: float = 48.0, softness: float = 0.04) -> np.ndarray:
    """Sample-aware flat-field correction for slow illumination drift.

    Plain retinex (divide by a blurred copy) fails on scenes dominated by a
    dark vacuum region: the blur mixes background into the illumination
    estimate near the interface and the division distorts exactly the
    contrast that matters.  Here the illumination field is estimated by a
    *masked* blur over sample-likelihood weights (a soft Otsu split), and
    the correcting gain is applied only where the sample is:

        w      = sigmoid((img - otsu) / softness)
        illum  = blur(img·w) / blur(w)
        gain   = mean(illum | sample) / illum
        out    = img · (1 + w·(gain - 1))
    """
    img = ensure_2d(image, "image").astype(np.float32)
    ensure_positive(sigma, "sigma")
    ensure_positive(softness, "softness")
    # Soft sample weight from the global two-class split.
    hist, edges = np.histogram(np.clip(img, 0, 1), bins=128, range=(0.0, 1.0))
    p = hist.astype(np.float64) / max(hist.sum(), 1)
    centers = (edges[:-1] + edges[1:]) / 2.0
    w0 = np.cumsum(p)
    m0 = np.cumsum(p * centers)
    mu = m0[-1]
    with np.errstate(divide="ignore", invalid="ignore"):
        between = np.nan_to_num((mu * w0 - m0) ** 2 / (w0 * (1 - w0)))
    plateau = np.nonzero(between >= between.max() - 1e-12)[0]
    # Plateau midpoint: spike-dominated histograms (noiseless phases) make
    # the between-class curve flat between the modes; the edge would leak
    # background into the sample weight.
    t = float(centers[int(plateau[(len(plateau) - 1) // 2])])
    w = 1.0 / (1.0 + np.exp(-(img - t) / softness))

    num = gaussian_filter(img * w, sigma=sigma, mode="reflect")
    den = gaussian_filter(w, sigma=sigma, mode="reflect")
    illum = num / np.maximum(den, 1e-3)
    sample_mean = float((img * w).sum() / max(w.sum(), 1e-6))
    gain = sample_mean / np.maximum(illum, 0.05)
    corrected = img * (1.0 + w * (gain - 1.0))
    return np.clip(corrected, 0.0, 1.0).astype(np.float32)


def unsharp_mask(image: np.ndarray, *, amount: float = 2.0, sigma: float = 2.0) -> np.ndarray:
    """Unsharp masking: ``img + amount * (img - gaussian(img, sigma))``.

    Counteracts defocus blur so thin structures (needle-like catalyst)
    recover their half-maximum boundaries before intensity-based
    segmentation; part of the segmenter-branch adaptation recipe.
    """
    img = ensure_2d(image, "image").astype(np.float32)
    ensure_positive(sigma, "sigma")
    blurred = gaussian_filter(img, sigma=sigma, mode="reflect")
    return np.clip(img + np.float32(amount) * (img - blurred), 0.0, 1.0)


def denoise_gaussian(image: np.ndarray, *, sigma: float = 1.0) -> np.ndarray:
    """Gaussian smoothing (fast, blurs edges)."""
    img = ensure_2d(image, "image").astype(np.float32)
    ensure_positive(sigma, "sigma")
    return gaussian_filter(img, sigma=sigma, mode="reflect")


def denoise_median(image: np.ndarray, *, size: int = 3) -> np.ndarray:
    """Median filtering (robust to shot-noise outliers)."""
    img = ensure_2d(image, "image").astype(np.float32)
    if size < 1 or size % 2 == 0:
        raise ValueError(f"size must be odd and >= 1, got {size}")
    return median_filter(img, size=size, mode="reflect")


def _shifted(img: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Image shifted by (dy, dx) with edge replication, same shape."""
    padded = np.pad(img, ((abs(dy), abs(dy)), (abs(dx), abs(dx))), mode="edge")
    h, w = img.shape
    return padded[abs(dy) + dy : abs(dy) + dy + h, abs(dx) + dx : abs(dx) + dx + w]


def denoise_bilateral(
    image: np.ndarray,
    *,
    sigma_spatial: float = 2.0,
    sigma_range: float = 0.1,
    radius: int | None = None,
) -> np.ndarray:
    """Bilateral filter: Gaussian in space, Gaussian in intensity difference.

    Preserves the sharp film/background interface while smoothing the
    ionomer texture — the workhorse for FIB-SEM adaptation.
    """
    img = ensure_2d(image, "image").astype(np.float32)
    ensure_positive(sigma_spatial, "sigma_spatial")
    ensure_positive(sigma_range, "sigma_range")
    r = radius if radius is not None else max(1, int(round(2 * sigma_spatial)))
    acc = np.zeros_like(img, dtype=np.float64)
    norm = np.zeros_like(img, dtype=np.float64)
    inv_2ss = 1.0 / (2.0 * sigma_spatial**2)
    inv_2sr = 1.0 / (2.0 * sigma_range**2)
    for dy in range(-r, r + 1):
        for dx in range(-r, r + 1):
            w_s = np.exp(-(dy * dy + dx * dx) * inv_2ss)
            if w_s < 1e-4:
                continue
            shifted = _shifted(img, dy, dx)
            w = w_s * np.exp(-((shifted - img) ** 2) * inv_2sr)
            acc += w * shifted
            norm += w
    return (acc / np.maximum(norm, 1e-12)).astype(np.float32)


def denoise_nlm(
    image: np.ndarray,
    *,
    patch_size: int = 3,
    search_radius: int = 4,
    h: float = 0.08,
) -> np.ndarray:
    """Non-local-means (patch-mean approximation).

    Patch distances are approximated by uniform-filtered squared differences
    between the image and its shifted copies, which turns NLM into a
    shift-and-accumulate loop over the search window — O(window²) filtered
    images instead of O(pixels · window² · patch²) scalar ops.
    """
    img = ensure_2d(image, "image").astype(np.float32)
    if patch_size < 1 or patch_size % 2 == 0:
        raise ValueError(f"patch_size must be odd and >= 1, got {patch_size}")
    ensure_positive(search_radius, "search_radius")
    ensure_positive(h, "h")
    acc = np.zeros_like(img, dtype=np.float64)
    norm = np.zeros_like(img, dtype=np.float64)
    inv_h2 = 1.0 / (h * h)
    for dy in range(-search_radius, search_radius + 1):
        for dx in range(-search_radius, search_radius + 1):
            shifted = _shifted(img, dy, dx)
            d2 = uniform_filter((shifted - img) ** 2, size=patch_size, mode="reflect")
            w = np.exp(-np.maximum(d2, 0.0) * inv_h2)
            acc += w * shifted
            norm += w
    return (acc / np.maximum(norm, 1e-12)).astype(np.float32)
