"""Bit-depth normalisation: the first data-readiness barrier.

Foundation models expect 8-bit RGB; instruments produce 8/16/32-bit
grayscale whose useful signal often occupies a narrow band of the dynamic
range.  These functions map any supported dtype to float32 [0, 1] or uint8,
either by the dtype's nominal range or robustly by percentiles.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..utils.validation import ensure_ndarray, ensure_range

__all__ = ["to_float01", "to_uint8", "robust_normalize", "nominal_range"]


def nominal_range(dtype: np.dtype) -> float:
    """Full-scale value for a dtype (1.0 for floats)."""
    dt = np.dtype(dtype)
    if dt == np.uint8:
        return 255.0
    if dt == np.uint16:
        return 65535.0
    if dt in (np.uint32, np.int32):
        return 4294967295.0
    if dt.kind == "f":
        return 1.0
    raise ValidationError(f"unsupported dtype {dt}")


def to_float01(image: np.ndarray) -> np.ndarray:
    """Scale an image to float32 [0, 1] by its dtype's nominal range."""
    arr = ensure_ndarray(image, "image")
    scale = nominal_range(arr.dtype)
    out = arr.astype(np.float32)
    if scale != 1.0:
        out /= np.float32(scale)
    return np.clip(out, 0.0, 1.0)


def robust_normalize(image: np.ndarray, *, p_lo: float = 0.5, p_hi: float = 99.5) -> np.ndarray:
    """Percentile-stretch an image to float32 [0, 1].

    Maps the ``p_lo`` percentile to 0 and ``p_hi`` to 1, clipping outside —
    the standard defence against hot pixels and detector glare that would
    otherwise crush the usable contrast after nominal scaling.
    """
    arr = ensure_ndarray(image, "image").astype(np.float32)
    ensure_range(p_lo, 0.0, 100.0, "p_lo")
    ensure_range(p_hi, 0.0, 100.0, "p_hi")
    if p_lo >= p_hi:
        raise ValidationError(f"p_lo ({p_lo}) must be < p_hi ({p_hi})")
    lo, hi = np.percentile(arr, [p_lo, p_hi])
    if hi <= lo:
        return np.zeros_like(arr, dtype=np.float32)
    out = (arr - lo) / (hi - lo)
    return np.clip(out, 0.0, 1.0).astype(np.float32)


def to_uint8(image: np.ndarray, *, robust: bool = True, p_lo: float = 0.5, p_hi: float = 99.5) -> np.ndarray:
    """Convert any supported image to uint8 (what SAM-style models ingest)."""
    if robust:
        f = robust_normalize(image, p_lo=p_lo, p_hi=p_hi)
    else:
        f = to_float01(image)
    return np.round(f * 255.0).astype(np.uint8)
