"""Contrast adaptation: stretch, gamma, and CLAHE.

All operate on float images in [0, 1] and return float32 in [0, 1].  CLAHE
(contrast-limited adaptive histogram equalisation) is implemented from
scratch with vectorised tile histograms and bilinear interpolation of the
per-tile transfer functions — the classic recipe, no per-pixel Python loops.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..utils.validation import ensure_2d, ensure_positive

__all__ = ["stretch_contrast", "gamma_correct", "equalize_hist", "clahe"]


def _as01(image: np.ndarray) -> np.ndarray:
    img = ensure_2d(image, "image").astype(np.float32)
    if img.min() < -1e-6 or img.max() > 1 + 1e-6:
        raise ValidationError("contrast ops expect images in [0, 1]; normalise bit depth first")
    return np.clip(img, 0.0, 1.0)


def stretch_contrast(image: np.ndarray, *, lo: float | None = None, hi: float | None = None) -> np.ndarray:
    """Linear stretch of [lo, hi] to [0, 1]; defaults to the image min/max."""
    img = _as01(image)
    lo = float(img.min()) if lo is None else float(lo)
    hi = float(img.max()) if hi is None else float(hi)
    if hi <= lo:
        return np.zeros_like(img)
    return np.clip((img - lo) / (hi - lo), 0.0, 1.0)


def gamma_correct(image: np.ndarray, gamma: float = 1.0) -> np.ndarray:
    """Power-law mapping ``out = in ** gamma`` (gamma < 1 brightens)."""
    ensure_positive(gamma, "gamma")
    return _as01(image) ** np.float32(gamma)


def equalize_hist(image: np.ndarray, *, n_bins: int = 256) -> np.ndarray:
    """Global histogram equalisation."""
    img = _as01(image)
    hist, edges = np.histogram(img, bins=n_bins, range=(0.0, 1.0))
    cdf = np.cumsum(hist).astype(np.float64)
    if cdf[-1] == 0:
        return img
    cdf /= cdf[-1]
    idx = np.minimum((img * n_bins).astype(np.intp), n_bins - 1)
    return cdf[idx].astype(np.float32)


def clahe(
    image: np.ndarray,
    *,
    tiles: tuple[int, int] = (8, 8),
    clip_limit: float = 2.0,
    n_bins: int = 128,
) -> np.ndarray:
    """Contrast-limited adaptive histogram equalisation.

    ``clip_limit`` is relative to the uniform bin height (2.0 = clip any bin
    above twice uniform, redistributing the excess).  Transfer functions are
    computed per tile and bilinearly interpolated between tile centres.
    """
    img = _as01(image)
    ensure_positive(clip_limit, "clip_limit")
    th, tw = tiles
    if th < 1 or tw < 1:
        raise ValidationError(f"tiles must be >= 1 in each axis, got {tiles}")
    h, w = img.shape
    th = min(th, h)
    tw = min(tw, w)

    # Tile index per pixel (tiles cover the image as evenly as possible).
    row_edges = np.linspace(0, h, th + 1).astype(np.intp)
    col_edges = np.linspace(0, w, tw + 1).astype(np.intp)

    bins = np.minimum((img * n_bins).astype(np.intp), n_bins - 1)

    # Per-tile clipped CDFs -> transfer LUTs, shape (th, tw, n_bins).
    luts = np.empty((th, tw, n_bins), dtype=np.float32)
    for i in range(th):
        for j in range(tw):
            tile_bins = bins[row_edges[i] : row_edges[i + 1], col_edges[j] : col_edges[j + 1]]
            hist = np.bincount(tile_bins.ravel(), minlength=n_bins).astype(np.float64)
            n = hist.sum()
            if n == 0:
                luts[i, j] = np.linspace(0.0, 1.0, n_bins, dtype=np.float32)
                continue
            limit = clip_limit * n / n_bins
            excess = np.maximum(hist - limit, 0.0).sum()
            hist = np.minimum(hist, limit)
            hist += excess / n_bins  # redistribute uniformly
            cdf = np.cumsum(hist)
            cdf /= cdf[-1]
            luts[i, j] = cdf.astype(np.float32)

    # Bilinear interpolation between tile-centre LUTs, fully vectorised.
    centers_y = (row_edges[:-1] + row_edges[1:]) / 2.0
    centers_x = (col_edges[:-1] + col_edges[1:]) / 2.0
    yy = np.arange(h, dtype=np.float64)
    xx = np.arange(w, dtype=np.float64)

    def _coords(vals, centers):
        # Fractional tile coordinate for every pixel coordinate.
        idx = np.interp(vals, centers, np.arange(len(centers), dtype=np.float64))
        lo = np.floor(idx).astype(np.intp)
        hi = np.minimum(lo + 1, len(centers) - 1)
        frac = (idx - lo).astype(np.float32)
        return lo, hi, frac

    ylo, yhi, yfrac = _coords(yy, centers_y)
    xlo, xhi, xfrac = _coords(xx, centers_x)

    YL = ylo[:, None]
    YH = yhi[:, None]
    XL = xlo[None, :]
    XH = xhi[None, :]
    v00 = luts[YL, XL, bins]
    v01 = luts[YL, XH, bins]
    v10 = luts[YH, XL, bins]
    v11 = luts[YH, XH, bins]
    fy = yfrac[:, None]
    fx = xfrac[None, :]
    out = (1 - fy) * ((1 - fx) * v00 + fx * v01) + fy * ((1 - fx) * v10 + fx * v11)
    return np.clip(out, 0.0, 1.0).astype(np.float32)
