"""Spatial resampling: resizing and anisotropy correction.

FIB-SEM voxels are anisotropic (milling step ≫ pixel size); 2-D foundation
models also want a fixed input resolution.  Both needs are served by
``scipy.ndimage.zoom`` with explicit order control.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import zoom

from ..data.volume import ScientificVolume
from ..errors import ValidationError
from ..utils.validation import ensure_2d, ensure_3d

__all__ = ["resize_image", "resize_mask", "resample_isotropic"]


def resize_image(image: np.ndarray, out_shape: tuple[int, int], *, order: int = 1) -> np.ndarray:
    """Resize a 2-D image to ``out_shape`` with spline interpolation."""
    img = ensure_2d(image, "image").astype(np.float32)
    oh, ow = out_shape
    if oh < 1 or ow < 1:
        raise ValidationError(f"out_shape must be positive, got {out_shape}")
    factors = (oh / img.shape[0], ow / img.shape[1])
    out = zoom(img, factors, order=order, mode="reflect", grid_mode=True)
    # zoom can come out one pixel off for awkward ratios; crop/pad to exact.
    out = out[:oh, :ow]
    if out.shape != (oh, ow):
        pad = ((0, oh - out.shape[0]), (0, ow - out.shape[1]))
        out = np.pad(out, pad, mode="edge")
    return out


def resize_mask(mask: np.ndarray, out_shape: tuple[int, int]) -> np.ndarray:
    """Resize a boolean mask with nearest-neighbour semantics."""
    m = np.asarray(mask, dtype=np.float32)
    out = resize_image(m, out_shape, order=0)
    return out > 0.5


def resample_isotropic(volume: ScientificVolume, *, order: int = 1) -> ScientificVolume:
    """Resample a volume so Z spacing matches the in-plane Y spacing.

    Requires ``voxel_size_nm``; a no-op (copy) when already isotropic.
    """
    if volume.voxel_size_nm is None:
        raise ValidationError("resample_isotropic requires voxel_size_nm metadata")
    vz, vy, vx = volume.voxel_size_nm
    factors = (vz / vy, 1.0, vx / vy)
    arr = ensure_3d(volume.voxels, "voxels").astype(np.float32)
    out = zoom(arr, factors, order=order, mode="nearest", grid_mode=True)
    resampled = volume.with_voxels(out, "resample_isotropic")
    object.__setattr__(resampled, "voxel_size_nm", (vy, vy, vy))
    return resampled
