"""Channel adaptation: grayscale ↔ the 3-channel inputs RGB-trained models expect.

The simplest embedding replicates the gray channel; the *multi-scale*
embedding instead packs complementary views (raw, local-contrast-enhanced,
edge magnitude) into the three channels, giving an RGB-trained backbone
genuinely different information per channel — one of the paper's
"lightweight multi-modal adaptation techniques".
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter, sobel

from ..utils.validation import ensure_2d

__all__ = ["gray_to_rgb", "gray_to_multichannel", "rgb_to_gray"]


def gray_to_rgb(image: np.ndarray) -> np.ndarray:
    """Replicate a grayscale image into 3 identical channels (HxWx3)."""
    img = ensure_2d(image, "image").astype(np.float32)
    return np.repeat(img[:, :, None], 3, axis=2)


def gray_to_multichannel(image: np.ndarray, *, detail_sigma: float = 2.0) -> np.ndarray:
    """Pack (raw, local-contrast, edge-magnitude) into 3 channels.

    * channel 0 — the raw intensity;
    * channel 1 — unsharp residual ``img - gaussian(img)`` recentred at 0.5,
      highlighting local structure regardless of absolute brightness;
    * channel 2 — Sobel gradient magnitude, normalised to [0, 1].
    """
    img = ensure_2d(image, "image").astype(np.float32)
    smooth = gaussian_filter(img, sigma=detail_sigma, mode="reflect")
    local = np.clip(img - smooth + 0.5, 0.0, 1.0)
    gy = sobel(img, axis=0, mode="reflect")
    gx = sobel(img, axis=1, mode="reflect")
    mag = np.hypot(gy, gx)
    peak = float(mag.max())
    if peak > 0:
        mag = mag / peak
    return np.stack([img, local, mag.astype(np.float32)], axis=2)


def rgb_to_gray(image: np.ndarray) -> np.ndarray:
    """Luma conversion (Rec. 601 weights) for RGB scientific overlays."""
    arr = np.asarray(image, dtype=np.float32)
    if arr.ndim == 2:
        return arr
    if arr.ndim != 3 or arr.shape[2] < 3:
        raise ValueError(f"expected HxWx3(+) array, got shape {arr.shape}")
    return arr[:, :, 0] * 0.299 + arr[:, :, 1] * 0.587 + arr[:, :, 2] * 0.114
