"""Lightweight multi-modal adaptation: bit depth, contrast, denoise, channels, readiness."""

from .bitdepth import nominal_range, robust_normalize, to_float01, to_uint8
from .channels import gray_to_multichannel, gray_to_rgb, rgb_to_gray
from .contrast import clahe, equalize_hist, gamma_correct, stretch_contrast
from .denoise import denoise_bilateral, denoise_gaussian, denoise_median, denoise_nlm
from .pipeline import (
    STEP_LIBRARY,
    AdaptStep,
    AdaptationPipeline,
    default_fibsem_pipeline,
    identity_pipeline,
)
from .readiness import READY_THRESHOLD, ReadinessReport, score_readiness
from .resample import resample_isotropic, resize_image, resize_mask

__all__ = [
    "AdaptStep",
    "AdaptationPipeline",
    "READY_THRESHOLD",
    "ReadinessReport",
    "STEP_LIBRARY",
    "clahe",
    "default_fibsem_pipeline",
    "denoise_bilateral",
    "denoise_gaussian",
    "denoise_median",
    "denoise_nlm",
    "equalize_hist",
    "gamma_correct",
    "gray_to_multichannel",
    "gray_to_rgb",
    "identity_pipeline",
    "nominal_range",
    "resample_isotropic",
    "resize_image",
    "resize_mask",
    "rgb_to_gray",
    "robust_normalize",
    "score_readiness",
    "stretch_contrast",
    "to_float01",
    "to_uint8",
]
