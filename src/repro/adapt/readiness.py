"""Data-readiness scoring: the paper's contribution #1, made quantitative.

The paper formalises the gap between raw scientific images and the inputs
foundation models expect as *format*, *dimensional*, and *semantic*
incompatibilities.  This module scores each axis in [0, 1] for a concrete
image, so that "make this AI-ready" has a measurable before/after (Fig. 1):

* **format** — is the dtype/bit depth something an RGB-trained model ingests
  natively?  8-bit scores 1.0; 16/32-bit and floats score lower.
* **dynamic range** — fraction of the nominal range the signal actually
  spans; raw 16/32-bit data typically sits in a sliver of it.
* **snr** — estimated signal-to-noise (robust signal spread over a noise
  estimate from the median absolute pseudo-residual of a Laplacian).
* **contrast** — bimodality of the histogram (between-class variance of the
  best two-class split relative to total variance: the Otsu criterion
  recycled as a score).
* **channels** — 3-channel inputs score 1.0, single-channel grayscale lower.

The overall score is the geometric mean: a single hard incompatibility
drags readiness toward zero, mirroring how one bad axis breaks inference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.ndimage import laplace

from ..data.image import ScientificImage
from ..utils.validation import ensure_ndarray
from .bitdepth import nominal_range

__all__ = ["ReadinessReport", "score_readiness", "READY_THRESHOLD"]

#: Overall score above which an image is considered AI-ready.  Calibrated
#: so raw 8/16/32-bit single-channel instrument data (≈0.5-0.61 on the
#: synthetic corpus) falls below and adapted 3-channel uint8 (≈0.9+) above.
READY_THRESHOLD = 0.65


@dataclass(frozen=True)
class ReadinessReport:
    """Per-axis readiness scores in [0, 1] plus the overall geometric mean."""

    format_score: float
    dynamic_range_score: float
    snr_score: float
    contrast_score: float
    channel_score: float

    @property
    def overall(self) -> float:
        parts = np.array(
            [
                self.format_score,
                self.dynamic_range_score,
                self.snr_score,
                self.contrast_score,
                self.channel_score,
            ]
        )
        return float(np.exp(np.mean(np.log(np.maximum(parts, 1e-6)))))

    @property
    def is_ready(self) -> bool:
        return self.overall >= READY_THRESHOLD

    def as_dict(self) -> dict:
        return {
            "format": self.format_score,
            "dynamic_range": self.dynamic_range_score,
            "snr": self.snr_score,
            "contrast": self.contrast_score,
            "channels": self.channel_score,
            "overall": self.overall,
            "is_ready": self.is_ready,
        }


def _format_score(arr: np.ndarray) -> float:
    if arr.dtype == np.uint8:
        return 1.0
    if arr.dtype == np.uint16:
        return 0.45
    if arr.dtype in (np.uint32, np.int32):
        return 0.3
    if arr.dtype.kind == "f":
        # Floats in [0,1] are trivially convertible; arbitrary floats are not.
        finite = arr[np.isfinite(arr)]
        if finite.size and finite.min() >= 0.0 and finite.max() <= 1.0:
            return 0.9
        return 0.35
    return 0.2


def _dynamic_range_score(arr: np.ndarray) -> float:
    finite = arr[np.isfinite(arr)].astype(np.float64)
    if finite.size == 0:
        return 0.0
    lo, hi = np.percentile(finite, [1.0, 99.0])
    span = (hi - lo) / nominal_range(arr.dtype)
    return float(np.clip(span, 0.0, 1.0))


def _snr_score(arr: np.ndarray) -> float:
    f = arr.astype(np.float64)
    scale = nominal_range(arr.dtype)
    if scale != 1.0:
        f = f / scale
    if f.ndim == 3:
        f = f.mean(axis=2)
    # Noise sigma estimate: Laplacian residual MAD (Immerkaer-style).
    resid = laplace(f, mode="reflect")
    sigma = float(np.median(np.abs(resid))) / 0.6745 / np.sqrt(20.0)
    signal = float(np.percentile(f, 95) - np.percentile(f, 5))
    if sigma <= 1e-9:
        return 1.0
    snr = signal / sigma
    # Map SNR ~3 -> 0.3, ~10 -> ~0.7, ~30 -> ~0.95 with a saturating curve.
    return float(np.clip(1.0 - np.exp(-snr / 10.0), 0.0, 1.0))


def _contrast_score(arr: np.ndarray) -> float:
    f = arr.astype(np.float64)
    scale = nominal_range(arr.dtype)
    if scale != 1.0:
        f = f / scale
    if f.ndim == 3:
        f = f.mean(axis=2)
    hist, _ = np.histogram(np.clip(f, 0, 1), bins=128, range=(0.0, 1.0))
    p = hist.astype(np.float64)
    total = p.sum()
    if total == 0:
        return 0.0
    p /= total
    bins = (np.arange(128) + 0.5) / 128.0
    mu_total = float((p * bins).sum())
    var_total = float((p * (bins - mu_total) ** 2).sum())
    if var_total <= 1e-12:
        return 0.0
    w0 = np.cumsum(p)
    m0 = np.cumsum(p * bins)
    w1 = 1.0 - w0
    with np.errstate(divide="ignore", invalid="ignore"):
        mu0 = m0 / w0
        mu1 = (mu_total - m0) / w1
        between = w0 * w1 * (mu0 - mu1) ** 2
    between = np.nan_to_num(between)
    return float(np.clip(between.max() / var_total, 0.0, 1.0))


def score_readiness(image: ScientificImage | np.ndarray) -> ReadinessReport:
    """Score an image's AI-readiness along the five axes."""
    arr = image.pixels if isinstance(image, ScientificImage) else ensure_ndarray(image)
    return ReadinessReport(
        format_score=_format_score(arr),
        dynamic_range_score=_dynamic_range_score(arr),
        snr_score=_snr_score(arr),
        contrast_score=_contrast_score(arr),
        channel_score=1.0 if (arr.ndim == 3 and arr.shape[2] == 3) else 0.55,
    )
