"""Composable adaptation pipelines.

An :class:`AdaptationPipeline` is an ordered list of named steps, each a
``float01 image -> float01 image`` callable.  Pipelines are the unit the
platform exposes to no-code users ("make this AI-ready"), and
:func:`default_fibsem_pipeline` is the recipe used throughout the paper
reproduction: robust bit-depth normalisation is applied on ingest, then
denoise + CLAHE here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..data.image import ScientificImage
from ..errors import ValidationError
from .bitdepth import robust_normalize, to_float01
from .contrast import clahe, stretch_contrast
from .denoise import denoise_bilateral, denoise_gaussian, denoise_median, denoise_nlm

__all__ = ["AdaptStep", "AdaptationPipeline", "default_fibsem_pipeline", "identity_pipeline", "STEP_LIBRARY"]

AdaptFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class AdaptStep:
    """One named adaptation step."""

    name: str
    fn: AdaptFn

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return self.fn(image)


_STEP_TARGETS: dict[str, Callable] = {
    "stretch": stretch_contrast,
    "clahe": clahe,
    "gaussian": denoise_gaussian,
    "median": denoise_median,
    "bilateral": denoise_bilateral,
    "nlm": denoise_nlm,
}


def _make_step_factory(target: Callable) -> Callable[..., AdaptFn]:
    import inspect

    valid = {
        p.name
        for p in inspect.signature(target).parameters.values()
        if p.kind in (p.KEYWORD_ONLY, p.POSITIONAL_OR_KEYWORD)
    } - {"image"}

    def factory(**kw) -> AdaptFn:
        unknown = set(kw) - valid
        if unknown:
            raise TypeError(f"unknown parameter(s) {sorted(unknown)}; valid: {sorted(valid)}")
        return lambda img: target(img, **kw)

    return factory


#: Steps addressable by name from the no-code API (JSON step lists).
STEP_LIBRARY: dict[str, Callable[..., AdaptFn]] = {
    name: _make_step_factory(fn) for name, fn in _STEP_TARGETS.items()
}


@dataclass(frozen=True)
class AdaptationPipeline:
    """An ordered, named sequence of adaptation steps."""

    steps: tuple[AdaptStep, ...] = ()
    name: str = "custom"

    def run(self, image: np.ndarray) -> np.ndarray:
        """Apply all steps to a float [0,1] image; returns float32 [0,1]."""
        out = np.asarray(image, dtype=np.float32)
        for step in self.steps:
            out = np.asarray(step(out), dtype=np.float32)
        return out

    def run_on(self, image: ScientificImage, *, robust: bool = True) -> ScientificImage:
        """Ingest + adapt a :class:`ScientificImage`, preserving provenance."""
        raw = image.pixels
        f = robust_normalize(raw) if robust else to_float01(raw)
        ingest = "robust_normalize" if robust else "to_float01"
        out = self.run(f)
        adapted = image.with_pixels(out, ingest)
        for step in self.steps:
            adapted = adapted.with_pixels(adapted.pixels, step.name)
        return adapted

    def append(self, step: AdaptStep) -> "AdaptationPipeline":
        return AdaptationPipeline(self.steps + (step,), name=self.name)

    @classmethod
    def from_spec(cls, spec: Sequence[dict], name: str = "custom") -> "AdaptationPipeline":
        """Build a pipeline from a JSON-style spec.

        ``spec`` is a list of ``{"step": <name>, ...params}`` dicts using the
        names in :data:`STEP_LIBRARY`.
        """
        steps = []
        for item in spec:
            item = dict(item)
            kind = item.pop("step", None)
            if kind not in STEP_LIBRARY:
                raise ValidationError(f"unknown adaptation step {kind!r}; known: {sorted(STEP_LIBRARY)}")
            try:
                fn = STEP_LIBRARY[kind](**item)
            except TypeError as exc:
                raise ValidationError(f"bad parameters for step {kind!r}: {exc}") from exc
            steps.append(AdaptStep(kind, fn))
        return cls(tuple(steps), name=name)

    def describe(self) -> dict:
        return {"name": self.name, "steps": [s.name for s in self.steps]}


def identity_pipeline() -> AdaptationPipeline:
    """A pipeline with no steps (ingest normalisation only)."""
    return AdaptationPipeline((), name="identity")


def default_fibsem_pipeline(*, denoise: str = "bilateral") -> AdaptationPipeline:
    """The adaptation recipe used for the paper's FIB-SEM benchmarks.

    Bilateral denoising preserves the film/background interface, then CLAHE
    recovers local contrast inside the film where the catalyst lives.
    """
    denoisers: dict[str, AdaptStep] = {
        "bilateral": AdaptStep("bilateral", lambda img: denoise_bilateral(img, sigma_spatial=1.5, sigma_range=0.12)),
        "gaussian": AdaptStep("gaussian", lambda img: denoise_gaussian(img, sigma=1.0)),
        "median": AdaptStep("median", lambda img: denoise_median(img, size=3)),
        "nlm": AdaptStep("nlm", lambda img: denoise_nlm(img, search_radius=3)),
        "none": AdaptStep("none", lambda img: img),
    }
    if denoise not in denoisers:
        raise ValidationError(f"denoise must be one of {sorted(denoisers)}, got {denoise!r}")
    steps = (
        denoisers[denoise],
        AdaptStep("clahe", lambda img: clahe(img, tiles=(8, 8), clip_limit=2.5)),
    )
    return AdaptationPipeline(steps, name=f"fibsem-{denoise}")
