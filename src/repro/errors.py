"""Exception hierarchy for the repro (Zenesis reproduction) library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with one clause while still discriminating on the
specific failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (shape, dtype, range, or enum value)."""


class FormatError(ReproError, ValueError):
    """A byte stream is not a valid instance of the declared file format."""


class CodecError(FormatError):
    """A file is syntactically valid but uses an unsupported encoding."""


class UnknownFormatError(FormatError):
    """A byte stream matches no known format signature.

    ``reason`` distinguishes an empty (zero-byte) file from content whose
    magic bytes match nothing — the upload path reports them differently.
    """

    def __init__(self, message: str, *, reason: str = "unknown_magic") -> None:
        super().__init__(message)
        self.reason = reason


class CorruptTileError(FormatError):
    """One tile (slice/page) of a streamed volume failed validation.

    ``kind`` classifies the damage:

    * ``"torn"``       — truncated tail: the file ends before the tile's
      declared bytes (power cut / interrupted transfer).
    * ``"flip"``       — the tile decoded structurally but its checksum
      disagrees with the sidecar manifest (bit rot / bad DMA).
    * ``"unreadable"`` — the tile's metadata or encoding is malformed
      (corrupt IFD entry, bad zlib stream, shape mismatch).

    ``salvage`` optionally carries a best-effort decode (e.g. a torn tile
    zero-filled to full shape) for the ``on_corrupt="degrade"`` policy.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "unreadable",
        tile: int | None = None,
        path: str | None = None,
        salvage=None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.tile = tile
        self.path = path
        self.salvage = salvage


class ModelConfigError(ReproError, ValueError):
    """A model was constructed with an inconsistent configuration."""


class PromptError(ReproError, ValueError):
    """A segmentation prompt is malformed or inconsistent with the image."""


class PipelineError(ReproError, RuntimeError):
    """A pipeline stage failed in a way that invalidates downstream stages."""


class GroundingError(PipelineError):
    """The grounding stage produced no usable boxes for the given prompt."""


class EvaluationError(ReproError, RuntimeError):
    """Metric evaluation was requested on incompatible inputs."""


class ParallelError(ReproError, RuntimeError):
    """A parallel-execution primitive failed (pool, shared memory, scheduler)."""


class SessionError(ReproError, RuntimeError):
    """A platform session was driven through an invalid state transition."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint manifest or mask shard is unusable for resume.

    Raised when a resume is requested against a manifest whose fingerprint
    does not match the current (volume, prompt, config) triple, or when a
    shard referenced by the manifest cannot be read back.
    """


class RetryExhaustedError(ReproError, RuntimeError):
    """A :class:`repro.resilience.RetryPolicy` ran out of attempts.

    The final underlying exception is attached as ``__cause__`` so callers
    can still discriminate on the original failure mode.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """A :class:`repro.resilience.Deadline` budget was exhausted mid-operation."""


class AdmissionRejectedError(ReproError, RuntimeError):
    """The serving admission gate shed a request (server at capacity).

    ``retry_after_s`` is the hint a client (or the HTTP layer's
    ``Retry-After`` header) should wait before re-submitting.
    """

    def __init__(self, message: str, *, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class CircuitOpenError(ReproError, RuntimeError):
    """A circuit breaker is open: the protected stage is being skipped.

    Callers that have a degraded path should catch this and fall back;
    callers that do not will surface it as a structured error.
    """


class JobError(ReproError, RuntimeError):
    """A background job could not be submitted, scheduled, or executed."""


class UnknownJobError(JobError):
    """A job id does not resolve to any job the store has ever journaled."""


class JobCancelledError(JobError):
    """A job observed its cooperative cancel flag and stopped cleanly.

    Raised from inside the job's execution path (via the request-deadline
    machinery) so the runner can mark the record ``cancelled`` rather than
    ``failed``.
    """


class ZooError(ReproError, RuntimeError):
    """The model-zoo registry or batch orchestrator was misused or misread.

    Covers malformed ``zoo.json`` overlays, invalid preset definitions, and
    batch-level orchestration failures that are not attributable to a single
    job (those surface as :class:`JobError` on the job record instead).
    """


class UnknownPresetError(ZooError):
    """A preset name does not resolve to any registry entry.

    ``known`` carries the sorted names the registry does hold so CLI and
    platform callers can render an actionable structured error instead of a
    ``KeyError`` traceback.
    """

    def __init__(self, message: str, *, known: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.known = tuple(known)


class EmptyBatchError(ZooError):
    """A batch submission found zero recognizable volumes in the directory.

    ``skipped`` lists ``(name, reason)`` pairs for entries that were present
    but rejected by the sniffers, so the error distinguishes "empty folder"
    from "folder full of unreadable files".
    """

    def __init__(self, message: str, *, skipped: tuple[tuple[str, str], ...] = ()) -> None:
        super().__init__(message)
        self.skipped = tuple(skipped)


class UnknownSessionError(SessionError):
    """A session id does not resolve to a live session.

    ``evicted_reason`` distinguishes ids the store never issued (``None``)
    from sessions it evicted (``"ttl"`` / ``"capacity"``), so the API can
    tell a client to recreate its workspace rather than retry.
    """

    def __init__(self, message: str, *, evicted_reason: str | None = None) -> None:
        super().__init__(message)
        self.evicted_reason = evicted_reason
