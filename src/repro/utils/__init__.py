"""Cross-cutting utilities: deterministic RNG, validation, timing, logging."""

from .logging import configure, get_logger
from .rng import GLOBAL_SEED, as_rng, derive_seed, make_rng, spawn_rng
from .timing import StageProfiler, StageRecord, Timer
from .validation import (
    ensure_2d,
    ensure_3d,
    ensure_box,
    ensure_in,
    ensure_mask,
    ensure_ndarray,
    ensure_positive,
    ensure_range,
)

__all__ = [
    "GLOBAL_SEED",
    "StageProfiler",
    "StageRecord",
    "Timer",
    "as_rng",
    "configure",
    "derive_seed",
    "ensure_2d",
    "ensure_3d",
    "ensure_box",
    "ensure_in",
    "ensure_mask",
    "ensure_ndarray",
    "ensure_positive",
    "ensure_range",
    "get_logger",
    "make_rng",
    "spawn_rng",
]
