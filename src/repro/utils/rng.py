"""Deterministic random-number utilities.

Every stochastic component in the library (synthetic data, model weight
initialisation, HITL box proposals) draws from a :class:`numpy.random.Generator`
obtained through :func:`make_rng` so that a single integer seed reproduces an
entire experiment bit-for-bit.  Sub-streams are derived with
:func:`spawn_rng` / :func:`derive_seed` which hash a textual key into the seed
sequence, so adding a new consumer never perturbs existing streams.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["make_rng", "derive_seed", "spawn_rng", "as_rng", "GLOBAL_SEED"]

#: Library-wide default seed used when callers do not supply one.
GLOBAL_SEED = 20250701  # the paper's date stamp (July 1, 2025)

_MASK64 = (1 << 64) - 1


def derive_seed(base_seed: int, *keys: str | int) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of stream keys.

    The derivation is a SHA-256 hash of the base seed and the keys, folded to
    64 bits.  It is stable across processes and Python versions (unlike
    ``hash()``), which matters because Mode B workers re-derive their streams
    independently.
    """
    h = hashlib.sha256()
    h.update(str(int(base_seed)).encode("ascii"))
    for key in keys:
        h.update(b"\x00")
        h.update(str(key).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "little") & _MASK64


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an integer seed.

    ``None`` selects :data:`GLOBAL_SEED`, keeping the default fully
    deterministic; pass an explicit ``numpy.random.Generator`` through
    :func:`as_rng` instead when you already hold a stream.
    """
    if seed is None:
        seed = GLOBAL_SEED
    return np.random.default_rng(int(seed) & _MASK64)


def spawn_rng(rng_or_seed: np.random.Generator | int | None, *keys: str | int) -> np.random.Generator:
    """Spawn an independent child generator for the stream named by ``keys``.

    When given a generator, a 64-bit word is drawn from it to seed the child
    (cheap, sequential-dependence acceptable for intra-component use).  When
    given an integer (or ``None``), the child seed is derived positionally via
    :func:`derive_seed` so parallel workers agree without communication.
    """
    if isinstance(rng_or_seed, np.random.Generator):
        base = int(rng_or_seed.integers(0, _MASK64, dtype=np.uint64))
    else:
        base = GLOBAL_SEED if rng_or_seed is None else int(rng_or_seed)
    return make_rng(derive_seed(base, *keys))


def as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce ``rng`` (generator, seed, or ``None``) into a generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return make_rng(rng)


def stable_choice(rng: np.random.Generator, items: Iterable, size: int) -> list:
    """Choose ``size`` items without replacement, preserving input order.

    Used by the HITL simulator to sample candidate boxes reproducibly while
    keeping the (deterministic) ranking order of the remaining pipeline.
    """
    seq = list(items)
    if size >= len(seq):
        return seq
    idx = rng.choice(len(seq), size=size, replace=False)
    return [seq[i] for i in sorted(int(i) for i in idx)]
