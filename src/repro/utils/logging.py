"""Structured logging configured once for the whole library.

The platform layer streams these records to the browser console in the real
product; here they go to stderr with a compact format.  Nothing in the library
calls ``basicConfig`` implicitly — tests stay quiet unless they opt in.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "configure"]

_ROOT_NAME = "repro"
_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("core.pipeline")`` → logger ``repro.core.pipeline``.
    """
    if not name:
        return logging.getLogger(_ROOT_NAME)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure(level: int | str = logging.INFO) -> logging.Logger:
    """Attach a stderr handler to the library root logger (idempotent)."""
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in root.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
    return root
