"""Wall-clock instrumentation for pipeline stages.

The paper advertises a *real-time* evaluation framework; the reproduction
treats timing as a first-class output so the Fig. 2 workflow bench can report
per-stage latencies.  Following the "no optimization without measuring" rule
from the scientific-python optimisation guide, every pipeline exposes its
:class:`StageProfiler` rather than ad-hoc prints.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..observability.metrics import get_registry
from ..observability.trace import get_tracer

__all__ = ["Timer", "StageProfiler", "StageRecord"]


class Timer:
    """A minimal stopwatch based on :func:`time.perf_counter`.

    Usable either as a context manager or via explicit ``start``/``stop``.
    ``elapsed`` reports the latest completed interval in seconds.

    Re-entrant safe: ``start``/``with`` calls nest (a stack of start
    times), so the historical ``stop()``-without-``start()`` asymmetry —
    ``with`` blocks blowing up when the body already called ``stop()``, or
    nested use corrupting the outer interval — is gone.  ``stop()`` on a
    never-started timer still raises, as that is always a caller bug.
    """

    def __init__(self) -> None:
        self._starts: list[float] = []
        self.elapsed: float = 0.0

    @property
    def running(self) -> bool:
        return bool(self._starts)

    def start(self) -> "Timer":
        self._starts.append(time.perf_counter())
        return self

    def stop(self) -> float:
        if not self._starts:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._starts.pop()
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        # Tolerate a body that already stopped its own interval; exceptions
        # still record the partial interval instead of raising a second time.
        if self._starts:
            self.stop()


@dataclass
class StageRecord:
    """Aggregate timing for one named stage."""

    name: str
    calls: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    def add(self, dt: float) -> None:
        self.calls += 1
        self.total_s += dt
        self.min_s = min(self.min_s, dt)
        self.max_s = max(self.max_s, dt)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


@dataclass
class StageProfiler:
    """Accumulates wall time per named stage across repeated pipeline runs.

    Besides stage timings the profiler carries named integer *counters*
    (cache hits/misses/evictions, bytes per tier, …) so one object feeds
    both the timing table and the Fig. 8 dashboard's cache card.
    """

    records: dict[str, StageRecord] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str):
        """Context manager timing one execution of ``name``.

        Each call also feeds the unified observability layer: the duration
        is observed into the global ``repro_stage_seconds`` histogram
        (latency percentiles for manifests and the dashboard), and when a
        tracer is active the stage becomes a span in the trace tree.
        """
        tracer = get_tracer()
        span = tracer.begin(name) if tracer is not None else None
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.records.setdefault(name, StageRecord(name)).add(dt)
            get_registry().histogram("repro_stage_seconds", stage=name).observe(dt)
            if tracer is not None:
                tracer.finish(span)

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + int(n)

    def set_counter(self, name: str, value: int) -> None:
        """Set counter ``name`` to an absolute value (gauges: bytes, entries)."""
        self.counters[name] = int(value)

    def set_counters(self, values: dict[str, int]) -> None:
        """Bulk :meth:`set_counter` (e.g. a cache counter snapshot)."""
        for name, value in values.items():
            self.set_counter(name, value)

    def counter_rows(self) -> list[dict]:
        """Counters as name-sorted rows for tables and the dashboard."""
        return [{"counter": k, "value": self.counters[k]} for k in sorted(self.counters)]

    def merge(self, other: "StageProfiler") -> None:
        """Fold another profiler's records into this one (for Mode B workers)."""
        for name, rec in other.records.items():
            mine = self.records.setdefault(name, StageRecord(name))
            mine.calls += rec.calls
            mine.total_s += rec.total_s
            mine.min_s = min(mine.min_s, rec.min_s)
            mine.max_s = max(mine.max_s, rec.max_s)
        for name, value in other.counters.items():
            self.count(name, value)

    def total(self) -> float:
        """Sum of all stage totals (>= true wall time when stages nest)."""
        return sum(r.total_s for r in self.records.values())

    def as_rows(self) -> list[dict]:
        """Rows for the dashboard: stage, calls, total/mean/min/max seconds."""
        return [
            {
                "stage": r.name,
                "calls": r.calls,
                "total_s": r.total_s,
                "mean_s": r.mean_s,
                "min_s": r.min_s,
                "max_s": r.max_s,
            }
            for r in sorted(self.records.values(), key=lambda r: -r.total_s)
        ]

    def format_table(self) -> str:
        """Fixed-width text table, largest total first; counters below."""
        rows = self.as_rows()
        if not rows and not self.counters:
            return "(no stages recorded)"
        lines: list[str] = []
        if rows:
            header = f"{'stage':<28}{'calls':>7}{'total[s]':>11}{'mean[s]':>11}{'min[s]':>11}{'max[s]':>11}"
            lines += [header, "-" * len(header)]
            for r in rows:
                lines.append(
                    f"{r['stage']:<28}{r['calls']:>7}{r['total_s']:>11.4f}"
                    f"{r['mean_s']:>11.4f}{r['min_s']:>11.4f}{r['max_s']:>11.4f}"
                )
        if self.counters:
            if lines:
                lines.append("")
            chead = f"{'counter':<40}{'value':>15}"
            lines += [chead, "-" * len(chead)]
            for row in self.counter_rows():
                lines.append(f"{row['counter']:<40}{row['value']:>15}")
        return "\n".join(lines)
