"""Argument-validation helpers shared across the library.

These helpers centralise the error messages raised for malformed user input
so the platform layer can surface them verbatim in API responses.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ValidationError

__all__ = [
    "ensure_ndarray",
    "ensure_2d",
    "ensure_3d",
    "ensure_finite",
    "ensure_in",
    "ensure_positive",
    "ensure_range",
    "ensure_box",
    "ensure_mask",
]


def ensure_ndarray(value, name: str = "array") -> np.ndarray:
    """Coerce ``value`` to an ndarray, rejecting object dtypes."""
    arr = np.asarray(value)
    if arr.dtype == object:
        raise ValidationError(f"{name} must be numeric, got object dtype")
    return arr


def ensure_2d(value, name: str = "image") -> np.ndarray:
    """Require a 2-D array (a single grayscale slice)."""
    arr = ensure_ndarray(value, name)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-D, got shape {arr.shape}")
    if arr.shape[0] < 1 or arr.shape[1] < 1:
        raise ValidationError(f"{name} must be non-empty, got shape {arr.shape}")
    return arr


def ensure_3d(value, name: str = "volume") -> np.ndarray:
    """Require a 3-D array ordered (slice, row, col)."""
    arr = ensure_ndarray(value, name)
    if arr.ndim != 3:
        raise ValidationError(f"{name} must be 3-D (Z, Y, X), got shape {arr.shape}")
    if min(arr.shape) < 1:
        raise ValidationError(f"{name} must be non-empty, got shape {arr.shape}")
    return arr


def ensure_finite(value, name: str = "array") -> np.ndarray:
    """Require a non-empty numeric array with no NaN or ±inf entries.

    The platform upload path runs every user array through this before it
    reaches the pipeline: a NaN-poisoned instrument export must surface as
    a structured validation error, not as silently-empty masks (NaN
    comparisons are all-False) or a numeric crash deep in a stage.
    """
    arr = ensure_ndarray(value, name)
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty, got shape {arr.shape}")
    if np.issubdtype(arr.dtype, np.floating) or np.issubdtype(arr.dtype, np.complexfloating):
        bad = ~np.isfinite(arr)
        if bad.any():
            n_nan = int(np.isnan(arr).sum())
            n_inf = int(bad.sum()) - n_nan
            raise ValidationError(
                f"{name} contains non-finite values ({n_nan} NaN, {n_inf} inf "
                f"of {arr.size} elements)"
            )
    return arr


def ensure_in(value, options: Sequence, name: str = "value"):
    """Require ``value`` to be one of ``options``."""
    if value not in options:
        raise ValidationError(f"{name} must be one of {sorted(map(str, options))}, got {value!r}")
    return value


def ensure_positive(value, name: str = "value", *, strict: bool = True):
    """Require a (strictly) positive scalar."""
    if strict and not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def ensure_range(value, lo, hi, name: str = "value"):
    """Require ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValidationError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def ensure_box(box, image_shape: tuple[int, int] | None = None, name: str = "box") -> np.ndarray:
    """Validate an XYXY box; optionally require it to intersect the image.

    Boxes use the (x0, y0, x1, y1) convention with x along columns, matching
    GroundingDINO / SAM output conventions.
    """
    arr = np.asarray(box, dtype=np.float64).reshape(-1)
    if arr.shape != (4,):
        raise ValidationError(f"{name} must have 4 coordinates (x0, y0, x1, y1), got {box!r}")
    x0, y0, x1, y1 = arr
    if not (x1 > x0 and y1 > y0):
        raise ValidationError(f"{name} must satisfy x1 > x0 and y1 > y0, got {arr.tolist()}")
    if image_shape is not None:
        h, w = image_shape
        if x1 <= 0 or y1 <= 0 or x0 >= w or y0 >= h:
            raise ValidationError(
                f"{name} {arr.tolist()} does not intersect image of shape {(h, w)}"
            )
    return arr


def ensure_mask(mask, shape: tuple[int, ...] | None = None, name: str = "mask") -> np.ndarray:
    """Validate a boolean mask, optionally against an expected shape."""
    arr = np.asarray(mask)
    if arr.dtype != bool:
        if not np.isin(np.unique(arr), (0, 1)).all():
            raise ValidationError(f"{name} must be boolean or 0/1-valued")
        arr = arr.astype(bool)
    if shape is not None and arr.shape != tuple(shape):
        raise ValidationError(f"{name} shape {arr.shape} != expected {tuple(shape)}")
    return arr
