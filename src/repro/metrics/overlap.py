"""Region-overlap metrics: IoU (Jaccard) and Dice, the paper's headline numbers."""

from __future__ import annotations

import numpy as np

from ..utils.validation import ensure_mask

__all__ = ["iou", "dice", "iou_to_dice", "dice_to_iou"]


def iou(pred, gt) -> float:
    """Intersection over union.  Empty-vs-empty is defined as 1.0."""
    p = ensure_mask(pred, name="pred")
    g = ensure_mask(gt, shape=p.shape, name="gt")
    inter = int(np.count_nonzero(p & g))
    union = int(np.count_nonzero(p | g))
    if union == 0:
        return 1.0
    return inter / union


def dice(pred, gt) -> float:
    """Dice coefficient 2|A∩B| / (|A|+|B|).  Empty-vs-empty is 1.0."""
    p = ensure_mask(pred, name="pred")
    g = ensure_mask(gt, shape=p.shape, name="gt")
    inter = int(np.count_nonzero(p & g))
    denom = int(np.count_nonzero(p)) + int(np.count_nonzero(g))
    if denom == 0:
        return 1.0
    return 2.0 * inter / denom


def iou_to_dice(value: float) -> float:
    """Convert an IoU value to the equivalent Dice value (same masks)."""
    return 2.0 * value / (1.0 + value) if value >= 0 else 0.0


def dice_to_iou(value: float) -> float:
    """Convert a Dice value to the equivalent IoU value (same masks)."""
    return value / (2.0 - value) if value >= 0 else 0.0
