"""Pixel-level confusion metrics: accuracy, precision, recall, specificity, F1."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.validation import ensure_mask

__all__ = ["ConfusionCounts", "confusion_counts", "accuracy", "precision", "recall", "specificity", "f1_score"]


@dataclass(frozen=True)
class ConfusionCounts:
    """Raw TP/FP/FN/TN pixel counts for one (prediction, ground-truth) pair."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def specificity(self) -> float:
        denom = self.tn + self.fp
        return self.tn / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def confusion_counts(pred, gt) -> ConfusionCounts:
    """Count TP/FP/FN/TN between two same-shape boolean masks."""
    p = ensure_mask(pred, name="pred")
    g = ensure_mask(gt, shape=p.shape, name="gt")
    tp = int(np.count_nonzero(p & g))
    fp = int(np.count_nonzero(p & ~g))
    fn = int(np.count_nonzero(~p & g))
    tn = int(np.count_nonzero(~p & ~g))
    return ConfusionCounts(tp=tp, fp=fp, fn=fn, tn=tn)


def accuracy(pred, gt) -> float:
    """Fraction of pixels classified correctly."""
    return confusion_counts(pred, gt).accuracy


def precision(pred, gt) -> float:
    """TP / (TP + FP)."""
    return confusion_counts(pred, gt).precision


def recall(pred, gt) -> float:
    """TP / (TP + FN)."""
    return confusion_counts(pred, gt).recall


def specificity(pred, gt) -> float:
    """TN / (TN + FP)."""
    return confusion_counts(pred, gt).specificity


def f1_score(pred, gt) -> float:
    """Harmonic mean of precision and recall (== Dice for boolean masks)."""
    return confusion_counts(pred, gt).f1
