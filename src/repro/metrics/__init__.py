"""Segmentation metrics: confusion, overlap, boundary, and aggregation."""

from .aggregate import MetricSummary, bootstrap_ci, summarize, summarize_records
from .boundary import boundary_f1, hausdorff_distance
from .confusion import (
    ConfusionCounts,
    accuracy,
    confusion_counts,
    f1_score,
    precision,
    recall,
    specificity,
)
from .overlap import dice, dice_to_iou, iou, iou_to_dice
from .volumetric import (
    ParticleStats,
    particle_statistics,
    slice_profile_correlation,
    volumetric_dice,
    volumetric_iou,
)

__all__ = [
    "ConfusionCounts",
    "MetricSummary",
    "ParticleStats",
    "accuracy",
    "bootstrap_ci",
    "boundary_f1",
    "confusion_counts",
    "dice",
    "dice_to_iou",
    "f1_score",
    "hausdorff_distance",
    "iou",
    "iou_to_dice",
    "precision",
    "recall",
    "specificity",
    "particle_statistics",
    "slice_profile_correlation",
    "summarize",
    "summarize_records",
    "volumetric_dice",
    "volumetric_iou",
]
