"""Boundary-aware metrics: Hausdorff distance (incl. HD95) and boundary F1.

Complement the overlap metrics: two masks with equal IoU can have very
different boundary quality, which matters for morphology measurements
(surface area of catalyst, for instance).
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import distance_transform_edt

from ..core.masks import mask_boundary
from ..utils.validation import ensure_mask

__all__ = ["hausdorff_distance", "boundary_f1"]


def _boundary_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Distances from each boundary pixel of ``a`` to the boundary of ``b``."""
    dist_to_b = distance_transform_edt(~mask_boundary(b))
    return dist_to_b[mask_boundary(a)]


def hausdorff_distance(pred, gt, *, percentile: float = 100.0) -> float:
    """(Percentile-)Hausdorff distance between mask boundaries, in pixels.

    ``percentile=95`` gives the robust HD95 variant.  Returns ``inf`` when
    exactly one mask is empty, 0.0 when both are.
    """
    p = ensure_mask(pred, name="pred")
    g = ensure_mask(gt, shape=p.shape, name="gt")
    if not p.any() and not g.any():
        return 0.0
    if not p.any() or not g.any():
        return float("inf")
    d_pg = _boundary_distances(p, g)
    d_gp = _boundary_distances(g, p)
    if percentile >= 100.0:
        return float(max(d_pg.max(), d_gp.max()))
    return float(max(np.percentile(d_pg, percentile), np.percentile(d_gp, percentile)))


def boundary_f1(pred, gt, *, tolerance_px: float = 2.0) -> float:
    """Boundary F1: precision/recall of boundary pixels within a tolerance."""
    p = ensure_mask(pred, name="pred")
    g = ensure_mask(gt, shape=p.shape, name="gt")
    bp = mask_boundary(p)
    bg = mask_boundary(g)
    if not bp.any() and not bg.any():
        return 1.0
    if not bp.any() or not bg.any():
        return 0.0
    dist_to_g = distance_transform_edt(~bg)
    dist_to_p = distance_transform_edt(~bp)
    prec = float((dist_to_g[bp] <= tolerance_px).mean())
    rec = float((dist_to_p[bg] <= tolerance_px).mean())
    if prec + rec == 0:
        return 0.0
    return 2 * prec * rec / (prec + rec)
