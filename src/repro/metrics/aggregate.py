"""Aggregation of per-sample metrics into dataset-level statistics.

The paper reports "mean ± std" per sample type; this module adds bootstrap
confidence intervals and a tidy :class:`MetricSummary` the dashboard and
benches consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..errors import EvaluationError
from ..utils.rng import as_rng

__all__ = ["MetricSummary", "summarize", "summarize_records", "bootstrap_ci"]


@dataclass(frozen=True)
class MetricSummary:
    """Mean ± std (plus extremes and count) for one metric over samples."""

    name: str
    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    def format(self, digits: int = 3) -> str:
        """The paper's 'mean±std' cell format."""
        return f"{self.mean:.{digits}f}±{self.std:.{digits}f}"

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "count": self.count,
        }


def summarize(name: str, values: Iterable[float]) -> MetricSummary:
    """Summary statistics over per-sample metric values."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise EvaluationError(f"no values to summarise for metric {name!r}")
    if not np.isfinite(arr).all():
        raise EvaluationError(f"metric {name!r} contains non-finite values")
    return MetricSummary(
        name=name,
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        count=int(arr.size),
    )


def summarize_records(records: Sequence[Mapping[str, float]], metrics: Sequence[str]) -> dict[str, MetricSummary]:
    """Column-wise summaries over a list of per-sample metric dicts."""
    out: dict[str, MetricSummary] = {}
    for m in metrics:
        try:
            vals = [r[m] for r in records]
        except KeyError as exc:
            raise EvaluationError(f"record missing metric {m!r}") from exc
        out[m] = summarize(m, vals)
    return out


def bootstrap_ci(
    values: Iterable[float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng=None,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise EvaluationError("bootstrap_ci needs at least one value")
    if not (0.0 < confidence < 1.0):
        raise EvaluationError(f"confidence must be in (0, 1), got {confidence}")
    rng = as_rng(rng)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.percentile(means, [100 * alpha, 100 * (1 - alpha)])
    return float(lo), float(hi)
