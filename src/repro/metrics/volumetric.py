"""Volumetric (3-D) metrics for Mode B results.

The paper's materials-science deliverables are volumetric: catalyst volume
fraction, particle statistics, and interfacial area.  These operate on
(Z, Y, X) boolean masks, with the anisotropic voxel size taken into account
where physical units matter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.ndimage import label

from ..errors import EvaluationError
from ..utils.validation import ensure_3d

__all__ = ["volumetric_iou", "volumetric_dice", "particle_statistics", "ParticleStats", "slice_profile_correlation"]


def _pair(pred, gt) -> tuple[np.ndarray, np.ndarray]:
    p = ensure_3d(pred, "pred").astype(bool)
    g = ensure_3d(gt, "gt").astype(bool)
    if p.shape != g.shape:
        raise EvaluationError(f"pred shape {p.shape} != gt shape {g.shape}")
    return p, g


def volumetric_iou(pred, gt) -> float:
    """IoU over all voxels (empty-vs-empty = 1.0)."""
    p, g = _pair(pred, gt)
    union = int(np.count_nonzero(p | g))
    if union == 0:
        return 1.0
    return int(np.count_nonzero(p & g)) / union


def volumetric_dice(pred, gt) -> float:
    """Dice over all voxels (empty-vs-empty = 1.0)."""
    p, g = _pair(pred, gt)
    denom = int(p.sum()) + int(g.sum())
    if denom == 0:
        return 1.0
    return 2.0 * int(np.count_nonzero(p & g)) / denom


@dataclass(frozen=True)
class ParticleStats:
    """3-D connected-component statistics of a segmented phase."""

    n_particles: int
    volume_fraction: float
    mean_volume_voxels: float
    largest_volume_voxels: int
    mean_extent_z: float  # mean Z span in slices (temporal coherence proxy)
    surface_to_volume: float  # exposed voxel faces per phase voxel

    def as_dict(self) -> dict:
        return {
            "n_particles": self.n_particles,
            "volume_fraction": self.volume_fraction,
            "mean_volume_voxels": self.mean_volume_voxels,
            "largest_volume_voxels": self.largest_volume_voxels,
            "mean_extent_z": self.mean_extent_z,
            "surface_to_volume": self.surface_to_volume,
        }


def particle_statistics(mask, *, min_voxels: int = 8) -> ParticleStats:
    """3-D particle statistics via 26-connected component analysis."""
    m = ensure_3d(mask, "mask").astype(bool)
    structure = np.ones((3, 3, 3), dtype=bool)  # 26-connectivity
    labels, n = label(m, structure=structure)
    if n == 0:
        return ParticleStats(0, 0.0, 0.0, 0, 0.0, 0.0)
    volumes = np.bincount(labels.ravel())[1:]
    keep = volumes >= min_voxels
    kept_ids = np.nonzero(keep)[0] + 1
    if kept_ids.size == 0:
        return ParticleStats(0, float(m.mean()), 0.0, 0, 0.0, _surface_to_volume(m))
    z_extents = []
    for pid in kept_ids:
        zs = np.nonzero((labels == pid).any(axis=(1, 2)))[0]
        z_extents.append(int(zs.max() - zs.min() + 1))
    kept_volumes = volumes[keep]
    return ParticleStats(
        n_particles=int(kept_ids.size),
        volume_fraction=float(m.mean()),
        mean_volume_voxels=float(kept_volumes.mean()),
        largest_volume_voxels=int(kept_volumes.max()),
        mean_extent_z=float(np.mean(z_extents)),
        surface_to_volume=_surface_to_volume(m),
    )


def _surface_to_volume(m: np.ndarray) -> float:
    """Exposed faces per voxel: counts phase/non-phase face adjacencies."""
    volume = int(m.sum())
    if volume == 0:
        return 0.0
    faces = 0
    for axis in range(3):
        a = m.swapaxes(0, axis)
        faces += int((a[1:] ^ a[:-1]).sum())  # internal boundaries
        faces += int(a[0].sum()) + int(a[-1].sum())  # domain boundary faces
    return faces / volume


def slice_profile_correlation(pred, gt) -> float:
    """Pearson correlation of per-slice area profiles (loading curves).

    A segmentation can have modest per-voxel IoU yet still recover the
    physically-important loading-vs-depth profile; this measures that.
    """
    p, g = _pair(pred, gt)
    a = p.reshape(p.shape[0], -1).mean(axis=1)
    b = g.reshape(g.shape[0], -1).mean(axis=1)
    if a.std() < 1e-12 or b.std() < 1e-12:
        return 1.0 if np.allclose(a, b) else 0.0
    return float(np.corrcoef(a, b)[0, 1])
