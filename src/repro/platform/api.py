"""The no-code JSON API: every platform capability as a request/response pair.

``ApiHandler.handle`` maps an action name + JSON-safe params onto session
operations, returning JSON-safe dicts.  Errors become ``{"ok": False,
"error": ..., "type": ...}`` rather than exceptions, so the HTTP layer and
the benchmark drivers share one contract.

Actions
-------
``create_session``, ``drop_session``, ``load_file``, ``load_array``
(base64 npy or nested-list upload), ``preview``, ``select_slice``,
``segment`` (Mode A), ``rectify``, ``further_segment``,
``segment_volume`` (Mode B), ``evaluate`` (Mode C), ``dashboard``,
``adapt_spec`` (custom adaptation pipelines), ``mask_png`` (render export),
``job_submit`` / ``job_status`` / ``job_result`` / ``job_events`` /
``job_cancel`` (durable background jobs; see :mod:`repro.jobs`).

Async contract: when a :class:`~repro.jobs.JobService` is attached,
``segment_volume`` on a volume of ``auto_job_slices`` slices or more is
*redirected* to a background job — the response carries ``accepted: true``
plus a ``job_id`` (the HTTP layer maps it to a 202) instead of blocking the
request thread for minutes.  ``mode: "sync"`` / ``mode: "async"`` override
the size heuristic per request.  Jobs snapshot their inputs at submit time,
so they outlive the session that spawned them.

Serving contract: session-bound actions run with the session's lock held
(concurrent requests on one session serialize; distinct sessions run in
parallel) and under a per-request :class:`~repro.resilience.Deadline`
(``request_deadline_s`` default, overridable per request via
``deadline_s``).  Deadline expiry raises *before* the session mutation
commits and surfaces as ``{"ok": false, "type": "DeadlineExceededError"}``
— the HTTP layer maps it to a 504.  Unknown or evicted session ids follow
the ``{"ok": false, "error": "unknown_session"}`` contract, with an
``evicted`` reason when the store aged the session out.
"""

from __future__ import annotations

import base64
import binascii
import io
from typing import Callable

import numpy as np

from ..adapt.pipeline import AdaptationPipeline
from ..core.prompts import SpatialHints
from ..data.datasets import make_benchmark_dataset
from ..errors import FormatError, JobError, ReproError, UnknownSessionError, ValidationError
from ..eval.dashboard import render_dashboard
from ..eval.evaluator import Evaluator
from ..eval.experiments import ExperimentSetup, build_methods
from ..io.png import encode_png
from ..resilience.policy import Deadline
from ..resilience.serving import default_breakers, request_scope, serving_snapshot
from ..viz.overlay import overlay_mask
from .session import Session, SessionStore

__all__ = ["ApiHandler"]

class ApiHandler:
    """Dispatches JSON actions onto a :class:`SessionStore`."""

    def __init__(
        self,
        store: SessionStore | None = None,
        *,
        request_deadline_s: float | None = None,
        jobs=None,
        auto_job_slices: int | None = None,
    ) -> None:
        # ``is not None``, not truthiness: an empty SessionStore has
        # ``len() == 0`` and must not be silently replaced.
        self.store = store if store is not None else SessionStore()
        # The serving path always has breakers; a store constructed without
        # them (plain library use) gets the standard grounding+SAM pair.
        if not self.store.breakers:
            self.store.breakers = default_breakers()
        self.breakers = self.store.breakers
        self.request_deadline_s = request_deadline_s
        #: Optional :class:`repro.jobs.JobService`; None disables job actions.
        self.jobs = jobs
        #: Volumes with at least this many slices go async (None: never).
        self.auto_job_slices = auto_job_slices
        self._actions: dict[str, Callable[[dict], dict]] = {
            "create_session": self._create_session,
            "drop_session": self._drop_session,
            "load_file": self._load_file,
            "load_array": self._load_array,
            "preview": self._preview,
            "select_slice": self._select_slice,
            "segment": self._segment,
            "rectify": self._rectify,
            "further_segment": self._further_segment,
            "segment_volume": self._segment_volume,
            "evaluate": self._evaluate,
            "dashboard": self._dashboard,
            "adapt_spec": self._adapt_spec,
            "mask_png": self._mask_png,
            "segment_multi": self._segment_multi,
            "propagate_volume": self._propagate_volume,
            "calibrate_concept": self._calibrate_concept,
            "zoo_list": self._zoo_list,
            "zoo_show": self._zoo_show,
            "job_submit": self._job_submit,
            "job_status": self._job_status,
            "job_result": self._job_result,
            "job_events": self._job_events,
            "job_cancel": self._job_cancel,
        }

    # -- dispatch -----------------------------------------------------------

    def _request_deadline(self, request: dict) -> Deadline | None:
        """The request's deadline: per-request ``deadline_s`` wins over the
        handler default; absent/non-positive means unbounded."""
        budget = request.get("deadline_s", self.request_deadline_s)
        if budget is None:
            return None
        budget = float(budget)
        return Deadline(budget) if budget > 0 else None

    def handle(self, request: dict) -> dict:
        """Process one request dict: ``{"action": ..., ...params}``."""
        action = request.get("action")
        handler = self._actions.get(action)  # type: ignore[arg-type]
        if handler is None:
            return {"ok": False, "type": "UnknownAction", "error": f"unknown action {action!r}; known: {sorted(self._actions)}"}
        try:
            deadline = self._request_deadline(request)
            with request_scope(deadline):
                sid = request.get("session_id")
                # create_session may carry a *proposed* id (the cluster
                # router's affinity contract) — it must not be resolved as
                # an existing session; drop_session is idempotent on gone
                # sessions; both bypass the store lookup.
                if sid is None or action in ("drop_session", "create_session"):
                    payload = handler(request)
                else:
                    session = self.store.get(str(sid))
                    with session.lock:
                        # Re-check after the lock wait: a request queued
                        # behind a long mutation may already be overdue.
                        if deadline is not None:
                            deadline.check(f"action {action!r} (queued on session lock)")
                        payload = handler(request)
        except UnknownSessionError as exc:
            payload = {"ok": False, "type": "SessionError", "error": "unknown_session", "detail": str(exc)}
            if exc.evicted_reason is not None:
                payload["evicted"] = exc.evicted_reason
            return payload
        except ReproError as exc:
            return {"ok": False, "type": type(exc).__name__, "error": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "type": type(exc).__name__, "error": str(exc)}
        payload.setdefault("ok", True)
        return payload

    def _session(self, request: dict) -> Session:
        return self.store.get(str(request["session_id"]))

    # -- handlers --------------------------------------------------------------

    def _create_session(self, request: dict) -> dict:
        """New workspace; honors a proposed ``session_id`` (idempotent)."""
        sid = request.get("session_id")
        session = self.store.create(session_id=str(sid) if sid is not None else None)
        return {"session_id": session.session_id}

    def _drop_session(self, request: dict) -> dict:
        """Release a workspace.  Idempotent: dropping twice is not an error."""
        self.store.drop(str(request["session_id"]))
        return {"dropped": True}

    def _load_file(self, request: dict) -> dict:
        """Load from a server-visible path; ``stream: true`` attaches the
        volume lazily (upload-by-path for data too large to post inline)."""
        session = self._session(request)
        preview = session.load_file(
            str(request["path"]),
            modality=request.get("modality", "unknown"),
            stream=bool(request.get("stream", False)),
        )
        return {"preview": preview}

    def _load_array(self, request: dict) -> dict:
        """Upload an array directly: base64 ``.npy`` bytes or nested lists.

        Every malformed payload — corrupt base64, truncated/invalid npy
        stream, ragged nested lists, NaN/inf values — surfaces as a
        structured ``{"ok": false}`` validation/format error, never as a
        traceback.
        """
        session = self._session(request)
        data = request.get("data_base64")
        if data is not None:
            try:
                raw = base64.b64decode(str(data), validate=True)
            except (binascii.Error, ValueError) as exc:
                raise ValidationError(f"data_base64 is not valid base64: {exc}") from None
            try:
                arr = np.load(io.BytesIO(raw), allow_pickle=False)
            except (ValueError, EOFError, OSError) as exc:
                raise FormatError(f"decoded payload is not a valid .npy stream: {exc}") from None
        elif "array" in request:
            try:
                arr = np.asarray(request["array"], dtype=np.float64)
            except (TypeError, ValueError) as exc:
                raise ValidationError(f"array payload is not rectangular/numeric: {exc}") from None
        else:
            raise ValidationError("load_array requires 'data_base64' or 'array'")
        preview = session.load_array(arr, modality=request.get("modality", "unknown"))
        return {"preview": preview}

    def _preview(self, request: dict) -> dict:
        return {"preview": self._session(request).preview()}

    def _select_slice(self, request: dict) -> dict:
        session = self._session(request)
        return {"preview": session.select_slice(int(request["index"]))}

    def _segment(self, request: dict) -> dict:
        session = self._session(request)
        hints = None
        if any(k in request for k in ("boxes", "positive_points", "negative_points")):
            hints = SpatialHints(
                boxes=tuple(tuple(b) for b in request.get("boxes", [])),
                positive_points=tuple(tuple(p) for p in request.get("positive_points", [])),
                negative_points=tuple(tuple(p) for p in request.get("negative_points", [])),
            )
        result = session.segment(str(request["prompt"]), hints=hints)
        payload = {"result": result.to_record()}
        degraded = result.metadata.get("degraded")
        if degraded:
            payload["degraded"] = True
            payload["degraded_stages"] = list(degraded)
        return payload

    def _rectify(self, request: dict) -> dict:
        session = self._session(request)
        return {"rectify": session.rectify_click(float(request["x"]), float(request["y"]))}

    def _further_segment(self, request: dict) -> dict:
        session = self._session(request)
        node = session.further_segment(request["box"], str(request["prompt"]))
        return {
            "depth": node.depth,
            "area": int(node.mask.sum()),
            "box": node.box.tolist() if node.box is not None else None,
        }

    def _segment_volume(self, request: dict) -> dict:
        session = self._session(request)
        mode = request.get("mode")  # None | "sync" | "async"
        if mode not in (None, "sync", "async"):
            raise ValidationError(f"mode must be 'sync' or 'async', got {mode!r}")
        n_slices = session.volume.shape[0] if session.volume is not None else 0
        go_async = mode == "async" or (
            mode is None
            and self.jobs is not None
            and self.auto_job_slices is not None
            and n_slices >= self.auto_job_slices
        )
        if session.lazy_volume is not None:
            # A streamed volume never runs synchronously — materializing it
            # is exactly what stream=True promised not to do.
            if mode == "sync":
                raise ValidationError(
                    "mode='sync' is invalid for a volume loaded with "
                    "stream=True; drop 'mode' to run it as a streaming job"
                )
            go_async = True
        if go_async:
            return self._submit_volume_job(session, request, redirected=mode is None)
        temporal_mode = request.get("temporal_mode")
        if temporal_mode is not None and temporal_mode not in ("meanbox", "propagate"):
            raise ValidationError(
                f"temporal_mode must be 'meanbox' or 'propagate', got {temporal_mode!r}"
            )
        result = session.segment_volume(
            str(request["prompt"]),
            temporal=bool(request.get("temporal", True)),
            temporal_mode=temporal_mode,
        )
        return {
            "n_slices": result.n_slices,
            "volume_fraction": result.volume_fraction(),
            "refinement": result.refinement_report,
            "per_slice_coverage": [float(m.mean()) for m in result.masks],
        }

    # -- background jobs -------------------------------------------------------

    def _require_jobs(self):
        if self.jobs is None:
            raise JobError(
                "background jobs are disabled on this server "
                "(start the server with a jobs directory)"
            )
        return self.jobs

    def _submit_volume_job(self, session: Session, request: dict, *, redirected: bool) -> dict:
        """Turn a segment_volume request into a durable background job."""
        jobs = self._require_jobs()
        if session.lazy_volume is not None:
            if session.lazy_volume.source_path is None:
                raise JobError("streaming jobs need an on-disk source volume")
            job = jobs.submit_segment_volume_path(
                session.lazy_volume.source_path,
                str(request["prompt"]),
                temporal=bool(request.get("temporal", True)),
                temporal_mode=str(request.get("temporal_mode", "meanbox")),
                on_corrupt=str(request.get("on_corrupt", "fail")),
                memory_budget_mb=float(request.get("memory_budget_mb", 64.0)),
                deadline_s=request.get("job_deadline_s"),
                priority=int(request.get("priority", 0)),
                session_id=session.session_id,
            )
        elif session.volume is None:
            raise JobError("segment_volume jobs require a loaded volume")
        else:
            job = jobs.submit_segment_volume(
                session.volume.voxels,
                str(request["prompt"]),
                temporal=bool(request.get("temporal", True)),
                temporal_mode=str(request.get("temporal_mode", "meanbox")),
                n_workers=int(request.get("n_workers", 1)),
                deadline_s=request.get("job_deadline_s"),
                priority=int(request.get("priority", 0)),
                session_id=session.session_id,
            )
        session.job_ids.append(job.job_id)
        session.history.append({"action": "job_submit", "job_id": job.job_id, "kind": job.kind})
        return {"accepted": True, "job_id": job.job_id, "job": job.public_view(), "redirected": redirected}

    def _zoo_registry(self):
        """The preset registry, with the jobs dir's ``zoo.json`` overlay when
        the server has one."""
        from ..zoo import load_registry

        jobs_dir = self.jobs.store.root if self.jobs is not None else None
        return load_registry(jobs_dir)

    def _zoo_list(self, request: dict) -> dict:
        registry = self._zoo_registry()
        doc = registry.describe()
        px = request.get("pixel_size_nm")
        if px is not None:
            doc["suggested"] = list(registry.suggest(float(px)))
        return {"zoo": doc}

    def _zoo_show(self, request: dict) -> dict:
        # registry.get raises UnknownPresetError -> structured ok:false.
        return {"preset": self._zoo_registry().get(str(request["preset"])).describe()}

    def _submit_zoo_job(self, request: dict) -> dict:
        """``job_submit`` with ``kind: zoo_segment`` — preset-driven, durable,
        idempotent per (volume content, preset, mode)."""
        jobs = self._require_jobs()
        path = request.get("path")
        session_id = request.get("session_id")
        session = self._session(request) if session_id is not None else None
        if path is None and session is not None and session.lazy_volume is not None:
            path = session.lazy_volume.source_path
        if path is None:
            raise JobError("zoo_segment jobs need 'path' (or a session with a streamed volume)")
        ensemble = request.get("ensemble")
        job, created = jobs.submit_zoo_segment(
            str(path),
            str(request["preset"]),
            mode=str(request.get("mode", "best")),
            stream=bool(request.get("stream", False)),
            on_corrupt=str(request.get("on_corrupt", "fail")),
            memory_budget_mb=float(request.get("memory_budget_mb", 64.0)),
            ensemble=dict(ensemble) if ensemble else None,
            deadline_s=request.get("job_deadline_s"),
            priority=int(request.get("priority", 0)),
            session_id=str(session_id) if session_id is not None else None,
        )
        if session is not None:
            session.job_ids.append(job.job_id)
            session.history.append(
                {"action": "job_submit", "job_id": job.job_id, "kind": job.kind}
            )
        return {
            "accepted": True,
            "job_id": job.job_id,
            "job": job.public_view(),
            "created": created,
        }

    def _job_submit(self, request: dict) -> dict:
        """Explicit submit of any job kind; ``accepted: true`` maps to 202."""
        jobs = self._require_jobs()
        kind = str(request.get("kind", "segment_volume"))
        if kind == "segment_volume":
            return self._submit_volume_job(self._session(request), request, redirected=False)
        if kind == "zoo_segment":
            return self._submit_zoo_job(request)
        session_id = request.get("session_id")
        job = jobs.submit(
            kind,
            dict(request.get("params", {})),
            priority=int(request.get("priority", 0)),
            session_id=str(session_id) if session_id is not None else None,
        )
        if session_id is not None:
            session = self._session(request)
            session.job_ids.append(job.job_id)
            session.history.append({"action": "job_submit", "job_id": job.job_id, "kind": kind})
        return {"accepted": True, "job_id": job.job_id, "job": job.public_view()}

    def _job_status(self, request: dict) -> dict:
        return {"job": self._require_jobs().status(str(request["job_id"]))}

    def _job_result(self, request: dict) -> dict:
        return self._require_jobs().result(str(request["job_id"]))

    def _job_events(self, request: dict) -> dict:
        """Incremental progress: events past ``cursor`` + the next cursor."""
        return self._require_jobs().events(
            str(request["job_id"]),
            cursor=int(request.get("cursor", 0)),
            limit=int(request["limit"]) if "limit" in request else None,
        )

    def _job_cancel(self, request: dict) -> dict:
        return {"job": self._require_jobs().cancel(str(request["job_id"]))}

    def _evaluate(self, request: dict) -> dict:
        """Mode C on the built-in benchmark (or a reduced variant)."""
        shape = tuple(request.get("shape", (128, 128)))
        n_slices = int(request.get("n_slices", 3))
        methods = request.get("methods", ["otsu"])
        setup = ExperimentSetup(dataset=make_benchmark_dataset(shape=shape, n_slices=n_slices))
        evaluator = Evaluator(build_methods(setup))
        evaluations = evaluator.evaluate(setup.dataset.slices, method_names=methods)
        out = {}
        for name, ev in evaluations.items():
            out[name] = {
                kind: {m: s.as_dict() for m, s in ev.summary(kind).items()} for kind in ev.kinds()
            }
        self._last_evaluations = evaluations
        return {"evaluations": out}

    def _dashboard(self, request: dict) -> dict:
        del request
        evaluations = getattr(self, "_last_evaluations", None)
        if not evaluations:
            return {"ok": False, "type": "SessionError", "error": "run evaluate before dashboard"}
        return {
            "html": render_dashboard(
                evaluations,
                serving=serving_snapshot(breakers=self.breakers, store=self.store),
                jobs=self.jobs.snapshot() if self.jobs is not None else None,
            )
        }

    def _adapt_spec(self, request: dict) -> dict:
        """Validate + apply a custom adaptation spec to the active image."""
        session = self._session(request)
        pipeline = AdaptationPipeline.from_spec(request["steps"])
        adapted = pipeline.run_on(session.current_image())
        return {"describe": adapted.describe(), "pipeline": pipeline.describe()}

    def _segment_multi(self, request: dict) -> dict:
        """Multi-object segmentation: several prompts, exclusive label map."""
        from ..core.multiobject import segment_multi

        session = self._session(request)
        prompts = [str(p) for p in request["prompts"]]
        result = segment_multi(session.pipeline, session.current_image(), prompts)
        return {
            "classes": list(result.class_names),
            "coverage": result.coverage(),
            "unassigned": float((result.labels == 0).mean()),
        }

    def _propagate_volume(self, request: dict) -> dict:
        """SAM2-style propagation through the loaded volume."""
        from ..core.propagation import propagate_volume

        session = self._session(request)
        if session.volume is None:
            return {"ok": False, "type": "SessionError", "error": "propagate_volume requires a loaded volume"}
        result = propagate_volume(
            session.pipeline,
            session.volume,
            str(request["prompt"]),
            reference_slice=int(request.get("reference_slice", 0)),
        )
        session.last_volume_result = result
        return {
            "n_slices": result.n_slices,
            "volume_fraction": result.volume_fraction(),
            "regrounds": result.refinement_report.get("regrounds", 0),
        }

    def _calibrate_concept(self, request: dict) -> dict:
        """Fine-tuning: fit a concept from mask annotations on given slices.

        ``annotations`` is a list of {"slice": int, "mask_rle": {...}} using
        the RLE format the segment action exports.
        """
        from ..core.masks import rle_decode
        from ..models.tuning import register_calibrated_concept

        session = self._session(request)
        if session.volume is None:
            return {"ok": False, "type": "SessionError", "error": "calibrate_concept requires a loaded volume"}
        word = str(request["word"])
        images, masks = [], []
        for ann in request["annotations"]:
            z = int(ann["slice"])
            _, seg_img = session.pipeline.adapt(session.volume.voxels[z])
            images.append(seg_img)
            masks.append(rle_decode(ann["mask_rle"]))
        result = register_calibrated_concept(session.pipeline.dino.lexicon, word, images, masks)
        return {
            "word": word,
            "separation": result.separation,
            "bias": result.bias,
            "channel_weights": result.channel_weights,
        }

    def _mask_png(self, request: dict) -> dict:
        """Export the current mask overlay as base64 PNG (the UI download)."""
        session = self._session(request)
        mask = session.current_mask()
        _, seg_img = session.pipeline.adapt(session.current_image())
        rgb = overlay_mask(seg_img, mask)
        png = encode_png(rgb)
        return {"png_base64": base64.b64encode(png).decode("ascii"), "bytes": len(png)}
