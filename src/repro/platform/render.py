"""Figure composition: the artifact bundles the paper's figures show.

These functions assemble the standard visual outputs (Fig. 3's qualitative
comparison, Fig. 5's single-slice bundle) from pipeline results and write
them as PNG via the from-scratch codec.
"""

from __future__ import annotations

import numpy as np

from ..core.results import SliceResult
from ..io.png import write_png
from ..viz.contact_sheet import contact_sheet
from ..viz.overlay import draw_boxes, extract_segment, overlay_mask

__all__ = ["render_comparison_figure", "render_slice_bundle", "save_figure"]


def render_comparison_figure(
    raw_images: list[np.ndarray],
    method_masks: dict[str, list[np.ndarray]],
    *,
    row_labels: list[str] | None = None,
) -> np.ndarray:
    """Fig. 3: rows = samples, columns = raw + one overlay per method."""
    rows: list[list[np.ndarray]] = []
    captions: list[list[str]] = []
    for i, raw in enumerate(raw_images):
        row = [raw]
        caps = [(row_labels[i] if row_labels else f"sample {i}")[:20]]
        for name, masks in method_masks.items():
            row.append(overlay_mask(raw, masks[i], label_index=list(method_masks).index(name)))
            caps.append(name)
        rows.append(row)
        captions.append(caps)
    return contact_sheet(rows, captions=captions)


def render_slice_bundle(adapted_image: np.ndarray, result: SliceResult) -> np.ndarray:
    """Fig. 5: DINO boxes | mask overlay | extracted segment, side by side."""
    boxes_panel = (
        draw_boxes(adapted_image, result.detection.boxes)
        if result.detection.n_boxes
        else adapted_image
    )
    overlay_panel = overlay_mask(adapted_image, result.mask)
    extracted_panel = extract_segment(adapted_image, result.mask)
    return contact_sheet(
        [[boxes_panel, overlay_panel, extracted_panel]],
        captions=[["dino", "overlay", "segment"]],
    )


def save_figure(path, figure: np.ndarray) -> None:
    """Write a rendered figure (uint8 RGB or float gray) as PNG."""
    arr = np.asarray(figure)
    if arr.dtype != np.uint8:
        arr = np.round(np.clip(arr, 0.0, 1.0) * 255).astype(np.uint8)
    write_png(path, arr)
