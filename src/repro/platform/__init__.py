"""The no-code platform: sessions, modes A/B/C, JSON API, HTTP server, figures."""

from .api import ApiHandler
from .modes import ModeA, ModeB, ModeC
from .render import render_comparison_figure, render_slice_bundle, save_figure
from .server import PlatformServer, make_server
from .session import Session, SessionStore

__all__ = [
    "ApiHandler",
    "ModeA",
    "ModeB",
    "ModeC",
    "PlatformServer",
    "Session",
    "SessionStore",
    "make_server",
    "render_comparison_figure",
    "render_slice_bundle",
    "save_figure",
]
