"""Mode controllers matching the paper's three UI modes.

* **Mode A** — interactive segmentation of a single image or a
  user-selected slice of a volume, with HITL rectification and Further
  Segment.
* **Mode B** — batch processing of volumes or image lists.
* **Mode C** — evaluation against ground truth.

These are thin, typed wrappers over :class:`~repro.platform.session.Session`
and the eval layer — the objects a Python-literate user scripts against,
while the JSON API serves the no-code surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from ..core.batch import BatchConfig, BatchReport, segment_volume_batch
from ..core.results import SliceResult, VolumeResult
from ..data.datasets import AnnotatedSlice
from ..eval.evaluator import Evaluator, MethodEvaluation
from .session import Session

__all__ = ["ModeA", "ModeB", "ModeC"]


@dataclass
class ModeA:
    """Interactive single-image workflow."""

    session: Session

    def preview(self) -> dict:
        return self.session.preview()

    def select_slice(self, index: int) -> dict:
        return self.session.select_slice(index)

    def segment(self, prompt: str, hints=None) -> SliceResult:
        return self.session.segment(prompt, hints=hints)

    def rectify(self, x: float, y: float) -> dict:
        return self.session.rectify_click(x, y)

    def further_segment(self, region, prompt: str):
        return self.session.further_segment(region, prompt)


@dataclass
class ModeB:
    """Batch volume workflow (serial via the session, parallel via the pool)."""

    session: Session

    def segment_volume(self, prompt: str, *, temporal: bool = True) -> VolumeResult:
        return self.session.segment_volume(prompt, temporal=temporal)

    def segment_volume_parallel(
        self, prompt: str, *, n_workers: int = 2, temporal: bool = True
    ) -> tuple[np.ndarray, BatchReport]:
        if self.session.volume is None:
            raise ValueError("Mode B parallel requires a loaded volume")
        config = BatchConfig(
            n_workers=n_workers, temporal=temporal, pipeline=self.session.pipeline.config
        )
        return segment_volume_batch(self.session.volume, prompt, config)


@dataclass
class ModeC:
    """Evaluation workflow over annotated data."""

    methods: Mapping[str, object]

    def evaluate(self, slices: Iterable[AnnotatedSlice]) -> dict[str, MethodEvaluation]:
        return Evaluator(dict(self.methods)).evaluate(slices)  # type: ignore[arg-type]
