"""Platform sessions: the state behind one user's workspace.

A session holds the loaded image/volume, the active pipeline, accumulated
results, and the interactive sub-sessions (rectify, hierarchy).  The JSON
API (:mod:`repro.platform.api`) is a thin, stateless translation layer over
these objects.

Serving contract (see DESIGN.md §"Serving failure model"):

* every session carries an :class:`threading.RLock`; the API layer holds it
  for the duration of a mutating action, so concurrent requests against
  *one* session serialize while distinct sessions run in parallel;
* mutations commit atomically at the end of an action — the per-request
  deadline (:func:`repro.resilience.serving.check_deadline`) is re-checked
  at stage boundaries and immediately before commit, so a 504 never leaves
  a half-mutated session;
* :meth:`Session.segment` runs the pipeline *decomposed* (adapt → ground →
  decode) under the store's circuit breakers: a tripped grounding breaker
  degrades to the session's last-good boxes (or the SAM-only automatic
  path), a tripped SAM breaker degrades to the relevance-threshold mask,
  and the result is tagged ``degraded`` instead of failing the request;
* :class:`SessionStore` is fully synchronized, TTL-evicts idle sessions,
  and LRU-evicts above a capacity cap so session memory is bounded under
  sustained traffic.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from ..adapt.readiness import score_readiness
from ..core.hierarchy import SegmentNode, further_segment
from ..core.hitl import RectifySession
from ..core.pipeline import ZenesisConfig, ZenesisPipeline
from ..core.results import SliceResult, VolumeResult
from ..data.image import ScientificImage
from ..data.volume import ScientificVolume
from ..errors import (
    GroundingError,
    PipelineError,
    RetryExhaustedError,
    SessionError,
    UnknownSessionError,
)
from ..io.formats import load_image_file
from ..io.lazy import LazyVolume, open_lazy_volume
from ..models.dino import Detection
from ..observability.metrics import get_registry
from ..resilience.events import record_event
from ..resilience.faults import get_fault_plan
from ..resilience.serving.lifecycle import check_deadline
from ..utils.validation import ensure_finite

__all__ = ["Session", "SessionStore"]

_session_counter = itertools.count(1)

#: How many evicted session ids the store remembers (for the "evicted"
#: hint on late requests); beyond this, old ids degrade to plain unknown.
_EVICTED_MEMORY = 512


@dataclass
class Session:
    """One user workspace: data + pipeline + results."""

    session_id: str
    pipeline: ZenesisPipeline
    image: ScientificImage | None = None
    volume: ScientificVolume | None = None
    #: Streamed (out-of-core) volume attached via ``load_file(stream=True)``.
    #: Holds shape/dtype/metadata and per-tile readers only — the voxels are
    #: never fully resident; Mode B on it runs as a streaming background job.
    lazy_volume: LazyVolume | None = None
    active_slice: int = 0
    last_result: SliceResult | None = None
    last_volume_result: VolumeResult | None = None
    rectify: RectifySession | None = None
    hierarchy_root: SegmentNode | None = None
    history: list[dict] = field(default_factory=list)
    #: Serialize concurrent API actions against this session (reentrant:
    #: handlers re-resolve the session while already holding it).
    lock: threading.RLock = field(default_factory=threading.RLock, repr=False)
    #: Shared circuit breakers ({"grounding": ..., "sam": ...}); empty for
    #: plain library use, where stage failures propagate unchanged.
    breakers: Mapping[str, Any] = field(default_factory=dict, repr=False)
    #: Last successful grounding — the degraded path's best fallback.
    last_good_detection: Detection | None = None
    #: Background jobs this session submitted.  Provenance only: the job
    #: subsystem snapshots its inputs at submit time, so these jobs keep
    #: running (and their results stay fetchable) after the session is
    #: dropped or evicted.
    job_ids: list[str] = field(default_factory=list)
    #: Store bookkeeping: last-touch timestamp for TTL eviction.
    last_used: float = field(default=0.0, repr=False)

    # -- data loading ----------------------------------------------------------

    def load_array(self, array: np.ndarray, *, modality: str = "unknown") -> dict:
        """Load a 2-D image or 3-D volume from an in-memory array.

        Rejects empty and NaN/inf-poisoned arrays up front (structured
        :class:`~repro.errors.ValidationError`) — the upload path must fail
        loudly here, not as empty masks three stages later.
        """
        arr = ensure_finite(array, "uploaded array")
        if arr.ndim == 2 or (arr.ndim == 3 and arr.shape[2] in (3, 4)):
            new_image: ScientificImage | None = ScientificImage(pixels=arr, modality=modality)
            new_volume: ScientificVolume | None = None
        elif arr.ndim == 3:
            new_volume = ScientificVolume(voxels=arr, modality=modality)
            new_image = None
        else:
            raise SessionError(f"cannot interpret array of shape {arr.shape}")
        check_deadline("load_array (pre-commit)")
        self._close_lazy()
        self.image, self.volume = new_image, new_volume
        self.active_slice = 0
        self._reset_interactions()
        self.history.append({"action": "load", "shape": list(arr.shape)})
        return self.preview()

    def load_file(self, path: str, *, modality: str = "unknown", stream: bool = False) -> dict:
        """Load from disk (TIFF/PNG/npy/npz, sniffed by magic bytes).

        With ``stream=True`` the file (or slice directory) is attached as a
        :class:`~repro.io.LazyVolume` instead of being read into memory:
        only the header is parsed, per-slice tiles load on demand, and Mode B
        runs as a streaming background job.  The structured errors of
        :func:`~repro.io.open_lazy_volume` (empty file, unknown format,
        truncated header) surface here, at upload time.
        """
        if stream:
            return self.load_lazy(path, modality=modality)
        return self.load_array(load_image_file(path), modality=modality)

    def load_lazy(self, path: str, *, modality: str = "unknown") -> dict:
        """Attach an on-disk volume for out-of-core streaming (no full read)."""
        volume = open_lazy_volume(path)
        check_deadline("load_file stream (pre-commit)")
        self._close_lazy()
        self.image, self.volume = None, None
        self.lazy_volume = volume
        self.modality = str(modality)
        self.active_slice = 0
        self._reset_interactions()
        self.history.append(
            {"action": "load_stream", "shape": list(volume.shape), "source": volume.source_path}
        )
        return self.preview()

    def _close_lazy(self) -> None:
        if self.lazy_volume is not None:
            self.lazy_volume.close()
            self.lazy_volume = None

    def close(self) -> None:
        """Release held resources (open file maps); idempotent."""
        self._close_lazy()

    def _reset_interactions(self) -> None:
        self.last_result = None
        self.last_volume_result = None
        self.rectify = None
        self.hierarchy_root = None
        self.last_good_detection = None

    # -- introspection -----------------------------------------------------------

    def current_image(self) -> ScientificImage:
        """The active 2-D view (the image, or the selected volume slice)."""
        if self.image is not None:
            return self.image
        if self.volume is not None:
            return self.volume.slice_image(self.active_slice)
        if self.lazy_volume is not None:
            # One tile read — interactive Mode A on a streamed volume stays
            # O(slice), never materializing the stack.
            tile = self.lazy_volume.read_tile(self.active_slice)
            return ScientificImage(pixels=tile, modality=getattr(self, "modality", "unknown"))
        raise SessionError("no data loaded; call load first")

    def preview(self) -> dict:
        """Data summary + readiness scores (the UI's preview card)."""
        if self.lazy_volume is not None:
            desc: dict[str, Any] = self.lazy_volume.describe()
            desc["kind"] = "lazy_volume"
            desc["active_slice"] = self.active_slice
        elif self.volume is not None:
            desc = self.volume.describe()
            desc["kind"] = "volume"
            desc["active_slice"] = self.active_slice
        elif self.image is not None:
            desc = self.image.describe()
            desc["kind"] = "image"
        else:
            raise SessionError("no data loaded; call load first")
        desc["readiness"] = score_readiness(self.current_image()).as_dict()
        return desc

    def select_slice(self, index: int) -> dict:
        if self.lazy_volume is not None:
            n_slices = self.lazy_volume.n_tiles
        elif self.volume is not None:
            n_slices = self.volume.n_slices
        else:
            raise SessionError("select_slice requires a loaded volume")
        if not 0 <= index < n_slices:
            raise SessionError(f"slice {index} out of range [0, {n_slices})")
        self.active_slice = int(index)
        return self.preview()

    # -- Mode A: guarded, degradable segmentation ---------------------------------

    def _ground_guarded(self, det_img: np.ndarray, prompt: str, degraded: list[str]) -> Detection | None:
        """Grounding under the breaker: failures degrade to last-good boxes.

        Returns ``None`` when grounding is unavailable *and* no last-good
        detection exists — the caller then takes the SAM-only path.
        Without a breaker configured, failures propagate unchanged.
        """
        breaker = self.breakers.get("grounding")
        if breaker is not None and not breaker.allow():
            degraded.append("grounding:open")
        else:
            try:
                if get_fault_plan().should_fire("grounding_error", action="segment"):
                    raise GroundingError("injected grounding_error fault")
                detection = self.pipeline.ground(np.asarray(det_img), prompt)
            except (GroundingError, PipelineError, RetryExhaustedError) as exc:
                if breaker is None:
                    raise
                breaker.record_failure()
                degraded.append(f"grounding:{type(exc).__name__}")
            else:
                if breaker is not None:
                    breaker.record_success()
                self.last_good_detection = detection
                return detection
        if self.last_good_detection is not None:
            degraded.append("grounding:last_good_boxes")
            return self.last_good_detection
        degraded.append("grounding:sam_only_fallback")
        return None

    def _relevance_mask(self, detection: Detection) -> np.ndarray:
        """SAM-free fallback: threshold the text-grounded relevance map."""
        return np.asarray(detection.relevance) >= self.pipeline.config.box_threshold

    def _sam_only_mask(self, seg_img: np.ndarray) -> np.ndarray:
        """Grounding-free fallback: SAM's automatic max-confidence mask.

        If the SAM breaker is also open (both model stages down), fall all
        the way back to a classical Otsu mask — the request still answers.
        """
        sam_breaker = self.breakers.get("sam")
        if sam_breaker is not None and not sam_breaker.allow():
            from ..baselines.otsu import otsu_segment

            return otsu_segment(seg_img)
        from ..models.sam.automatic import SamAutomaticMaskGenerator

        try:
            generator = SamAutomaticMaskGenerator(self.pipeline.sam, points_per_side=6)
            records = generator.generate(np.asarray(seg_img, dtype=np.float32))
        except Exception:
            if sam_breaker is not None:
                sam_breaker.record_failure()
            from ..baselines.otsu import otsu_segment

            return otsu_segment(seg_img)
        if sam_breaker is not None:
            sam_breaker.record_success()
        if not records:
            return np.zeros(np.asarray(seg_img).shape, dtype=bool)
        return np.asarray(records[0]["segmentation"], dtype=bool)

    def _decode_guarded(
        self,
        seg_img: np.ndarray,
        detection: Detection | None,
        boxes: np.ndarray | None,
        degraded: list[str],
    ) -> tuple[np.ndarray, list[np.ndarray], list[str]]:
        """SAM decoding under its breaker; degrades to the relevance mask."""
        if detection is None:
            return self._sam_only_mask(seg_img), [], []
        breaker = self.breakers.get("sam")
        if breaker is not None and not breaker.allow():
            degraded.append("sam:open")
            return self._relevance_mask(detection), [], []
        try:
            if get_fault_plan().should_fire("sam_error", action="segment"):
                raise PipelineError("injected sam_error fault")
            mask, per_box, kinds = self.pipeline.segment_with_boxes(seg_img, detection, boxes)
        except (PipelineError, RetryExhaustedError) as exc:
            if breaker is None:
                raise
            breaker.record_failure()
            degraded.append(f"sam:{type(exc).__name__}")
            return self._relevance_mask(detection), [], []
        if breaker is not None:
            breaker.record_success()
        return mask, per_box, kinds

    def segment(self, prompt: str, hints=None) -> SliceResult:
        """Interactive segmentation of the active image/slice.

        Runs the pipeline decomposed so each model stage sits behind its
        circuit breaker; the per-request deadline is re-checked between
        stages and before the session mutation commits.  A degraded result
        lists what fell back in ``result.metadata["degraded"]``.
        """
        image = self.current_image()
        text = str(prompt)
        degraded: list[str] = []
        det_img, seg_img = self.pipeline.adapt(image)
        check_deadline("segment (post-adapt)")
        detection = self._ground_guarded(det_img, text, degraded)
        check_deadline("segment (post-ground)")
        boxes = None
        if detection is not None:
            boxes = detection.boxes
            if hints is not None and hints.boxes:
                user_boxes = np.stack(hints.validated_boxes(seg_img.shape))
                boxes = np.concatenate([boxes, user_boxes], axis=0) if len(boxes) else user_boxes
        mask, per_box, kinds = self._decode_guarded(seg_img, detection, boxes, degraded)
        if detection is not None and hints is not None and hints.has_points:
            coords, labels = hints.point_arrays()
            with self.pipeline.profiler.stage("sam.point_prompts"):
                masks, _, _ = self.pipeline.predictor.predict(
                    point_coords=coords, point_labels=labels, multimask_output=False
                )
            mask = mask | masks[0]
        if detection is None:
            h, w = np.asarray(seg_img).shape[:2]
            detection = Detection(
                boxes=np.zeros((0, 4), dtype=np.float64),
                scores=np.zeros(0, dtype=np.float64),
                phrases=(),
                relevance=np.zeros((h, w), dtype=np.float32),
                ungrounded=(text,),
            )
        if degraded:
            record_event("server.degraded")
            for stage in degraded:
                get_registry().counter(
                    "repro_server_degraded_total", stage=stage.split(":", 1)[0]
                ).inc()
        get_registry().counter("repro_pipeline_images_total").inc()
        self.pipeline.profiler.set_counters(self.pipeline.cache.counters())
        metadata: dict = {"n_user_boxes": 0 if hints is None else len(hints.boxes)}
        if degraded:
            metadata["degraded"] = tuple(degraded)
        result = SliceResult(
            mask=mask,
            detection=detection,
            per_box_masks=tuple(per_box),
            per_box_kinds=tuple(kinds),
            prompt=text,
            profiler=self.pipeline.profiler,
            metadata=metadata,
        )
        # Commit point: nothing above mutated the session, so a deadline
        # expiry here leaves the workspace exactly as the client knew it.
        check_deadline("segment (pre-commit)")
        self.last_result = result
        self.rectify = None
        self.history.append({"action": "segment", "prompt": text, "coverage": result.coverage})
        return result

    def rectify_click(self, x: float, y: float) -> dict:
        """HITL rectification round at pixel (x, y)."""
        if self.last_result is None:
            raise SessionError("rectify requires a prior segment call")
        if self.rectify is None:
            _, seg_img = self.pipeline.adapt(self.current_image())
            check_deadline("rectify (post-adapt)")
            self.rectify = RectifySession(
                self.pipeline.predictor, seg_img, initial_mask=self.last_result.mask
            )
        step = self.rectify.rectify((x, y))
        self.history.append({"action": "rectify", "click": [x, y]})
        return {
            "added_area": int(step.added_mask.sum()),
            "total_area": int(self.rectify.mask.sum()),
            "candidates": step.candidate_count,
        }

    def current_mask(self) -> np.ndarray:
        """The current working mask (rectified if a rectify round happened)."""
        if self.rectify is not None:
            return self.rectify.mask
        if self.last_result is not None:
            return self.last_result.mask
        raise SessionError("no segmentation yet")

    def further_segment(self, region, prompt: str) -> SegmentNode:
        """Hierarchical re-segmentation of a sub-region of the active image."""
        _, seg_img = self.pipeline.adapt(self.current_image())
        check_deadline("further_segment (post-adapt)")
        if self.hierarchy_root is None:
            self.hierarchy_root = SegmentNode(mask=self.current_mask(), prompt="(root)")
        node = further_segment(self.pipeline, seg_img, region, prompt, parent=self.hierarchy_root)
        self.history.append({"action": "further_segment", "prompt": prompt})
        return node

    # -- Mode B --------------------------------------------------------------------

    def segment_volume(
        self, prompt: str, *, temporal: bool = True, temporal_mode: str | None = None
    ) -> VolumeResult:
        if self.volume is None:
            if self.lazy_volume is not None:
                raise SessionError(
                    "this volume was loaded with stream=True; synchronous "
                    "segment_volume would materialize it — use the streaming "
                    "job route (segment_volume via the API with jobs enabled)"
                )
            raise SessionError("segment_volume requires a loaded volume")
        result = self.pipeline.segment_volume(
            self.volume, prompt, temporal=temporal, temporal_mode=temporal_mode
        )
        check_deadline("segment_volume (pre-commit)")
        self.last_volume_result = result
        self.history.append(
            {
                "action": "segment_volume",
                "prompt": prompt,
                "n_slices": result.n_slices,
                "temporal_mode": temporal_mode or self.pipeline.config.temporal_mode,
            }
        )
        return result


class SessionStore:
    """Synchronized in-memory session registry with TTL + capacity eviction.

    * every public method is safe under concurrent callers (RLock);
    * sessions idle longer than ``ttl_s`` are evicted opportunistically on
      the next store access (``reason="ttl"``);
    * creating beyond ``max_sessions`` evicts the least-recently-used
      session first (``reason="capacity"``), so resident memory is bounded
      no matter how many clients churn workspaces;
    * recently evicted ids are remembered so a late request gets the
      ``unknown_session`` contract *with* an ``evicted`` hint instead of a
      bare unknown.
    """

    def __init__(
        self,
        *,
        pipeline_config: ZenesisConfig | None = None,
        max_sessions: int = 64,
        ttl_s: float | None = None,
        breakers: Mapping[str, Any] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self._sessions: OrderedDict[str, Session] = OrderedDict()
        self._config = pipeline_config or ZenesisConfig()
        self._lock = threading.RLock()
        self._evicted: OrderedDict[str, str] = OrderedDict()
        self._clock = clock
        self.max_sessions = int(max_sessions)
        self.ttl_s = None if ttl_s is None else float(ttl_s)
        self.breakers: Mapping[str, Any] = breakers if breakers is not None else {}

    # -- eviction ---------------------------------------------------------

    def _remember_eviction(self, sid: str, reason: str, session: "Session | None" = None) -> None:
        if session is not None:
            session.close()
        self._evicted[sid] = reason
        while len(self._evicted) > _EVICTED_MEMORY:
            self._evicted.popitem(last=False)
        record_event(f"server.session_evicted_{reason}")
        get_registry().counter("repro_server_sessions_evicted_total", reason=reason).inc()

    def _sweep_idle(self) -> None:
        """Evict TTL-expired sessions (called under the lock).

        LRU order approximates idle order, so the scan stops at the first
        live session — the sweep is O(evicted), not O(sessions).
        """
        if self.ttl_s is None:
            return
        now = self._clock()
        while self._sessions:
            sid, session = next(iter(self._sessions.items()))
            if now - session.last_used < self.ttl_s:
                break
            del self._sessions[sid]
            self._remember_eviction(sid, "ttl", session)

    def _publish_gauge(self) -> None:
        get_registry().gauge("repro_server_sessions").set(len(self._sessions))

    # -- registry ---------------------------------------------------------

    def create(self, session_id: str | None = None) -> Session:
        """Create a session, optionally under a caller-proposed id.

        Proposed ids exist for the cluster router: it mints the id *before*
        forwarding ``create_session`` so consistent hashing lands the
        session on the replica that will actually hold it.  Re-proposing an
        existing id returns the live session unchanged (idempotent), so a
        rerouted retry of an unsent create never builds a second workspace.
        """
        if session_id is not None:
            sid = str(session_id)
            if not sid or len(sid) > 128:
                raise SessionError(f"proposed session id must be 1..128 chars, got {len(sid)}")
        else:
            sid = f"s{next(_session_counter):06d}"
        session = Session(
            session_id=sid,
            pipeline=ZenesisPipeline(self._config),
            breakers=self.breakers,
        )
        with self._lock:
            self._sweep_idle()
            existing = self._sessions.get(sid)
            if existing is not None:
                existing.last_used = self._clock()
                self._sessions.move_to_end(sid)
                return existing
            while len(self._sessions) >= self.max_sessions:
                evicted_sid, evicted = self._sessions.popitem(last=False)
                self._remember_eviction(evicted_sid, "capacity", evicted)
            session.last_used = self._clock()
            self._sessions[sid] = session
            self._publish_gauge()
        return session

    def get(self, session_id: str) -> Session:
        with self._lock:
            self._sweep_idle()
            session = self._sessions.get(session_id)
            if session is None:
                reason = self._evicted.get(session_id)
                hint = f" (evicted: {reason})" if reason else ""
                raise UnknownSessionError(
                    f"unknown session {session_id!r}{hint}", evicted_reason=reason
                )
            session.last_used = self._clock()
            self._sessions.move_to_end(session_id)
            return session

    def drop(self, session_id: str) -> None:
        with self._lock:
            session = self._sessions.pop(session_id, None)
            if session is not None:
                session.close()
            self._publish_gauge()

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)
