"""Platform sessions: the state behind one user's workspace.

A session holds the loaded image/volume, the active pipeline, accumulated
results, and the interactive sub-sessions (rectify, hierarchy).  The JSON
API (:mod:`repro.platform.api`) is a thin, stateless translation layer over
these objects.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..adapt.readiness import score_readiness
from ..core.hierarchy import SegmentNode, further_segment
from ..core.hitl import RectifySession
from ..core.pipeline import ZenesisConfig, ZenesisPipeline
from ..core.results import SliceResult, VolumeResult
from ..data.image import ScientificImage
from ..data.volume import ScientificVolume
from ..errors import SessionError
from ..io.formats import load_image_file

__all__ = ["Session", "SessionStore"]

_session_counter = itertools.count(1)


@dataclass
class Session:
    """One user workspace: data + pipeline + results."""

    session_id: str
    pipeline: ZenesisPipeline
    image: ScientificImage | None = None
    volume: ScientificVolume | None = None
    active_slice: int = 0
    last_result: SliceResult | None = None
    last_volume_result: VolumeResult | None = None
    rectify: RectifySession | None = None
    hierarchy_root: SegmentNode | None = None
    history: list[dict] = field(default_factory=list)

    # -- data loading ----------------------------------------------------------

    def load_array(self, array: np.ndarray, *, modality: str = "unknown") -> dict:
        """Load a 2-D image or 3-D volume from an in-memory array."""
        arr = np.asarray(array)
        if arr.ndim == 2 or (arr.ndim == 3 and arr.shape[2] in (3, 4)):
            self.image = ScientificImage(pixels=arr, modality=modality)
            self.volume = None
        elif arr.ndim == 3:
            self.volume = ScientificVolume(voxels=arr, modality=modality)
            self.image = None
            self.active_slice = 0
        else:
            raise SessionError(f"cannot interpret array of shape {arr.shape}")
        self._reset_interactions()
        self.history.append({"action": "load", "shape": list(arr.shape)})
        return self.preview()

    def load_file(self, path: str, *, modality: str = "unknown") -> dict:
        """Load from disk (TIFF/PNG/npy/npz, sniffed by magic bytes)."""
        return self.load_array(load_image_file(path), modality=modality)

    def _reset_interactions(self) -> None:
        self.last_result = None
        self.last_volume_result = None
        self.rectify = None
        self.hierarchy_root = None

    # -- introspection -----------------------------------------------------------

    def current_image(self) -> ScientificImage:
        """The active 2-D view (the image, or the selected volume slice)."""
        if self.image is not None:
            return self.image
        if self.volume is not None:
            return self.volume.slice_image(self.active_slice)
        raise SessionError("no data loaded; call load first")

    def preview(self) -> dict:
        """Data summary + readiness scores (the UI's preview card)."""
        if self.volume is not None:
            desc: dict[str, Any] = self.volume.describe()
            desc["kind"] = "volume"
            desc["active_slice"] = self.active_slice
        elif self.image is not None:
            desc = self.image.describe()
            desc["kind"] = "image"
        else:
            raise SessionError("no data loaded; call load first")
        desc["readiness"] = score_readiness(self.current_image()).as_dict()
        return desc

    def select_slice(self, index: int) -> dict:
        if self.volume is None:
            raise SessionError("select_slice requires a loaded volume")
        if not 0 <= index < self.volume.n_slices:
            raise SessionError(f"slice {index} out of range [0, {self.volume.n_slices})")
        self.active_slice = int(index)
        return self.preview()

    # -- Mode A -------------------------------------------------------------------

    def segment(self, prompt: str, hints=None) -> SliceResult:
        """Interactive segmentation of the active image/slice."""
        result = self.pipeline.segment_image(self.current_image(), prompt, hints=hints)
        self.last_result = result
        self.rectify = None
        self.history.append({"action": "segment", "prompt": prompt, "coverage": result.coverage})
        return result

    def rectify_click(self, x: float, y: float) -> dict:
        """HITL rectification round at pixel (x, y)."""
        if self.last_result is None:
            raise SessionError("rectify requires a prior segment call")
        if self.rectify is None:
            _, seg_img = self.pipeline.adapt(self.current_image())
            self.rectify = RectifySession(
                self.pipeline.predictor, seg_img, initial_mask=self.last_result.mask
            )
        step = self.rectify.rectify((x, y))
        self.history.append({"action": "rectify", "click": [x, y]})
        return {
            "added_area": int(step.added_mask.sum()),
            "total_area": int(self.rectify.mask.sum()),
            "candidates": step.candidate_count,
        }

    def current_mask(self) -> np.ndarray:
        """The current working mask (rectified if a rectify round happened)."""
        if self.rectify is not None:
            return self.rectify.mask
        if self.last_result is not None:
            return self.last_result.mask
        raise SessionError("no segmentation yet")

    def further_segment(self, region, prompt: str) -> SegmentNode:
        """Hierarchical re-segmentation of a sub-region of the active image."""
        _, seg_img = self.pipeline.adapt(self.current_image())
        if self.hierarchy_root is None:
            self.hierarchy_root = SegmentNode(mask=self.current_mask(), prompt="(root)")
        node = further_segment(self.pipeline, seg_img, region, prompt, parent=self.hierarchy_root)
        self.history.append({"action": "further_segment", "prompt": prompt})
        return node

    # -- Mode B --------------------------------------------------------------------

    def segment_volume(self, prompt: str, *, temporal: bool = True) -> VolumeResult:
        if self.volume is None:
            raise SessionError("segment_volume requires a loaded volume")
        result = self.pipeline.segment_volume(self.volume, prompt, temporal=temporal)
        self.last_volume_result = result
        self.history.append(
            {"action": "segment_volume", "prompt": prompt, "n_slices": result.n_slices}
        )
        return result


class SessionStore:
    """In-memory session registry keyed by id (the web app's state)."""

    def __init__(self, *, pipeline_config: ZenesisConfig | None = None) -> None:
        self._sessions: dict[str, Session] = {}
        self._config = pipeline_config or ZenesisConfig()

    def create(self) -> Session:
        sid = f"s{next(_session_counter):06d}"
        session = Session(session_id=sid, pipeline=ZenesisPipeline(self._config))
        self._sessions[sid] = session
        return session

    def get(self, session_id: str) -> Session:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(f"unknown session {session_id!r}") from None

    def drop(self, session_id: str) -> None:
        self._sessions.pop(session_id, None)

    def __len__(self) -> int:
        return len(self._sessions)
