"""A stdlib HTTP server exposing the JSON API (the web app's backend).

``POST /api`` with a JSON body → JSON response from :class:`ApiHandler`.
``GET /`` serves a minimal landing page; ``GET /health`` a liveness probe;
``GET /ready`` a readiness probe (503 until the serving thread is up, and
again after shutdown — the signal a load balancer drains on).
Built on :mod:`http.server` (offline environment: no web frameworks), one
request at a time — matching the single-GPU inference server the paper
deploys.

Failure contract: handler-level errors (unknown actions, bad params)
arrive as ``{"ok": false, ...}`` JSON with HTTP 200 from
:class:`ApiHandler`; an exception *escaping* the handler is a server bug
and returns HTTP 500 with a structured body instead of a raw traceback on
a 200.  Bodies over ``max_body_bytes`` are rejected with 413 before any
parsing work.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..observability.adapters import collect_default_metrics
from ..observability.metrics import get_registry
from ..observability.trace import Tracer
from ..resilience.events import record_event
from .api import ApiHandler

__all__ = ["make_server", "PlatformServer"]

#: Default request-body cap: generous for base64 volume uploads, small
#: enough that one bad client cannot balloon resident memory.
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

_LANDING = b"""<!DOCTYPE html><html><head><title>Zenesis (repro)</title></head>
<body><h1>Zenesis reproduction platform</h1>
<p>POST JSON to <code>/api</code>: {"action": "create_session"} to begin.</p>
</body></html>"""


def _make_handler(api: ApiHandler, state: dict, max_body_bytes: int, tracer: Tracer):
    class Handler(BaseHTTPRequestHandler):
        def log_message(self, fmt, *args):  # quiet by default
            pass

        def _send(self, code: int, body: bytes, content_type: str) -> None:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, code: int, payload: dict) -> None:
            self._send(code, json.dumps(payload).encode(), "application/json")

        def do_GET(self):
            if self.path == "/health":
                self._send(200, b'{"status": "ok"}', "application/json")
            elif self.path == "/ready":
                if state.get("ready"):
                    self._send(200, b'{"ready": true}', "application/json")
                else:
                    self._send(503, b'{"ready": false}', "application/json")
            elif self.path == "/metrics":
                # Prometheus text exposition: absorb the live legacy counter
                # sources first so a scrape is never stale.
                collect_default_metrics()
                self._send(
                    200,
                    get_registry().render_prometheus().encode(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif self.path == "/":
                self._send(200, _LANDING, "text/html")
            else:
                self._send(404, b'{"error": "not found"}', "application/json")

        def do_POST(self):
            if self.path != "/api":
                self._send(404, b'{"error": "not found"}', "application/json")
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                self._send_json(400, {"ok": False, "error": "bad Content-Length"})
                return
            if length > max_body_bytes:
                record_event("server.rejected_oversize")
                self._send_json(
                    413,
                    {
                        "ok": False,
                        "error": f"request body of {length} bytes exceeds the "
                        f"{max_body_bytes}-byte limit",
                    },
                )
                return
            try:
                request = json.loads(self.rfile.read(length) or b"{}")
            except (ValueError, json.JSONDecodeError) as exc:
                self._send_json(400, {"ok": False, "error": f"bad JSON: {exc}"})
                return
            # One span per request under the server's own trace (the stack
            # is thread-local, so concurrent requests nest correctly), plus
            # a request-latency histogram for GET /metrics.
            action = str(request.get("action"))
            registry = get_registry()
            span = tracer.begin("server.request", action=action)
            t0 = time.perf_counter()
            try:
                response = api.handle(request)
            except Exception as exc:  # escaped handler exception: a 500, not a 200
                record_event("server.handler_errors")
                registry.counter("repro_server_requests_total", action=action, status="500").inc()
                tracer.finish(span, error=exc)
                self._send_json(
                    500, {"ok": False, "error": str(exc), "type": type(exc).__name__}
                )
                return
            registry.histogram("repro_server_request_seconds", action=action).observe(
                time.perf_counter() - t0
            )
            status = "200" if response.get("ok", True) else "error"
            registry.counter("repro_server_requests_total", action=action, status=status).inc()
            span.set(status=status)
            tracer.finish(span)
            self._send_json(200, response)

    return Handler


class PlatformServer:
    """Owns the HTTP server thread; use as a context manager in tests."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        api: ApiHandler | None = None,
        *,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        self.api = api or ApiHandler()
        self._state: dict = {"ready": False}
        #: The server's own trace: one ``server.request`` span per POST.
        self.tracer = Tracer("server")
        self.httpd = ThreadingHTTPServer(
            (host, port), _make_handler(self.api, self._state, max_body_bytes, self.tracer)
        )
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self.httpd.server_address[:2]  # type: ignore[return-value]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def ready(self) -> bool:
        return bool(self._state["ready"])

    def start(self) -> "PlatformServer":
        self._thread = threading.Thread(target=self.httpd.serve_forever, daemon=True)
        self._thread.start()
        self._state["ready"] = True
        return self

    def stop(self) -> None:
        self._state["ready"] = False
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "PlatformServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def make_server(host: str = "127.0.0.1", port: int = 8765) -> PlatformServer:
    """Convenience constructor used by the run-server example."""
    return PlatformServer(host=host, port=port)
