"""A stdlib HTTP server exposing the JSON API (the web app's backend).

``POST /api`` with a JSON body → JSON response from :class:`ApiHandler`.
``GET /`` serves a minimal landing page; ``GET /health`` a liveness probe.
Built on :mod:`http.server` (offline environment: no web frameworks), one
request at a time — matching the single-GPU inference server the paper
deploys.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .api import ApiHandler

__all__ = ["make_server", "PlatformServer"]

_LANDING = b"""<!DOCTYPE html><html><head><title>Zenesis (repro)</title></head>
<body><h1>Zenesis reproduction platform</h1>
<p>POST JSON to <code>/api</code>: {"action": "create_session"} to begin.</p>
</body></html>"""


def _make_handler(api: ApiHandler):
    class Handler(BaseHTTPRequestHandler):
        def log_message(self, fmt, *args):  # quiet by default
            pass

        def _send(self, code: int, body: bytes, content_type: str) -> None:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):
            if self.path == "/health":
                self._send(200, b'{"status": "ok"}', "application/json")
            elif self.path == "/":
                self._send(200, _LANDING, "text/html")
            else:
                self._send(404, b'{"error": "not found"}', "application/json")

        def do_POST(self):
            if self.path != "/api":
                self._send(404, b'{"error": "not found"}', "application/json")
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                request = json.loads(self.rfile.read(length) or b"{}")
            except (ValueError, json.JSONDecodeError) as exc:
                self._send(400, json.dumps({"ok": False, "error": f"bad JSON: {exc}"}).encode(), "application/json")
                return
            response = api.handle(request)
            self._send(200, json.dumps(response).encode(), "application/json")

    return Handler


class PlatformServer:
    """Owns the HTTP server thread; use as a context manager in tests."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, api: ApiHandler | None = None) -> None:
        self.api = api or ApiHandler()
        self.httpd = ThreadingHTTPServer((host, port), _make_handler(self.api))
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self.httpd.server_address[:2]  # type: ignore[return-value]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "PlatformServer":
        self._thread = threading.Thread(target=self.httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "PlatformServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def make_server(host: str = "127.0.0.1", port: int = 8765) -> PlatformServer:
    """Convenience constructor used by the run-server example."""
    return PlatformServer(host=host, port=port)
