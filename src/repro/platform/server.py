"""A stdlib HTTP server exposing the JSON API (the web app's backend).

``POST /api`` with a JSON body → JSON response from :class:`ApiHandler`.
``GET /`` serves a minimal landing page; ``GET /health`` a liveness probe;
``GET /ready`` a readiness probe (503 until the serving thread is up, while
draining, and after shutdown — the signal a load balancer drains on).
Built on :mod:`http.server` (offline environment: no web frameworks),
matching the single-GPU inference server the paper deploys.

Overload contract (DESIGN.md §"Serving failure model"):

* **admission** — at most ``max_inflight`` ``/api`` requests execute at
  once; up to ``max_queue`` more wait briefly; the rest are shed with
  **429** + ``Retry-After`` (``repro_server_shed_total``).
* **deadlines** — a request whose per-request deadline expires returns a
  structured **504**; the session it targeted is unchanged.
* **drain** — ``stop()`` flips ``/ready`` to 503, rejects new work with
  503, waits up to ``drain_timeout_s`` for in-flight requests, then aborts
  stragglers and shuts the listener down.

Failure contract: handler-level errors (unknown actions, bad params)
arrive as ``{"ok": false, ...}`` JSON with HTTP 200 from
:class:`ApiHandler`; an exception *escaping* the handler is a server bug
and returns HTTP 500 with a structured body instead of a raw traceback on
a 200.  Bodies over ``max_body_bytes`` are rejected with 413 before any
parsing work.  A client that disconnects mid-write is counted
(``repro_server_client_disconnect_total``) and never surfaces as a 500.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..observability.adapters import collect_default_metrics
from ..observability.metrics import get_registry
from ..observability.trace import Tracer
from ..resilience.events import record_event
from ..resilience.serving import AdmissionGate, ServerLifecycle
from .api import ApiHandler
from .session import SessionStore

__all__ = ["make_server", "PlatformServer"]

#: Default request-body cap: generous for base64 volume uploads, small
#: enough that one bad client cannot balloon resident memory.
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

_LANDING = b"""<!DOCTYPE html><html><head><title>Zenesis (repro)</title></head>
<body><h1>Zenesis reproduction platform</h1>
<p>POST JSON to <code>/api</code>: {"action": "create_session"} to begin.</p>
</body></html>"""


class _PlatformHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer with a backlog sized for bursty clients.

    The stdlib default accept backlog of 5 drops (or resets) connections
    when more clients connect simultaneously than the listener can accept;
    overload belongs to the admission gate (a structured 429), not to the
    kernel's SYN queue.

    ``allow_reuse_address`` is inherited True from HTTPServer but pinned
    here explicitly: a killed replica's restart must rebind its port while
    the old sockets sit in TIME_WAIT, and the cluster coordinator depends
    on that rebind being immediate.
    """

    request_queue_size = 128
    daemon_threads = True
    allow_reuse_address = True

#: Response types that map to a non-200 HTTP status (structured bodies
#: either way; these are the ones load balancers key retry policy on).
_STATUS_BY_TYPE = {"DeadlineExceededError": 504}


def _make_handler(
    api: ApiHandler,
    state: dict,
    max_body_bytes: int,
    tracer: Tracer,
    gate: AdmissionGate,
    lifecycle: ServerLifecycle,
    health=None,
):
    class Handler(BaseHTTPRequestHandler):
        def log_message(self, fmt, *args):  # quiet by default
            pass

        def _send(
            self, code: int, body: bytes, content_type: str, headers: dict | None = None
        ) -> None:
            # The client may vanish at any point of the write; that is its
            # prerogative, not a server error — count it and move on.
            try:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                for name, value in (headers or {}).items():
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError):
                record_event("server.client_disconnect")
                get_registry().counter("repro_server_client_disconnect_total").inc()

        def _send_json(self, code: int, payload: dict, headers: dict | None = None) -> None:
            self._send(code, json.dumps(payload).encode(), "application/json", headers)

        def do_GET(self):
            if self.path == "/health":
                self._send(200, b'{"status": "ok"}', "application/json")
            elif self.path == "/ready":
                # Readiness is richer than liveness: a draining server or
                # one whose job-runner threads died must read not-ready so
                # a router never hands work to a zombie replica.
                if health is not None:
                    ready, detail = health()
                else:
                    ready, detail = bool(state.get("ready")) and not lifecycle.draining, {}
                self._send_json(200 if ready else 503, {"ready": ready, **detail})
            elif self.path == "/metrics":
                # Prometheus text exposition: absorb the live legacy counter
                # sources first so a scrape is never stale.
                collect_default_metrics()
                self._send(
                    200,
                    get_registry().render_prometheus().encode(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif self.path == "/":
                self._send(200, _LANDING, "text/html")
            else:
                self._send(404, b'{"error": "not found"}', "application/json")

        def do_POST(self):
            if self.path != "/api":
                self._send(404, b'{"error": "not found"}', "application/json")
                return
            if lifecycle.draining or not state.get("ready"):
                record_event("server.rejected_draining")
                self._send_json(
                    503,
                    {"ok": False, "error": "server is draining"},
                    {"Retry-After": "1"},
                )
                return
            if not gate.try_acquire():
                self._send_json(
                    429,
                    {
                        "ok": False,
                        "error": f"server at capacity ({gate.max_inflight} in flight); "
                        "retry later",
                    },
                    {"Retry-After": f"{gate.retry_after_s():.0f}"},
                )
                return
            try:
                with lifecycle.track():
                    self._handle_api()
            finally:
                gate.release()

        def _handle_api(self) -> None:
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                self._send_json(400, {"ok": False, "error": "bad Content-Length"})
                return
            if length > max_body_bytes:
                record_event("server.rejected_oversize")
                self._send_json(
                    413,
                    {
                        "ok": False,
                        "error": f"request body of {length} bytes exceeds the "
                        f"{max_body_bytes}-byte limit",
                    },
                )
                return
            try:
                request = json.loads(self.rfile.read(length) or b"{}")
            except (ValueError, json.JSONDecodeError) as exc:
                self._send_json(400, {"ok": False, "error": f"bad JSON: {exc}"})
                return
            # One span per request under the server's own trace (the stack
            # is thread-local, so concurrent requests nest correctly), plus
            # a request-latency histogram for GET /metrics.
            action = str(request.get("action"))
            registry = get_registry()
            span = tracer.begin("server.request", action=action)
            t0 = time.perf_counter()
            try:
                response = api.handle(request)
            except Exception as exc:  # escaped handler exception: a 500, not a 200
                record_event("server.handler_errors")
                registry.counter("repro_server_requests_total", action=action, status="500").inc()
                tracer.finish(span, error=exc)
                self._send_json(
                    500, {"ok": False, "error": str(exc), "type": type(exc).__name__}
                )
                return
            registry.histogram("repro_server_request_seconds", action=action).observe(
                time.perf_counter() - t0
            )
            code = 200
            status = "200"
            if not response.get("ok", True):
                code = _STATUS_BY_TYPE.get(response.get("type"), 200)
                status = str(code) if code != 200 else "error"
            elif response.get("accepted"):
                # A job submission (or an auto-redirected segment_volume):
                # the work continues in the background — 202, not 200.
                code = 202
                status = "202"
            registry.counter("repro_server_requests_total", action=action, status=status).inc()
            span.set(status=status)
            tracer.finish(span)
            self._send_json(code, response)

    return Handler


class PlatformServer:
    """Owns the HTTP server thread; use as a context manager in tests.

    When ``api`` is not supplied, the server builds its own
    :class:`ApiHandler` over a :class:`SessionStore` configured with the
    given ``max_sessions`` / ``session_ttl_s``, and enforces
    ``request_deadline_s`` per ``/api`` action.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        api: ApiHandler | None = None,
        *,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        max_inflight: int = 8,
        max_queue: int = 16,
        queue_timeout_s: float = 0.5,
        drain_timeout_s: float = 5.0,
        request_deadline_s: float | None = None,
        max_sessions: int = 64,
        session_ttl_s: float | None = None,
        jobs_dir: str | None = None,
        job_workers: int = 1,
        job_lease_ttl_s: float = 30.0,
        auto_job_slices: int | None = None,
    ) -> None:
        #: The server's own trace: one ``server.request`` span per POST,
        #: with background-job span trees adopted as they finish.
        self.tracer = Tracer("server")
        self.jobs = None
        if jobs_dir is not None:
            from ..jobs import JobService

            self.jobs = JobService(
                jobs_dir,
                n_workers=job_workers,
                lease_ttl_s=job_lease_ttl_s,
                tracer=self.tracer,
            )
        if api is None:
            api = ApiHandler(
                SessionStore(max_sessions=max_sessions, ttl_s=session_ttl_s),
                request_deadline_s=request_deadline_s,
                jobs=self.jobs,
                auto_job_slices=auto_job_slices,
            )
        elif self.jobs is not None and getattr(api, "jobs", None) is None:
            api.jobs = self.jobs
            if auto_job_slices is not None:
                api.auto_job_slices = auto_job_slices
        self.api = api
        self.gate = AdmissionGate(
            max_inflight, max_queue=max_queue, queue_timeout_s=queue_timeout_s
        )
        self.lifecycle = ServerLifecycle()
        self.drain_timeout_s = float(drain_timeout_s)
        self._state: dict = {"ready": False}
        self.httpd = _PlatformHTTPServer(
            (host, port),
            _make_handler(
                self.api,
                self._state,
                max_body_bytes,
                self.tracer,
                self.gate,
                self.lifecycle,
                health=self._health,
            ),
        )
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self.httpd.server_address[:2]  # type: ignore[return-value]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def ready(self) -> bool:
        return self._health()[0]

    def _health(self) -> tuple[bool, dict]:
        """Full readiness verdict: serving state, drain state, runner liveness.

        ``GET /ready`` reports all three so a router (or an operator) can
        tell *why* a replica left rotation; dead job-runner threads make
        the replica not-ready even though its HTTP side still answers.
        """
        draining = self.lifecycle.draining
        runner_alive = self.jobs is None or self.jobs.runner.healthy
        ready = bool(self._state["ready"]) and not draining and runner_alive
        detail = {"draining": draining}
        if self.jobs is not None:
            detail["job_runner_alive"] = runner_alive
        return ready, detail

    def start(self) -> "PlatformServer":
        self.lifecycle.reset()
        self._thread = threading.Thread(target=self.httpd.serve_forever, daemon=True)
        self._thread.start()
        if self.jobs is not None:
            self.jobs.start()
        self._state["ready"] = True
        return self

    def stop(self) -> None:
        """Graceful drain, then shutdown — listener first, drain second.

        Readiness flips to 503 (a load balancer stops routing), then the
        *listening socket closes immediately* so the port is free for a
        restarting replica before the drain window even starts; in-flight
        requests are unaffected (they run on accepted connections, and the
        threading server never joins its daemon handler threads).  They get
        up to ``drain_timeout_s`` to finish; stragglers past the window are
        abandoned and counted in ``repro_server_drain_aborted_total``.
        """
        self._state["ready"] = False
        self.lifecycle.begin_drain()
        self.httpd.shutdown()
        self.httpd.server_close()
        self.lifecycle.wait_idle(self.drain_timeout_s)
        if self.jobs is not None:
            # Stop leasing new jobs; a job still running past the window is
            # abandoned and reclaimed via lease expiry on the next start.
            self.jobs.stop(timeout_s=self.drain_timeout_s)
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "PlatformServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def make_server(host: str = "127.0.0.1", port: int = 8765, **kwargs) -> PlatformServer:
    """Convenience constructor used by the run-server example."""
    return PlatformServer(host=host, port=port, **kwargs)
