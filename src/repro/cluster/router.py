"""The cluster's front door: a stdlib reverse proxy with session affinity.

Routing: every ``POST /api`` request is keyed (session id, else job id,
else a random spread key) onto the consistent-hash ring and forwarded to
the first *healthy* replica in the key's clockwise preference order — so a
session sticks to one replica while it lives, and moves (with an
``evicted: replica_failover`` marker on the unknown-session response) only
when that replica dies.

``create_session`` is special: the router *generates* the session id and
injects it into the forwarded request, so the id's hash owner is the
replica that actually holds the session — without this, affinity would be
hashing ids minted by whichever replica round-robin happened to hit.

Retry semantics are classified by what the failure proves:

* **refused** (connection refused — the request never reached a replica):
  safe to reroute *any* action to the next replica in preference order;
* **midstream** (reset / truncated response — the request may have
  executed): only actions in :data:`IDEMPOTENT_ACTIONS` are rerouted;
  anything else returns a structured 503 with ``outcome: "unknown"``;
* **timeout**: never retried (it may still be executing) — a structured
  504, the ``proxy_timeout`` fault kind's hook site.

When no replica is healthy the router sheds with 503 + ``Retry-After``
instead of queueing: the coordinator is already restarting replicas, and a
bounded client retry beats an unbounded server queue.
"""

from __future__ import annotations

import errno
import json
import os
import socket
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Sequence

from ..observability.adapters import collect_default_metrics
from ..observability.metrics import get_registry
from ..resilience.events import record_event
from ..resilience.faults import get_fault_plan
from .hashring import HashRing
from .replica import ReplicaHandle

__all__ = ["ClusterRouter", "IDEMPOTENT_ACTIONS"]

#: Actions safe to re-send after a *midstream* failure: re-executing them
#: cannot double-apply work (create is idempotent because the router pins
#: the session id; drop/status/result/events are naturally so).  Notably
#: absent: ``job_submit`` / ``segment_volume`` — a resend could enqueue the
#: work twice.
IDEMPOTENT_ACTIONS = frozenset(
    {
        "create_session",
        "drop_session",
        "preview",
        "job_status",
        "job_result",
        "job_events",
        "dashboard",
    }
)

_LANDING = b"""<!DOCTYPE html><html><head><title>Zenesis cluster (repro)</title></head>
<body><h1>Zenesis reproduction platform &mdash; cluster router</h1>
<p>POST JSON to <code>/api</code>; <code>GET /cluster/status</code> for replica state.</p>
</body></html>"""


class _RouterHTTPServer(ThreadingHTTPServer):
    request_queue_size = 128
    daemon_threads = True
    allow_reuse_address = True


def _classify(exc: BaseException) -> str:
    """What a forward failure proves: 'refused' | 'timeout' | 'midstream'."""
    base = exc.reason if isinstance(exc, urllib.error.URLError) else exc
    if isinstance(base, (TimeoutError, socket.timeout)):
        return "timeout"
    if isinstance(base, ConnectionRefusedError):
        return "refused"
    if isinstance(base, OSError) and base.errno in (
        errno.ECONNREFUSED,
        errno.ENETUNREACH,
        errno.EHOSTUNREACH,
    ):
        return "refused"
    return "midstream"


class ClusterRouter:
    """Reverse proxy over replica handles; health state is shared with the
    coordinator (its probes flip ``handle.healthy``)."""

    def __init__(
        self,
        replicas: Sequence[ReplicaHandle],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        ring: HashRing | None = None,
        status_fn: Callable[[], dict] | None = None,
        max_body_bytes: int = 64 * 1024 * 1024,
        forward_timeout_s: float = 30.0,
        max_forwards: int = 3,
        retry_backoff_s: float = 0.05,
    ) -> None:
        self.replicas = list(replicas)
        self.ring = ring or HashRing([r.index for r in self.replicas])
        self.status_fn = status_fn
        self.max_body_bytes = int(max_body_bytes)
        self.forward_timeout_s = float(forward_timeout_s)
        self.max_forwards = max(1, int(max_forwards))
        self.retry_backoff_s = float(retry_backoff_s)
        self._by_index = {r.index: r for r in self.replicas}
        self.httpd = _RouterHTTPServer((host, port), self._make_handler())
        self._thread: threading.Thread | None = None

    # -- lifecycle --------------------------------------------------------

    @property
    def url(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ClusterRouter":
        self._thread = threading.Thread(target=self.httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    # -- routing ----------------------------------------------------------

    def healthy_replicas(self) -> list[ReplicaHandle]:
        return [r for r in self.replicas if r.healthy]

    def route(self, key: str) -> ReplicaHandle | None:
        idx = self.ring.node_for(key, alive={r.index for r in self.healthy_replicas()})
        return None if idx is None else self._by_index[idx]

    def _candidates(self, key: str) -> list[ReplicaHandle]:
        """Healthy replicas in the key's failover order (affine owner first)."""
        return [
            self._by_index[idx]
            for idx in self.ring.preference(key)
            if self._by_index[idx].healthy
        ]

    def _forward(self, replica: ReplicaHandle, body: bytes) -> tuple[int, bytes, dict]:
        if get_fault_plan().should_fire("proxy_timeout", replica=replica.index):
            raise TimeoutError(f"injected proxy_timeout fault (replica {replica.index})")
        req = urllib.request.Request(
            replica.base_url + "/api",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.forward_timeout_s) as resp:
                headers = {}
                if resp.headers.get("Retry-After"):
                    headers["Retry-After"] = resp.headers["Retry-After"]
                return resp.status, resp.read(), headers
        except urllib.error.HTTPError as exc:
            payload = exc.read()
            headers = {}
            if exc.headers.get("Retry-After"):
                headers["Retry-After"] = exc.headers["Retry-After"]
            return exc.code, payload, headers

    def _handle_api(self, handler: "BaseHTTPRequestHandler", request: dict) -> None:
        registry = get_registry()
        action = str(request.get("action"))
        if action == "create_session" and "session_id" not in request:
            # Mint the id here so its hash owner is the replica that will
            # hold the session (see module docstring).
            request["session_id"] = f"cs-{os.urandom(6).hex()}"
        key = str(
            request.get("session_id") or request.get("job_id") or os.urandom(6).hex()
        )
        body = json.dumps(request).encode()
        affine = self.ring.node_for(key)  # over ALL nodes: who *should* own it
        tried: set[int] = set()
        forwards = 0
        while forwards < self.max_forwards:
            candidates = [r for r in self._candidates(key) if r.index not in tried]
            if not candidates:
                break
            replica = candidates[0]
            tried.add(replica.index)
            forwards += 1
            if replica.index != affine:
                record_event("cluster.failover")
                registry.counter("repro_cluster_failover_total").inc()
            try:
                code, payload, headers = self._forward(replica, body)
            except Exception as exc:
                kind = _classify(exc)
                registry.counter("repro_cluster_forward_errors_total", reason=kind).inc()
                if kind == "timeout":
                    record_event("cluster.proxy_timeout")
                    _send_json(
                        handler,
                        504,
                        {
                            "ok": False,
                            "type": "ProxyTimeout",
                            "error": f"replica {replica.index} did not answer within "
                            f"{self.forward_timeout_s:.0f}s; the request may still be executing",
                            "replica": replica.index,
                        },
                    )
                    return
                if kind == "refused":
                    # Unsent: the replica is gone — flag it for the router
                    # (the coordinator's probe will confirm) and reroute
                    # anything, idempotent or not.
                    replica.healthy = False
                    record_event("cluster.refused")
                    time.sleep(self.retry_backoff_s * forwards)
                    continue
                # Midstream: the request MAY have executed on the replica.
                if action in IDEMPOTENT_ACTIONS:
                    record_event("cluster.retries")
                    registry.counter("repro_cluster_retries_total").inc()
                    time.sleep(self.retry_backoff_s * forwards)
                    continue
                _send_json(
                    handler,
                    503,
                    {
                        "ok": False,
                        "type": "ReplicaError",
                        "error": f"connection to replica {replica.index} lost mid-request; "
                        f"{action!r} is not idempotent so it was not retried",
                        "outcome": "unknown",
                    },
                    {"Retry-After": "1"},
                )
                return
            payload = self._annotate_failover(payload, replica, affine)
            registry.counter(
                "repro_cluster_requests_total", replica=str(replica.index), status=str(code)
            ).inc()
            headers["X-Repro-Replica"] = str(replica.index)
            _send(handler, code, payload, "application/json", headers)
            return
        record_event("cluster.shed")
        registry.counter("repro_cluster_shed_total").inc()
        _send_json(
            handler,
            503,
            {
                "ok": False,
                "type": "ClusterUnavailable",
                "error": "no healthy replica available; the coordinator is restarting",
            },
            {"Retry-After": "1"},
        )

    def _annotate_failover(
        self, payload: bytes, replica: ReplicaHandle, affine: int | None
    ) -> bytes:
        """Mark unknown-session errors answered by a non-affine replica.

        The session lived on the (now dead/unhealthy) hash owner; the
        replica that answered has never seen it, so its bare
        ``unknown_session`` gets the PR-4-style eviction hint.
        """
        if replica.index == affine:
            return payload
        try:
            doc = json.loads(payload)
        except (ValueError, UnicodeDecodeError):
            return payload
        if (
            isinstance(doc, dict)
            and doc.get("error") == "unknown_session"
            and "evicted" not in doc
        ):
            doc["evicted"] = "replica_failover"
            record_event("cluster.session_failover")
            get_registry().counter("repro_cluster_session_failover_total").inc()
            return json.dumps(doc).encode()
        return payload

    # -- the HTTP shell ---------------------------------------------------

    def _make_handler(self):
        router = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):
                pass

            def do_GET(self):
                if self.path == "/health":
                    _send(self, 200, b'{"status": "ok"}', "application/json")
                elif self.path == "/ready":
                    n = len(router.healthy_replicas())
                    code = 200 if n else 503
                    _send_json(self, code, {"ready": bool(n), "healthy_replicas": n})
                elif self.path == "/metrics":
                    collect_default_metrics()
                    _send(
                        self,
                        200,
                        get_registry().render_prometheus().encode(),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                elif self.path == "/cluster/status":
                    status = (
                        router.status_fn()
                        if router.status_fn is not None
                        else {"replicas": [r.status() for r in router.replicas]}
                    )
                    _send_json(self, 200, status)
                elif self.path == "/":
                    _send(self, 200, _LANDING, "text/html")
                else:
                    _send(self, 404, b'{"error": "not found"}', "application/json")

            def do_POST(self):
                if self.path != "/api":
                    _send(self, 404, b'{"error": "not found"}', "application/json")
                    return
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                except ValueError:
                    _send_json(self, 400, {"ok": False, "error": "bad Content-Length"})
                    return
                if length > router.max_body_bytes:
                    _send_json(
                        self,
                        413,
                        {
                            "ok": False,
                            "error": f"request body of {length} bytes exceeds the "
                            f"{router.max_body_bytes}-byte limit",
                        },
                    )
                    return
                try:
                    request = json.loads(self.rfile.read(length) or b"{}")
                except (ValueError, json.JSONDecodeError) as exc:
                    _send_json(self, 400, {"ok": False, "error": f"bad JSON: {exc}"})
                    return
                if not isinstance(request, dict):
                    _send_json(self, 400, {"ok": False, "error": "request must be a JSON object"})
                    return
                router._handle_api(self, request)

        return Handler


def _send(
    handler: BaseHTTPRequestHandler,
    code: int,
    body: bytes,
    content_type: str,
    headers: dict | None = None,
) -> None:
    try:
        handler.send_response(code)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            handler.send_header(name, value)
        handler.end_headers()
        handler.wfile.write(body)
    except (BrokenPipeError, ConnectionResetError):
        record_event("server.client_disconnect")
        get_registry().counter("repro_server_client_disconnect_total").inc()


def _send_json(
    handler: BaseHTTPRequestHandler, code: int, payload: dict, headers: dict | None = None
) -> None:
    _send(handler, code, json.dumps(payload).encode(), "application/json", headers)
