"""One supervised replica: the subprocess entry point + its handle.

A replica is a full :class:`~repro.platform.server.PlatformServer` in its
own process (``python -m repro.cluster.replica``), sharing the jobs
directory and the content-addressed disk cache with its peers.  The boot
handshake is a *url file*: the replica binds (port 0 on first boot), then
atomically writes ``http://host:port`` to ``--url-file`` so the coordinator
learns the port without parsing stdout; restarts are passed the discovered
port back so a replica keeps its address across its lifetimes (the listener
is closed before draining on shutdown precisely so this rebind is
immediate).

Fault hook: ``replica_crash`` (REPRO_FAULTS, context ``replica=INDEX``)
hard-exits at boot *before* the server binds — the crash-loop the
coordinator's circuit breaker must contain.  A fresh process re-parses
``REPRO_FAULTS``, so the default ``times=1`` budget fires on *every* boot:
exactly the repeated-boot-crash shape a bad image/config produces.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ReplicaHandle", "spawn_replica", "main"]


@dataclass
class ReplicaHandle:
    """Coordinator-side state for one replica slot (index is its ring id)."""

    index: int
    host: str
    port: int  # 0 until the first boot's url-file handshake discovers it
    process: subprocess.Popen | None = None
    log_path: Path | None = None
    url_file: Path | None = None
    #: Last /ready probe verdict; only healthy replicas receive traffic.
    healthy: bool = False
    restarts: int = 0
    deaths: int = 0
    #: Monotonic instant before which the supervisor must not restart.
    next_restart_at: float = 0.0
    #: Current restart backoff (doubles per consecutive failure).
    backoff_s: float = 0.0
    #: True once the current incarnation has probed healthy at least once —
    #: distinguishes a crash-after-serving (breaker success happened) from a
    #: boot crash (consecutive failures accumulate toward the crash loop).
    booted: bool = False
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    @property
    def running(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def status(self) -> dict:
        return {
            "index": self.index,
            "url": self.base_url if self.port else None,
            "pid": self.pid,
            "running": self.running,
            "healthy": self.healthy,
            "restarts": self.restarts,
            "deaths": self.deaths,
            "backoff_s": round(self.backoff_s, 3),
        }


def replica_argv(
    handle: ReplicaHandle,
    *,
    jobs_dir: str | None,
    replica_args: dict | None = None,
) -> list[str]:
    """The subprocess command line for (re)booting ``handle``."""
    argv = [
        sys.executable,
        "-m",
        "repro.cluster.replica",
        "--host",
        handle.host,
        "--port",
        str(handle.port),
        "--replica-index",
        str(handle.index),
        "--url-file",
        str(handle.url_file),
    ]
    if jobs_dir is not None:
        argv += ["--jobs-dir", str(jobs_dir)]
    for flag, value in (replica_args or {}).items():
        if value is None:
            continue
        argv += [f"--{flag.replace('_', '-')}", str(value)]
    return argv


def spawn_replica(
    handle: ReplicaHandle,
    *,
    jobs_dir: str | None,
    replica_args: dict | None = None,
    env: dict | None = None,
) -> subprocess.Popen:
    """Boot (or reboot) the replica process; stdout+stderr go to its log."""
    if handle.url_file is not None:
        handle.url_file.unlink(missing_ok=True)
    log = open(handle.log_path, "ab") if handle.log_path is not None else subprocess.DEVNULL
    try:
        proc = subprocess.Popen(
            replica_argv(handle, jobs_dir=jobs_dir, replica_args=replica_args),
            stdout=log,
            stderr=subprocess.STDOUT,
            env=env if env is not None else os.environ.copy(),
        )
    finally:
        if log is not subprocess.DEVNULL:
            log.close()  # the child holds its own descriptor now
    handle.process = proc
    handle.booted = False
    return proc


def read_url_file(path: Path, *, timeout_s: float, process: subprocess.Popen | None = None) -> str | None:
    """Wait for the boot handshake; None on timeout or early child death."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if path.exists():
            text = path.read_text().strip()
            if text:
                return text
        if process is not None and process.poll() is not None:
            return None  # died before binding: a boot crash
        time.sleep(0.02)
    return None


# -- subprocess entry ---------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.cluster.replica")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--replica-index", type=int, default=0)
    parser.add_argument("--url-file", type=Path, default=None)
    parser.add_argument("--jobs-dir", default=None)
    parser.add_argument("--job-workers", type=int, default=1)
    parser.add_argument("--job-lease-ttl", type=float, default=30.0)
    parser.add_argument("--auto-job-slices", type=int, default=None)
    parser.add_argument("--max-inflight", type=int, default=8)
    parser.add_argument("--request-deadline", type=float, default=None)
    parser.add_argument("--session-ttl", type=float, default=None)
    parser.add_argument("--max-sessions", type=int, default=64)
    parser.add_argument("--drain-timeout", type=float, default=5.0)
    args = parser.parse_args(argv)

    from ..resilience.faults import get_fault_plan

    # The boot-crash hook fires before the bind: a crash-looping replica
    # never writes its url file, which is how the coordinator tells a boot
    # failure from a crash while serving.
    get_fault_plan().crash_if("replica_crash", replica=args.replica_index)

    from ..platform.server import PlatformServer

    server = PlatformServer(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        request_deadline_s=args.request_deadline,
        session_ttl_s=args.session_ttl,
        max_sessions=args.max_sessions,
        drain_timeout_s=args.drain_timeout,
        jobs_dir=args.jobs_dir,
        job_workers=args.job_workers,
        job_lease_ttl_s=args.job_lease_ttl,
        auto_job_slices=args.auto_job_slices,
    )
    server.start()
    if args.url_file is not None:
        tmp = args.url_file.with_suffix(".tmp")
        tmp.write_text(server.url)
        tmp.replace(args.url_file)  # atomic: the coordinator never reads half a url

    stop = threading.Event()

    def _terminate(signum, frame):  # noqa: ARG001 - signal handler signature
        stop.set()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    print(f"replica {args.replica_index} serving at {server.url}", flush=True)
    stop.wait()
    server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
