"""Replica supervision: spawn, probe, detect death, restart with backoff.

The coordinator owns N :class:`~repro.cluster.replica.ReplicaHandle` slots
and a supervisor thread that, every ``probe_interval_s``:

1. **detects death** by polling each child's exit code — milliseconds after
   a SIGKILL, long before any HTTP timeout fires;
2. **probes health** of live children against ``GET /ready`` — a replica
   that is draining, or whose job-runner threads died, reads not-ready and
   stops receiving traffic without being restarted;
3. **restarts the dead** under per-replica exponential backoff, gated by a
   crash-loop :class:`~repro.resilience.serving.CircuitBreaker`: every
   death records a failure, the first healthy probe of an incarnation
   records a success — so only *boot* crashes accumulate consecutive
   failures, and a replica that keeps dying before it serves is parked
   (breaker open) instead of being respawned in a hot loop.

Job continuity needs no coordinator involvement: replicas share one jobs
directory, so a dead replica's leases expire and surviving replicas'
runners reclaim the work through the ordinary scheduler tick.
"""

from __future__ import annotations

import os
import signal
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from ..observability.adapters import publish_cluster_metrics
from ..observability.metrics import get_registry
from ..resilience.events import record_event
from ..resilience.serving import CircuitBreaker
from .hashring import HashRing
from .replica import ReplicaHandle, read_url_file, spawn_replica
from .router import ClusterRouter

__all__ = ["ClusterCoordinator"]


class ClusterCoordinator:
    """Spawns and supervises N platform replicas behind one router."""

    def __init__(
        self,
        n_replicas: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs_dir: str | None = None,
        replica_args: dict | None = None,
        log_dir: str | Path | None = None,
        probe_interval_s: float = 0.25,
        probe_timeout_s: float = 2.0,
        boot_timeout_s: float = 20.0,
        restart_backoff_s: float = 0.25,
        max_backoff_s: float = 5.0,
        breaker_failures: int = 5,
        breaker_recovery_s: float = 10.0,
        forward_timeout_s: float = 30.0,
        vnodes: int = 64,
        env: dict | None = None,
    ) -> None:
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        self.jobs_dir = jobs_dir
        self.replica_args = dict(replica_args or {})
        self.probe_interval_s = float(probe_interval_s)
        self.probe_timeout_s = float(probe_timeout_s)
        self.boot_timeout_s = float(boot_timeout_s)
        self.restart_backoff_s = float(restart_backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self._env = env
        self.log_dir = Path(log_dir) if log_dir is not None else Path(
            tempfile.mkdtemp(prefix="repro-cluster-")
        )
        self.log_dir.mkdir(parents=True, exist_ok=True)
        self.replicas = [
            ReplicaHandle(
                index=i,
                host=host,
                port=0,
                log_path=self.log_dir / f"replica-{i}.log",
                url_file=self.log_dir / f"replica-{i}.url",
            )
            for i in range(n_replicas)
        ]
        self.breakers = {
            r.index: CircuitBreaker(
                f"replica{r.index}",
                failure_threshold=breaker_failures,
                recovery_timeout_s=breaker_recovery_s,
            )
            for r in self.replicas
        }
        self.ring = HashRing([r.index for r in self.replicas], vnodes=vnodes)
        self.router = ClusterRouter(
            self.replicas,
            host=host,
            port=port,
            ring=self.ring,
            status_fn=self.status,
            forward_timeout_s=forward_timeout_s,
        )
        self._stop = threading.Event()
        self._supervisor: threading.Thread | None = None

    # -- lifecycle --------------------------------------------------------

    @property
    def url(self) -> str:
        return self.router.url

    def start(self) -> "ClusterCoordinator":
        """Boot every replica, then the router and the supervisor.

        A replica that crashes during boot (e.g. the ``replica_crash``
        fault) does not fail the cluster: it is handed to the supervisor's
        backoff/breaker machinery like any later death.
        """
        for handle in self.replicas:
            self._boot(handle)
        for handle in self.replicas:
            url = (
                read_url_file(
                    handle.url_file, timeout_s=self.boot_timeout_s, process=handle.process
                )
                if handle.process is not None
                else None
            )
            if url is None:
                self._note_death(handle)
                continue
            handle.port = int(url.rsplit(":", 1)[1])
            handle.healthy = self._probe(handle)
            if handle.healthy:
                self._note_healthy(handle)
        self.router.start()
        self._stop.clear()
        self._supervisor = threading.Thread(target=self._supervise, daemon=True)
        self._supervisor.start()
        self._publish()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5)
        for handle in self.replicas:
            if handle.running:
                handle.process.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + 10.0
        for handle in self.replicas:
            if handle.process is None:
                continue
            try:
                handle.process.wait(timeout=max(0.1, deadline - time.monotonic()))
            except Exception:
                handle.process.kill()
                handle.process.wait(timeout=5)
            handle.healthy = False
        self.router.stop()

    def __enter__(self) -> "ClusterCoordinator":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- test / demo hooks -------------------------------------------------

    def kill_replica(self, index: int, sig: int = signal.SIGKILL) -> None:
        """Hard-kill one replica (the chaos soak's weapon of choice)."""
        handle = self.replicas[index]
        if handle.running:
            handle.process.send_signal(sig)

    def wait_healthy(self, min_replicas: int = 1, timeout_s: float = 30.0) -> bool:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if sum(1 for r in self.replicas if r.healthy) >= min_replicas:
                return True
            time.sleep(0.05)
        return False

    # -- supervision -------------------------------------------------------

    def _boot(self, handle: ReplicaHandle) -> None:
        spawn_replica(
            handle, jobs_dir=self.jobs_dir, replica_args=self.replica_args, env=self._env
        )
        handle.restarts += 1 if handle.deaths else 0

    def _probe(self, handle: ReplicaHandle) -> bool:
        if handle.port == 0:
            return False
        try:
            with urllib.request.urlopen(
                handle.base_url + "/ready", timeout=self.probe_timeout_s
            ) as resp:
                return resp.status == 200
        except (urllib.error.URLError, OSError, TimeoutError):
            return False

    def _note_death(self, handle: ReplicaHandle) -> None:
        handle.healthy = False
        handle.deaths += 1
        handle.process = None
        handle.backoff_s = min(
            self.max_backoff_s, max(self.restart_backoff_s, handle.backoff_s * 2)
        )
        handle.next_restart_at = time.monotonic() + handle.backoff_s
        self.breakers[handle.index].record_failure()
        record_event("cluster.replica_deaths")
        get_registry().counter(
            "repro_cluster_replica_deaths_total", replica=str(handle.index)
        ).inc()

    def _note_healthy(self, handle: ReplicaHandle) -> None:
        if not handle.booted:
            # First healthy probe of this incarnation: the boot succeeded,
            # so the crash-loop counter resets (a later death while serving
            # starts a fresh streak).
            handle.booted = True
            handle.backoff_s = 0.0
            self.breakers[handle.index].record_success()

    def _supervise(self) -> None:
        while not self._stop.wait(self.probe_interval_s):
            for handle in self.replicas:
                with handle.lock:
                    self._tick(handle)
            self._publish()

    def _tick(self, handle: ReplicaHandle) -> None:
        if handle.process is not None and handle.process.poll() is not None:
            self._note_death(handle)
        if handle.process is None:
            if time.monotonic() < handle.next_restart_at:
                return
            if not self.breakers[handle.index].allow():
                return  # crash loop: parked until the breaker half-opens
            self._boot(handle)
            record_event("cluster.replica_restarts")
            get_registry().counter(
                "repro_cluster_replica_restarts_total", replica=str(handle.index)
            ).inc()
            return  # probe on the next tick; boot needs a moment
        if handle.port == 0:
            # First successful boot after earlier boot crashes: pick up the
            # url handshake without blocking the supervisor loop.
            url = read_url_file(handle.url_file, timeout_s=0.01, process=handle.process)
            if url is None:
                return
            handle.port = int(url.rsplit(":", 1)[1])
        was_healthy = handle.healthy
        handle.healthy = self._probe(handle)
        if handle.healthy:
            self._note_healthy(handle)
        elif was_healthy:
            record_event("cluster.replica_unready")

    # -- introspection -----------------------------------------------------

    def status(self) -> dict:
        replicas = []
        for handle in self.replicas:
            entry = handle.status()
            entry["breaker"] = self.breakers[handle.index].snapshot()
            replicas.append(entry)
        return {
            "router": self.router.url,
            "n_replicas": len(self.replicas),
            "healthy": sum(1 for r in self.replicas if r.healthy),
            "jobs_dir": self.jobs_dir,
            "log_dir": str(self.log_dir),
            "replicas": replicas,
        }

    def _publish(self) -> None:
        publish_cluster_metrics(self.replicas)
