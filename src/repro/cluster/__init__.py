"""Multi-replica serving: coordinator, reverse-proxy router, hash ring.

One deployment spans N :class:`~repro.platform.server.PlatformServer`
replica *processes* sharing a jobs directory and the content-addressed disk
cache, fronted by a stdlib reverse proxy with consistent-hash session
affinity.  The :class:`ClusterCoordinator` spawns, health-checks, and
restarts replicas; the :class:`ClusterRouter` routes, retries, and sheds.

Failure model (DESIGN.md §"Cluster failure model"): a SIGKILL'd replica is
detected by exitcode polling + failed ``/ready`` probes, its sessions fail
over with an ``evicted: replica_failover`` marker, its leased jobs are
reclaimed by surviving replicas through the lease/heartbeat machinery, and
the coordinator restarts it under exponential backoff with a crash-loop
circuit breaker.
"""

from .coordinator import ClusterCoordinator
from .hashring import HashRing
from .replica import ReplicaHandle
from .router import IDEMPOTENT_ACTIONS, ClusterRouter

__all__ = [
    "ClusterCoordinator",
    "ClusterRouter",
    "HashRing",
    "ReplicaHandle",
    "IDEMPOTENT_ACTIONS",
]
