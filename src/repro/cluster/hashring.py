"""Consistent hashing for session → replica affinity.

The ring holds *every configured* replica, alive or dead; routing walks
clockwise from the key's point to the first replica in the caller's
``alive`` set.  Keeping dead replicas on the ring is what makes the two
affinity properties hold:

* **minimal remap** — when a replica dies, only the keys it owned move
  (each to the next live replica clockwise); everyone else's sessions stay
  where they were;
* **re-adoption** — when it comes back, exactly those keys return to it,
  because its ring points never changed.

Virtual nodes smooth the per-replica share: with ``vnodes`` points per
replica the expected imbalance shrinks like ``1/sqrt(vnodes)``.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

__all__ = ["HashRing"]


def _point(label: str) -> int:
    """A stable 64-bit ring position for a label (sha1, not ``hash()``:
    Python's string hash is salted per process, and two replicas of one
    cluster must agree on the ring)."""
    return int.from_bytes(hashlib.sha1(label.encode()).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over a fixed set of node ids."""

    def __init__(self, nodes: Iterable[int | str], *, vnodes: int = 64) -> None:
        self.nodes: tuple = tuple(nodes)
        if not self.nodes:
            raise ValueError("HashRing needs at least one node")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        points: list[tuple[int, int | str]] = []
        for node in self.nodes:
            for v in range(self.vnodes):
                points.append((_point(f"{node}#{v}"), node))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [n for _, n in points]

    def node_for(self, key: str, alive: Sequence | set | None = None):
        """The replica owning ``key``, restricted to the ``alive`` set.

        ``alive=None`` means every configured node is eligible.  Returns
        ``None`` when no eligible node exists (the router sheds with 503).
        """
        eligible = set(self.nodes) if alive is None else set(alive) & set(self.nodes)
        if not eligible:
            return None
        start = bisect.bisect_right(self._points, _point(str(key)))
        n = len(self._points)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner in eligible:
                return owner
        return None

    def preference(self, key: str) -> list:
        """Distinct nodes in clockwise order from ``key`` — the failover
        order the router retries in (affine owner first)."""
        start = bisect.bisect_right(self._points, _point(str(key)))
        n = len(self._points)
        seen: list = []
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self.nodes):
                    break
        return seen
