"""Folder-scale batch orchestration: ``repro batch <dir>`` over the jobs tier.

A batch is a set of durable ``zoo_segment`` jobs — one per recognizable
volume in a directory — plus two JSON artifacts in the jobs dir:

* ``batches/<id>.json``          — the manifest written at submit time
  (per-file content keys and job ids, the preset/registry fingerprints, the
  skipped-file list).
* ``batches/<id>.report.json``   — the aggregate report written after the
  drain (per-file terminal state and metrics, batch-level percentiles from
  the observability registry).

The batch id is content-addressed over (sorted volume content keys, preset
fingerprint, mode, ensemble params), and submission is idempotent per file
through :meth:`~repro.jobs.service.JobService.submit_zoo_segment` — killing
the orchestrator mid-batch and re-running the same command re-attaches to
the surviving jobs instead of duplicating them.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path

from ..errors import EmptyBatchError, ReproError, ZooError
from ..io.lazy import open_lazy_volume
from ..observability.metrics import get_registry
from .registry import ZooRegistry, load_registry

__all__ = [
    "collect_report",
    "discover_volumes",
    "in_plane_pixel_size_nm",
    "run_batch",
    "submit_batch",
]

#: Directory entries never treated as volume candidates: hidden files/dirs
#: (the jobs dir itself, checksum sidecars) and JSON artifacts (zoo.json,
#: batch manifests/reports someone pointed the orchestrator at).
_SKIP_PREFIXES = (".",)
_SKIP_SUFFIXES = (".json",)

_COVERAGE_BUCKETS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0)


def in_plane_pixel_size_nm(meta: dict | None) -> float | None:
    """The calibrated in-plane pixel pitch from a lazy-volume metadata dict.

    TIFF resolution tags yield a (y, x) pair; a 3-entry value is treated as
    (z, y, x) voxel size.  Anisotropic in-plane pitches are averaged — the
    adaptation scale is a single factor.
    """
    if not meta:
        return None
    value = meta.get("pixel_size_nm")
    if value is None:
        return None
    if isinstance(value, (int, float)):
        return float(value) if value > 0 else None
    pitches = [float(v) for v in list(value)[-2:] if v and float(v) > 0]
    if not pitches:
        return None
    return float(sum(pitches) / len(pitches))


def discover_volumes(root: Path | str) -> tuple[list[dict], list[tuple[str, str]]]:
    """Sniff every directory entry; returns (volumes, skipped).

    Raises :class:`~repro.errors.EmptyBatchError` when nothing in the
    directory opens as a volume — an empty batch is a user error (wrong
    directory, all files corrupt), never a silently successful no-op.
    """
    root = Path(root)
    if not root.is_dir():
        raise ZooError(f"batch root must be a directory, got {root}")
    volumes: list[dict] = []
    skipped: list[tuple[str, str]] = []
    for child in sorted(root.iterdir()):
        name = child.name
        if name.startswith(_SKIP_PREFIXES) or name.endswith(_SKIP_SUFFIXES):
            continue
        try:
            with open_lazy_volume(child) as vol:
                volumes.append(
                    {
                        "path": str(child),
                        "name": name,
                        "format": vol.meta.get("format", "unknown"),
                        "n_slices": int(vol.n_tiles),
                        "tile_shape": list(vol.tile_shape),
                        "dtype": str(vol.dtype),
                        "content_key": vol.content_key(),
                        "pixel_size_nm": in_plane_pixel_size_nm(vol.meta),
                    }
                )
        except ReproError as exc:
            skipped.append((name, f"{type(exc).__name__}: {exc}"))
    if not volumes:
        raise EmptyBatchError(
            f"no recognizable volumes in {root} "
            f"({len(skipped)} entr{'y' if len(skipped) == 1 else 'ies'} skipped)",
            skipped=tuple(skipped),
        )
    return volumes, skipped


def _batch_id(volumes: list[dict], preset_fp: str, mode: str, ensemble: dict | None) -> str:
    payload = json.dumps(
        {
            "content_keys": sorted(v["content_key"] for v in volumes),
            "preset": preset_fp,
            "mode": mode,
            "ensemble": ensemble or {},
        },
        sort_keys=True,
    )
    return hashlib.sha1(payload.encode()).hexdigest()[:12]


def _batches_dir(service) -> Path:
    path = service.store.root / "batches"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _write_json(path: Path, doc: dict) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    tmp.replace(path)


def submit_batch(
    service,
    root: Path | str,
    preset_name: str,
    *,
    mode: str = "best",
    stream: bool = False,
    on_corrupt: str = "fail",
    memory_budget_mb: float = 64.0,
    ensemble: dict | None = None,
    priority: int = 0,
    session_id: str | None = None,
    registry: ZooRegistry | None = None,
) -> dict:
    """Discover volumes under ``root`` and submit one zoo job per file.

    Returns the batch manifest (also written to ``batches/<id>.json``).
    Idempotent: already-submitted (content key, preset, mode) combinations
    re-attach to their live jobs, counted in ``reused`` instead of ``new``.
    """
    registry = registry or load_registry(service.store.root)
    preset = registry.get(preset_name)  # raises UnknownPresetError
    volumes, skipped = discover_volumes(root)
    batch_id = _batch_id(volumes, preset.fingerprint(), mode, ensemble)
    files = []
    new = reused = 0
    for vol in volumes:
        rec, created = service.submit_zoo_segment(
            vol["path"],
            preset.name,
            mode=mode,
            stream=stream,
            on_corrupt=on_corrupt,
            memory_budget_mb=memory_budget_mb,
            ensemble=ensemble,
            content_key=vol["content_key"],
            pixel_size_nm=vol["pixel_size_nm"],
            priority=priority,
            session_id=session_id,
        )
        new += created
        reused += not created
        files.append({**vol, "job_id": rec.job_id, "reused": not created})
    manifest = {
        "schema": 1,
        "batch_id": batch_id,
        "root": str(Path(root)),
        "preset": preset.name,
        "preset_fingerprint": preset.fingerprint(),
        "registry_fingerprint": registry.fingerprint(),
        "mode": mode,
        "stream": bool(stream),
        "ensemble": dict(ensemble) if ensemble else None,
        "files": files,
        "skipped": [{"name": n, "reason": r} for n, r in skipped],
        "jobs": {"new": new, "reused": reused, "total": len(files)},
        "suggested_presets": {
            v["name"]: list(registry.suggest(v["pixel_size_nm"]))
            for v in volumes
            if v["pixel_size_nm"] is not None
        },
    }
    _write_json(_batches_dir(service) / f"{batch_id}.json", manifest)
    return manifest


def collect_report(service, manifest: dict) -> dict:
    """Aggregate per-job outcomes into the batch report (and persist it)."""
    registry = get_registry()
    wall_hist = registry.histogram("repro_zoo_batch_file_seconds")
    cov_hist = registry.histogram(
        "repro_zoo_batch_file_coverage", boundaries=_COVERAGE_BUCKETS
    )
    service.store.refresh()
    files = []
    by_state: dict[str, int] = {}
    degraded_files = 0
    for entry in manifest["files"]:
        rec = service.store.get(entry["job_id"])
        state = rec.state
        by_state[state] = by_state.get(state, 0) + 1
        registry.counter("repro_zoo_batch_files_total", state=state).inc()
        row = {
            "name": entry["name"],
            "job_id": rec.job_id,
            "state": state,
            "content_key": entry["content_key"],
            "pixel_size_nm": entry["pixel_size_nm"],
            "attempts": rec.attempt,
        }
        wall_s = max(0.0, rec.updated_at - rec.created_at)
        row["wall_s"] = round(wall_s, 3)
        wall_hist.observe(wall_s)
        result = rec.result or {}
        if result:
            for key in ("volume_fraction", "masks_key", "masks_path", "masks_dir", "fallback"):
                if key in result:
                    row[key] = result[key]
            if "volume_fraction" in result:
                cov_hist.observe(float(result["volume_fraction"]))
            degraded = result.get("degraded") or {}
            if degraded:
                row["degraded_slices"] = degraded
                degraded_files += 1
            if "ensemble" in result:
                ens = result["ensemble"]
                row["ensemble"] = {
                    "fallback": ens.get("fallback"),
                    "members": [
                        {k: m.get(k) for k in ("member", "accepted", "rejected_reason", "coverage")}
                        for m in ens.get("members", [])
                    ],
                }
        if rec.error is not None:
            row["error"] = dict(rec.error)
        files.append(row)
    report = {
        "schema": 1,
        "batch_id": manifest["batch_id"],
        "preset": manifest["preset"],
        "preset_fingerprint": manifest["preset_fingerprint"],
        "registry_fingerprint": manifest["registry_fingerprint"],
        "mode": manifest["mode"],
        "files": files,
        "by_state": by_state,
        "skipped": manifest.get("skipped", []),
        "degraded_files": degraded_files,
        "percentiles": {
            "file_wall_s": {
                "p50": round(wall_hist.percentile(0.5), 3),
                "p95": round(wall_hist.percentile(0.95), 3),
                "p99": round(wall_hist.percentile(0.99), 3),
            },
            "file_coverage": {
                "p50": round(cov_hist.percentile(0.5), 4),
                "p95": round(cov_hist.percentile(0.95), 4),
            },
        },
        "ok": by_state.get("succeeded", 0) == len(files),
    }
    _write_json(_batches_dir(service) / f"{manifest['batch_id']}.report.json", report)
    return report


def run_batch(
    service,
    root: Path | str,
    preset_name: str,
    *,
    mode: str = "best",
    stream: bool = False,
    on_corrupt: str = "fail",
    memory_budget_mb: float = 64.0,
    ensemble: dict | None = None,
    priority: int = 0,
    registry: ZooRegistry | None = None,
    timeout_s: float = 600.0,
    poll_s: float = 0.2,
) -> dict:
    """Submit a batch and drain it on the calling thread; returns the report.

    The drain loop alternates lease reclaim with inline execution until
    every batch job is terminal — so a rerun after a SIGKILL first adopts
    the dead process's expired leases (resuming their checkpoints) and only
    then reports.  Raises :class:`ZooError` on timeout with the partial
    state; the manifest and any completed work survive for the next run.
    """
    manifest = submit_batch(
        service,
        root,
        preset_name,
        mode=mode,
        stream=stream,
        on_corrupt=on_corrupt,
        memory_budget_mb=memory_budget_mb,
        ensemble=ensemble,
        priority=priority,
        registry=registry,
    )
    job_ids = [f["job_id"] for f in manifest["files"]]
    deadline = time.monotonic() + timeout_s
    while True:
        service.scheduler.reclaim_expired()
        service.runner.run_until_idle(worker_id=f"batch-{manifest['batch_id']}")
        service.store.refresh()
        states = {jid: service.store.get(jid).state for jid in job_ids}
        if all(s in ("succeeded", "failed", "cancelled") for s in states.values()):
            break
        if time.monotonic() > deadline:
            raise ZooError(
                f"batch {manifest['batch_id']} timed out after {timeout_s}s; "
                f"states: {sorted(states.values())}"
            )
        # Non-terminal jobs here are leased to a dead process; wait for the
        # lease TTL to lapse so reclaim_expired can adopt them.
        time.sleep(poll_s)
    return collect_report(service, manifest)
