"""Named task presets: the model/config registry behind ``repro zoo``.

A :class:`TaskPreset` bundles everything needed to run the pipeline on one
material domain — the text prompt, a :class:`~repro.core.pipeline.ZenesisConfig`
overlay, and an optional physical pixel-size hint used for preset suggestion
when a volume carries calibrated metadata.

Identity is content-addressed: each preset has a ``fingerprint()`` over its
name, prompt, and config overlay, and :meth:`TaskPreset.build_config` stamps
``variant="zoo:<name>@<fingerprint>"`` into the built config.  Because
``variant`` is a fingerprinted field of ``ZenesisConfig``, every cache entry,
checkpoint manifest, and durable job key derived from a preset-built config
is segregated from hand-rolled configs and from other preset versions — edit
a preset and its key space moves with it.

The registry is user-extensible: a ``zoo.json`` file in the jobs directory
(``{"presets": [{"name": ..., "prompt": ..., "config": {...}}, ...]}``)
overlays the builtins, with user entries winning on name collisions.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path

from ..core.pipeline import ZenesisConfig
from ..errors import UnknownPresetError, ZooError

__all__ = [
    "ZOO_FILE_NAME",
    "TaskPreset",
    "ZooRegistry",
    "builtin_presets",
    "load_registry",
]

ZOO_FILE_NAME = "zoo.json"

# ZenesisConfig fields a preset overlay may set.  ``variant`` is reserved
# (stamped by build_config), ``pixel_size_nm`` comes from volume metadata,
# and the nested dataclasses are out of scope for flat JSON overlays.
_RESERVED_CONFIG_KEYS = frozenset({"variant", "pixel_size_nm", "temporal", "propagation"})
_CONFIG_FIELDS = frozenset(f.name for f in dataclass_fields(ZenesisConfig)) - _RESERVED_CONFIG_KEYS


@dataclass(frozen=True)
class TaskPreset:
    """One named task: prompt + config overlay + selection hints."""

    name: str
    description: str
    prompt: str
    # Synthetic domain used by demos/CI to generate a matching sample
    # (a repro.data.synthesis CATALYST_KINDS member), if any.
    sample_kind: str | None = None
    # Flat ZenesisConfig field overrides (JSON-serializable values only).
    config: dict = field(default_factory=dict)
    # Inclusive (lo, hi) calibrated pixel-pitch range (nm) this preset was
    # tuned for; None means "no opinion" (never suggested by pixel size).
    pixel_size_nm_range: tuple[float, float] | None = None
    tags: tuple[str, ...] = ()
    source: str = "builtin"  # "builtin" or "zoo.json"

    def __post_init__(self):
        if not self.name or not self.name.replace("_", "").replace("-", "").isalnum():
            raise ZooError(f"preset name must be a non-empty slug, got {self.name!r}")
        if not self.prompt:
            raise ZooError(f"preset {self.name!r} has an empty prompt")
        unknown = set(self.config) - _CONFIG_FIELDS
        if unknown:
            raise ZooError(
                f"preset {self.name!r} sets unknown/reserved config keys {sorted(unknown)}; "
                f"allowed: {sorted(_CONFIG_FIELDS)}"
            )
        if self.pixel_size_nm_range is not None:
            lo, hi = self.pixel_size_nm_range
            if not (0 < lo <= hi):
                raise ZooError(
                    f"preset {self.name!r} pixel_size_nm_range must satisfy 0 < lo <= hi, "
                    f"got {self.pixel_size_nm_range!r}"
                )

    def fingerprint(self) -> str:
        """Stable short id over everything that changes this preset's output."""
        payload = json.dumps(
            {"name": self.name, "prompt": self.prompt, "config": self.config},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha1(payload.encode()).hexdigest()[:12]

    def matches_pixel_size(self, pixel_size_nm: float | None) -> bool:
        if pixel_size_nm is None or self.pixel_size_nm_range is None:
            return False
        lo, hi = self.pixel_size_nm_range
        return lo <= pixel_size_nm <= hi

    def build_config(
        self,
        *,
        pixel_size_nm: float | None = None,
        member: str | None = None,
        **overrides,
    ) -> ZenesisConfig:
        """Materialize the full ZenesisConfig for this preset.

        ``member`` tags an ensemble variant (e.g. ``"m01"``) so each member's
        cache/checkpoint identity is distinct; ``overrides`` are the member's
        knob perturbations on top of the preset overlay.
        """
        kwargs = dict(self.config)
        kwargs.update(overrides)
        # JSON round-trips tuples as lists; ZenesisConfig expects tuples.
        for key, value in kwargs.items():
            if isinstance(value, list):
                kwargs[key] = tuple(value)
        variant = f"zoo:{self.name}@{self.fingerprint()}"
        if member:
            variant += f":{member}"
        return ZenesisConfig(variant=variant, pixel_size_nm=pixel_size_nm, **kwargs)

    def describe(self) -> dict:
        """JSON-ready summary for ``repro zoo show`` and the platform API."""
        return {
            "name": self.name,
            "description": self.description,
            "prompt": self.prompt,
            "sample_kind": self.sample_kind,
            "config": dict(self.config),
            "pixel_size_nm_range": list(self.pixel_size_nm_range)
            if self.pixel_size_nm_range
            else None,
            "tags": list(self.tags),
            "source": self.source,
            "fingerprint": self.fingerprint(),
        }


class ZooRegistry:
    """An ordered, name-keyed collection of task presets."""

    def __init__(self, presets: list[TaskPreset]) -> None:
        self._presets: dict[str, TaskPreset] = {}
        for preset in presets:
            self._presets[preset.name] = preset  # later entries override

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._presets))

    def list(self) -> list[TaskPreset]:
        return [self._presets[name] for name in self.names]

    def get(self, name: str) -> TaskPreset:
        preset = self._presets.get(name)
        if preset is None:
            raise UnknownPresetError(
                f"unknown preset {name!r}; known presets: {', '.join(self.names)}",
                known=self.names,
            )
        return preset

    def fingerprint(self) -> str:
        """Registry-wide id: changes when any preset is added/edited/removed."""
        digest = hashlib.sha1()
        for name in self.names:
            digest.update(name.encode())
            digest.update(self._presets[name].fingerprint().encode())
        return digest.hexdigest()[:12]

    def suggest(self, pixel_size_nm: float | None) -> tuple[str, ...]:
        """Preset names whose tuned pixel-pitch range covers the given pitch."""
        return tuple(p.name for p in self.list() if p.matches_pixel_size(pixel_size_nm))

    def describe(self) -> dict:
        return {
            "fingerprint": self.fingerprint(),
            "presets": [p.describe() for p in self.list()],
        }


def builtin_presets() -> list[TaskPreset]:
    """The shipped task presets, one per synthetic material domain."""
    return [
        TaskPreset(
            name="crystalline_catalyst",
            description="Needle-like crystalline catalysts in ionomer film (paper default).",
            prompt="crystalline catalyst particles",
            sample_kind="crystalline",
            config={},
            pixel_size_nm_range=(2.0, 12.0),
            tags=("catalyst", "fibsem"),
        ),
        TaskPreset(
            name="amorphous_catalyst",
            description="Globular amorphous catalyst aggregates (strong contrast).",
            prompt="amorphous catalyst aggregates",
            sample_kind="amorphous",
            config={"box_threshold": 0.32, "unsharp_amount": 2.4},
            pixel_size_nm_range=(2.0, 12.0),
            tags=("catalyst", "fibsem"),
        ),
        TaskPreset(
            name="membrane",
            description="Ionomer membrane film against the milled trench.",
            prompt="membrane film",
            sample_kind="crystalline",
            config={"box_threshold": 0.30, "gate_dilation": 6},
            pixel_size_nm_range=(2.0, 25.0),
            tags=("membrane", "fibsem"),
        ),
        TaskPreset(
            name="nanowire_mesh",
            description="High-aspect bright nanowire mesh (synthetic domain).",
            prompt="bright elongated needles",
            sample_kind="nanowire",
            config={"box_threshold": 0.33, "unsharp_amount": 2.2},
            pixel_size_nm_range=(1.0, 8.0),
            tags=("nanowire", "synthetic"),
        ),
        TaskPreset(
            name="porous_film",
            description="Dark rounded pores (voids) in a porous film (synthetic domain).",
            prompt="dark pores",
            sample_kind="porous",
            config={"box_threshold": 0.30, "band_k": 1.8},
            pixel_size_nm_range=(2.0, 15.0),
            tags=("porous", "synthetic"),
        ),
    ]


def _preset_from_json(entry: dict, *, source: str) -> TaskPreset:
    if not isinstance(entry, dict):
        raise ZooError(f"zoo.json preset entries must be objects, got {type(entry).__name__}")
    allowed = {"name", "description", "prompt", "sample_kind", "config", "pixel_size_nm_range", "tags"}
    unknown = set(entry) - allowed
    if unknown:
        raise ZooError(f"zoo.json preset has unknown keys {sorted(unknown)}; allowed: {sorted(allowed)}")
    try:
        return TaskPreset(
            name=entry.get("name", ""),
            description=entry.get("description", ""),
            prompt=entry.get("prompt", ""),
            sample_kind=entry.get("sample_kind"),
            config=dict(entry.get("config", {})),
            pixel_size_nm_range=tuple(entry["pixel_size_nm_range"])
            if entry.get("pixel_size_nm_range")
            else None,
            tags=tuple(entry.get("tags", ())),
            source=source,
        )
    except (TypeError, ValueError) as exc:
        raise ZooError(f"malformed zoo.json preset {entry.get('name')!r}: {exc}") from exc


def load_registry(jobs_dir: str | Path | None = None) -> ZooRegistry:
    """Builtins overlaid with the jobs dir's ``zoo.json`` (if present)."""
    presets = builtin_presets()
    if jobs_dir is not None:
        zoo_path = Path(jobs_dir) / ZOO_FILE_NAME
        if zoo_path.exists():
            try:
                doc = json.loads(zoo_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise ZooError(f"unreadable {zoo_path}: {exc}") from exc
            if not isinstance(doc, dict) or not isinstance(doc.get("presets", []), list):
                raise ZooError(f'{zoo_path} must be an object with a "presets" list')
            for entry in doc.get("presets", []):
                presets.append(_preset_from_json(entry, source=ZOO_FILE_NAME))
    return ZooRegistry(presets)
