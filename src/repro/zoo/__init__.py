"""Model zoo: named task presets, batch orchestration, ensemble fusion.

Three pillars (see DESIGN.md "Model zoo & ensemble fusion"):

* :mod:`repro.zoo.registry` — named, fingerprinted task presets
  (builtins + ``zoo.json`` overlay), discoverable via ``repro zoo``.
* :mod:`repro.zoo.batch` — ``repro batch <dir>``: fan a folder of volumes
  out as durable jobs with a content-addressed manifest + aggregate report.
* :mod:`repro.zoo.ensemble` — ENSEMBLE mode: a deterministic variant grid
  fused by IoU-weighted voting with semantic-verification rejection.
"""

from .batch import (
    collect_report,
    discover_volumes,
    in_plane_pixel_size_nm,
    run_batch,
    submit_batch,
)
from .ensemble import (
    EnsembleConfig,
    EnsembleResult,
    ensemble_variants,
    fuse_masks,
    member_weights,
    segment_volume_ensemble,
)
from .registry import ZOO_FILE_NAME, TaskPreset, ZooRegistry, builtin_presets, load_registry

__all__ = [
    "ZOO_FILE_NAME",
    "EnsembleConfig",
    "EnsembleResult",
    "TaskPreset",
    "ZooRegistry",
    "builtin_presets",
    "collect_report",
    "discover_volumes",
    "ensemble_variants",
    "fuse_masks",
    "in_plane_pixel_size_nm",
    "load_registry",
    "member_weights",
    "run_batch",
    "segment_volume_ensemble",
    "submit_batch",
]
