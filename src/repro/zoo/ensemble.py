"""ENSEMBLE mode: K preset variants per volume, fused by weighted voting.

Variants are a deterministic grid of DINO threshold sweeps × analytic-head
``band_k`` settings (the reproduction's stand-in for SAM multimask outputs),
each tagged as ``zoo:<preset>@<fp>:mNN`` so cache and checkpoint identities
never collide across members.

Fusion is IoU-weighted voting: each member's weight is its mean pairwise IoU
against the other members (consensus members count for more, outliers for
less), and a voxel enters the fused mask when the weighted vote reaches
``vote_floor`` of the total weight.  Tie-breaking is deterministic — members
are evaluated in fixed index order and the floor comparison includes an
epsilon so exact-floor votes land *inside* the mask on every run.

Before voting, a semantic-verification pass (after SAM-I-Am, PAPERS.md)
rejects members whose masks latch onto the background: a member is kept only
if its masks overlap the grounding relevance map (≥ its own box threshold)
by at least ``min_relevance_overlap``.  Members that segment nothing are
rejected as ``"empty"``; members that segment the wrong phase are rejected
as ``"background_latch"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..cache import array_content_key, config_fingerprint
from ..core.pipeline import ZenesisConfig, ZenesisPipeline
from ..errors import ZooError
from ..observability.metrics import get_registry
from .registry import TaskPreset

__all__ = [
    "EnsembleConfig",
    "EnsembleResult",
    "ensemble_variants",
    "fuse_masks",
    "member_weights",
    "segment_volume_ensemble",
]


@dataclass(frozen=True)
class EnsembleConfig:
    """Shape of the variant grid and the fusion/verification rules."""

    size: int = 4  # number of members (grid is trimmed to this)
    threshold_spread: float = 0.3  # DINO thresholds sweep down to (1 - spread)×
    band_ks: tuple[float, ...] = (2.0, 1.4)  # analytic-head multimask variants
    min_relevance_overlap: float = 0.35  # semantic-verification floor
    vote_floor: float = 0.5  # fraction of total weight required per voxel

    def __post_init__(self):
        if self.size < 1:
            raise ZooError(f"ensemble size must be >= 1, got {self.size}")
        if not 0.0 <= self.threshold_spread < 1.0:
            raise ZooError(f"threshold_spread must be in [0, 1), got {self.threshold_spread}")
        if not self.band_ks:
            raise ZooError("band_ks must be non-empty")
        if not 0.0 < self.vote_floor <= 1.0:
            raise ZooError(f"vote_floor must be in (0, 1], got {self.vote_floor}")

    def to_params(self) -> dict:
        return {
            "size": self.size,
            "threshold_spread": self.threshold_spread,
            "band_ks": list(self.band_ks),
            "min_relevance_overlap": self.min_relevance_overlap,
            "vote_floor": self.vote_floor,
        }

    @classmethod
    def from_params(cls, params: dict | None) -> "EnsembleConfig":
        if not params:
            return cls()
        kwargs = dict(params)
        if "band_ks" in kwargs:
            kwargs["band_ks"] = tuple(kwargs["band_ks"])
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ZooError(f"malformed ensemble params: {exc}") from exc


@dataclass(frozen=True)
class EnsembleResult:
    """Fused output plus the per-member audit trail."""

    fused_masks: np.ndarray  # (Z, H, W) bool
    members: tuple[dict, ...]  # one report per member (accepted or not)
    weights: tuple[float, ...]  # weights of accepted members, member order
    fallback: bool  # True when every member was rejected
    prompt: str = ""
    preset_fingerprint: str = ""
    profiler_stats: dict = field(default_factory=dict)

    def to_record(self) -> dict:
        return {
            "prompt": self.prompt,
            "preset_fingerprint": self.preset_fingerprint,
            "fallback": self.fallback,
            "weights": list(self.weights),
            "members": [dict(m) for m in self.members],
        }


def ensemble_variants(
    preset: TaskPreset,
    ensemble: EnsembleConfig | None = None,
    *,
    pixel_size_nm: float | None = None,
) -> list[ZenesisConfig]:
    """The deterministic member grid for one preset.

    Threshold factors sweep from 1.0 down to ``1 - threshold_spread`` (more
    permissive grounding), crossed with the ``band_ks`` analytic variants;
    the grid is walked threshold-major and trimmed to ``size`` members.
    Every member forces ``temporal_mode="meanbox"`` — ensemble fusion needs
    per-slice detections for semantic verification, which the propagation
    engine only produces at keyframes.
    """
    ens = ensemble or EnsembleConfig()
    base = preset.build_config(pixel_size_nm=pixel_size_nm)
    n_tiers = max(1, -(-ens.size // len(ens.band_ks)))  # ceil division
    factors = [
        1.0 - ens.threshold_spread * (tier / max(n_tiers - 1, 1)) if n_tiers > 1 else 1.0
        for tier in range(n_tiers)
    ]
    configs: list[ZenesisConfig] = []
    for factor in factors:
        for band_k in ens.band_ks:
            if len(configs) >= ens.size:
                break
            i = len(configs)
            configs.append(
                preset.build_config(
                    pixel_size_nm=pixel_size_nm,
                    member=f"m{i:02d}",
                    box_threshold=round(base.box_threshold * factor, 6),
                    text_threshold=round(base.text_threshold * factor, 6),
                    band_k=float(band_k),
                    temporal_mode="meanbox",
                )
            )
    return configs


def _pair_iou(a: np.ndarray, b: np.ndarray) -> float:
    union = int(np.logical_or(a, b).sum())
    if union == 0:
        return 1.0  # two empty masks agree perfectly
    return float(np.logical_and(a, b).sum() / union)


def member_weights(masks: list[np.ndarray]) -> list[float]:
    """Consensus weight per member: mean pairwise IoU against the others."""
    if len(masks) == 1:
        return [1.0]
    weights = []
    for i, mask in enumerate(masks):
        ious = [_pair_iou(mask, other) for j, other in enumerate(masks) if j != i]
        weights.append(float(np.mean(ious)))
    return weights


def fuse_masks(
    masks: list[np.ndarray], weights: list[float], *, vote_floor: float = 0.5
) -> np.ndarray:
    """Weighted vote in fixed member order; exact-floor ties vote IN."""
    if not masks:
        raise ZooError("fuse_masks needs at least one mask")
    if len(masks) != len(weights):
        raise ZooError(f"{len(masks)} masks for {len(weights)} weights")
    votes = np.zeros(masks[0].shape, dtype=np.float64)
    for mask, weight in zip(masks, weights):
        votes += weight * mask
    total = float(sum(weights))
    if total <= 0:
        return np.zeros(masks[0].shape, dtype=bool)
    return votes >= vote_floor * total - 1e-12


# One pipeline per distinct member config, shared across files in a batch —
# members differ only in thresholds/band_k, so the adaptation cache underneath
# is shared too (same _adapt_fp for every member of a preset).
_PIPELINE_MEMO: dict[str, ZenesisPipeline] = {}


def _memo_pipeline(config: ZenesisConfig) -> ZenesisPipeline:
    key = config_fingerprint(config)
    pipeline = _PIPELINE_MEMO.get(key)
    if pipeline is None:
        pipeline = _PIPELINE_MEMO[key] = ZenesisPipeline(config)
    return pipeline


def _relevance_overlap(result, box_threshold: float) -> tuple[float, int]:
    """(overlap fraction, total mask voxels) across a VolumeResult's slices."""
    mask_total = 0
    hit_total = 0
    for sr in result.slice_results:
        mask = np.asarray(sr.mask, dtype=bool)
        mask_total += int(mask.sum())
        relevant = np.asarray(sr.detection.relevance) >= box_threshold
        hit_total += int(np.logical_and(mask, relevant).sum())
    if mask_total == 0:
        return 0.0, 0
    return hit_total / mask_total, mask_total


def segment_volume_ensemble(
    voxels: np.ndarray,
    preset: TaskPreset,
    *,
    ensemble: EnsembleConfig | None = None,
    pixel_size_nm: float | None = None,
    checkpoint_dir: Path | str | None = None,
    resume: bool = False,
    on_member=None,
) -> EnsembleResult:
    """Run every ensemble member and fuse the surviving masks.

    Each member segments with its own checkpoint sub-directory
    (``member_00/`` …), so a SIGKILL mid-ensemble resumes member-by-member
    bit-identically.  ``on_member(index, total)`` is called after each member
    completes — the jobs runner uses it for progress heartbeats and
    cooperative cancellation.
    """
    ens = ensemble or EnsembleConfig()
    configs = ensemble_variants(preset, ens, pixel_size_nm=pixel_size_nm)
    registry = get_registry()
    members: list[dict] = []
    accepted_masks: list[np.ndarray] = []
    for i, config in enumerate(configs):
        pipeline = _memo_pipeline(config)
        member_ckpt = None
        if checkpoint_dir is not None:
            member_ckpt = Path(checkpoint_dir) / f"member_{i:02d}"
        result = pipeline.segment_volume(
            voxels,
            preset.prompt,
            temporal=True,
            checkpoint_dir=member_ckpt,
            resume=resume,
        )
        registry.counter("repro_zoo_members_run_total", preset=preset.name).inc()
        overlap, mask_voxels = _relevance_overlap(result, config.box_threshold)
        report = {
            "member": f"m{i:02d}",
            "variant": config.variant,
            "box_threshold": config.box_threshold,
            "text_threshold": config.text_threshold,
            "band_k": config.band_k,
            "coverage": float(result.masks.mean()),
            "relevance_overlap": round(float(overlap), 4),
            "masks_key": array_content_key(result.masks),
            "accepted": True,
            "rejected_reason": None,
        }
        if mask_voxels == 0:
            report["accepted"] = False
            report["rejected_reason"] = "empty"
        elif overlap < ens.min_relevance_overlap:
            report["accepted"] = False
            report["rejected_reason"] = "background_latch"
        if report["accepted"]:
            accepted_masks.append(result.masks)
        else:
            registry.counter(
                "repro_zoo_members_rejected_total",
                preset=preset.name,
                reason=report["rejected_reason"],
            ).inc()
        members.append(report)
        if on_member is not None:
            on_member(i + 1, len(configs))

    fallback = not accepted_masks
    if fallback:
        shape = voxels.shape if voxels.ndim == 3 else (1, *voxels.shape)
        fused = np.zeros(shape, dtype=bool)
        weights: list[float] = []
    else:
        weights = member_weights(accepted_masks)
        fused = fuse_masks(accepted_masks, weights, vote_floor=ens.vote_floor)
        registry.counter("repro_zoo_members_fused_total", preset=preset.name).inc(
            len(accepted_masks)
        )
    registry.counter("repro_zoo_ensembles_total", preset=preset.name).inc()
    return EnsembleResult(
        fused_masks=fused,
        members=tuple(members),
        weights=tuple(weights),
        fallback=fallback,
        prompt=preset.prompt,
        preset_fingerprint=preset.fingerprint(),
    )
