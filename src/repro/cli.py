"""Command-line interface: ``python -m repro <command>``.

Commands mirror the platform's no-code surface for shell users:

* ``segment``    — one image/volume file + prompt → mask file (+ overlay)
* ``batch``      — Mode B over a volume with workers/temporal options
* ``evaluate``   — Mode C on the built-in benchmark, prints paper tables
* ``synthesize`` — generate a synthetic FIB-SEM acquisition to disk
* ``serve``      — run the HTTP platform server (``--replicas N`` for a
  supervised multi-replica cluster behind a routing proxy)
* ``cluster``    — cluster utilities (``cluster status`` against a router)
* ``jobs``       — durable background jobs (``submit|status|watch|cancel|gc``)
* ``readiness``  — score a file's AI-readiness
* ``metrics``    — observability utilities (``metrics diff a/run.json b/run.json``)

Each command prints a short human summary to stdout and writes artifacts
next to the input (or to ``--out``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def _add_precision_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--precision",
        choices=["exact", "fast"],
        default=None,
        help="numeric tier: 'exact' (default) keeps bit-identical fp32 math; "
        "'fast' enables fp16 activation storage and streaming-softmax kernels "
        "(cache entries are fingerprint-segregated per tier). Overrides "
        "REPRO_PRECISION for this run",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__.split("\n")[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("segment", help="segment a file from a text prompt")
    _add_precision_flag(p)
    p.add_argument("path", type=Path)
    p.add_argument("prompt")
    p.add_argument("--out", type=Path, default=None, help="output .npz (default: alongside input)")
    p.add_argument("--overlay", type=Path, default=None, help="also write an overlay PNG")
    p.add_argument("--slice", type=int, default=None, help="volume slice to segment (default: all)")
    p.add_argument("--no-cache", action="store_true", help="disable the content-addressed inference cache")
    p.add_argument("--profile", action="store_true", help="print per-stage timings and cache counters")
    p.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="write a Chrome-trace (chrome://tracing) span trace here; also "
        "emits a run.json manifest alongside unless --manifest-out is given",
    )
    p.add_argument(
        "--manifest-out",
        type=Path,
        default=None,
        help="write the run manifest (config fingerprint, latency percentiles, metrics) here",
    )
    p.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help="persist per-slice masks here so an interrupted volume job can resume",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume a volume job from --checkpoint-dir (skips completed slices)",
    )
    p.add_argument(
        "--temporal-mode",
        choices=["meanbox", "propagate"],
        default="meanbox",
        help="volume engine: ground every slice + mean-box refinement, or "
        "memory-conditioned propagation with keyframe re-grounding",
    )
    p.add_argument(
        "--stream",
        action="store_true",
        help="stream the volume out-of-core (LazyVolume): tiles load on demand "
        "under --memory-budget-mb, masks land as per-slice shards in "
        "--checkpoint-dir, and corrupt tiles follow --on-corrupt",
    )
    p.add_argument(
        "--on-corrupt",
        choices=["fail", "skip", "degrade"],
        default="fail",
        help="streaming policy for corrupt tiles: fail the run, skip (zero "
        "mask), or degrade (segment salvaged bytes); skip/degrade record the "
        "slice in the run manifest",
    )
    p.add_argument(
        "--memory-budget-mb",
        type=float,
        default=64.0,
        metavar="MB",
        help="streaming prefetch budget (bounds resident tile bytes)",
    )

    p = sub.add_parser(
        "batch",
        help="Mode B batch segmentation: a volume file + prompt, or a whole "
        "directory of volumes fanned out as durable zoo jobs (--task)",
    )
    _add_precision_flag(p)
    p.add_argument("path", type=Path)
    p.add_argument("prompt", nargs="?", default=None, help="text prompt (file mode only)")
    p.add_argument("--out", type=Path, default=None)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--no-temporal", action="store_true")
    p.add_argument(
        "--temporal-mode",
        choices=["meanbox", "propagate"],
        default="meanbox",
        help="propagate runs the sequential memory engine (single-worker path)",
    )
    p.add_argument(
        "--task",
        default=None,
        metavar="PRESET",
        help="zoo preset for directory batches (see `repro zoo list`); "
        "required when PATH is a directory",
    )
    p.add_argument(
        "--mode",
        choices=["best", "ensemble"],
        default="best",
        help="BEST runs the preset config once per volume; ENSEMBLE runs the "
        "variant grid and fuses masks by IoU-weighted voting",
    )
    p.add_argument(
        "--jobs-dir",
        type=Path,
        default=None,
        help="jobs directory for directory batches (default: <dir>/.repro-jobs)",
    )
    p.add_argument(
        "--stream",
        action="store_true",
        help="stream volumes out-of-core (BEST mode only)",
    )
    p.add_argument("--on-corrupt", choices=["fail", "skip", "degrade"], default="fail")
    p.add_argument("--memory-budget-mb", type=float, default=64.0, metavar="MB")
    p.add_argument(
        "--ensemble-size",
        type=int,
        default=None,
        metavar="K",
        help="ensemble members per volume (default 4)",
    )
    p.add_argument("--priority", type=int, default=0, help="job priority (higher runs first)")
    p.add_argument(
        "--job-lease-ttl",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="lease TTL for batch jobs: after a crash, a rerun adopts the dead "
        "process's jobs once their lease is this stale",
    )
    p.add_argument(
        "--submit-only",
        action="store_true",
        help="submit the batch jobs and print the manifest without draining them "
        "(a co-located server or a later rerun executes the queue)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="directory-batch drain budget",
    )

    p = sub.add_parser("zoo", help="model/config registry (task presets)")
    zsub = p.add_subparsers(dest="zoo_command", required=True)
    zp = zsub.add_parser("list", help="print the registry (builtins + zoo.json overlay) as JSON")
    zp.add_argument(
        "--jobs-dir",
        type=Path,
        default=None,
        help="also load the zoo.json overlay from this jobs directory",
    )
    zp.add_argument(
        "--pixel-size-nm",
        type=float,
        default=None,
        metavar="NM",
        help="also print the presets whose tuned pixel-pitch range covers this value",
    )
    zp = zsub.add_parser("show", help="print one preset (config overlay, prompt, fingerprint)")
    zp.add_argument("preset")
    zp.add_argument("--jobs-dir", type=Path, default=None)

    p = sub.add_parser("evaluate", help="run the paper's table experiments")
    _add_precision_flag(p)
    p.add_argument("--methods", nargs="+", default=["otsu", "sam_only", "zenesis"])
    p.add_argument("--size", type=int, default=256, help="slice edge length")
    p.add_argument("--slices", type=int, default=10, help="slices per volume")
    p.add_argument("--dashboard", type=Path, default=None, help="write HTML dashboard here")
    p.add_argument("--no-cache", action="store_true", help="disable the content-addressed inference cache")
    p.add_argument("--trace-out", type=Path, default=None, help="write a Chrome-trace span trace here")
    p.add_argument(
        "--manifest-out", type=Path, default=None, help="write the run manifest (run.json) here"
    )

    p = sub.add_parser("metrics", help="observability utilities over run manifests")
    msub = p.add_subparsers(dest="metrics_command", required=True)
    mp = msub.add_parser("diff", help="compare two run.json manifests")
    mp.add_argument("manifest_a", type=Path)
    mp.add_argument("manifest_b", type=Path)

    p = sub.add_parser("synthesize", help="generate a synthetic FIB-SEM volume")
    p.add_argument("kind", choices=["crystalline", "amorphous", "nanowire", "porous"])
    p.add_argument("out", type=Path)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--size", type=int, default=256)
    p.add_argument("--slices", type=int, default=10)
    p.add_argument("--with-gt", action="store_true", help="bundle ground truth (npz output)")

    p = sub.add_parser("serve", help="run the platform HTTP server")
    _add_precision_flag(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="N",
        help="run N supervised replica processes behind a routing proxy on --port "
        "(consistent-hash session affinity, health-checked failover, crash restart); "
        "1 = a single in-process server",
    )
    p.add_argument(
        "--cluster-log-dir",
        type=Path,
        default=None,
        help="directory for per-replica logs + boot handshakes (default: a temp dir)",
    )
    p.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="max concurrent /api requests; excess is queued briefly then shed with 429",
    )
    p.add_argument(
        "--request-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline; expiry returns a structured 504 with the session unchanged",
    )
    p.add_argument(
        "--session-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict sessions idle longer than this (clients get the evicted hint)",
    )
    p.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        help="session capacity cap; beyond it the least-recently-used session is evicted",
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="on shutdown, wait this long for in-flight requests before aborting stragglers",
    )
    p.add_argument(
        "--jobs-dir",
        type=Path,
        default=None,
        help="enable durable background jobs journaled under this directory "
        "(job_* API actions; large segment_volume requests go async)",
    )
    p.add_argument(
        "--job-workers",
        type=int,
        default=1,
        help="background job worker threads (each fans out through the process pool)",
    )
    p.add_argument(
        "--job-lease-ttl",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="heartbeat lease: a job whose worker goes silent this long is retried",
    )
    p.add_argument(
        "--auto-job-slices",
        type=int,
        default=None,
        metavar="N",
        help="segment_volume requests on volumes with >= N slices return 202 + job_id "
        "instead of blocking (default: never redirect)",
    )

    p = sub.add_parser("jobs", help="durable background jobs over a jobs directory")
    _add_precision_flag(p)
    p.add_argument(
        "--jobs-dir",
        type=Path,
        required=True,
        help="the journaled jobs directory (shared with a server started with --jobs-dir)",
    )
    jsub = p.add_subparsers(dest="jobs_command", required=True)
    jp = jsub.add_parser("submit", help="queue a job (a co-located server or watcher runs it)")
    jp.add_argument("kind", choices=["segment_volume", "evaluate", "synthesize", "zoo_segment"])
    jp.add_argument(
        "--path", type=Path, default=None, help="volume file (segment_volume / zoo_segment)"
    )
    jp.add_argument("--prompt", default=None, help="text prompt (segment_volume)")
    jp.add_argument("--preset", default=None, help="zoo preset name (zoo_segment)")
    jp.add_argument(
        "--mode",
        choices=["best", "ensemble"],
        default="best",
        help="zoo_segment execution mode",
    )
    jp.add_argument("--params", default=None, help="JSON params dict (evaluate/synthesize)")
    jp.add_argument("--priority", type=int, default=0, help="higher runs first")
    jp.add_argument("--workers", type=int, default=1, help="decode workers (segment_volume)")
    jp.add_argument("--no-temporal", action="store_true")
    jp.add_argument(
        "--temporal-mode",
        choices=["meanbox", "propagate"],
        default="meanbox",
        help="volume engine for segment_volume jobs",
    )
    jp.add_argument(
        "--stream",
        action="store_true",
        help="submit --path as a streaming job (snapshot the file, never "
        "materialize the voxels; masks land as per-slice shards)",
    )
    jp.add_argument(
        "--on-corrupt",
        choices=["fail", "skip", "degrade"],
        default="fail",
        help="corrupt-tile policy for --stream jobs",
    )
    jp.add_argument(
        "--memory-budget-mb",
        type=float,
        default=64.0,
        metavar="MB",
        help="prefetch budget for --stream jobs",
    )
    jp.add_argument("--run", action="store_true", help="also execute queued jobs here until idle")
    jp = jsub.add_parser("status", help="print one job (or the whole queue) as JSON")
    jp.add_argument("job_id", nargs="?", default=None)
    jp = jsub.add_parser("watch", help="follow a job's progress events until it is terminal")
    jp.add_argument("job_id")
    jp.add_argument("--timeout", type=float, default=600.0, metavar="SECONDS")
    jp = jsub.add_parser("cancel", help="cancel a job (cooperative when already running)")
    jp.add_argument("job_id")
    jp = jsub.add_parser("gc", help="delete old terminal jobs and compact the journal")
    jp.add_argument("--max-age", type=float, default=24 * 3600.0, metavar="SECONDS")

    p = sub.add_parser("cluster", help="multi-replica cluster utilities")
    csub = p.add_subparsers(dest="cluster_command", required=True)
    cp = csub.add_parser("status", help="print a running cluster's replica state as JSON")
    cp.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="the router's base url (the --port a `repro serve --replicas N` listens on)",
    )

    p = sub.add_parser("io", help="volume ingestion utilities (verify/checksum)")
    iosub = p.add_subparsers(dest="io_command", required=True)
    ip = iosub.add_parser(
        "verify",
        help="walk every tile of an on-disk volume, classify damage "
        "(torn/flip/unreadable), print a JSON report; exit 1 when damaged",
    )
    ip.add_argument("path", type=Path)
    ip = iosub.add_parser(
        "checksum",
        help="write the per-tile sha256 sidecar that lets ingestion "
        "detect silent bit-flips (not just truncation)",
    )
    ip.add_argument("path", type=Path)

    p = sub.add_parser("readiness", help="score a file's AI-readiness")
    p.add_argument("path", type=Path)
    return parser


def _wants_observability(args) -> bool:
    return (
        getattr(args, "trace_out", None) is not None
        or getattr(args, "manifest_out", None) is not None
    )


def _start_observability(args, command: str) -> None:
    """Begin a CLI-scoped trace when the run asked for observability output."""
    if _wants_observability(args):
        from .observability import start_trace

        start_trace(f"repro.{command}")


def _print_repro_error(exc) -> int:
    """Render a :class:`~repro.errors.ReproError` as structured JSON on stderr."""
    doc = {"ok": False, "type": type(exc).__name__, "error": str(exc)}
    for attr in ("known", "skipped", "reason", "evicted_reason"):
        value = getattr(exc, attr, None)
        if value:
            doc[attr] = [list(v) if isinstance(v, tuple) else v for v in value] if isinstance(
                value, tuple
            ) else value
    print(json.dumps(doc, indent=2), file=sys.stderr)
    return 1


def _write_observability(args, command: str, *, config=None, profiler=None, extra=None) -> None:
    """Flush the CLI trace / manifest artifacts requested via flags.

    ``--trace-out`` writes the Chrome-trace file and, unless overridden,
    a ``run.json`` manifest next to it; ``--manifest-out`` writes (only)
    the manifest.
    """
    if not _wants_observability(args):
        return
    from .observability import build_manifest, end_trace, write_manifest

    tracer = end_trace()
    trace_out = getattr(args, "trace_out", None)
    manifest_out = getattr(args, "manifest_out", None)
    if trace_out is not None:
        if tracer is not None:
            tracer.write_chrome_trace(trace_out)
            print(f"trace -> {trace_out}")
        if manifest_out is None:
            manifest_out = trace_out.parent / "run.json"
    if manifest_out is not None:
        manifest = build_manifest(
            command, config=config, profiler=profiler, argv=sys.argv[1:], extra=extra
        )
        write_manifest(manifest_out, manifest)
        print(f"manifest -> {manifest_out}")


def _cmd_segment(args) -> int:
    from .core.pipeline import ZenesisConfig, ZenesisPipeline
    from .io.formats import load_image_file
    from .io.volume_io import save_volume_bundle
    from .platform.render import save_figure
    from .viz.overlay import overlay_mask

    if args.resume and args.checkpoint_dir is None:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.stream:
        return _cmd_segment_stream(args)
    arr = load_image_file(args.path)
    _start_observability(args, "segment")
    pipeline = ZenesisPipeline(
        ZenesisConfig(use_cache=not args.no_cache, temporal_mode=args.temporal_mode)
    )
    out = args.out or args.path.with_suffix(".masks.npz")
    if arr.ndim == 3 and args.slice is None:
        result = pipeline.segment_volume(
            arr, args.prompt, checkpoint_dir=args.checkpoint_dir, resume=args.resume
        )
        masks = result.masks
        n_resumed = sum(1 for sr in result.slice_results if sr.metadata.get("resumed"))
        resumed_note = f" ({n_resumed} slices resumed from checkpoint)" if n_resumed else ""
        print(
            f"{masks.shape[0]} slices; volume fraction {result.volume_fraction():.3f}{resumed_note}"
        )
        save_volume_bundle(out, arr, masks, {"prompt": args.prompt})
    else:
        if args.checkpoint_dir is not None:
            print("note: --checkpoint-dir only applies to full-volume runs", file=sys.stderr)
        img = arr[args.slice] if arr.ndim == 3 else arr
        result = pipeline.segment_image(img, args.prompt)
        print(f"boxes {result.n_boxes}; coverage {result.coverage:.3f}")
        np.savez_compressed(out, mask=result.mask, boxes=result.detection.boxes)
        if args.overlay is not None:
            _, seg_img = pipeline.adapt(img)
            save_figure(args.overlay, overlay_mask(seg_img, result.mask))
            print(f"overlay -> {args.overlay}")
    print(f"masks -> {out}")
    _write_observability(args, "segment", config=pipeline.config, profiler=pipeline.profiler)
    if args.profile:
        print()
        print(pipeline.profiler.format_table())
    return 0


def _cmd_segment_stream(args) -> int:
    """``segment --stream``: out-of-core Mode B over a LazyVolume.

    The volume is never fully resident — masks persist as per-slice shards
    in the checkpoint directory (default ``<input>.ckpt/``), which doubles
    as the resume point after a crash or kill.
    """
    from .core.pipeline import ZenesisConfig, ZenesisPipeline
    from .io.integrity import IngestPolicy

    ckpt_dir = args.checkpoint_dir or args.path.with_suffix(args.path.suffix + ".ckpt")
    _start_observability(args, "segment")
    pipeline = ZenesisPipeline(
        ZenesisConfig(use_cache=not args.no_cache, temporal_mode=args.temporal_mode)
    )
    policy = IngestPolicy(
        on_corrupt=args.on_corrupt,
        memory_budget_bytes=int(args.memory_budget_mb * 1024 * 1024),
    )
    result = pipeline.segment_volume_stream(
        args.path,
        args.prompt,
        checkpoint_dir=ckpt_dir,
        resume=args.resume,
        policy=policy,
    )
    degraded_note = ""
    if result.degraded:
        marks = ", ".join(f"{z}:{r}" for z, r in sorted(result.degraded.items()))
        degraded_note = f"; degraded slices: {marks}"
    print(
        f"{result.n_slices} slices streamed; volume fraction "
        f"{result.volume_fraction():.3f}{degraded_note}"
    )
    print(f"mask shards -> {ckpt_dir}")
    from .zoo.batch import in_plane_pixel_size_nm

    pixel_size_nm = in_plane_pixel_size_nm(result.io_stats.get("meta"))
    extra = {"pixel_size_nm": pixel_size_nm} if pixel_size_nm is not None else None
    _write_observability(
        args, "segment", config=pipeline.config, profiler=pipeline.profiler, extra=extra
    )
    if args.profile:
        print()
        print(pipeline.profiler.format_table())
    return 0


def _cmd_io(args) -> int:
    from .io.integrity import verify_volume, write_sidecar
    from .io.lazy import open_lazy_volume

    if args.io_command == "verify":
        with open_lazy_volume(args.path) as volume:
            report = verify_volume(volume)
        print(json.dumps(report, indent=2))
        return 0 if report["ok"] else 1
    if args.io_command == "checksum":
        with open_lazy_volume(args.path) as volume:
            side = write_sidecar(volume)
        print(f"sidecar -> {side}")
        return 0
    return 2


def _cmd_batch_dir(args) -> int:
    """``batch <dir> --task PRESET``: fan a folder out as durable zoo jobs."""
    from .errors import ReproError
    from .jobs import JobService
    from .zoo import run_batch, submit_batch

    if args.task is None:
        print(
            "directory batches need --task PRESET (see `repro zoo list`)",
            file=sys.stderr,
        )
        return 2
    jobs_dir = args.jobs_dir or args.path / ".repro-jobs"
    ensemble = None
    if args.mode == "ensemble" and args.ensemble_size is not None:
        ensemble = {"size": args.ensemble_size}
    svc = JobService(jobs_dir, lease_ttl_s=args.job_lease_ttl)
    try:
        if args.submit_only:
            manifest = submit_batch(
                svc,
                args.path,
                args.task,
                mode=args.mode,
                stream=args.stream,
                on_corrupt=args.on_corrupt,
                memory_budget_mb=args.memory_budget_mb,
                ensemble=ensemble,
                priority=args.priority,
            )
            print(json.dumps(manifest, indent=2))
            return 0
        report = run_batch(
            svc,
            args.path,
            args.task,
            mode=args.mode,
            stream=args.stream,
            on_corrupt=args.on_corrupt,
            memory_budget_mb=args.memory_budget_mb,
            ensemble=ensemble,
            priority=args.priority,
            timeout_s=args.timeout,
        )
    except ReproError as exc:
        return _print_repro_error(exc)
    print(json.dumps(report, indent=2))
    return 0 if report["ok"] else 1


def _cmd_batch(args) -> int:
    from .core.batch import BatchConfig, segment_volume_batch
    from .io.formats import load_image_file
    from .io.volume_io import save_volume_bundle

    if args.path.is_dir():
        return _cmd_batch_dir(args)
    if args.prompt is None:
        print("file batches need a text PROMPT argument", file=sys.stderr)
        return 2
    arr = load_image_file(args.path)
    if arr.ndim != 3:
        print("batch requires a volume (3-D) input", file=sys.stderr)
        return 2
    if args.temporal_mode == "propagate":
        # Propagation is sequential by construction (each slice's prompts
        # come from the previous slice's memory), so it bypasses the
        # halo-block worker pool and runs the exact single-engine path.
        from .core.pipeline import ZenesisConfig, ZenesisPipeline

        if args.workers != 1:
            print("note: --temporal-mode propagate is sequential; ignoring --workers", file=sys.stderr)
        pipeline = ZenesisPipeline(ZenesisConfig(temporal_mode="propagate"))
        result = pipeline.segment_volume(arr, args.prompt)
        out = args.out or args.path.with_suffix(".masks.npz")
        save_volume_bundle(out, arr, result.masks, {"prompt": args.prompt})
        rep = result.refinement_report
        print(
            f"{result.n_slices} slices propagated ({rep.get('grounded_slices', 0)} grounded, "
            f"{rep.get('regrounds', 0)} re-grounds); volume fraction "
            f"{result.masks.mean():.3f}; masks -> {out}"
        )
        return 0
    masks, report = segment_volume_batch(
        arr, args.prompt, BatchConfig(n_workers=args.workers, temporal=not args.no_temporal)
    )
    out = args.out or args.path.with_suffix(".masks.npz")
    save_volume_bundle(out, arr, masks, {"prompt": args.prompt})
    print(
        f"{report.n_slices} slices on {report.n_workers} worker(s) in {report.wall_s:.1f}s; "
        f"volume fraction {masks.mean():.3f}; masks -> {out}"
    )
    return 0


def _cmd_zoo(args) -> int:
    from .errors import ReproError
    from .zoo import load_registry

    try:
        registry = load_registry(args.jobs_dir)
        if args.zoo_command == "list":
            doc = registry.describe()
            if args.pixel_size_nm is not None:
                doc["suggested"] = list(registry.suggest(args.pixel_size_nm))
            print(json.dumps(doc, indent=2))
            return 0
        if args.zoo_command == "show":
            print(json.dumps(registry.get(args.preset).describe(), indent=2))
            return 0
    except ReproError as exc:
        return _print_repro_error(exc)
    return 2


def _cmd_evaluate(args) -> int:
    from .data.datasets import make_benchmark_dataset
    from .eval.dashboard import render_dashboard
    from .eval.evaluator import Evaluator
    from .eval.experiments import ExperimentSetup, build_methods
    from .eval.report import paper_table

    from .core.pipeline import ZenesisConfig

    setup = ExperimentSetup(
        dataset=make_benchmark_dataset(shape=(args.size, args.size), n_slices=args.slices),
        zenesis_config=ZenesisConfig(use_cache=not args.no_cache),
    )
    _start_observability(args, "evaluate")
    evaluator = Evaluator(build_methods(setup))
    evaluations = evaluator.evaluate(setup.dataset.slices, method_names=args.methods)
    for name, ev in evaluations.items():
        print()
        print(paper_table(ev))
    if args.dashboard is not None:
        from .observability import stage_latency_rows
        from .resilience import events_snapshot
        from .resilience.serving import serving_snapshot

        args.dashboard.write_text(
            render_dashboard(
                evaluations,
                cache_counters=evaluator.last_cache_counters,
                resilience_counters=events_snapshot(),
                latency_rows=stage_latency_rows(),
                serving=serving_snapshot(),
            )
        )
        print(f"\ndashboard -> {args.dashboard}")
    _write_observability(args, "evaluate", config=setup.zenesis_config)
    return 0


def _cmd_metrics(args) -> int:
    from .observability import diff_manifests, load_manifest

    if args.metrics_command == "diff":
        print(diff_manifests(load_manifest(args.manifest_a), load_manifest(args.manifest_b)))
        return 0
    return 2


def _cmd_synthesize(args) -> int:
    from .data.datasets import make_sample
    from .io.volume_io import export_volume_tiff, save_volume_bundle

    sample = make_sample(
        args.kind, seed=args.seed, shape=(args.size, args.size), n_slices=args.slices
    )
    if args.with_gt or args.out.suffix == ".npz":
        save_volume_bundle(
            args.out,
            sample.volume.voxels,
            sample.catalyst_mask,
            {"kind": args.kind, "seed": args.seed},
        )
    else:
        export_volume_tiff(args.out, sample.volume.voxels, voxel_size_nm=(5.0, 5.0))
    print(
        f"{args.kind} volume {sample.volume.shape} "
        f"(catalyst fraction {sample.catalyst_mask.mean():.3f}) -> {args.out}"
    )
    return 0


def _cmd_serve(args) -> int:
    if args.replicas > 1:
        return _cmd_serve_cluster(args)
    from .platform.server import PlatformServer

    server = PlatformServer(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        request_deadline_s=args.request_deadline,
        session_ttl_s=args.session_ttl,
        max_sessions=args.max_sessions,
        drain_timeout_s=args.drain_timeout,
        jobs_dir=str(args.jobs_dir) if args.jobs_dir is not None else None,
        job_workers=args.job_workers,
        job_lease_ttl_s=args.job_lease_ttl,
        auto_job_slices=args.auto_job_slices,
    )
    server.start()
    jobs_note = f" (jobs -> {args.jobs_dir})" if args.jobs_dir is not None else ""
    print(f"serving at {server.url}{jobs_note} — Ctrl-C to stop")
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cmd_serve_cluster(args) -> int:
    """``serve --replicas N``: coordinator + router instead of one server."""
    from .cluster import ClusterCoordinator

    coordinator = ClusterCoordinator(
        args.replicas,
        host=args.host,
        port=args.port,
        jobs_dir=str(args.jobs_dir) if args.jobs_dir is not None else None,
        log_dir=args.cluster_log_dir,
        replica_args={
            "max_inflight": args.max_inflight,
            "request_deadline": args.request_deadline,
            "session_ttl": args.session_ttl,
            "max_sessions": args.max_sessions,
            "drain_timeout": args.drain_timeout,
            "job_workers": args.job_workers,
            "job_lease_ttl": args.job_lease_ttl,
            "auto_job_slices": args.auto_job_slices,
        },
    )
    coordinator.start()
    jobs_note = f" (shared jobs -> {args.jobs_dir})" if args.jobs_dir is not None else ""
    print(
        f"routing {args.replicas} replicas at {coordinator.url}{jobs_note} "
        f"(logs -> {coordinator.log_dir}) — Ctrl-C to stop"
    )
    for entry in coordinator.status()["replicas"]:
        print(f"  replica {entry['index']}: {entry['url']} (pid {entry['pid']})")
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        coordinator.stop()
    return 0


def _cmd_cluster(args) -> int:
    import urllib.request

    if args.cluster_command == "status":
        with urllib.request.urlopen(args.url.rstrip("/") + "/cluster/status", timeout=5) as resp:
            print(json.dumps(json.loads(resp.read()), indent=2))
        return 0
    return 2


def _cmd_jobs(args) -> int:
    from .jobs import JobService

    from .errors import ReproError

    svc = JobService(args.jobs_dir)
    cmd = args.jobs_command
    if cmd == "submit":
        try:
            if args.kind == "segment_volume":
                if args.path is None or args.prompt is None:
                    print("segment_volume jobs need --path and --prompt", file=sys.stderr)
                    return 2
                if args.stream:
                    job = svc.submit_segment_volume_path(
                        args.path,
                        args.prompt,
                        temporal=not args.no_temporal,
                        temporal_mode=args.temporal_mode,
                        on_corrupt=args.on_corrupt,
                        memory_budget_mb=args.memory_budget_mb,
                        priority=args.priority,
                    )
                else:
                    from .io.formats import load_image_file

                    arr = load_image_file(args.path)
                    job = svc.submit_segment_volume(
                        arr,
                        args.prompt,
                        temporal=not args.no_temporal,
                        temporal_mode=args.temporal_mode,
                        n_workers=args.workers,
                        priority=args.priority,
                    )
            elif args.kind == "zoo_segment":
                if args.path is None or args.preset is None:
                    print("zoo_segment jobs need --path and --preset", file=sys.stderr)
                    return 2
                job, created = svc.submit_zoo_segment(
                    args.path,
                    args.preset,
                    mode=args.mode,
                    stream=args.stream,
                    on_corrupt=args.on_corrupt,
                    memory_budget_mb=args.memory_budget_mb,
                    priority=args.priority,
                )
                if not created:
                    print(f"reusing live job for this (volume, preset, mode): {job.job_id}")
            else:
                params = json.loads(args.params) if args.params else {}
                job = svc.submit(args.kind, params, priority=args.priority)
        except ReproError as exc:
            return _print_repro_error(exc)
        print(f"submitted {job.job_id} ({job.kind}, priority {job.priority})")
        if args.run:
            n = svc.runner.run_until_idle()
            print(f"ran {n} job(s); {job.job_id} -> {svc.status(job.job_id)['state']}")
        return 0
    if cmd == "status":
        payload = svc.status(args.job_id) if args.job_id else svc.snapshot()
        print(json.dumps(payload, indent=2))
        return 0
    if cmd == "watch":
        import time as _time

        cursor, t0 = 0, _time.monotonic()
        while True:
            feed = svc.events(args.job_id, cursor=cursor)
            if feed.get("truncated"):
                print(
                    f"[warn] events after cursor {cursor} were trimmed from retention; "
                    "stream resumes at the oldest retained event",
                    file=sys.stderr,
                )
            for event in feed["events"]:
                detail = {k: v for k, v in event.items() if k not in ("job_id", "seq", "ts", "kind")}
                print(f"[{event['seq']:4d}] {event['kind']} {json.dumps(detail)}")
            cursor = feed["cursor"]
            status = svc.status(args.job_id)
            if status["state"] in ("succeeded", "failed", "cancelled"):
                print(f"{args.job_id} -> {status['state']}")
                return 0 if status["state"] == "succeeded" else 1
            if _time.monotonic() - t0 > args.timeout:
                print(f"timed out after {args.timeout}s ({status['state']})", file=sys.stderr)
                return 1
            _time.sleep(0.2)
    if cmd == "cancel":
        print(json.dumps(svc.cancel(args.job_id), indent=2))
        return 0
    if cmd == "gc":
        swept = svc.gc(max_age_s=args.max_age)
        print(
            f"removed {len(swept['removed'])} job(s), "
            f"{swept['orphan_inputs']} orphan input(s); journal compacted"
        )
        return 0
    return 2


def _cmd_readiness(args) -> int:
    from .adapt.readiness import score_readiness
    from .data.image import ScientificImage
    from .io.formats import load_image_file

    arr = load_image_file(args.path)
    if arr.ndim == 3 and arr.shape[2] not in (3, 4):
        arr = arr[0]  # first slice of a volume
    report = score_readiness(ScientificImage(arr))
    print(json.dumps(report.as_dict(), indent=2))
    return 0


_COMMANDS = {
    "segment": _cmd_segment,
    "batch": _cmd_batch,
    "zoo": _cmd_zoo,
    "evaluate": _cmd_evaluate,
    "metrics": _cmd_metrics,
    "synthesize": _cmd_synthesize,
    "serve": _cmd_serve,
    "cluster": _cmd_cluster,
    "jobs": _cmd_jobs,
    "io": _cmd_io,
    "readiness": _cmd_readiness,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "precision", None) is not None:
        # Set before any model/cache object exists so every fingerprint
        # computed in this run carries the selected tier.
        from .models.nn.precision import set_precision

        set_precision(args.precision)
    return _COMMANDS[args.command](args)
