"""Fault tolerance for the Zenesis pipeline (retry, deadline, checkpoint, faults).

The paper's platform runs hour-long FIB-SEM volume jobs interactively; a
single corrupt slice, hung worker, or transient grounding failure must not
destroy accumulated work.  This package supplies the failure model:

* :class:`RetryPolicy` / :class:`Deadline` — bounded retries with
  deterministic-jitter backoff, and wall-clock budgets
  (:mod:`repro.resilience.policy`);
* :class:`CheckpointManager` — atomic per-slice manifest + mask shards for
  ``segment_volume`` resume (:mod:`repro.resilience.checkpoint`);
* :class:`FaultPlan` / :func:`get_fault_plan` — declarative fault injection
  driven by ``$REPRO_FAULTS`` (:mod:`repro.resilience.faults`);
* :data:`EVENTS` — the process-global recovery-event counters surfaced in
  profiler tables and the dashboard (:mod:`repro.resilience.events`);
* :mod:`repro.resilience.serving` — the online path's overload contract:
  admission control, per-request deadlines, circuit breakers, and graceful
  drain (imported explicitly by the platform layer; not re-exported here).

See DESIGN.md §"Failure model and recovery" for what retries, what
checkpoints, what degrades, and what raises.
"""

from .checkpoint import CheckpointManager
from .events import EVENTS, ResilienceEvents, events_snapshot, record_event, reset_events
from .faults import FaultPlan, FaultRule, fault_crash_exit_code, get_fault_plan
from .policy import Deadline, RetryPolicy

__all__ = [
    "CheckpointManager",
    "Deadline",
    "EVENTS",
    "FaultPlan",
    "FaultRule",
    "ResilienceEvents",
    "RetryPolicy",
    "events_snapshot",
    "fault_crash_exit_code",
    "get_fault_plan",
    "record_event",
    "reset_events",
]
