"""Per-slice checkpointing for long-running volume jobs.

A checkpoint directory holds a JSON manifest plus one ``.npy`` mask shard
per completed slice.  Every write is atomic (tmp file + ``os.replace``), so
a crash at any instant leaves either the previous or the next consistent
state — never a torn shard or manifest.

The manifest records a *fingerprint* of the job (volume content, prompt,
pipeline config, temporal flag).  Resume refuses a mismatched fingerprint
with :class:`~repro.errors.CheckpointError` rather than silently mixing
masks from two different jobs.
"""

from __future__ import annotations

import json
import os
import zipfile
from pathlib import Path

import numpy as np

from ..errors import CheckpointError
from .events import record_event

__all__ = ["CheckpointManager"]

MANIFEST_NAME = "manifest.json"
_VERSION = 1


class CheckpointManager:
    """Owns one checkpoint directory for one volume-segmentation job."""

    def __init__(
        self,
        root: Path | str,
        *,
        fingerprint: str,
        n_slices: int,
        meta: dict | None = None,
    ) -> None:
        self.root = Path(root)
        self.fingerprint = str(fingerprint)
        self.n_slices = int(n_slices)
        self.meta = dict(meta or {})
        self.completed: set[int] = set()
        self.complete = False

    # -- paths ----------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def shard_path(self, z: int) -> Path:
        return self.root / f"slice_{int(z):05d}.npy"

    def state_path(self, name: str) -> Path:
        return self.root / f"state_{name}.npz"

    # -- lifecycle ------------------------------------------------------------

    def load(self, *, resume: bool = True) -> set[int]:
        """Initialise the directory; returns the resumable slice set.

        ``resume=False`` (or no manifest on disk) starts fresh.  A manifest
        written by a *different* job (fingerprint mismatch) raises
        :class:`CheckpointError` on resume — deleting the directory is the
        explicit opt-out.  Shards listed in the manifest but unreadable on
        disk are dropped back into the to-do set, not trusted.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if not resume or not self.manifest_path.exists():
            self.completed = set()
            self.complete = False
            self._write_manifest()
            return set()
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint manifest {self.manifest_path}: {exc} "
                "(delete the checkpoint directory to start over)"
            ) from exc
        if manifest.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"checkpoint at {self.root} belongs to a different job "
                f"(volume/prompt/config changed); delete it or pick another "
                f"--checkpoint-dir"
            )
        if int(manifest.get("n_slices", -1)) != self.n_slices:
            raise CheckpointError(
                f"checkpoint at {self.root} covers {manifest.get('n_slices')} "
                f"slices, current job has {self.n_slices}"
            )
        completed = set()
        for z in manifest.get("completed", []):
            z = int(z)
            if 0 <= z < self.n_slices and self.shard_path(z).exists():
                completed.add(z)
            else:
                record_event("checkpoint.dropped_shards")
        self.completed = completed
        self.complete = bool(manifest.get("complete", False))
        # Keep what the previous run recorded (degraded-slice markers and
        # the like) unless this run explicitly overrides a key.
        prior_meta = manifest.get("meta")
        if isinstance(prior_meta, dict):
            self.meta = {**prior_meta, **self.meta}
        return set(completed)

    def mark_degraded(self, z: int, reason: str) -> None:
        """Record slice ``z`` as degraded (corrupt tile substituted).

        Lives in the manifest's ``meta`` so the run manifest — and any
        resumed run — tells the truth about which masks came from damaged
        data.  The caller still saves a shard for the slice; degraded is an
        annotation, not an absence.
        """
        degraded = self.meta.setdefault("degraded", {})
        degraded[str(int(z))] = str(reason)
        record_event("checkpoint.degraded_slices")

    @property
    def degraded(self) -> dict[int, str]:
        """Degraded-slice markers recorded so far, keyed by slice index."""
        raw = self.meta.get("degraded", {})
        return {int(k): str(v) for k, v in raw.items()} if isinstance(raw, dict) else {}

    def save_slice(self, z: int, mask: np.ndarray) -> None:
        """Persist one completed slice mask, then the updated manifest."""
        z = int(z)
        path = self.shard_path(z)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as fh:
                np.save(fh, np.asarray(mask))
            os.replace(tmp, path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise CheckpointError(f"cannot write checkpoint shard {path}: {exc}") from exc
        self.completed.add(z)
        self._write_manifest()
        record_event("checkpoint.saved_slices")

    def load_slice(self, z: int) -> np.ndarray:
        """Read one completed slice mask back (bit-identical to the save)."""
        path = self.shard_path(int(z))
        try:
            return np.load(path, allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"cannot read checkpoint shard {path}: {exc}") from exc

    def save_state(self, name: str, arrays: dict) -> None:
        """Atomically persist a named bundle of arrays (auxiliary job state).

        Used by the propagation path to shard its per-object memory next to
        the mask shards: callers write the state *after* the slice shard, so
        a crash between the two leaves at most one slice ahead of the state
        — recomputed deterministically on resume.
        """
        path = self.state_path(name)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as fh:
                np.savez(fh, **{k: np.asarray(v) for k, v in arrays.items()})
            os.replace(tmp, path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise CheckpointError(f"cannot write checkpoint state {path}: {exc}") from exc
        record_event("checkpoint.saved_states")

    def load_state(self, name: str) -> dict | None:
        """Read a named state bundle back, or None when absent/unreadable.

        An unreadable state shard is not fatal — the caller simply restarts
        the computation from scratch (the mask shards stay authoritative).
        """
        path = self.state_path(name)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                return {k: data[k].copy() for k in data.files}
        except (OSError, ValueError, zipfile.BadZipFile):
            record_event("checkpoint.dropped_states")
            return None

    def finalize(self) -> None:
        """Mark the job complete in the manifest."""
        self.complete = True
        self._write_manifest()

    # -- internals ------------------------------------------------------------

    def _write_manifest(self) -> None:
        payload = {
            "version": _VERSION,
            "fingerprint": self.fingerprint,
            "n_slices": self.n_slices,
            "completed": sorted(self.completed),
            "complete": self.complete,
            "meta": self.meta,
        }
        tmp = self.manifest_path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(json.dumps(payload, indent=1))
            os.replace(tmp, self.manifest_path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise CheckpointError(f"cannot write checkpoint manifest: {exc}") from exc
