"""Process-wide recovery-event counters.

Every resilience mechanism (retries, worker failovers, cache quarantines,
checkpoint resumes, fired fault injections) records what it did here, so
recoveries are *observable*: the pipeline folds a snapshot into its
:class:`~repro.utils.timing.StageProfiler` counters, which surface in
``--profile`` tables and the Fig 8 dashboard's resilience card.

The recorder is deliberately a module-global (like the inference cache):
fault handling happens deep inside layers that have no profiler handle.
Forked Mode B workers inherit a copy-on-write snapshot; their own events
do not propagate back, but every *parent-side* recovery action (dead-worker
detection, failover, re-execution) is recorded in the parent.
"""

from __future__ import annotations

import threading

__all__ = ["ResilienceEvents", "EVENTS", "record_event", "events_snapshot", "reset_events"]

#: Counter-name prefix under which events appear in profiler snapshots.
PREFIX = "resilience."


class ResilienceEvents:
    """A thread-safe named-counter bag."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def record(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` (recorded as ``resilience.<name>``)."""
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + int(n)

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """Flat ``{"resilience.<name>": count}`` mapping for profilers."""
        with self._lock:
            return {f"{PREFIX}{k}": v for k, v in sorted(self._counts.items())}

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()


#: The process-global event recorder.
EVENTS = ResilienceEvents()


def record_event(name: str, n: int = 1) -> None:
    """Record ``n`` occurrences of ``name`` on the global recorder."""
    EVENTS.record(name, n)


def events_snapshot() -> dict[str, int]:
    """Snapshot of the global recorder (profiler/dashboard feed)."""
    return EVENTS.snapshot()


def reset_events() -> None:
    """Clear the global recorder (tests)."""
    EVENTS.reset()
