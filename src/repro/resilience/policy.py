"""Retry and deadline policies.

:class:`RetryPolicy` bounds re-attempts of a fallible operation with
exponential backoff and *deterministic* jitter: the jitter for attempt *i*
of stream ``key`` is derived through :func:`repro.utils.rng.derive_seed`,
so a replayed run backs off identically — the same reproducibility contract
the rest of the library keeps for model weights and synthetic data.

:class:`Deadline` is a wall-clock budget object passed down through layers;
each layer calls :meth:`Deadline.check` before starting more work and caps
its own waits with :meth:`Deadline.clamp`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import DeadlineExceededError, ReproError, RetryExhaustedError
from ..utils.rng import derive_seed, make_rng

__all__ = ["RetryPolicy", "Deadline"]


class Deadline:
    """A wall-clock budget: ``budget_s`` seconds from construction."""

    def __init__(self, budget_s: float, *, clock: Callable[[], float] = time.monotonic) -> None:
        if budget_s <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget_s}")
        self.budget_s = float(budget_s)
        self._clock = clock
        self._t0 = clock()

    def elapsed(self) -> float:
        return self._clock() - self._t0

    def remaining(self) -> float:
        """Seconds left in the budget (never negative)."""
        return max(0.0, self.budget_s - self.elapsed())

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def clamp(self, wait_s: float) -> float:
        """Clip a wait interval to the remaining budget."""
        return min(float(wait_s), self.remaining())

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` once the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(
                f"{what} exceeded its {self.budget_s:.1f}s deadline "
                f"({self.elapsed():.1f}s elapsed)"
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``retry_on`` is an exception *allowlist*: anything outside it propagates
    immediately (a shape error will not fix itself on attempt 3).  When the
    attempts are exhausted, :class:`RetryExhaustedError` is raised with the
    final failure chained as ``__cause__``.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.25  # +/- fraction of the nominal delay
    retry_on: tuple[type[BaseException], ...] = (ReproError,)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def delay_s(self, attempt: int, key: str = "retry") -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered.

        Deterministic: the jitter draw is seeded from (policy seed, key,
        attempt), so two processes replaying the same stream sleep the same.
        """
        nominal = min(self.base_delay_s * self.multiplier ** (attempt - 1), self.max_delay_s)
        if nominal <= 0.0 or self.jitter <= 0.0:
            return max(nominal, 0.0)
        rng = make_rng(derive_seed(self.seed, "retry-jitter", key, attempt))
        factor = 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return nominal * factor

    def delays(self, key: str = "retry") -> Sequence[float]:
        """All backoff delays this policy would apply, in order."""
        return [self.delay_s(i, key) for i in range(1, self.max_attempts)]

    def call(
        self,
        fn: Callable[[int], object],
        *,
        key: str = "retry",
        on_retry: Callable[[int, BaseException], None] | None = None,
        deadline: Deadline | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        """Run ``fn(attempt)`` (attempt = 0, 1, …) until it succeeds.

        ``on_retry(next_attempt, exc)`` fires before each re-attempt — the
        hook where callers record recovery events or relax parameters.
        A ``deadline`` bounds the total time including backoff sleeps.
        """
        last_exc: BaseException | None = None
        for attempt in range(self.max_attempts):
            if deadline is not None:
                deadline.check(f"retryable operation {key!r}")
            try:
                return fn(attempt)
            except self.retry_on as exc:
                last_exc = exc
                if attempt + 1 >= self.max_attempts:
                    break
                if on_retry is not None:
                    on_retry(attempt + 1, exc)
                delay = self.delay_s(attempt + 1, key)
                if deadline is not None:
                    delay = deadline.clamp(delay)
                if delay > 0.0:
                    sleep(delay)
        raise RetryExhaustedError(
            f"{key!r} failed after {self.max_attempts} attempt(s): {last_exc!r}"
        ) from last_exc
