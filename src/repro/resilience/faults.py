"""Fault injection: a declarative plan of failures to provoke.

The ``REPRO_FAULTS`` environment variable holds a comma-separated list of
fault rules, each ``kind`` plus optional ``&``-joined conditions::

    REPRO_FAULTS="worker_crash@slice=3,disk_corrupt@p=0.1,grounding_empty@slice=5"

Supported kinds (hook sites in parentheses):

``worker_crash``     hard-exit a forked pool worker (``os._exit``), only in
                     child processes so the parent's inline re-execution
                     of the partition succeeds (pool/batch workers).
``volume_crash``     hard-exit the process mid ``segment_volume`` — for
                     exercising checkpoint/resume across real process death.
``volume_abort``     raise :class:`~repro.errors.PipelineError` mid
                     ``segment_volume`` — the in-process (testable) twin of
                     ``volume_crash``.
``grounding_empty``  force one grounding call to return zero boxes
                     (grounding stage), exercising the relaxed-threshold
                     retry path.
``disk_corrupt``     overwrite a just-written disk-cache entry with garbage
                     (cache disk tier), exercising quarantine.
``grounding_error``  raise :class:`~repro.errors.GroundingError` inside the
                     platform session's guarded segment path, exercising
                     the grounding circuit breaker + degraded fallbacks.
``sam_error``        raise :class:`~repro.errors.PipelineError` in the SAM
                     decode stage of the same path (SAM breaker /
                     relevance-mask fallback).
``job_crash``        hard-exit the process at the start of a background
                     job's decode round (``slice=N`` matches the round's
                     first slice) — the job-queue twin of ``volume_crash``,
                     exercising lease reclaim + checkpoint resume.
``journal_torn``     write half a job-journal line then hard-exit
                     (``line=N`` matches the Nth append of the process) —
                     a power cut mid-append, exercising torn-tail recovery
                     in :class:`repro.jobs.JobStore`.
``replica_crash``    hard-exit a cluster replica at boot, *before* it binds
                     (``replica=N`` matches the replica index).  A freshly
                     spawned replica re-parses ``REPRO_FAULTS``, so the
                     default ``times=1`` budget fires on every boot —
                     exactly the crash loop the coordinator's restart
                     breaker must contain.
``proxy_timeout``    make the cluster router treat one forward as timed
                     out (``replica=N``) without touching the replica —
                     exercising the structured-504 path and the
                     never-retry-a-timeout rule.
``io_transient``     raise ``OSError`` from one lazy-volume tile fetch
                     (``slice=N``) — an NFS hiccup; exercises the bounded
                     retry-with-backoff in :class:`repro.io.TileStream`.
``io_torn``          make one tile fetch fail as a truncated tail
                     (``slice=N``): a ``CorruptTileError(kind="torn")``
                     carrying a zero-filled salvage, exercising the
                     ``on_corrupt`` skip/degrade policies and quarantine.
``io_flip``          flip one bit in a decoded tile (``slice=N``) without
                     touching disk — detected as ``kind="flip"`` when a
                     checksum sidecar is active, silent otherwise (which
                     is exactly why sidecars exist).

Conditions: ``slice=N`` / ``worker=N`` match the hook's context, ``p=F``
fires probabilistically (deterministic per-rule RNG stream), ``times=N``
caps total fires.  Deterministic rules default to firing **once** (so a
retry after the injected failure succeeds); ``p=``-rules default to
unlimited fires.  An unset/empty spec is a no-op plan.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

import numpy as np

from ..errors import ValidationError
from ..utils.rng import GLOBAL_SEED, derive_seed, make_rng
from .events import record_event

__all__ = ["FaultRule", "FaultPlan", "get_fault_plan", "fault_crash_exit_code"]

#: Exit code used by injected hard-crash faults (the docker OOM-kill code).
CRASH_EXIT_CODE = 137

# Recorded at import time; forked children inherit the parent's value, so a
# differing os.getpid() identifies a worker process without any plumbing.
_MAIN_PID = os.getpid()


def fault_crash_exit_code() -> int:
    return CRASH_EXIT_CODE


def _parse_value(raw: str) -> int | float | str:
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


@dataclass
class FaultRule:
    """One injectable fault: a kind, match conditions, and a fire budget."""

    kind: str
    match: dict[str, int | float | str] = field(default_factory=dict)
    p: float = 1.0
    times: float = 1.0  # max fires; math.inf for unlimited
    fired: int = 0
    _rng: np.random.Generator | None = None

    @classmethod
    def parse(cls, entry: str, index: int) -> "FaultRule":
        entry = entry.strip()
        if not entry:
            raise ValidationError("empty fault rule")
        kind, _, conds = entry.partition("@")
        kind = kind.strip()
        if not kind:
            raise ValidationError(f"fault rule {entry!r} has no kind")
        match: dict[str, int | float | str] = {}
        p = 1.0
        times: float | None = None
        for cond in filter(None, (c.strip() for c in conds.split("&"))):
            key, sep, raw = cond.partition("=")
            if not sep:
                raise ValidationError(f"fault condition {cond!r} is not key=value")
            value = _parse_value(raw.strip())
            key = key.strip()
            if key == "p":
                p = float(value)
                if not (0.0 <= p <= 1.0):
                    raise ValidationError(f"fault probability must be in [0, 1], got {p}")
            elif key == "times":
                times = math.inf if raw.strip() in ("inf", "-1") else float(value)
            else:
                match[key] = value
        if times is None:
            # Probabilistic rules keep firing; deterministic ones fire once
            # so the recovery path (retry/failover) can succeed.
            times = math.inf if p < 1.0 else 1.0
        rule = cls(kind=kind, match=match, p=p, times=times)
        rule._rng = make_rng(derive_seed(GLOBAL_SEED, "faults", kind, index))
        return rule

    def should_fire(self, context: dict) -> bool:
        if self.fired >= self.times:
            return False
        for key, expected in self.match.items():
            if context.get(key) != expected:
                return False
        if self.p < 1.0:
            assert self._rng is not None
            if float(self._rng.random()) >= self.p:
                return False
        self.fired += 1
        return True


class FaultPlan:
    """A parsed set of fault rules plus fire bookkeeping."""

    def __init__(self, rules: list[FaultRule], spec: str = "") -> None:
        self.rules = rules
        self.spec = spec

    @classmethod
    def parse(cls, spec: str | None) -> "FaultPlan":
        spec = (spec or "").strip()
        if not spec:
            return cls([], "")
        rules = [FaultRule.parse(entry, i) for i, entry in enumerate(spec.split(",")) if entry.strip()]
        return cls(rules, spec)

    @property
    def active(self) -> bool:
        return bool(self.rules)

    def should_fire(self, kind: str, *, child_only: bool = False, **context) -> bool:
        """True when a rule of ``kind`` matching ``context`` fires now.

        ``child_only`` restricts the fault to forked worker processes (the
        creating process never fires it), so a parent-side inline retry of
        the same work is not re-injected.
        """
        if not self.rules:
            return False
        if child_only and os.getpid() == _MAIN_PID:
            return False
        for rule in self.rules:
            if rule.kind == kind and rule.should_fire(context):
                record_event(f"faults.{kind}")
                return True
        return False

    def crash_if(self, kind: str, *, child_only: bool = False, **context) -> None:
        """Hard-exit the process when the fault fires (no cleanup, no flush)."""
        if self.should_fire(kind, child_only=child_only, **context):
            os._exit(CRASH_EXIT_CODE)


_plan_cache: tuple[str, FaultPlan] | None = None


def get_fault_plan() -> FaultPlan:
    """The plan described by ``$REPRO_FAULTS`` (re-parsed when it changes).

    Re-parsing on change resets per-rule fire counts, which is what tests
    toggling the variable expect; within one run the plan (and its
    bookkeeping) is stable.
    """
    global _plan_cache
    spec = os.environ.get("REPRO_FAULTS", "")
    if _plan_cache is not None and _plan_cache[0] == spec:
        return _plan_cache[1]
    plan = FaultPlan.parse(spec)
    _plan_cache = (spec, plan)
    return plan


def reset_fault_plan() -> None:
    """Drop the cached plan so the next lookup re-parses (and re-arms) it.

    Needed by tests that set ``$REPRO_FAULTS`` to the *same* spec twice:
    the spec-keyed cache would otherwise carry fire counts across tests.
    """
    global _plan_cache
    _plan_cache = None
