"""Admission control: a bounded in-flight gate with a short wait queue.

The paper's platform runs on a single inference server; an unbounded
``ThreadingHTTPServer`` accepts every connection and lets request threads
pile up behind the CPU until latency (and memory) diverge.
:class:`AdmissionGate` bounds the damage: at most ``max_inflight`` requests
execute concurrently, at most ``max_queue`` more wait (each for at most
``queue_timeout_s``), and everything beyond that is *shed* immediately —
the caller converts the shed into HTTP 429 + ``Retry-After`` so a load
balancer or client backs off instead of stacking threads.

Observability: the gate keeps the ``repro_server_inflight`` gauge and the
``repro_server_shed_total`` counter in the global metrics registry current,
and records ``server.shed`` resilience events, so overload is visible on
``GET /metrics`` and the Fig. 8 serving card rather than only in latency.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager

from ...errors import AdmissionRejectedError
from ...observability.metrics import get_registry
from ..events import record_event

__all__ = ["AdmissionGate"]


class AdmissionGate:
    """Bounded concurrent-admission gate (thread-safe).

    ``try_acquire`` either admits the caller (possibly after queueing up to
    ``queue_timeout_s``) or returns ``False`` having counted a shed; the
    :meth:`admit` context manager raises
    :class:`~repro.errors.AdmissionRejectedError` instead, carrying the
    ``Retry-After`` hint.
    """

    def __init__(
        self,
        max_inflight: int = 8,
        *,
        max_queue: int = 16,
        queue_timeout_s: float = 0.5,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.queue_timeout_s = float(queue_timeout_s)
        self._cond = threading.Condition()
        self._inflight = 0
        self._waiting = 0
        self._shed_total = 0
        self._admitted_total = 0

    # -- metrics ----------------------------------------------------------

    def _publish(self) -> None:
        """Keep the registry gauge in sync (called under the lock)."""
        registry = get_registry()
        registry.gauge("repro_server_inflight").set(self._inflight)
        registry.gauge("repro_server_queued").set(self._waiting)

    def _count_shed(self) -> None:
        self._shed_total += 1
        get_registry().counter("repro_server_shed_total").inc()
        record_event("server.shed")

    # -- admission --------------------------------------------------------

    def try_acquire(self, timeout_s: float | None = None) -> bool:
        """Admit the caller, queueing up to ``timeout_s`` if at capacity.

        Returns ``False`` (and counts a shed) when the gate is full and the
        queue is full, or when the queue wait times out.  Every ``True``
        must be paired with :meth:`release`.
        """
        wait_budget = self.queue_timeout_s if timeout_s is None else float(timeout_s)
        with self._cond:
            if self._inflight < self.max_inflight:
                self._inflight += 1
                self._admitted_total += 1
                self._publish()
                return True
            if self._waiting >= self.max_queue or wait_budget <= 0.0:
                self._count_shed()
                self._publish()
                return False
            self._waiting += 1
            self._publish()
            try:
                admitted = self._cond.wait_for(
                    lambda: self._inflight < self.max_inflight, timeout=wait_budget
                )
            finally:
                self._waiting -= 1
            if not admitted:
                self._count_shed()
                self._publish()
                return False
            self._inflight += 1
            self._admitted_total += 1
            self._publish()
            return True

    def release(self) -> None:
        with self._cond:
            if self._inflight <= 0:
                raise RuntimeError("AdmissionGate.release without a matching acquire")
            self._inflight -= 1
            self._publish()
            self._cond.notify()

    @contextmanager
    def admit(self, timeout_s: float | None = None):
        """Context-managed admission; raises on shed instead of returning False."""
        if not self.try_acquire(timeout_s):
            raise AdmissionRejectedError(
                f"server at capacity ({self.max_inflight} in flight, "
                f"{self.max_queue} queued); retry later",
                retry_after_s=self.retry_after_s(),
            )
        try:
            yield self
        finally:
            self.release()

    # -- introspection ----------------------------------------------------

    def retry_after_s(self) -> float:
        """The backoff hint for shed requests (whole seconds, >= 1)."""
        return float(max(1, math.ceil(self.queue_timeout_s)))

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    @property
    def shed_total(self) -> int:
        with self._cond:
            return self._shed_total

    def snapshot(self) -> dict:
        with self._cond:
            return {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "inflight": self._inflight,
                "waiting": self._waiting,
                "admitted_total": self._admitted_total,
                "shed_total": self._shed_total,
            }
