"""Circuit breakers around the inference stages (closed / open / half-open).

A breaker wraps one failure-prone stage (DINO grounding, SAM decoding).
While **closed** every call passes through; ``failure_threshold``
consecutive failures trip it **open**, after which calls are refused
immediately (the caller degrades — last-good boxes, SAM-only fallback,
relevance-threshold mask) instead of hammering a broken stage.  After
``recovery_timeout_s`` the breaker admits up to ``half_open_max_calls``
**half-open** probe calls: one success closes it again, one failure
re-opens it and restarts the timer.

State is published to the metrics registry on every transition
(``repro_server_breaker_state`` gauge: 0 closed / 1 open / 2 half-open,
plus ``repro_server_breaker_transitions_total``) and recorded as
``breaker.<name>.<state>`` resilience events, so the closed→open→half-open
→closed cycle required by the serving failure model is visible on
``GET /metrics``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ...errors import CircuitOpenError
from ...observability.metrics import get_registry
from ..events import record_event

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN", "default_breakers"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding of breaker states for Prometheus exposition.
STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


class CircuitBreaker:
    """A classic three-state circuit breaker (thread-safe).

    Use either :meth:`call` (wraps a callable, raising
    :class:`~repro.errors.CircuitOpenError` when open) or the manual
    :meth:`allow` / :meth:`record_success` / :meth:`record_failure` triple
    when the caller needs to interleave its own fallback logic.
    """

    def __init__(
        self,
        name: str,
        *,
        failure_threshold: int = 3,
        recovery_timeout_s: float = 10.0,
        half_open_max_calls: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if half_open_max_calls < 1:
            raise ValueError(f"half_open_max_calls must be >= 1, got {half_open_max_calls}")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.recovery_timeout_s = float(recovery_timeout_s)
        self.half_open_max_calls = int(half_open_max_calls)
        self._clock = clock
        self._lock = threading.RLock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_probes = 0
        self._transitions: list[str] = []
        self._rejected_total = 0
        self._publish_state()

    # -- state machine ----------------------------------------------------

    def _publish_state(self) -> None:
        get_registry().gauge("repro_server_breaker_state", breaker=self.name).set(
            STATE_CODES[self._state]
        )

    def _transition(self, new_state: str) -> None:
        """Move to ``new_state`` (called under the lock); publish + record."""
        if new_state == self._state:
            return
        self._state = new_state
        self._transitions.append(new_state)
        if new_state == OPEN:
            self._opened_at = self._clock()
        if new_state in (CLOSED, OPEN):
            self._half_open_probes = 0
        record_event(f"breaker.{self.name}.{new_state}")
        get_registry().counter(
            "repro_server_breaker_transitions_total", breaker=self.name, to=new_state
        ).inc()
        self._publish_state()

    def _tick(self) -> None:
        """Apply the time-driven open → half-open transition (under lock)."""
        if self._state == OPEN and self._clock() - self._opened_at >= self.recovery_timeout_s:
            self._transition(HALF_OPEN)

    @property
    def state(self) -> str:
        with self._lock:
            self._tick()
            return self._state

    # -- manual protocol --------------------------------------------------

    def allow(self) -> bool:
        """May the protected stage run now?  (Counts half-open probes.)"""
        with self._lock:
            self._tick()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and self._half_open_probes < self.half_open_max_calls:
                self._half_open_probes += 1
                return True
            self._rejected_total += 1
            get_registry().counter(
                "repro_server_breaker_rejected_total", breaker=self.name
            ).inc()
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._tick()
            if self._state == HALF_OPEN:
                self._transition(OPEN)
                return
            self._consecutive_failures += 1
            if self._state == CLOSED and self._consecutive_failures >= self.failure_threshold:
                self._transition(OPEN)

    # -- callable protocol ------------------------------------------------

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` under the breaker; raise ``CircuitOpenError`` when open."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit {self.name!r} is {self._state}; stage skipped "
                f"(recovers after {self.recovery_timeout_s:.1f}s)"
            )
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    # -- introspection ----------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            self._tick()
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "rejected_total": self._rejected_total,
                "transitions": list(self._transitions),
            }


def default_breakers(
    *,
    failure_threshold: int = 3,
    recovery_timeout_s: float = 10.0,
    clock: Callable[[], float] = time.monotonic,
) -> dict[str, CircuitBreaker]:
    """The serving layer's standard breaker set: grounding + SAM decode."""
    return {
        "grounding": CircuitBreaker(
            "grounding",
            failure_threshold=failure_threshold,
            recovery_timeout_s=recovery_timeout_s,
            clock=clock,
        ),
        "sam": CircuitBreaker(
            "sam",
            failure_threshold=failure_threshold,
            recovery_timeout_s=recovery_timeout_s,
            clock=clock,
        ),
    }
