"""Overload-safe serving primitives for the online platform path.

PR 2 gave the *offline* batch path its failure contract (retries,
checkpoints, supervised failover); this package gives the *online* path the
same treatment, as four composable pieces the platform server wires
together:

* :class:`AdmissionGate` — bounded in-flight admission with a short wait
  queue; excess load is shed as HTTP 429 + ``Retry-After``
  (:mod:`repro.resilience.serving.admission`);
* request **deadlines** — each API action runs under a
  :class:`~repro.resilience.policy.Deadline` bound via
  :func:`request_scope`; deep stage code calls :func:`check_deadline` so
  expiry surfaces as a structured 504 *before* session state mutates
  (:mod:`repro.resilience.serving.lifecycle`);
* :class:`CircuitBreaker` — closed/open/half-open breakers around the
  grounding and SAM stages, with degraded fallbacks instead of failures
  (:mod:`repro.resilience.serving.breaker`);
* :class:`ServerLifecycle` — in-flight tracking + graceful drain for
  zero-dropped-work rolling restarts
  (:mod:`repro.resilience.serving.lifecycle`).

See DESIGN.md §"Serving failure model" for the admission → deadline →
breaker → drain state machine.
"""

from __future__ import annotations

from typing import Mapping

from ..events import events_snapshot
from .admission import AdmissionGate
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, default_breakers
from .lifecycle import ServerLifecycle, check_deadline, current_deadline, request_scope

__all__ = [
    "AdmissionGate",
    "CircuitBreaker",
    "ServerLifecycle",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "check_deadline",
    "current_deadline",
    "default_breakers",
    "request_scope",
    "serving_snapshot",
]


def serving_snapshot(
    *,
    gate: AdmissionGate | None = None,
    breakers: Mapping[str, CircuitBreaker] | None = None,
    store=None,
) -> dict:
    """One JSON-safe view of the serving layer (dashboard card, debugging).

    Components not passed in are summarised from the global resilience
    events, so a partial view (e.g. an :class:`ApiHandler` without the HTTP
    gate) still renders.
    """
    events = events_snapshot()
    snap: dict = {
        "shed_total": events.get("resilience.server.shed", 0),
        "client_disconnects": events.get("resilience.server.client_disconnect", 0),
        "drain_aborted": events.get("resilience.server.drain_aborted", 0),
        "sessions_evicted_ttl": events.get("resilience.server.session_evicted_ttl", 0),
        "sessions_evicted_capacity": events.get(
            "resilience.server.session_evicted_capacity", 0
        ),
        "degraded_requests": events.get("resilience.server.degraded", 0),
    }
    if gate is not None:
        snap["admission"] = gate.snapshot()
        snap["shed_total"] = snap["admission"]["shed_total"]
    if breakers:
        snap["breakers"] = {name: b.snapshot() for name, b in breakers.items()}
    if store is not None:
        snap["sessions"] = len(store)
        cap = getattr(store, "max_sessions", None)
        if cap is not None:
            snap["session_cap"] = cap
    return snap
