"""Server lifecycle: in-flight tracking, graceful drain, request deadlines.

:class:`ServerLifecycle` counts in-flight requests so ``stop()`` can flip
readiness to 503, let a load balancer stop routing, wait for in-flight work
up to a drain deadline, and only then abort stragglers — a rolling restart
with zero dropped work when the drain window is honoured.

The module also owns the *request deadline context*: the API layer enters
``request_scope(Deadline(...))`` around each action, and deep session code
calls :func:`check_deadline` at stage boundaries (post-adapt, post-ground,
pre-commit).  Expiry raises :class:`~repro.errors.DeadlineExceededError`
*before* any session mutation is committed, which is what makes a 504
safe to retry: the session state is exactly what it was before the request.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from ...observability.metrics import get_registry
from ..events import record_event
from ..policy import Deadline

__all__ = [
    "ServerLifecycle",
    "request_scope",
    "current_deadline",
    "check_deadline",
]

_REQUEST_LOCAL = threading.local()


@contextmanager
def request_scope(deadline: Deadline | None):
    """Bind ``deadline`` to the current thread for the request's duration."""
    previous = getattr(_REQUEST_LOCAL, "deadline", None)
    _REQUEST_LOCAL.deadline = deadline
    try:
        yield deadline
    finally:
        _REQUEST_LOCAL.deadline = previous


def current_deadline() -> Deadline | None:
    """The deadline bound to this thread's request, if any."""
    return getattr(_REQUEST_LOCAL, "deadline", None)


def check_deadline(what: str = "request") -> None:
    """Raise ``DeadlineExceededError`` when the current request is overdue.

    A no-op outside a request scope (library callers are unaffected).
    """
    deadline = current_deadline()
    if deadline is not None:
        deadline.check(what)


class ServerLifecycle:
    """Tracks in-flight requests and coordinates graceful drain."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._inflight = 0
        self._draining = False

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    @contextmanager
    def track(self):
        """Count one request as in flight for the drain barrier."""
        with self._cond:
            self._inflight += 1
        try:
            yield
        finally:
            with self._cond:
                self._inflight -= 1
                self._cond.notify_all()

    def begin_drain(self) -> None:
        with self._cond:
            self._draining = True

    def reset(self) -> None:
        """Leave drain mode (a stopped server restarted in tests)."""
        with self._cond:
            self._draining = False

    def wait_idle(self, timeout_s: float) -> bool:
        """Wait for in-flight work to finish; False when the window expires.

        The outcome is recorded (``server.drained`` / ``server.drain_aborted``
        events plus ``repro_server_drain_aborted_total``) so an operator can
        tell clean rolls from forced ones.
        """
        budget = Deadline(max(float(timeout_s), 1e-9), clock=time.monotonic)
        with self._cond:
            drained = self._cond.wait_for(
                lambda: self._inflight == 0, timeout=budget.remaining()
            )
            stragglers = self._inflight
        if drained:
            record_event("server.drained")
        else:
            record_event("server.drain_aborted")
            get_registry().counter("repro_server_drain_aborted_total").inc(stragglers)
        return drained
