"""Engineered image feature maps backing the foundation-model surrogates.

Pretrained backbones are unavailable offline, so the cross-modal grounding
signal comes from a bank of classical per-pixel features with clear physical
meaning for microscopy:

* ``intensity``  — smoothed brightness;
* ``darkness``   — its complement (grounds "background", "pore", "void");
* ``midtone``    — peaked at mid-gray (grounds "film", "membrane");
* ``relative_brightness`` — local top-hat: brighter than the neighbourhood
  (grounds "catalyst", "particle" — both phases are locally bright);
* ``edge``       — Sobel gradient magnitude;
* ``texture``    — local high-frequency energy ("distinct features");
* ``elongation`` — structure-tensor coherence (grounds "needle",
  "crystalline": thin anisotropic structures score high).

Feature maps are computed densely, then max-pooled onto the patch grid the
grounding transformer works on (max, not mean, so 2-3 px needles survive
pooling).  Everything is vectorised; no per-pixel Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.ndimage import gaussian_filter, maximum_filter, sobel, uniform_filter

from ..utils.validation import ensure_2d

__all__ = ["FEATURE_NAMES", "PatchFeatureExtractor", "compute_feature_maps", "FeatureGrid"]

FEATURE_NAMES = (
    "intensity",
    "darkness",
    "midtone",
    "relative_brightness",
    "edge",
    "texture",
    "elongation",
)

N_FEATURES = len(FEATURE_NAMES)


def _robust01(x: np.ndarray, p_lo: float = 2.0, p_hi: float = 98.0) -> np.ndarray:
    lo, hi = np.percentile(x, [p_lo, p_hi])
    if hi <= lo:
        return np.zeros_like(x, dtype=np.float32)
    return np.clip((x - lo) / (hi - lo), 0.0, 1.0).astype(np.float32)


def compute_feature_maps(image: np.ndarray, *, smooth_sigma: float = 1.0, background_sigma: float = 14.0) -> np.ndarray:
    """Dense feature maps, shape ``(H, W, N_FEATURES)``, each in [0, 1]."""
    img = ensure_2d(image, "image").astype(np.float32)
    smooth = gaussian_filter(img, sigma=smooth_sigma, mode="reflect")

    intensity = np.clip(smooth, 0.0, 1.0)
    darkness = 1.0 - intensity
    midtone = 4.0 * intensity * (1.0 - intensity)

    background = gaussian_filter(smooth, sigma=background_sigma, mode="reflect")
    # Positive part only: flat regions score 0, locally-bright structures 1.
    pos = np.maximum(smooth - background, 0.0)
    hi = float(np.percentile(pos, 99.5))
    rel = np.clip(pos / hi, 0.0, 1.0).astype(np.float32) if hi > 1e-6 else np.zeros_like(pos, dtype=np.float32)

    gy = sobel(smooth, axis=0, mode="reflect")
    gx = sobel(smooth, axis=1, mode="reflect")
    edge = _robust01(np.hypot(gy, gx))

    highpass = img - gaussian_filter(img, sigma=2.5, mode="reflect")
    # uniform_filter can dip epsilon-negative on flat inputs; clamp before sqrt.
    texture = _robust01(np.sqrt(np.maximum(uniform_filter(highpass**2, size=7, mode="reflect"), 0.0)))

    # Structure-tensor coherence: (l1 - l2) / (l1 + l2) of the smoothed
    # gradient outer product; high along thin oriented structures.
    w = 2.5
    jyy = gaussian_filter(gy * gy, sigma=w, mode="reflect")
    jxx = gaussian_filter(gx * gx, sigma=w, mode="reflect")
    jxy = gaussian_filter(gx * gy, sigma=w, mode="reflect")
    tr = jxx + jyy
    det_term = np.sqrt(np.maximum((jxx - jyy) ** 2 + 4.0 * jxy**2, 0.0))
    coherence = np.where(tr > 1e-8, det_term / np.maximum(tr, 1e-8), 0.0)
    # Gate by edge presence so flat regions don't score as "oriented".
    elongation = (coherence * np.clip(edge * 3.0, 0.0, 1.0)).astype(np.float32)

    return np.stack(
        [intensity, darkness, midtone, rel, edge, texture, elongation], axis=-1
    ).astype(np.float32)


@dataclass(frozen=True)
class FeatureGrid:
    """Patch-level features: ``grid`` is (gh, gw, F); stride in pixels."""

    grid: np.ndarray
    stride: int
    image_shape: tuple[int, int]

    @property
    def tokens(self) -> np.ndarray:
        """Flattened view, shape (gh*gw, F)."""
        gh, gw, f = self.grid.shape
        return self.grid.reshape(gh * gw, f)


class PatchFeatureExtractor:
    """Dense features max-pooled onto a patch grid of the given stride."""

    def __init__(self, *, stride: int = 4, smooth_sigma: float = 1.0, background_sigma: float = 14.0) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.stride = stride
        self.smooth_sigma = smooth_sigma
        self.background_sigma = background_sigma

    def __call__(self, image: np.ndarray) -> FeatureGrid:
        img = ensure_2d(image, "image")
        dense = compute_feature_maps(
            img, smooth_sigma=self.smooth_sigma, background_sigma=self.background_sigma
        )
        s = self.stride
        h, w, f = dense.shape
        gh, gw = h // s, w // s
        if gh < 1 or gw < 1:
            raise ValueError(f"image {h}x{w} smaller than stride {s}")
        # Max-pool via a maximum filter sampled at patch centres (cheap and
        # exact for window == stride when sampled on the window grid).
        pooled = maximum_filter(dense, size=(s, s, 1), mode="nearest")
        offs = s // 2
        grid = pooled[offs : gh * s : s, offs : gw * s : s, :]
        return FeatureGrid(grid=np.ascontiguousarray(grid), stride=s, image_shape=(h, w))
