"""Transformer blocks: pre-norm encoder blocks and SAM's two-way blocks."""

from __future__ import annotations

import numpy as np

from .attention import MultiHeadAttention
from .init import ParamFactory
from .layers import LayerNorm, Mlp
from .precision import activation_dtype, is_fast

__all__ = ["TransformerBlock", "TransformerEncoder", "TwoWayBlock"]


class TransformerBlock:
    """Standard pre-norm block: x += MHA(LN(x)); x += MLP(LN(x))."""

    def __init__(self, params: ParamFactory, name: str, dim: int, n_heads: int, *, mlp_ratio: float = 4.0) -> None:
        self.norm1 = LayerNorm(params, f"{name}.norm1", dim)
        self.attn = MultiHeadAttention(params, f"{name}.attn", dim, n_heads)
        self.norm2 = LayerNorm(params, f"{name}.norm2", dim)
        self.mlp = Mlp(params, f"{name}.mlp", dim, int(dim * mlp_ratio))

    def __call__(self, x: np.ndarray) -> np.ndarray:
        # Residual adds accumulate into the fresh sub-layer outputs (IEEE
        # addition commutes, so h + x is bit-identical to x + h); the
        # caller's array is never mutated.
        h = self.attn(self.norm1(x))
        h += x
        out = self.mlp(self.norm2(h))
        out += h
        if is_fast():
            # Fast tier: store inter-block activations fp16 (compute stays
            # fp32 — every kernel upcasts on entry).
            return out.astype(activation_dtype())
        return out


class TransformerEncoder:
    """A stack of :class:`TransformerBlock` with a final layer norm."""

    def __init__(self, params: ParamFactory, name: str, dim: int, depth: int, n_heads: int, *, mlp_ratio: float = 4.0) -> None:
        self.blocks = [
            TransformerBlock(params, f"{name}.block{i}", dim, n_heads, mlp_ratio=mlp_ratio)
            for i in range(depth)
        ]
        self.norm = LayerNorm(params, f"{name}.norm", dim)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        for block in self.blocks:
            x = block(x)
        return self.norm(x)


class TwoWayBlock:
    """SAM mask-decoder block: queries attend to image tokens and back.

    Four sub-steps, as in the SAM paper: (1) self-attention on the (sparse)
    query tokens, (2) cross-attention queries→image, (3) MLP on queries,
    (4) cross-attention image→queries.  Positional codes are re-added to
    queries/keys at every step.
    """

    def __init__(self, params: ParamFactory, name: str, dim: int, n_heads: int, *, mlp_ratio: float = 2.0, downsample_rate: int = 2) -> None:
        self.self_attn = MultiHeadAttention(params, f"{name}.self", dim, n_heads)
        self.norm1 = LayerNorm(params, f"{name}.norm1", dim)
        self.cross_q2i = MultiHeadAttention(params, f"{name}.q2i", dim, n_heads, downsample_rate=downsample_rate)
        self.norm2 = LayerNorm(params, f"{name}.norm2", dim)
        self.mlp = Mlp(params, f"{name}.mlp", dim, int(dim * mlp_ratio))
        self.norm3 = LayerNorm(params, f"{name}.norm3", dim)
        self.cross_i2q = MultiHeadAttention(params, f"{name}.i2q", dim, n_heads, downsample_rate=downsample_rate)
        self.norm4 = LayerNorm(params, f"{name}.norm4", dim)

    def __call__(
        self,
        queries: np.ndarray,
        image_tokens: np.ndarray,
        query_pe: np.ndarray,
        image_pe: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        q = queries + self.self_attn(queries + query_pe)
        q = self.norm1(q)
        q = q + self.cross_q2i(q + query_pe, image_tokens + image_pe, image_tokens)
        q = self.norm2(q)
        q = q + self.mlp(q)
        q = self.norm3(q)
        img = image_tokens + self.cross_i2q(image_tokens + image_pe, q + query_pe, q)
        img = self.norm4(img)
        return q, img
