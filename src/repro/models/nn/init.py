"""Deterministic parameter initialisation.

Pretrained SAM/GroundingDINO weights are unavailable offline, so every
parameter tensor is drawn from a seeded stream keyed by its qualified name.
The same (seed, name) always yields the same tensor — across processes and
module-construction orders — which keeps surrogate-model outputs exactly
reproducible in Mode B workers.
"""

from __future__ import annotations

import numpy as np

from ...utils.rng import derive_seed

__all__ = ["ParamFactory"]


class ParamFactory:
    """Creates named, deterministically-initialised float32 parameters."""

    def __init__(self, seed: int, scope: str = "") -> None:
        self.seed = int(seed)
        self.scope = scope

    def child(self, name: str) -> "ParamFactory":
        """A factory for a sub-module; names compose with '/'."""
        scope = f"{self.scope}/{name}" if self.scope else name
        return ParamFactory(self.seed, scope)

    def _rng(self, name: str) -> np.random.Generator:
        full = f"{self.scope}/{name}" if self.scope else name
        return np.random.default_rng(derive_seed(self.seed, "param", full))

    def normal(self, name: str, shape: tuple[int, ...], *, std: float = 0.02) -> np.ndarray:
        """Gaussian init (transformer default)."""
        return (self._rng(name).normal(scale=std, size=shape)).astype(np.float32)

    def xavier(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        """Xavier/Glorot uniform init for (fan_in, fan_out) matrices."""
        fan_in, fan_out = shape[0], shape[-1]
        bound = float(np.sqrt(6.0 / (fan_in + fan_out)))
        return self._rng(name).uniform(-bound, bound, size=shape).astype(np.float32)

    def zeros(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        del name  # deterministic regardless; keeps the API uniform
        return np.zeros(shape, dtype=np.float32)

    def ones(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        del name
        return np.ones(shape, dtype=np.float32)
