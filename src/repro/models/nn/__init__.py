"""From-scratch NumPy neural-network primitives (inference only)."""

from . import kernels
from .attention import MultiHeadAttention, attention_scores
from .embeddings import (
    PatchEmbed,
    RandomFourierPositionEncoding,
    TokenEmbedding,
    clear_sincos_cache,
    sincos_position_embedding,
)
from .init import ParamFactory
from .layers import LayerNorm, Linear, Mlp, gelu, relu, softmax
from .precision import get_precision, precision, precision_tag, set_precision
from .transformer import TransformerBlock, TransformerEncoder, TwoWayBlock

__all__ = [
    "LayerNorm",
    "Linear",
    "Mlp",
    "MultiHeadAttention",
    "ParamFactory",
    "PatchEmbed",
    "RandomFourierPositionEncoding",
    "TokenEmbedding",
    "TransformerBlock",
    "TransformerEncoder",
    "TwoWayBlock",
    "attention_scores",
    "clear_sincos_cache",
    "gelu",
    "get_precision",
    "kernels",
    "precision",
    "precision_tag",
    "relu",
    "set_precision",
    "sincos_position_embedding",
    "softmax",
]
