"""From-scratch NumPy neural-network primitives (inference only)."""

from .attention import MultiHeadAttention, attention_scores
from .embeddings import (
    PatchEmbed,
    RandomFourierPositionEncoding,
    TokenEmbedding,
    sincos_position_embedding,
)
from .init import ParamFactory
from .layers import LayerNorm, Linear, Mlp, gelu, relu, softmax
from .transformer import TransformerBlock, TransformerEncoder, TwoWayBlock

__all__ = [
    "LayerNorm",
    "Linear",
    "Mlp",
    "MultiHeadAttention",
    "ParamFactory",
    "PatchEmbed",
    "RandomFourierPositionEncoding",
    "TokenEmbedding",
    "TransformerBlock",
    "TransformerEncoder",
    "TwoWayBlock",
    "attention_scores",
    "gelu",
    "relu",
    "sincos_position_embedding",
    "softmax",
]
