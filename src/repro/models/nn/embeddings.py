"""Token and positional embeddings for the vision/text transformers.

* :class:`PatchEmbed` — non-overlapping patch projection (the ViT stem),
  implemented as a reshape + matmul (a stride-p conv with kernel p is exactly
  that, and the matmul form is the fast path in NumPy).
* :func:`sincos_position_embedding` — fixed 2-D sine/cosine position codes.
* :class:`RandomFourierPositionEncoding` — SAM's continuous-coordinate
  positional encoding used by its prompt encoder.
* :class:`TokenEmbedding` — lookup-table embedding for text tokens.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from .init import ParamFactory
from .layers import Linear

__all__ = [
    "PatchEmbed",
    "sincos_position_embedding",
    "clear_sincos_cache",
    "RandomFourierPositionEncoding",
    "TokenEmbedding",
]


class PatchEmbed:
    """Split an image into p×p patches and project each to ``dim`` channels."""

    def __init__(self, params: ParamFactory, name: str, patch: int, in_chans: int, dim: int) -> None:
        self.patch = patch
        self.in_chans = in_chans
        self.proj = Linear(params, f"{name}.proj", patch * patch * in_chans, dim)

    def __call__(self, image: np.ndarray) -> tuple[np.ndarray, tuple[int, int]]:
        """``(H, W[, C])`` image → ``(n_patches, dim)`` tokens + grid shape.

        H and W must be divisible by the patch size (the caller pads).
        """
        img = np.asarray(image, dtype=np.float32)
        if img.ndim == 2:
            img = img[:, :, None]
        h, w, c = img.shape
        p = self.patch
        if h % p or w % p:
            raise ValueError(f"image {h}x{w} not divisible by patch size {p}")
        if c != self.in_chans:
            raise ValueError(f"expected {self.in_chans} channels, got {c}")
        gh, gw = h // p, w // p
        # (gh, p, gw, p, c) -> (gh*gw, p*p*c)
        patches = img.reshape(gh, p, gw, p, c).transpose(0, 2, 1, 3, 4).reshape(gh * gw, p * p * c)
        return self.proj(np.ascontiguousarray(patches)), (gh, gw)


# sincos_position_embedding is pure in (grid, dim) but recomputed on every
# set_image; a tiny keyed LRU makes the second encode of any grid shape free.
# Thread-safety: entries are computed outside the lock (two threads may race
# to compute the same key — both get correct values, last write wins) and the
# OrderedDict itself is only touched under ``_SINCOS_LOCK``.  Cached arrays
# are returned directly but marked read-only so no caller can corrupt them.
_SINCOS_LOCK = threading.Lock()
_SINCOS_CACHE: OrderedDict[tuple[int, int, int], np.ndarray] = OrderedDict()
_SINCOS_CACHE_MAX = 32


def clear_sincos_cache() -> None:
    """Drop every cached positional-embedding table (tests, memory pressure)."""
    with _SINCOS_LOCK:
        _SINCOS_CACHE.clear()


def sincos_position_embedding(grid: tuple[int, int], dim: int) -> np.ndarray:
    """Fixed 2-D sine/cosine positional embedding, shape ``(gh*gw, dim)``.

    Results are cached per ``(gh, gw, dim)`` (LRU, small) and returned as
    read-only arrays — callers add them into fresh token buffers.
    """
    if dim % 4 != 0:
        raise ValueError(f"dim must be divisible by 4, got {dim}")
    gh, gw = grid
    key = (int(gh), int(gw), int(dim))
    with _SINCOS_LOCK:
        hit = _SINCOS_CACHE.get(key)
        if hit is not None:
            _SINCOS_CACHE.move_to_end(key)
            return hit
    table = _compute_sincos((gh, gw), dim)
    table.setflags(write=False)
    with _SINCOS_LOCK:
        _SINCOS_CACHE[key] = table
        _SINCOS_CACHE.move_to_end(key)
        while len(_SINCOS_CACHE) > _SINCOS_CACHE_MAX:
            _SINCOS_CACHE.popitem(last=False)
    return table


def _compute_sincos(grid: tuple[int, int], dim: int) -> np.ndarray:
    gh, gw = grid
    quarter = dim // 4
    omega = 1.0 / (10000.0 ** (np.arange(quarter, dtype=np.float64) / quarter))
    ys, xs = np.mgrid[0:gh, 0:gw]
    out = np.concatenate(
        [
            np.sin(ys.reshape(-1, 1) * omega),
            np.cos(ys.reshape(-1, 1) * omega),
            np.sin(xs.reshape(-1, 1) * omega),
            np.cos(xs.reshape(-1, 1) * omega),
        ],
        axis=1,
    )
    return out.astype(np.float32)


class RandomFourierPositionEncoding:
    """SAM's positional encoding for continuous [0,1]² coordinates.

    Coordinates are projected by a fixed Gaussian matrix, then mapped through
    sin/cos.  Output dim is ``2 * n_features``.
    """

    def __init__(self, params: ParamFactory, name: str, n_features: int, *, scale: float = 1.0) -> None:
        self.matrix = params.normal(f"{name}.gaussian", (2, n_features), std=scale)
        self.dim = 2 * n_features

    def encode_points(self, coords01: np.ndarray) -> np.ndarray:
        """``(N, 2)`` normalised (x, y) coordinates → ``(N, dim)`` codes."""
        c = 2.0 * np.asarray(coords01, dtype=np.float32) - 1.0
        proj = (2.0 * np.pi) * (c @ self.matrix)
        return np.concatenate([np.sin(proj), np.cos(proj)], axis=-1)

    def encode_grid(self, grid: tuple[int, int]) -> np.ndarray:
        """Dense codes for a gh×gw grid of pixel centres, ``(gh, gw, dim)``."""
        gh, gw = grid
        ys = (np.arange(gh, dtype=np.float32) + 0.5) / gh
        xs = (np.arange(gw, dtype=np.float32) + 0.5) / gw
        coords = np.stack(np.meshgrid(xs, ys), axis=-1).reshape(-1, 2)  # (x, y) order
        return self.encode_points(coords).reshape(gh, gw, self.dim)


class TokenEmbedding:
    """Lookup-table embedding for integer token ids."""

    def __init__(self, params: ParamFactory, name: str, vocab: int, dim: int) -> None:
        self.table = params.normal(f"{name}.table", (vocab, dim), std=0.05)
        self.vocab = vocab

    def __call__(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.intp)
        if ids.size and (ids.min() < 0 or ids.max() >= self.vocab):
            raise ValueError(f"token id out of range [0, {self.vocab})")
        return self.table[ids]
