"""Core NN layers in NumPy: linear, layer norm, GELU, softmax, MLP.

Inference-only (no autograd).  All math is float32 batched matmul on
C-contiguous arrays — the hot path of every transformer in this library —
per the cache-effects guidance in the HPC guide.
"""

from __future__ import annotations

import numpy as np

from . import kernels
from .init import ParamFactory

__all__ = ["Linear", "LayerNorm", "gelu", "softmax", "Mlp", "relu"]


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU with the tanh approximation used by ViT/SAM.

    Delegates to the in-place kernel (``x*x*x`` cubic on a private copy);
    every consumer shares one op sequence, so serial/batched/blocked paths
    agree bitwise within a version.
    """
    return kernels.gelu(x)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(x, dtype=np.float32), 0.0)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float32)
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


class Linear:
    """Affine map ``y = x @ W + b`` over the last axis."""

    def __init__(self, params: ParamFactory, name: str, d_in: int, d_out: int, *, bias: bool = True) -> None:
        self.weight = params.xavier(f"{name}.weight", (d_in, d_out))
        self.bias = params.zeros(f"{name}.bias", (d_out,)) if bias else None
        self.d_in = d_in
        self.d_out = d_out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        y = np.asarray(x, dtype=np.float32) @ self.weight
        if self.bias is not None:
            y += self.bias
        return y


class LayerNorm:
    """Layer normalisation over the last axis."""

    def __init__(self, params: ParamFactory, name: str, dim: int, *, eps: float = 1e-5) -> None:
        self.gamma = params.ones(f"{name}.gamma", (dim,))
        self.beta = params.zeros(f"{name}.beta", (dim,))
        self.eps = np.float32(eps)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.layernorm(x, self.gamma, self.beta, self.eps)


class Mlp:
    """Transformer feed-forward block: Linear → GELU → Linear."""

    def __init__(self, params: ParamFactory, name: str, dim: int, hidden: int) -> None:
        self.fc1 = Linear(params, f"{name}.fc1", dim, hidden)
        self.fc2 = Linear(params, f"{name}.fc2", hidden, dim)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        # fc1's output is a fresh array, so the GELU can run in place.
        return self.fc2(kernels.gelu_(self.fc1(x)))
