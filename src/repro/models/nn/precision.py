"""Process-wide numeric precision policy for the NumPy kernel fast path.

Two tiers govern every kernel in :mod:`repro.models.nn.kernels`:

* ``exact`` (the default) — bit-identical fp32 math.  Everything the repo
  treats as contractual stays contractual: checkpoint/resume reproduces
  masks bit-for-bit, batched and serial encoders agree to the last ulp,
  cache keys address the same bytes, golden tests stay green with zero
  tolerance changes.
* ``fast`` — reduced-precision tier: activations may be stored fp16
  between transformer blocks, attention streams through an online-softmax
  accumulator with reordered (but fp32-accumulated) reductions, and
  transcendentals may use cheaper approximations.  Outputs are close
  (documented tolerances in tests/test_nn_kernels.py) but NOT bit-stable
  across code versions.

The active tier is folded into :func:`repro.cache.config_fingerprint`, so
content-addressed cache entries (including the disk tier shared across
processes) never mix tiers: an embedding computed under ``fast`` can never
satisfy an ``exact`` lookup, and vice versa.

Selection precedence: explicit :func:`set_precision` / :func:`precision`
scope > ``REPRO_PRECISION`` environment variable > ``exact``.

Thread-safety note: the policy is a single process-wide value guarded by a
lock — the same model as the process-global cache.  Worker *threads* all
see one tier; scoping :func:`precision` around code that other threads are
concurrently running will affect them too.  Worker *processes* (the decode
pool) inherit the tier via fork or re-derive it from ``REPRO_PRECISION``.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

__all__ = [
    "EXACT",
    "FAST",
    "TIERS",
    "get_precision",
    "set_precision",
    "precision",
    "is_fast",
    "precision_tag",
    "activation_dtype",
]

EXACT = "exact"
FAST = "fast"
TIERS = (EXACT, FAST)

_ENV_VAR = "REPRO_PRECISION"
_lock = threading.Lock()
#: None = "not explicitly set; consult the environment on every read" so a
#: forked worker whose parent never called set_precision() still honours
#: REPRO_PRECISION exported after import time.
_override: str | None = None


def _validate(tier: str) -> str:
    t = str(tier).strip().lower()
    if t not in TIERS:
        raise ValueError(f"unknown precision tier {tier!r}; expected one of {TIERS}")
    return t


def get_precision() -> str:
    """The active tier: explicit override > ``REPRO_PRECISION`` > ``exact``."""
    with _lock:
        if _override is not None:
            return _override
    env = os.environ.get(_ENV_VAR)
    if env:
        try:
            return _validate(env)
        except ValueError:
            # A typo in the environment must not silently flip numerics to
            # an unintended tier; fail closed to exact.
            return EXACT
    return EXACT


def set_precision(tier: str | None) -> str | None:
    """Set the process-wide tier; returns the previous override.

    ``None`` clears the override (falls back to the environment/default).
    """
    global _override
    validated = None if tier is None else _validate(tier)
    with _lock:
        previous = _override
        _override = validated
    return previous


@contextmanager
def precision(tier: str):
    """Scope a tier over a block: ``with precision("fast"): ...``.

    Because cache fingerprints capture the tier at computation time, model
    objects built inside the scope stay internally consistent; predictors
    built *outside* and used *inside* will simply miss-and-recompute under
    the scoped tier's keys.
    """
    previous = set_precision(tier)
    try:
        yield get_precision()
    finally:
        set_precision(previous)


def is_fast() -> bool:
    return get_precision() == FAST


def precision_tag() -> str:
    """Stable fingerprint component, e.g. ``precision=exact``."""
    return f"precision={get_precision()}"


def activation_dtype():
    """Storage dtype for inter-block activations under the active tier."""
    import numpy as np

    return np.float16 if is_fast() else np.float32
