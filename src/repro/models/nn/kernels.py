"""Fused/blocked NumPy kernels for the transformer hot path.

This module is the leaf of the NN stack (imports only NumPy and
:mod:`repro.models.nn.precision`); ``layers.py`` / ``attention.py`` build on
it.  Three kernel families live here:

* **Scaled attention** — :func:`scaled_scores`, :func:`naive_attention`,
  :func:`blocked_attention`, :func:`online_attention`, and the
  :func:`attention` dispatcher.  The exact tier tiles over the *leading*
  (batch × windows × heads) axis only: on this BLAS, slicing a gemm along
  the reduction-visible row axis changes low bits, but batched-matmul
  per-slice results are bit-identical to the full stacked call — so
  leading-axis tiles keep ``blocked == naive`` exactly while the logits
  tile stays L2-resident.  The fast tier streams over the key axis with an
  online-softmax accumulator (fp32 accumulation, fp16-storable inputs).
* **In-place activations** — :func:`gelu_` and :func:`layernorm_` rewrite
  the multi-temporary expressions in ``layers.py`` as in-place ufunc
  chains.  ``np.power(x, 3)`` in the old GELU went through the generic pow
  path and dominated encoder time; ``x*x*x`` is the same polynomial ~35×
  faster.  In-place ufuncs (``out=``) are bit-identical to their
  out-of-place forms, so the exact tier keeps within-version bit parity
  between every code path that shares these kernels.
* **Fused projections** — :func:`fuse_linear` concatenates Q/K/V weights
  column-wise so one gemm replaces three; column slices of the fused
  product are bit-identical to the separate products.

Kernel selection: ``REPRO_KERNEL=blocked|naive`` (default ``blocked``) or
:func:`set_kernel_mode` / :func:`kernel_mode`; the naive mode exists for
benchmarking and differential testing.  Tile sizes auto-fit half the
detected L2 cache and can be pinned with ``REPRO_ATTN_TILE``.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager

import numpy as np

from .precision import is_fast

__all__ = [
    "L2_BYTES",
    "attention",
    "attention_tile",
    "blocked_attention",
    "fuse_linear",
    "gelu",
    "gelu_",
    "get_kernel_mode",
    "kernel_mode",
    "layernorm",
    "layernorm_",
    "naive_attention",
    "online_attention",
    "scaled_scores",
    "set_kernel_mode",
    "softmax_",
]

_SQRT_2_OVER_PI = np.float32(math.sqrt(2.0 / math.pi))
_GELU_COEF = np.float32(0.044715)
_HALF = np.float32(0.5)
_ONE = np.float32(1.0)


# -- cache geometry -----------------------------------------------------------


def _read_l2_bytes() -> int:
    for index in ("index2", "index1"):
        path = f"/sys/devices/system/cpu/cpu0/cache/{index}/size"
        try:
            with open(path) as fh:
                text = fh.read().strip()
        except OSError:
            continue
        try:
            if text.endswith("K"):
                return int(text[:-1]) << 10
            if text.endswith("M"):
                return int(text[:-1]) << 20
            return int(text)
        except ValueError:
            continue
    return 1 << 21  # assume 2 MiB when sysfs is unavailable


#: Detected L2 size; tiles are budgeted to half of it so the logits tile and
#: the streaming K/V operands coexist without thrashing.
L2_BYTES = _read_l2_bytes()
_TILE_BUDGET = max(L2_BYTES // 2, 1 << 18)


def attention_tile(t_q: int, t_k: int) -> int:
    """Leading-axis tile (slices per block) sized so the logits fit the budget.

    ``REPRO_ATTN_TILE`` pins it explicitly (benchmarks sweep this).
    """
    env = os.environ.get("REPRO_ATTN_TILE")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    per_slice = max(t_q * t_k * 4, 1)
    return max(1, _TILE_BUDGET // per_slice)


# -- kernel mode --------------------------------------------------------------

_KERNEL_ENV = "REPRO_KERNEL"
_KERNEL_MODES = ("blocked", "naive")
_kernel_override: str | None = None


def get_kernel_mode() -> str:
    if _kernel_override is not None:
        return _kernel_override
    env = os.environ.get(_KERNEL_ENV, "").strip().lower()
    return env if env in _KERNEL_MODES else "blocked"


def set_kernel_mode(mode: str | None) -> str | None:
    """Set the attention kernel (``blocked``/``naive``); ``None`` resets."""
    global _kernel_override
    if mode is not None and mode not in _KERNEL_MODES:
        raise ValueError(f"unknown kernel mode {mode!r}; expected one of {_KERNEL_MODES}")
    previous = _kernel_override
    _kernel_override = mode
    return previous


@contextmanager
def kernel_mode(mode: str):
    previous = set_kernel_mode(mode)
    try:
        yield
    finally:
        set_kernel_mode(previous)


# -- scaled attention ---------------------------------------------------------


def _pow2_sqrt(d: int) -> bool:
    # True when sqrt(d) is an exact power of two, i.e. scaling by
    # 1/sqrt(d) is an errorless float operation (exponent shift only).
    root = math.isqrt(int(d))
    return root * root == d and root & (root - 1) == 0


def _f32(x: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.float32)


def scaled_scores(q: np.ndarray, k: np.ndarray) -> np.ndarray:
    """``Q K^T / sqrt(d)``, scaling the cheaper side.

    When ``sqrt(d)`` is a power of two the scale is errorless, so
    pre-scaling ``q`` (the smaller operand, one pass) is bit-identical to
    dividing the full logits matrix and always taken.  Otherwise the exact
    tier keeps the historical divide (in place, on the fresh matmul
    output) and only the fast tier pre-scales.
    """
    q = _f32(q)
    k = _f32(k)
    d = q.shape[-1]
    k_t = np.swapaxes(k, -1, -2)
    if _pow2_sqrt(d) or is_fast():
        return (q * np.float32(1.0 / math.sqrt(d))) @ k_t
    out = q @ k_t
    np.divide(out, np.float32(np.sqrt(d)), out=out)
    return out


def softmax_(x: np.ndarray) -> np.ndarray:
    """In-place numerically-stable softmax over the last axis.

    Identical op sequence to ``layers.softmax(x, axis=-1)`` (subtract max,
    exp, divide by sum) so results are bit-identical; ``x`` must be a fresh
    float32 array the caller owns.
    """
    np.subtract(x, x.max(axis=-1, keepdims=True), out=x)
    np.exp(x, out=x)
    np.divide(x, x.sum(axis=-1, keepdims=True), out=x)
    return x


def _as_3d(x: np.ndarray) -> np.ndarray:
    # (..., T, D) -> (L, T, D); copies when the input is a strided view,
    # which does not change matmul results (verified bit-identical).
    return x.reshape(-1, x.shape[-2], x.shape[-1])


def naive_attention(q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Reference path: full logits materialised in one stacked matmul."""
    weights = softmax_(scaled_scores(q, k))
    return weights @ _f32(v)


def blocked_attention(q: np.ndarray, k: np.ndarray, v: np.ndarray, *, tile: int | None = None) -> np.ndarray:
    """Leading-axis blocked attention, bit-identical to :func:`naive_attention`.

    Slices the flattened leading (batch × heads) axis into tiles whose
    logits fit in L2; every per-tile gemm and in-place softmax performs the
    same per-slice arithmetic as the stacked naive call, so the exact tier
    stays bit-exact — including ragged final tiles.
    """
    q, k, v = _f32(q), _f32(k), _f32(v)
    lead = q.shape[:-2]
    q3, k3, v3 = _as_3d(q), _as_3d(k), _as_3d(v)
    n_lead, t_q, _ = q3.shape
    t_k = k3.shape[-2]
    d_v = v3.shape[-1]
    step = tile if tile is not None else attention_tile(t_q, t_k)
    out = np.empty((n_lead, t_q, d_v), dtype=np.float32)
    for s in range(0, n_lead, step):
        e = min(s + step, n_lead)
        logits = scaled_scores(q3[s:e], k3[s:e])
        softmax_(logits)
        np.matmul(logits, v3[s:e], out=out[s:e])
    return out.reshape(*lead, t_q, d_v)


def online_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    *,
    key_tile: int | None = None,
    tile: int | None = None,
) -> np.ndarray:
    """Streaming attention with an online-softmax accumulator (fast tier).

    Pre-scales ``q``, walks the key axis in L2-sized tiles, and maintains
    running max / normaliser / output in fp32 regardless of input storage
    dtype — the key axis never needs to be materialised as a full logits
    matrix.  Reductions are reordered relative to the naive path, so
    results agree within fp32 tolerance, not bitwise.
    """
    q, k, v = _f32(q), _f32(k), _f32(v)
    lead = q.shape[:-2]
    d = q.shape[-1]
    q3 = _as_3d(q) * np.float32(1.0 / math.sqrt(d))
    k3, v3 = _as_3d(k), _as_3d(v)
    n_lead, t_q, _ = q3.shape
    t_k = k3.shape[-2]
    d_v = v3.shape[-1]
    k_step = key_tile if key_tile is not None else max(64, _TILE_BUDGET // max(t_q * 4, 1))
    if k_step >= t_k:
        # Single key tile: plain blocked pass over the (pre-scaled) logits.
        step = tile if tile is not None else attention_tile(t_q, t_k)
        out = np.empty((n_lead, t_q, d_v), dtype=np.float32)
        for s in range(0, n_lead, step):
            e = min(s + step, n_lead)
            logits = q3[s:e] @ np.swapaxes(k3[s:e], -1, -2)
            softmax_(logits)
            np.matmul(logits, v3[s:e], out=out[s:e])
        return out.reshape(*lead, t_q, d_v)

    step = tile if tile is not None else attention_tile(t_q, k_step)
    out = np.empty((n_lead, t_q, d_v), dtype=np.float32)
    for s in range(0, n_lead, step):
        e = min(s + step, n_lead)
        b = e - s
        running_max = np.full((b, t_q, 1), -np.inf, dtype=np.float32)
        denom = np.zeros((b, t_q, 1), dtype=np.float32)
        acc = np.zeros((b, t_q, d_v), dtype=np.float32)
        for j in range(0, t_k, k_step):
            je = min(j + k_step, t_k)
            logits = q3[s:e] @ np.swapaxes(k3[s:e, j:je], -1, -2)
            tile_max = logits.max(axis=-1, keepdims=True)
            new_max = np.maximum(running_max, tile_max)
            np.subtract(logits, new_max, out=logits)
            np.exp(logits, out=logits)
            correction = np.exp(running_max - new_max)
            np.multiply(denom, correction, out=denom)
            denom += logits.sum(axis=-1, keepdims=True)
            np.multiply(acc, correction, out=acc)
            acc += logits @ v3[s:e, j:je]
            running_max = new_max
        np.divide(acc, denom, out=out[s:e])
    return out.reshape(*lead, t_q, d_v)


def attention(q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Dispatch to the configured kernel under the active precision tier."""
    if get_kernel_mode() == "naive":
        return naive_attention(q, k, v)
    if is_fast():
        return online_attention(q, k, v)
    return blocked_attention(q, k, v)


# -- fused projections --------------------------------------------------------


def fuse_linear(
    weights: list[np.ndarray], biases: list[np.ndarray | None]
) -> tuple[np.ndarray, np.ndarray | None]:
    """Column-concatenate per-projection weights/biases into one gemm operand.

    ``x @ fused`` sliced column-wise is bit-identical to the separate
    ``x @ w_i`` products (each output column is the same dot product), so
    fusing Q/K/V is exact-tier safe.  All weights must share ``d_in``.

    The result is a COPY, not a view: mutating the source weights in place
    afterwards (e.g. a future checkpoint-loading path) would silently
    desynchronise the fused and per-projection paths — such a path must
    re-fuse.  Today Linear parameters are immutable after construction.
    """
    fused_w = np.ascontiguousarray(np.concatenate(weights, axis=1))
    if any(b is None for b in biases):
        return fused_w, None
    return fused_w, np.ascontiguousarray(np.concatenate(biases))


# -- in-place activations -----------------------------------------------------


def gelu_(x: np.ndarray) -> np.ndarray:
    """In-place tanh-GELU on a float32 array the caller owns.

    The cubic goes through ``x*x*x`` (same polynomial as ``x**3`` but on
    the fast multiply path) and a single scratch array replaces the five
    temporaries of the naive expression.
    """
    u = x * x
    np.multiply(u, x, out=u)
    np.multiply(u, _GELU_COEF, out=u)
    np.add(u, x, out=u)
    np.multiply(u, _SQRT_2_OVER_PI, out=u)
    np.tanh(u, out=u)
    np.add(u, _ONE, out=u)
    np.multiply(u, _HALF, out=u)
    np.multiply(x, u, out=x)
    return x


def gelu(x: np.ndarray) -> np.ndarray:
    """Out-of-place GELU (copies, then applies :func:`gelu_`)."""
    arr = np.array(x, dtype=np.float32)
    # 0-d arrays break in-place ufuncs; mutate through a 1-d view instead.
    gelu_(np.atleast_1d(arr))
    return arr


def layernorm_(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: np.float32) -> np.ndarray:
    """In-place layer norm over the last axis of a float32 array.

    Exact tier mirrors the historical two-pass mean/var expression op for
    op (bit-identical); fast tier folds the variance into one data pass via
    ``E[x²] − mean²`` (clamped at zero against cancellation).
    """
    mu = x.mean(axis=-1, keepdims=True)
    if is_fast():
        n = x.shape[-1]
        mean_sq = np.einsum("...i,...i->...", x, x)[..., None] / np.float32(n)
        var = mean_sq - mu * mu
        np.maximum(var, np.float32(0.0), out=var)
    else:
        var = x.var(axis=-1, keepdims=True)
    np.subtract(x, mu, out=x)
    np.divide(x, np.sqrt(var + eps), out=x)
    np.multiply(x, gamma, out=x)
    np.add(x, beta, out=x)
    return x


def layernorm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: np.float32) -> np.ndarray:
    """Out-of-place layer norm (copies, then applies :func:`layernorm_`)."""
    return layernorm_(np.array(x, dtype=np.float32), gamma, beta, eps)
