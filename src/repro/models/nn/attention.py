"""Multi-head scaled-dot-product attention (self and cross).

Implements exactly the operator the paper writes out:

    Attention(Q, K, V) = softmax(Q K^T / sqrt(d)) V

with multi-head projection/recombination.  Shapes are ``(..., tokens, dim)``;
queries and keys/values may have different token counts (cross-attention
between text tokens and image patches is the core of GroundingDINO).

The heavy lifting lives in :mod:`repro.models.nn.kernels`: self-attention
projects Q/K/V through one fused gemm, and the softmax·V product routes
through the blocked (exact tier) or online-softmax (fast tier) kernel.
"""

from __future__ import annotations

import numpy as np

from . import kernels
from .init import ParamFactory
from .layers import Linear, softmax

__all__ = ["MultiHeadAttention", "attention_scores"]


def attention_scores(q: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Raw scaled attention logits ``Q K^T / sqrt(d)`` (no softmax).

    Exposed separately because GroundingDINO's grounding head thresholds
    these relevance scores directly (text/box thresholds).  Scaling happens
    on the cheaper side when that is errorless — see
    :func:`repro.models.nn.kernels.scaled_scores`; the exact tier stays
    bit-compatible with the historical divide-the-logits form.
    """
    return kernels.scaled_scores(q, k)


class MultiHeadAttention:
    """Multi-head attention; supports self- and cross-attention.

    ``downsample_rate`` shrinks the per-head internal dimension (used by
    SAM's two-way decoder blocks to keep cross-attention cheap).
    """

    def __init__(
        self,
        params: ParamFactory,
        name: str,
        dim: int,
        n_heads: int,
        *,
        kv_dim: int | None = None,
        downsample_rate: int = 1,
    ) -> None:
        if dim % (n_heads * downsample_rate) != 0:
            raise ValueError(f"dim {dim} not divisible by heads*downsample {n_heads * downsample_rate}")
        kv_dim = kv_dim if kv_dim is not None else dim
        self.dim = dim
        self.n_heads = n_heads
        self.inner = dim // downsample_rate
        self.head_dim = self.inner // n_heads
        self.q_proj = Linear(params, f"{name}.q", dim, self.inner)
        self.k_proj = Linear(params, f"{name}.k", kv_dim, self.inner)
        self.v_proj = Linear(params, f"{name}.v", kv_dim, self.inner)
        self.out_proj = Linear(params, f"{name}.out", self.inner, dim)
        # Self-attention runs Q/K/V as ONE gemm against the column-fused
        # weight; possible whenever queries and keys share the input dim.
        # fuse_linear COPIES the Linear weights (np.concatenate) at
        # construction time — Linear parameters are immutable after init
        # (no in-place loading path exists), so the copy cannot go stale;
        # anyone adding one must re-fuse here.  Parameter names/values are
        # untouched, so checkpoints and fingerprints are unaffected.
        self._w_qkv: np.ndarray | None = None
        self._b_qkv: np.ndarray | None = None
        if kv_dim == dim:
            self._w_qkv, self._b_qkv = kernels.fuse_linear(
                [self.q_proj.weight, self.k_proj.weight, self.v_proj.weight],
                [self.q_proj.bias, self.k_proj.bias, self.v_proj.bias],
            )

    def _split(self, x: np.ndarray) -> np.ndarray:
        # (..., T, inner) -> (..., heads, T, head_dim)
        *lead, t, _ = x.shape
        x = x.reshape(*lead, t, self.n_heads, self.head_dim)
        return np.swapaxes(x, -2, -3)

    def _merge(self, x: np.ndarray) -> np.ndarray:
        # (..., heads, T, head_dim) -> (..., T, inner)
        x = np.swapaxes(x, -2, -3)
        *lead, t, h, d = x.shape
        return x.reshape(*lead, t, h * d)

    def _project_qkv(
        self, queries: np.ndarray, keys: np.ndarray | None, values: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if keys is None and values is None and self._w_qkv is not None:
            qkv = np.asarray(queries, dtype=np.float32) @ self._w_qkv
            if self._b_qkv is not None:
                qkv += self._b_qkv
            inner = self.inner
            q = qkv[..., :inner]
            k = qkv[..., inner : 2 * inner]
            v = qkv[..., 2 * inner :]
        else:
            keys = queries if keys is None else keys
            values = keys if values is None else values
            q = self.q_proj(queries)
            k = self.k_proj(keys)
            v = self.v_proj(values)
        return self._split(q), self._split(k), self._split(v)

    def __call__(
        self,
        queries: np.ndarray,
        keys: np.ndarray | None = None,
        values: np.ndarray | None = None,
        *,
        return_weights: bool = False,
    ):
        """Apply attention.  ``keys``/``values`` default to ``queries`` (self)."""
        q, k, v = self._project_qkv(queries, keys, values)
        if return_weights:
            # Full weights requested: materialise logits the naive way.
            logits = attention_scores(q, k)
            weights = softmax(logits, axis=-1)
            out = self.out_proj(self._merge(weights @ np.asarray(v, dtype=np.float32)))
            return out, weights
        out = self.out_proj(self._merge(kernels.attention(q, k, v)))
        return out
