"""Multi-head scaled-dot-product attention (self and cross).

Implements exactly the operator the paper writes out:

    Attention(Q, K, V) = softmax(Q K^T / sqrt(d)) V

with multi-head projection/recombination.  Shapes are ``(..., tokens, dim)``;
queries and keys/values may have different token counts (cross-attention
between text tokens and image patches is the core of GroundingDINO).
"""

from __future__ import annotations

import numpy as np

from .init import ParamFactory
from .layers import Linear, softmax

__all__ = ["MultiHeadAttention", "attention_scores"]


def attention_scores(q: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Raw scaled attention logits ``Q K^T / sqrt(d)`` (no softmax).

    Exposed separately because GroundingDINO's grounding head thresholds
    these relevance scores directly (text/box thresholds).
    """
    q = np.asarray(q, dtype=np.float32)
    k = np.asarray(k, dtype=np.float32)
    d = q.shape[-1]
    return (q @ np.swapaxes(k, -1, -2)) / np.float32(np.sqrt(d))


class MultiHeadAttention:
    """Multi-head attention; supports self- and cross-attention.

    ``downsample_rate`` shrinks the per-head internal dimension (used by
    SAM's two-way decoder blocks to keep cross-attention cheap).
    """

    def __init__(
        self,
        params: ParamFactory,
        name: str,
        dim: int,
        n_heads: int,
        *,
        kv_dim: int | None = None,
        downsample_rate: int = 1,
    ) -> None:
        if dim % (n_heads * downsample_rate) != 0:
            raise ValueError(f"dim {dim} not divisible by heads*downsample {n_heads * downsample_rate}")
        kv_dim = kv_dim if kv_dim is not None else dim
        self.dim = dim
        self.n_heads = n_heads
        self.inner = dim // downsample_rate
        self.head_dim = self.inner // n_heads
        self.q_proj = Linear(params, f"{name}.q", dim, self.inner)
        self.k_proj = Linear(params, f"{name}.k", kv_dim, self.inner)
        self.v_proj = Linear(params, f"{name}.v", kv_dim, self.inner)
        self.out_proj = Linear(params, f"{name}.out", self.inner, dim)

    def _split(self, x: np.ndarray) -> np.ndarray:
        # (..., T, inner) -> (..., heads, T, head_dim)
        *lead, t, _ = x.shape
        x = x.reshape(*lead, t, self.n_heads, self.head_dim)
        return np.swapaxes(x, -2, -3)

    def _merge(self, x: np.ndarray) -> np.ndarray:
        # (..., heads, T, head_dim) -> (..., T, inner)
        x = np.swapaxes(x, -2, -3)
        *lead, t, h, d = x.shape
        return np.ascontiguousarray(x).reshape(*lead, t, h * d)

    def __call__(
        self,
        queries: np.ndarray,
        keys: np.ndarray | None = None,
        values: np.ndarray | None = None,
        *,
        return_weights: bool = False,
    ):
        """Apply attention.  ``keys``/``values`` default to ``queries`` (self)."""
        keys = queries if keys is None else keys
        values = keys if values is None else values
        q = self._split(self.q_proj(queries))
        k = self._split(self.k_proj(keys))
        v = self._split(self.v_proj(values))
        logits = attention_scores(q, k)
        weights = softmax(logits, axis=-1)
        out = self._merge(weights @ v)
        out = self.out_proj(out)
        if return_weights:
            return out, weights
        return out
