"""Foundation-model surrogates: GroundingDINO (text → boxes) and SAM (prompts → masks)."""

from .clipseg import ClipSegConfig, ClipSegSurrogate
from .dino import Detection, DinoConfig, GroundingDino
from .tuning import CalibrationResult, calibrate_concept, register_calibrated_concept
from .features import FEATURE_NAMES, FeatureGrid, PatchFeatureExtractor, compute_feature_maps
from .registry import (
    DEFAULT_DINO,
    DEFAULT_SAM,
    DINO_CONFIGS,
    SAM_CONFIGS,
    build_dino,
    build_sam,
)
from .swin import SwinEncoder, SwinStageOutput
from .sam import (
    AnalyticMaskHead,
    Sam,
    SamAutomaticMaskGenerator,
    SamConfig,
    SamPredictor,
)
from .text import ConceptLexicon, TextEncoding, default_lexicon, tokenize

__all__ = [
    "AnalyticMaskHead",
    "CalibrationResult",
    "ClipSegConfig",
    "ClipSegSurrogate",
    "ConceptLexicon",
    "DEFAULT_DINO",
    "DEFAULT_SAM",
    "DINO_CONFIGS",
    "Detection",
    "DinoConfig",
    "FEATURE_NAMES",
    "FeatureGrid",
    "GroundingDino",
    "PatchFeatureExtractor",
    "SAM_CONFIGS",
    "Sam",
    "SamAutomaticMaskGenerator",
    "SamConfig",
    "SamPredictor",
    "SwinEncoder",
    "SwinStageOutput",
    "TextEncoding",
    "build_dino",
    "calibrate_concept",
    "register_calibrated_concept",
    "build_sam",
    "compute_feature_maps",
    "default_lexicon",
    "tokenize",
]
