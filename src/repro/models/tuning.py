"""The optional fine-tuning module (paper: future work #3).

The paper plans "an optional fine-tuning module that allows advanced users
to adapt the segmentation pipeline to highly specialized or critical
datasets".  In this reproduction the grounding is carried by concept
attribute vectors over engineered feature channels, so fine-tuning becomes
*concept calibration*: given a handful of annotated slices, fit the
attribute vector that best separates the target phase from the rest, and
register it in the lexicon under a new word.

The fit is a regularised least-squares / Fisher-style discriminant over the
feature channels — closed form, a few milliseconds, and auditable (the
learned weights say which channels carry the concept).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ValidationError
from ..utils.validation import ensure_2d, ensure_mask
from .features import FEATURE_NAMES, compute_feature_maps
from .text import ConceptLexicon

__all__ = ["CalibrationResult", "calibrate_concept", "register_calibrated_concept"]


@dataclass(frozen=True)
class CalibrationResult:
    """A learned concept vector plus its training diagnostics."""

    vector: np.ndarray  # (F,) attribute weights, unit norm
    bias: float  # projected class midpoint (the concept's decision level)
    separation: float  # Fisher separation achieved on the training data
    channel_weights: dict[str, float]  # human-readable view of ``vector``
    n_positive: int
    n_negative: int


def calibrate_concept(
    images: Sequence[np.ndarray],
    masks: Sequence[np.ndarray],
    *,
    ridge: float = 1e-3,
    max_pixels_per_image: int = 20000,
    rng=None,
) -> CalibrationResult:
    """Fit a concept vector separating masked pixels from the rest.

    ``images`` are adapted float [0,1] slices; ``masks`` the target-phase
    annotations.  Returns the unit-norm direction maximising the Fisher
    criterion ``w·(μ⁺-μ⁻) / sqrt(w·Σw)`` with a ridge-regularised pooled
    covariance (the classic LDA direction Σ⁻¹(μ⁺-μ⁻)).
    """
    if len(images) == 0 or len(images) != len(masks):
        raise ValidationError("calibrate_concept needs equal, non-empty images and masks")
    from ..utils.rng import as_rng

    rng = as_rng(rng)
    pos_rows, neg_rows = [], []
    for img, mask in zip(images, masks):
        img = ensure_2d(img, "image")
        m = ensure_mask(mask, shape=img.shape)
        feats = compute_feature_maps(img).reshape(-1, len(FEATURE_NAMES))
        flat = m.ravel()
        pos_idx = np.nonzero(flat)[0]
        neg_idx = np.nonzero(~flat)[0]
        if pos_idx.size == 0 or neg_idx.size == 0:
            raise ValidationError("each training mask needs both positive and negative pixels")
        half = max_pixels_per_image // 2
        if pos_idx.size > half:
            pos_idx = rng.choice(pos_idx, size=half, replace=False)
        if neg_idx.size > half:
            neg_idx = rng.choice(neg_idx, size=half, replace=False)
        pos_rows.append(feats[pos_idx])
        neg_rows.append(feats[neg_idx])
    pos = np.concatenate(pos_rows, axis=0).astype(np.float64)
    neg = np.concatenate(neg_rows, axis=0).astype(np.float64)

    mu_diff = pos.mean(axis=0) - neg.mean(axis=0)
    pooled = np.cov(pos, rowvar=False) * (len(pos) - 1) + np.cov(neg, rowvar=False) * (len(neg) - 1)
    pooled /= max(len(pos) + len(neg) - 2, 1)
    pooled += ridge * np.eye(len(FEATURE_NAMES))
    w = np.linalg.solve(pooled, mu_diff)
    norm = float(np.linalg.norm(w))
    if norm <= 1e-12:
        raise ValidationError("degenerate calibration: the phases are not separable in feature space")
    w_hat = (w / norm).astype(np.float32)

    denom = float(np.sqrt(w_hat @ pooled @ w_hat))
    separation = float(w_hat @ mu_diff / denom) if denom > 0 else 0.0
    # The grounding sigmoid needs an absolute decision level, not just a
    # direction: use the projected class midpoint as the per-concept bias.
    midpoint = float(w_hat @ (pos.mean(axis=0) + neg.mean(axis=0)) / 2.0)
    return CalibrationResult(
        vector=w_hat,
        bias=midpoint,
        separation=separation,
        channel_weights={name: float(w_hat[i]) for i, name in enumerate(FEATURE_NAMES)},
        n_positive=int(len(pos)),
        n_negative=int(len(neg)),
    )


def register_calibrated_concept(
    lexicon: ConceptLexicon,
    word: str,
    images: Sequence[np.ndarray],
    masks: Sequence[np.ndarray],
    **kwargs,
) -> CalibrationResult:
    """Calibrate a concept and register it under ``word`` in the lexicon."""
    result = calibrate_concept(images, masks, **kwargs)
    lexicon.add(word, result.vector, bias=result.bias)
    return result
