"""Text side of the grounding surrogate: tokenizer + concept lexicon.

GroundingDINO learns an open vocabulary from web-scale pairs; offline we
install the vocabulary analytically.  Each known word maps to an *attribute
vector* over the engineered feature channels in
:mod:`repro.models.features` — positive weights mean "this concept looks
like high values of that feature", negative weights suppress.  Unknown words
get a zero vector and are reported as ungrounded (the text-threshold path).

The lexicon covers the domain vocabulary the paper's workflows use
("catalyst particles", "needle-like crystalline structures", "dark
background", "membrane") plus generic visual words ("bright", "dark",
"edges", "texture").
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass

import numpy as np

from ..errors import PromptError
from .features import FEATURE_NAMES

__all__ = ["tokenize", "ConceptLexicon", "default_lexicon", "TextEncoding"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Words carrying no visual meaning, dropped before grounding.
STOPWORDS = frozenset(
    "a an the of in on at and or with for to all every each this that these those its his her "
    "image slice region area please find segment show me select".split()
)


def tokenize(text: str) -> list[str]:
    """Lowercase word tokenizer; strips punctuation; drops stopwords."""
    if not isinstance(text, str):
        raise PromptError(f"prompt must be a string, got {type(text).__name__}")
    words = _TOKEN_RE.findall(text.lower())
    return [w for w in words if w not in STOPWORDS]


def _vec(**weights: float) -> np.ndarray:
    v = np.zeros(len(FEATURE_NAMES), dtype=np.float32)
    for name, w in weights.items():
        v[FEATURE_NAMES.index(name)] = w
    return v


def _build_default_entries() -> dict[str, np.ndarray]:
    catalyst = _vec(relative_brightness=1.0, texture=0.25, darkness=-0.6)
    # Needles are thin *and* locally bright; elongation alone is too weak a
    # cue after adaptation (blur dilutes the structure-tensor coherence), so
    # local brightness carries most of the weight.
    needle = _vec(elongation=0.5, relative_brightness=0.95, texture=0.2, darkness=-0.5)
    blob = _vec(relative_brightness=0.95, texture=0.35, intensity=0.35, darkness=-0.5)
    dark = _vec(darkness=1.0, texture=-0.3, edge=-0.1)
    film = _vec(midtone=1.0, darkness=-0.35, relative_brightness=-0.35)
    bright = _vec(intensity=1.0, darkness=-1.0)
    edges = _vec(edge=1.0)
    textured = _vec(texture=1.0)
    entries: dict[str, np.ndarray] = {}

    def add(vec: np.ndarray, *words: str) -> None:
        for w in words:
            entries[w] = vec

    add(catalyst, "catalyst", "catalysts", "particle", "particles", "iridium", "irox", "iro2", "oxide", "grain", "grains", "inclusion", "inclusions", "precipitate", "precipitates")
    add(needle, "needle", "needles", "needlelike", "crystalline", "crystal", "crystals", "rod", "rods", "fiber", "fibers", "whisker", "whiskers", "elongated")
    add(blob, "amorphous", "aggregate", "aggregates", "blob", "blobs", "cluster", "clusters", "globular", "nodule", "nodules")
    add(dark, "dark", "black", "background", "pore", "pores", "void", "voids", "vacuum", "hole", "holes", "trench", "resin")
    add(film, "membrane", "film", "ionomer", "nafion", "matrix", "layer", "substrate", "bulk")
    add(bright, "bright", "white", "light", "glowing", "luminous")
    add(edges, "edge", "edges", "boundary", "boundaries", "interface", "interfaces", "outline", "contour")
    add(textured, "texture", "textured", "rough", "grainy", "speckled", "noisy")
    return entries


@dataclass(frozen=True)
class TextEncoding:
    """Grounded representation of a prompt."""

    words: tuple[str, ...]  # tokens that survived grounding
    vectors: np.ndarray  # (T, F) attribute vectors, unit-normalised
    ungrounded: tuple[str, ...]  # tokens with no lexicon entry
    biases: np.ndarray = None  # type: ignore[assignment]  # (T,) per-token relevance bias; NaN = detector default

    def __post_init__(self):
        if self.biases is None:
            object.__setattr__(self, "biases", np.full(len(self.words), np.nan, dtype=np.float32))

    @property
    def n_tokens(self) -> int:
        return len(self.words)


class ConceptLexicon:
    """Maps prompt tokens to attribute vectors over the feature channels.

    Each entry may carry an optional per-concept *relevance bias*: the dot
    product level separating "present" from "absent" for that concept.
    Hand-authored concepts use the detector's global default; calibrated
    concepts (see :mod:`repro.models.tuning`) bring their fitted midpoint.
    """

    def __init__(self, entries: dict[str, np.ndarray] | None = None) -> None:
        self.entries = dict(entries) if entries is not None else _build_default_entries()
        self.biases: dict[str, float] = {}
        for word, vec in self.entries.items():
            if vec.shape != (len(FEATURE_NAMES),):
                raise PromptError(f"lexicon entry {word!r} has shape {vec.shape}")
        self._version = 0
        self._fp: str | None = None
        self._fp_version = -1

    def add(self, word: str, vector: np.ndarray, *, bias: float | None = None) -> None:
        """Register a new concept (the platform's vocabulary-extension hook).

        ``bias`` overrides the detector's global relevance bias for this
        word; it must be expressed for the *normalised* vector.
        """
        vec = np.asarray(vector, dtype=np.float32)
        if vec.shape != (len(FEATURE_NAMES),):
            raise PromptError(f"concept vector must have {len(FEATURE_NAMES)} entries, got {vec.shape}")
        self.entries[word.lower()] = vec
        if bias is not None:
            self.biases[word.lower()] = float(bias)
        self._version += 1

    def fingerprint(self) -> str:
        """Content hash over entries and biases (cache-key component).

        Recomputed lazily: :meth:`add` bumps a version counter, so a
        calibrated or extended vocabulary invalidates cached text encodings
        without hashing the lexicon on every prompt.
        """
        if self._fp is None or self._fp_version != self._version:
            h = hashlib.sha1()
            for word in sorted(self.entries):
                h.update(word.encode())
                h.update(np.ascontiguousarray(self.entries[word]))
                h.update(repr(self.biases.get(word)).encode())
            self._fp = h.hexdigest()
            self._fp_version = self._version
        return self._fp

    def __contains__(self, word: str) -> bool:
        return word.lower() in self.entries

    def encode(self, prompt: str) -> TextEncoding:
        """Tokenize and ground a prompt.

        Raises :class:`PromptError` when the prompt is empty; a prompt whose
        tokens are all unknown returns an encoding with ``n_tokens == 0``
        (the detector turns that into a no-detection result, mirroring a
        text threshold that nothing passes).
        """
        words = tokenize(prompt)
        if not words:
            raise PromptError(f"prompt {prompt!r} contains no usable words")
        grounded, vectors, biases, unknown = [], [], [], []
        for w in words:
            vec = self.entries.get(w)
            if vec is None:
                unknown.append(w)
                continue
            norm = float(np.linalg.norm(vec))
            grounded.append(w)
            vectors.append(vec / norm if norm > 0 else vec)
            biases.append(self.biases.get(w, np.nan))
        mat = np.stack(vectors, axis=0) if vectors else np.zeros((0, len(FEATURE_NAMES)), dtype=np.float32)
        return TextEncoding(
            words=tuple(grounded),
            vectors=mat.astype(np.float32),
            ungrounded=tuple(unknown),
            biases=np.asarray(biases, dtype=np.float32),
        )


def default_lexicon() -> ConceptLexicon:
    """The built-in materials-microscopy lexicon."""
    return ConceptLexicon()
