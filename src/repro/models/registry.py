"""Model registry: named configurations and builders.

The paper's deployment uses GroundingDINO **Swin-T** and SAM **ViT-H**;
this registry exposes those names plus the scaled-down variants the
single-core benchmarks run on (``vit_t`` is the default — identical
architecture, smaller dims).  Exact paper-scale dims are available but slow
in pure NumPy; the analytic grounding makes output quality independent of
encoder width, so benches use ``vit_t`` (documented in DESIGN.md).
"""

from __future__ import annotations

from ..errors import ModelConfigError
from .dino import DinoConfig, GroundingDino
from .sam.analytic import AnalyticMaskHead
from .sam.model import Sam, SamConfig

__all__ = ["SAM_CONFIGS", "DINO_CONFIGS", "build_sam", "build_dino", "DEFAULT_SAM", "DEFAULT_DINO"]

DEFAULT_SAM = "vit_t"
DEFAULT_DINO = "swin_t"

SAM_CONFIGS: dict[str, SamConfig] = {
    # Paper-scale (SAM ViT-H: 1280-dim, 32 blocks, 16 heads).
    "vit_h": SamConfig(name="vit_h", patch_size=16, encoder_dim=1280, encoder_depth=32, encoder_heads=16, encoder_window=14, prompt_dim=256, decoder_depth=2, decoder_heads=8),
    "vit_l": SamConfig(name="vit_l", patch_size=16, encoder_dim=1024, encoder_depth=24, encoder_heads=16, encoder_window=14, prompt_dim=256, decoder_depth=2, decoder_heads=8),
    "vit_b": SamConfig(name="vit_b", patch_size=16, encoder_dim=768, encoder_depth=12, encoder_heads=12, encoder_window=14, prompt_dim=256, decoder_depth=2, decoder_heads=8),
    # Benchmark-scale surrogate (same architecture, laptop-friendly dims).
    "vit_t": SamConfig(name="vit_t", patch_size=16, encoder_dim=96, encoder_depth=4, encoder_heads=4, prompt_dim=64, decoder_depth=2, decoder_heads=4),
}

DINO_CONFIGS: dict[str, DinoConfig] = {
    # Swin-T-grade feature stride; embed dim scaled for NumPy inference.
    "swin_t": DinoConfig(stride=4, embed_dim=64, text_depth=2, text_heads=4),
    "swin_b": DinoConfig(stride=4, embed_dim=128, text_depth=4, text_heads=8),
}


def build_sam(name: str = DEFAULT_SAM, *, seed: int = 0, analytic: AnalyticMaskHead | None = None) -> Sam:
    """Build a SAM surrogate by config name."""
    if name not in SAM_CONFIGS:
        raise ModelConfigError(f"unknown SAM config {name!r}; known: {sorted(SAM_CONFIGS)}")
    cfg = SAM_CONFIGS[name]
    if seed != cfg.seed:
        from dataclasses import replace

        cfg = replace(cfg, seed=seed)
    return Sam(cfg, analytic=analytic)


def build_dino(name: str = DEFAULT_DINO, *, seed: int = 0, cache=None, **overrides) -> GroundingDino:
    """Build a GroundingDINO surrogate by config name."""
    if name not in DINO_CONFIGS:
        raise ModelConfigError(f"unknown DINO config {name!r}; known: {sorted(DINO_CONFIGS)}")
    cfg = DINO_CONFIGS[name]
    if overrides or seed != cfg.seed:
        from dataclasses import replace

        cfg = replace(cfg, seed=seed, **overrides)
    return GroundingDino(cfg, cache=cache)
