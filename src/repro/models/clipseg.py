"""CLIPSeg-style text-to-mask baseline.

The related-work section cites CLIPSeg: open-vocabulary segmentation that
decodes a text-image relevance field *directly* into a mask, with no
promptable mask decoder behind it.  The surrogate shares the grounding
stack with GroundingDINO (same lexicon, features, cross-modal attention)
but skips boxes and SAM entirely: the pixel relevance map is thresholded
and lightly cleaned.

Its role here is the ablation anchor between "text grounding alone" and
the full Zenesis pipeline — it inherits grounding's localisation but lacks
SAM's boundary refinement, which the ablation bench quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.masks import clean_mask
from .dino import DinoConfig, GroundingDino
from .text import ConceptLexicon

__all__ = ["ClipSegConfig", "ClipSegSurrogate"]


@dataclass(frozen=True)
class ClipSegConfig:
    """Threshold/cleanup parameters of the direct text-to-mask decoder."""

    mask_threshold: float = 0.5
    min_area: int = 16
    open_radius: int = 1
    dino: DinoConfig = DinoConfig()


class ClipSegSurrogate:
    """Text prompt → binary mask, straight from the relevance field."""

    def __init__(self, config: ClipSegConfig | None = None, *, lexicon: ConceptLexicon | None = None) -> None:
        self.config = config or ClipSegConfig()
        self.grounder = GroundingDino(self.config.dino, lexicon=lexicon)

    def segment(self, image: np.ndarray, prompt: str) -> np.ndarray:
        """Binary mask for ``prompt``; empty when nothing grounds."""
        relevance, _, _ = self.grounder.relevance_map(image, prompt)
        binary = relevance >= self.config.mask_threshold
        return clean_mask(
            binary, open_radius=self.config.open_radius, close_radius=1, min_area=self.config.min_area
        )

    def heatmap(self, image: np.ndarray, prompt: str) -> np.ndarray:
        """The raw pixel relevance in [0, 1] (the model's 'logits')."""
        relevance, _, _ = self.grounder.relevance_map(image, prompt)
        return relevance
