"""Automatic ("segment everything") mask generation — SAM's unprompted mode.

A regular grid of positive point prompts is pushed through the predictor;
candidate masks are filtered by predicted IoU and stability, then de-duplicated
with greedy mask NMS.  The output format matches upstream SAM's list of
record dicts so downstream tooling (and the SAM-only baseline) can consume it
unchanged.
"""

from __future__ import annotations

import numpy as np

from ...core.boxes import box_iou, mask_to_box
from ...core.masks import masks_iou, stability_score
from ...errors import PromptError
from .model import Sam, SamPredictor

__all__ = ["SamAutomaticMaskGenerator"]


class SamAutomaticMaskGenerator:
    """Grid-prompted automatic mask generation."""

    def __init__(
        self,
        sam: Sam | None = None,
        *,
        points_per_side: int = 8,
        pred_iou_thresh: float = 0.45,
        stability_score_thresh: float = 0.6,
        nms_iou_thresh: float = 0.7,
        min_mask_area: int = 40,
    ) -> None:
        if points_per_side < 1:
            raise PromptError("points_per_side must be >= 1")
        self.predictor = SamPredictor(sam)
        self.points_per_side = points_per_side
        self.pred_iou_thresh = pred_iou_thresh
        self.stability_score_thresh = stability_score_thresh
        self.nms_iou_thresh = nms_iou_thresh
        self.min_mask_area = min_mask_area

    def _point_grid(self, shape: tuple[int, int]) -> np.ndarray:
        h, w = shape
        n = self.points_per_side
        ys = (np.arange(n) + 0.5) * h / n
        xs = (np.arange(n) + 0.5) * w / n
        gx, gy = np.meshgrid(xs, ys)
        return np.stack([gx.ravel(), gy.ravel()], axis=1)  # (n², 2) as (x, y)

    def generate(self, image: np.ndarray) -> list[dict]:
        """Generate mask records for ``image`` (float [0,1] grayscale).

        Each record has ``segmentation`` (bool HxW), ``area``, ``bbox``
        (XYXY), ``predicted_iou``, ``stability_score``, ``point_coords``.
        Records are sorted by ``predicted_iou`` descending.
        """
        self.predictor.set_image(image)
        candidates: list[dict] = []
        for point in self._point_grid(np.asarray(image).shape[:2]):
            masks, scores, _ = self.predictor.predict(
                point_coords=point[None, :],
                point_labels=np.array([1]),
                multimask_output=True,
            )
            for mask, score in zip(masks, scores):
                area = int(mask.sum())
                if area < self.min_mask_area:
                    continue
                if score < self.pred_iou_thresh:
                    continue
                stab = stability_score(mask)
                if stab < self.stability_score_thresh:
                    continue
                bbox = mask_to_box(mask)
                if bbox is None:
                    continue
                candidates.append(
                    {
                        "segmentation": mask,
                        "area": area,
                        "bbox": bbox,
                        "predicted_iou": float(score),
                        "stability_score": float(stab),
                        "point_coords": point.tolist(),
                    }
                )
        return self._deduplicate(candidates)

    def _deduplicate(self, candidates: list[dict]) -> list[dict]:
        """Greedy NMS on masks (box IoU prefilter, exact mask IoU confirm)."""
        if not candidates:
            return []
        candidates.sort(key=lambda r: -r["predicted_iou"])
        kept: list[dict] = []
        boxes = np.stack([c["bbox"] for c in candidates])
        for i, cand in enumerate(candidates):
            duplicate = False
            for kept_rec in kept:
                if box_iou(boxes[i : i + 1], kept_rec["bbox"][None])[0, 0] < self.nms_iou_thresh * 0.5:
                    continue
                if masks_iou(cand["segmentation"], kept_rec["segmentation"]) >= self.nms_iou_thresh:
                    duplicate = True
                    break
            if not duplicate:
                kept.append(cand)
        return kept
