"""SAM surrogate: ViT encoder, prompt encoder, two-way decoder, analytic head."""

from .analytic import DEFAULT_SCORE_WEIGHTS, AnalyticContext, AnalyticMaskHead, MaskHypothesis
from .automatic import SamAutomaticMaskGenerator
from .image_encoder import ImageEncoderViT
from .mask_decoder import DecoderOutput, MaskDecoder
from .model import Sam, SamConfig, SamPredictor
from .prompt_encoder import POINT_LABEL_NEGATIVE, POINT_LABEL_POSITIVE, PromptEncoder

__all__ = [
    "AnalyticContext",
    "AnalyticMaskHead",
    "DEFAULT_SCORE_WEIGHTS",
    "DecoderOutput",
    "ImageEncoderViT",
    "MaskDecoder",
    "MaskHypothesis",
    "POINT_LABEL_NEGATIVE",
    "POINT_LABEL_POSITIVE",
    "PromptEncoder",
    "Sam",
    "SamAutomaticMaskGenerator",
    "SamConfig",
    "SamPredictor",
]
