"""The Sam facade and :class:`SamPredictor` (the segment-anything API).

``SamPredictor`` mirrors the upstream interface: ``set_image`` once per
image (runs the ViT encoder and the analytic precomputation), then
``predict`` per prompt.  Internally both paths run on every call:

* the **transformer path** — prompt encoder → two-way mask decoder — whose
  token outputs and logits are exposed via ``last_decoder_output``;
* the **analytic path** — :class:`AnalyticMaskHead` — which supplies the
  returned masks and quality scores (the substitution for pretrained
  hypernetwork weights; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...cache import MISS, InferenceCache, array_content_key, combine_keys, config_fingerprint, get_cache
from ...errors import ModelConfigError, PromptError
from ...utils.rng import derive_seed
from ..nn import ParamFactory
from ..nn.precision import get_precision
from .analytic import AnalyticContext, AnalyticMaskHead, MaskHypothesis
from .image_encoder import ImageEncoderViT
from .mask_decoder import DecoderOutput, MaskDecoder
from .prompt_encoder import PromptEncoder

__all__ = ["SamConfig", "Sam", "SamPredictor"]


@dataclass(frozen=True)
class SamConfig:
    """Architecture hyper-parameters (mirrors SAM's ViT variants)."""

    name: str = "vit_t"
    patch_size: int = 16
    encoder_dim: int = 96
    encoder_depth: int = 4
    encoder_heads: int = 4
    encoder_window: int = 0  # 0 = all-global attention; SAM ViT-H uses 14
    prompt_dim: int = 64
    decoder_depth: int = 2
    decoder_heads: int = 4
    num_multimask: int = 3
    seed: int = 0

    def __post_init__(self):
        if self.prompt_dim % 4:
            raise ModelConfigError("prompt_dim must be divisible by 4")
        if self.num_multimask < 1:
            raise ModelConfigError("num_multimask must be >= 1")


class Sam:
    """Container tying encoder, prompt encoder, decoder, and analytic head."""

    def __init__(self, config: SamConfig | None = None, *, analytic: AnalyticMaskHead | None = None) -> None:
        self.config = config or SamConfig()
        params = ParamFactory(derive_seed(self.config.seed, "sam", self.config.name))
        c = self.config
        self.image_encoder = ImageEncoderViT(
            params.child("image_encoder"),
            patch_size=c.patch_size,
            embed_dim=c.encoder_dim,
            depth=c.encoder_depth,
            n_heads=c.encoder_heads,
            out_chans=c.prompt_dim,
            window_size=c.encoder_window,
        )
        self.prompt_encoder = PromptEncoder(params.child("prompt_encoder"), embed_dim=c.prompt_dim)
        self.mask_decoder = MaskDecoder(
            params.child("mask_decoder"),
            embed_dim=c.prompt_dim,
            n_heads=c.decoder_heads,
            depth=c.decoder_depth,
            num_multimask=c.num_multimask,
        )
        self.analytic = analytic or AnalyticMaskHead()


class SamPredictor:
    """Stateful per-image predictor (the API applications use)."""

    def __init__(self, sam: Sam | None = None, *, cache: InferenceCache | None = None) -> None:
        self.sam = sam or Sam()
        self.cache = cache if cache is not None else get_cache()
        self._fingerprints: dict[str, str] = {}
        self._image: np.ndarray | None = None
        self._image_key: str | None = None
        self._embedding: np.ndarray | None = None
        self._dense_pe: np.ndarray | None = None
        self._ctx: AnalyticContext | None = None
        self.last_decoder_output: DecoderOutput | None = None

    @property
    def _fingerprint(self) -> str:
        """Cache-key fingerprint: config ⊕ analytic head ⊕ ACTIVE precision tier.

        Resolved at every key construction, not snapshotted in ``__init__``:
        ``set_precision()`` / the ``precision()`` scope may flip the tier
        after this predictor exists, and a construction-time snapshot would
        file fast-tier embeddings under exact-tier keys — poisoning the
        shared (disk-tier) cache with non-bit-exact entries.  Any config or
        analytic-head change still invalidates every cached product.
        """
        tier = get_precision()
        fp = self._fingerprints.get(tier)
        if fp is None:
            # config_fingerprint folds in precision_tag() for the tier that
            # is active right now, so memoising per tier is exact.
            fp = config_fingerprint(self.sam.config, self.sam.analytic)
            self._fingerprints[tier] = fp
        return fp

    @property
    def is_image_set(self) -> bool:
        return self._image is not None

    @property
    def analytic_context(self) -> AnalyticContext:
        if self._ctx is None:
            raise PromptError("call set_image before predicting")
        return self._ctx

    @staticmethod
    def _normalize_image(image: np.ndarray) -> np.ndarray:
        """Shared set_image/precompute_images normalisation and validation.

        Both paths must produce byte-identical arrays — the cache key hashes
        the normalised content, so any divergence here would split the keys.
        """
        img = np.asarray(image, dtype=np.float32)
        if img.ndim == 3:
            img = img.mean(axis=2)
        if img.ndim != 2:
            raise PromptError(f"set_image expects HxW (or HxWxC) array, got shape {img.shape}")
        if img.min() < -1e-4 or img.max() > 1 + 1e-4:
            raise PromptError("set_image expects a [0,1] float image; run the adaptation layer first")
        return img

    def set_image(self, image: np.ndarray) -> None:
        """Encode a float [0,1] grayscale image; heavy work happens once here."""
        img = self._normalize_image(image)
        self._image = img
        self._image_key = combine_keys(array_content_key(img), self._fingerprint)
        cached = self.cache.get("sam.image", self._image_key)
        if cached is MISS:
            embedding = self.sam.image_encoder(img)
            ctx = self.sam.analytic.prepare(img)
            self.cache.put("sam.image", self._image_key, (embedding, ctx))
        else:
            embedding, ctx = cached
        self._embedding = embedding
        self._ctx = ctx
        gh, gw, _ = embedding.shape
        pe_key = combine_keys(f"{gh}x{gw}", self._fingerprint)
        self._dense_pe = self.cache.get_or_compute(
            "sam.dense_pe", pe_key, lambda: self.sam.prompt_encoder.dense_pe((gh, gw))
        )
        self.last_decoder_output = None

    def precompute_images(self, images) -> dict[str, int]:
        """Warm the ``sam.image`` cache for N images in one batched encode.

        Computes exactly the ``(embedding, analytic context)`` tuple that
        :meth:`set_image` would store, under the identical content key, so
        a later ``set_image`` on any of these images — in this process or
        any replica sharing the disk tier — is a pure cache hit.  Images
        already cached (or repeated within the batch) are skipped.

        Returns ``{"hits": already-cached, "encoded": newly-computed}``.
        With caching disabled this is a no-op: there is nowhere to put the
        embeddings, so batching would be pure waste.
        """
        if not self.cache.enabled:
            return {"hits": 0, "encoded": 0}
        normalized: list[np.ndarray] = []
        keys: list[str] = []
        for image in images:
            img = self._normalize_image(image)
            normalized.append(img)
            keys.append(combine_keys(array_content_key(img), self._fingerprint))
        pending: list[int] = []
        seen: set[str] = set()
        for i, key in enumerate(keys):
            if key in seen or self.cache.get("sam.image", key) is not MISS:
                continue
            seen.add(key)
            pending.append(i)
        if pending:
            embeddings = self.sam.image_encoder.encode_batch([normalized[i] for i in pending])
            for i, embedding in zip(pending, embeddings):
                ctx = self.sam.analytic.prepare(normalized[i])
                self.cache.put("sam.image", keys[i], (embedding, ctx))
        return {"hits": len(keys) - len(pending), "encoded": len(pending)}

    def reset_image(self) -> None:
        self._image = None
        self._image_key = None
        self._embedding = None
        self._dense_pe = None
        self._ctx = None
        self.last_decoder_output = None

    def predict(
        self,
        *,
        point_coords: np.ndarray | None = None,
        point_labels: np.ndarray | None = None,
        box: np.ndarray | None = None,
        mask_input: np.ndarray | None = None,
        multimask_output: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Segment with the given prompt.

        Returns ``(masks, scores, low_res_logits)`` with masks sorted by
        score descending; ``multimask_output=False`` keeps only the best.
        """
        if self._image is None or self._embedding is None or self._ctx is None:
            raise PromptError("call set_image before predicting")
        h, w = self._image.shape
        gh, gw, _ = self._embedding.shape

        sparse, dense = self.sam.prompt_encoder.encode(
            (h, w),
            points=point_coords,
            labels=point_labels,
            box=box,
            mask_input=mask_input,
            grid=(gh, gw),
        )
        self.last_decoder_output = self.sam.mask_decoder(
            self._embedding, self._dense_pe, sparse, dense
        )

        hyps: list[MaskHypothesis]
        if box is not None:
            hyps = self.masks_from_box(np.asarray(box))
            if point_coords is not None:
                hyps += self.sam.analytic.masks_from_points(
                    self._ctx, np.asarray(point_coords), np.asarray(point_labels)
                )
        elif point_coords is not None:
            hyps = self.sam.analytic.masks_from_points(
                self._ctx, np.asarray(point_coords), np.asarray(point_labels)
            )
        else:
            raise PromptError("predict needs a box and/or points")

        hyps = sorted(hyps, key=lambda hh: -hh.score)
        if not multimask_output:
            hyps = hyps[:1]
        masks = np.stack([hh.mask for hh in hyps], axis=0)
        scores = np.array([hh.score for hh in hyps], dtype=np.float32)
        n = len(hyps)
        logits = self.last_decoder_output.mask_logits
        low_res = logits[: n] if logits.shape[0] >= n else np.repeat(logits[:1], n, axis=0)
        return masks, scores, low_res

    # -- batched box prompts ---------------------------------------------------

    def decode_boxes(self, boxes: np.ndarray) -> list[DecoderOutput]:
        """Run the transformer path for K box prompts in ONE decoder pass.

        Stacks all box tokens into a ``(K, 2, D)`` prompt batch so the
        prompt-encoder/mask-decoder matmuls execute once at shape ``(K, …)``
        instead of K times.  Sets ``last_decoder_output`` to the final box's
        output, matching a serial prompt loop.  Decoder outputs are cached
        per (image content, box set).
        """
        if self._image is None or self._embedding is None:
            raise PromptError("call set_image before predicting")
        b = np.asarray(boxes, dtype=np.float32).reshape(-1, 4)
        if b.shape[0] == 0:
            return []
        key = combine_keys(self._image_key, array_content_key(b))
        outputs = self.cache.get("sam.decode", key)
        if outputs is MISS:
            h, w = self._image.shape
            sparse = self.sam.prompt_encoder.encode_boxes((h, w), b)
            outputs = self.sam.mask_decoder.decode_batch(self._embedding, self._dense_pe, sparse)
            self.cache.put("sam.decode", key, outputs)
        self.last_decoder_output = outputs[-1]
        return outputs

    def predict_boxes(
        self, boxes: np.ndarray, *, multimask_output: bool = True
    ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Batched equivalent of calling :meth:`predict` once per box.

        Returns one ``(masks, scores, low_res_logits)`` triple per box, in
        input order, with the decoder run once for the whole box stack.
        """
        b = np.asarray(boxes, dtype=np.float32).reshape(-1, 4)
        outputs = self.decode_boxes(b)
        results: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for box, out in zip(b, outputs):
            hyps = sorted(self.masks_from_box(box), key=lambda hh: -hh.score)
            if not multimask_output:
                hyps = hyps[:1]
            masks = np.stack([hh.mask for hh in hyps], axis=0)
            scores = np.array([hh.score for hh in hyps], dtype=np.float32)
            n = len(hyps)
            logits = out.mask_logits
            low_res = logits[:n] if logits.shape[0] >= n else np.repeat(logits[:1], n, axis=0)
            results.append((masks, scores, low_res))
        return results

    def masks_from_box(self, box: np.ndarray) -> list[MaskHypothesis]:
        """Analytic hypotheses for one box on the current image, cached.

        HITL loops and grounded selection revisit the same (image, box)
        pairs; content addressing makes the second visit free.
        """
        if self._ctx is None:
            raise PromptError("call set_image before predicting")
        b = np.asarray(box, dtype=np.float64).reshape(4)
        key = combine_keys(self._image_key, array_content_key(b))
        return self.cache.get_or_compute(
            "sam.analytic_box", key, lambda: self.sam.analytic.masks_from_box(self._ctx, b)
        )

    def score_terms(self, mask: np.ndarray) -> dict[str, float]:
        """Quality decomposition for an arbitrary mask on the current image."""
        if self._ctx is None:
            raise PromptError("call set_image before scoring")
        _, terms = self.sam.analytic.score_mask(self._ctx, mask)
        return terms
