"""SAM's mask decoder: two-way transformer + hypernetwork mask heads.

Structure is faithful to SAM: learned IoU and mask tokens are prepended to
the prompt tokens, two :class:`TwoWayBlock` layers let prompts and image
embeddings attend to each other, a final token→image cross-attention updates
the tokens, and per-mask hypernetwork MLPs turn mask tokens into per-pixel
dot products with the (upscaled) image embedding.  An MLP on the IoU token
predicts mask quality.

With deterministic random weights the decoder's *logits* are not semantic;
the :class:`~repro.models.sam.analytic.AnalyticMaskHead` supplies the final
masks while this module supplies the token machinery and interfaces (see
DESIGN.md, substitutions table).
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import zoom

from ..nn import Linear, Mlp, MultiHeadAttention, ParamFactory, TwoWayBlock

__all__ = ["MaskDecoder", "DecoderOutput"]


class DecoderOutput:
    """Raw decoder products: mask logits, IoU logits, final tokens."""

    def __init__(self, mask_logits: np.ndarray, iou_logits: np.ndarray, tokens: np.ndarray) -> None:
        self.mask_logits = mask_logits  # (n_masks, H, W)
        self.iou_logits = iou_logits  # (n_masks,)
        self.tokens = tokens  # (T, D) final query tokens


class MaskDecoder:
    """Two-way transformer decoder with hypernetwork mask heads."""

    def __init__(
        self,
        params: ParamFactory,
        *,
        embed_dim: int = 64,
        n_heads: int = 4,
        depth: int = 2,
        num_multimask: int = 3,
    ) -> None:
        self.embed_dim = embed_dim
        self.num_mask_tokens = num_multimask + 1  # +1 single-mask token
        self.iou_token = params.normal("iou_token", (embed_dim,), std=0.5)
        self.mask_tokens = params.normal("mask_tokens", (self.num_mask_tokens, embed_dim), std=0.5)
        self.blocks = [
            TwoWayBlock(params, f"block{i}", embed_dim, n_heads) for i in range(depth)
        ]
        self.final_attn = MultiHeadAttention(params, "final_attn", embed_dim, n_heads, downsample_rate=2)
        self.hypernets = [
            Mlp(params, f"hyper{i}", embed_dim, embed_dim) for i in range(self.num_mask_tokens)
        ]
        self.iou_head = Linear(params, "iou_head", embed_dim, self.num_mask_tokens)

    def __call__(
        self,
        image_embedding: np.ndarray,  # (gh, gw, D)
        image_pe: np.ndarray,  # (gh, gw, D)
        sparse_tokens: np.ndarray,  # (T, D)
        dense_bias: np.ndarray | None = None,
        *,
        output_shape: tuple[int, int] | None = None,
    ) -> DecoderOutput:
        sparse = np.asarray(sparse_tokens, dtype=np.float32)
        return self.decode_batch(
            image_embedding, image_pe, sparse[None], dense_bias, output_shape=output_shape
        )[0]

    def decode_batch(
        self,
        image_embedding: np.ndarray,  # (gh, gw, D), shared by all prompts
        image_pe: np.ndarray,  # (gh, gw, D)
        sparse_batch: np.ndarray,  # (K, T, D): K independent prompt-token sets
        dense_bias: np.ndarray | None = None,
        *,
        output_shape: tuple[int, int] | None = None,
    ) -> list[DecoderOutput]:
        """Decode K prompts against one image in a single batched pass.

        Each prompt gets its own copy of the image-token stream (the two-way
        blocks update image tokens per prompt), stacked on a leading batch
        axis so every matmul in the transformer runs once at shape
        ``(K, …)`` instead of K times.  Per-prompt results are identical to
        K serial :meth:`__call__` invocations — the batched kernels iterate
        the same per-slice GEMMs — which is what the batched-vs-serial
        equivalence tests pin down.
        """
        gh, gw, d = image_embedding.shape
        sparse = np.asarray(sparse_batch, dtype=np.float32)
        k, t, _ = sparse.shape
        if k == 0:
            return []
        img = image_embedding
        if dense_bias is not None:
            img = img + dense_bias
        img_tokens = np.ascontiguousarray(
            np.broadcast_to(img.reshape(gh * gw, d), (k, gh * gw, d))
        )
        pe_tokens = image_pe.reshape(gh * gw, d)  # shared; broadcasts over K

        fixed = np.concatenate([self.iou_token[None, :], self.mask_tokens], axis=0)
        queries = np.concatenate(
            [np.broadcast_to(fixed, (k, *fixed.shape)), sparse], axis=1
        ).astype(np.float32)
        query_pe = np.zeros_like(queries)
        query_pe[:, 1 + self.num_mask_tokens :] = sparse  # prompts reuse their codes as PE

        q = queries
        for block in self.blocks:
            q, img_tokens = block(q, img_tokens, query_pe, pe_tokens)
        q = q + self.final_attn(q + query_pe, img_tokens + pe_tokens, img_tokens)

        iou_toks = q[:, 0]  # (K, D)
        mask_toks = q[:, 1 : 1 + self.num_mask_tokens]  # (K, M, D)

        # (K, D, M): all hypernetwork vectors, so one (N, D) @ (D, M) GEMM per
        # prompt covers every mask token.  Every matmul here keeps a leading
        # batch axis (inputs shaped (K, 1, D) / (K, N, D)) so the per-slice
        # GEMM dims are independent of K — that K-invariance is what makes
        # batched == serial bit-for-bit.
        vecs = np.ascontiguousarray(
            np.stack(
                [hyper(mask_toks[:, i][:, None, :])[:, 0] for i, hyper in enumerate(self.hypernets)],
                axis=2,
            )
        )
        prod = np.matmul(img_tokens, vecs)  # (K, gh*gw, M)
        logits = np.ascontiguousarray(prod.transpose(0, 2, 1)).reshape(
            k, self.num_mask_tokens, gh, gw
        )
        if output_shape is not None:
            oh, ow = output_shape
            logits = np.stack(
                [
                    [
                        zoom(logits[j, i], (oh / gh, ow / gw), order=1, mode="nearest", grid_mode=True)[:oh, :ow]
                        for i in range(self.num_mask_tokens)
                    ]
                    for j in range(k)
                ]
            ).astype(np.float32)
        iou_logits = self.iou_head(iou_toks[:, None, :])[:, 0]  # (K, num_mask_tokens)
        return [
            DecoderOutput(mask_logits=logits[j], iou_logits=iou_logits[j], tokens=q[j])
            for j in range(k)
        ]
